"""Tests for the structural 3-stage multi-format unit (Fig. 5).

The central invariant: the netlist and the functional model agree bit
for bit across every format, including interleaved format switches.
"""

import random

import pytest

from repro.bits.ieee754 import BINARY32, BINARY64
from repro.bits.utils import mask
from repro.core.formats import MFFormat, OperandBundle
from repro.core.mfmult import MFMult
from repro.core.pipeline_unit import (
    FRMT_FP32X2,
    FRMT_FP64,
    FRMT_INT64,
    LATENCY,
    MFMultUnit,
    build_mf_multiplier,
)
from repro.hdl.library import default_library
from repro.hdl.pipeline import pipeline_report
from repro.hdl.timing.sta import analyze


@pytest.fixture(scope="module")
def unit():
    return MFMultUnit()


def _norm64(rng):
    return BINARY64.pack(rng.getrandbits(1), rng.randint(1, 2046),
                         rng.getrandbits(52))


def _norm32(rng):
    return BINARY32.pack(rng.getrandbits(1), rng.randint(1, 254),
                         rng.getrandbits(23))


class TestCoSimulation:
    def test_int64_exact(self, unit):
        rng = random.Random(1)
        ops = [(OperandBundle.int64(rng.getrandbits(64),
                                    rng.getrandbits(64)), MFFormat.INT64)
               for __ in range(25)]
        ops.append((OperandBundle.int64(mask(64), mask(64)), MFFormat.INT64))
        results = unit.run_batch(ops)
        for (bundle, __), res in zip(ops, results):
            assert (res.ph << 64) | res.pl == bundle.x * bundle.y

    def test_fp64_matches_functional(self, unit):
        rng = random.Random(2)
        mf = MFMult(fidelity="fast")
        ops = [(OperandBundle.fp64(_norm64(rng), _norm64(rng)),
                MFFormat.FP64) for __ in range(30)]
        results = unit.run_batch(ops)
        for (bundle, fmt), res in zip(ops, results):
            expect = mf.multiply(bundle, fmt)
            assert res.ph == expect.ph, (hex(bundle.x), hex(bundle.y))
            assert res.pl == 0

    def test_fp32_dual_matches_functional(self, unit):
        rng = random.Random(3)
        mf = MFMult(fidelity="fast")
        ops = []
        for __ in range(30):
            ops.append((OperandBundle.fp32_pair(
                _norm32(rng), _norm32(rng), _norm32(rng), _norm32(rng)),
                MFFormat.FP32X2))
        results = unit.run_batch(ops)
        for (bundle, fmt), res in zip(ops, results):
            expect = mf.multiply(bundle, fmt)
            assert res.ph == expect.ph, (hex(bundle.x), hex(bundle.y))

    def test_interleaved_format_switching(self, unit):
        """Back-to-back format changes must not corrupt the pipeline —
        each in-flight operation carries its own registered controls."""
        rng = random.Random(4)
        mf = MFMult(fidelity="fast")
        ops = []
        for __ in range(12):
            ops.append((OperandBundle.int64(rng.getrandbits(64),
                                            rng.getrandbits(64)),
                        MFFormat.INT64))
            ops.append((OperandBundle.fp64(_norm64(rng), _norm64(rng)),
                        MFFormat.FP64))
            ops.append((OperandBundle.fp32_pair(
                _norm32(rng), _norm32(rng), _norm32(rng), _norm32(rng)),
                MFFormat.FP32X2))
        results = unit.run_batch(ops)
        for (bundle, fmt), res in zip(ops, results):
            expect = mf.multiply(bundle, fmt)
            assert (res.ph, res.pl) == (expect.ph, expect.pl), fmt

    def test_rounding_boundary_cases(self, unit):
        """The renormalization window (mantissas near all-ones)."""
        mf = MFMult(fidelity="fast")
        all_ones = BINARY64.pack(0, 1023, mask(52))
        near = BINARY64.pack(0, 1023, mask(52) - 1)
        one_and_half = BINARY64.pack(0, 1023, 1 << 51)
        ops = [(OperandBundle.fp64(a, b), MFFormat.FP64)
               for a in (all_ones, near, one_and_half)
               for b in (all_ones, near, one_and_half)]
        m_y = ((1 << 54) - 1) // 3
        ops.append((OperandBundle.fp64(
            BINARY64.pack(0, 1023, 1 << 51),
            BINARY64.pack(0, 1023, m_y - (1 << 52))), MFFormat.FP64))
        results = unit.run_batch(ops)
        for (bundle, fmt), res in zip(ops, results):
            expect = mf.multiply(bundle, fmt)
            assert res.ph == expect.ph

    def test_fp32_rounding_boundaries(self, unit):
        mf = MFMult(fidelity="fast")
        all_ones = BINARY32.pack(0, 127, mask(23))
        half = BINARY32.pack(0, 127, 1 << 22)
        one = BINARY32.pack(0, 127, 0)
        ops = []
        for a in (all_ones, half, one):
            for b in (all_ones, half, one):
                ops.append((OperandBundle.fp32_pair(a, b, b, a),
                            MFFormat.FP32X2))
        results = unit.run_batch(ops)
        for (bundle, fmt), res in zip(ops, results):
            expect = mf.multiply(bundle, fmt)
            assert res.ph == expect.ph


class TestUnitStructure:
    def test_three_stages(self, unit):
        assert unit.module.stage_count() == 3
        report = pipeline_report(unit.module)
        assert report.n_stages == 3

    def test_latency_constant(self):
        assert LATENCY == 2

    def test_stage2_holds_ppgen_and_tree(self, unit):
        gate_stages, __ = __import__(
            "repro.hdl.pipeline", fromlist=["stage_map"]).stage_map(
                unit.module)
        by_block = {}
        for gate, stage in zip(unit.module.gates, gate_stages):
            top = gate.block.split("/", 1)[0]
            by_block.setdefault(top, set()).add(stage)
        assert by_block["ppgen"] == {2}
        assert by_block["tree"] == {2}
        assert by_block["precomp"] == {1}
        assert by_block["normround"] == {3}

    def test_frmt_codes(self):
        assert FRMT_INT64 == 0
        assert FRMT_FP64 == 1
        assert FRMT_FP32X2 == 2

    def test_clock_period_in_paper_band(self, unit):
        """Paper: 1120 ps (17.5 FO4) at 45 nm; ours must land within a
        reasonable band of that (the trend claims rely on it)."""
        lib = default_library()
        report = analyze(unit.module, lib)
        assert 14 <= report.clock_period_ps / 64 <= 26

    def test_empty_batch(self, unit):
        assert unit.run_batch([]) == []

    def test_single_op_wrapper(self, unit):
        res = unit.multiply(OperandBundle.int64(3, 5), MFFormat.INT64)
        assert res.pl == 15
