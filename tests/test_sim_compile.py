"""Equivalence tests for the compiled simulation backend.

Every fast path the compiled backend introduced — the codegen levelized
kernel, the per-gate closures, the truth-table C event kernel, the
delta-stimulus :meth:`EventSimulator.replay`, the sharded Monte Carlo —
claims bit-identity with the historic reference implementation it
replaced.  These tests pin that claim down kind-by-kind, on random
netlists, and on the real multipliers.
"""

import pytest
from hypothesis import given, settings

from repro.errors import NetlistError, SimulationError
from repro.hdl.cell import CELL_KINDS, cell_eval, cell_num_inputs
from repro.hdl.library import default_library
from repro.hdl.module import Gate, Module
from repro.hdl.power.monte_carlo import estimate_power, shared_event_simulator
from repro.hdl.sim import ckernel
from repro.hdl.sim.compile import EXPR_TEMPLATES, gate_expr
from repro.hdl.sim.event import EventSimulator
from repro.hdl.sim.levelized import LevelizedSimulator
from repro.hdl.sim.toposort import topo_gate_order, topo_node_order
from tests.test_hdl_properties import module_and_patterns

KINDS = sorted(CELL_KINDS)


def _input_stim(module, patterns, t):
    return {net: (patterns[t] >> i) & 1
            for i, net in enumerate(module.inputs["a"])}


# ----------------------------------------------------------------------
# codegen templates and truth tables vs cell_eval, kind by kind
# ----------------------------------------------------------------------

class TestCodegenTemplates:
    @pytest.mark.parametrize("kind", KINDS)
    def test_scalar_expression_matches_cell_eval(self, kind):
        arity = cell_num_inputs(kind)
        gate = Gate(kind, tuple(range(arity)), arity, "")
        expr = gate_expr(gate)
        fn = cell_eval(kind)
        for idx in range(1 << arity):
            bits = [(idx >> j) & 1 for j in range(arity)]
            got = eval(expr, {"v": bits, "M": 1}) & 1
            assert got == fn(1, *bits) & 1, (kind, bits)

    @pytest.mark.parametrize("kind", KINDS)
    def test_packed_expression_matches_cell_eval(self, kind):
        # All input combinations at once: pattern i carries combination i.
        arity = cell_num_inputs(kind)
        n = 1 << arity
        m = (1 << n) - 1
        words = []
        for j in range(arity):
            packed = 0
            for i in range(n):
                packed |= ((i >> j) & 1) << i
            words.append(packed)
        gate = Gate(kind, tuple(range(arity)), arity, "")
        expr = gate_expr(gate)
        got = eval(expr, {"v": words, "M": m}) & m
        assert got == cell_eval(kind)(m, *words) & m

    def test_every_kind_has_a_template(self):
        assert set(EXPR_TEMPLATES) == set(CELL_KINDS)


class TestTruthTable:
    @pytest.mark.parametrize("kind", KINDS)
    def test_table_matches_cell_eval(self, kind):
        arity = cell_num_inputs(kind)
        fn = cell_eval(kind)
        table = ckernel.truth_table(fn, arity)
        # All 16 slots — including the padded high bits, which must
        # replicate the low-arity output so a padded input slot (wired
        # to input 0 by the kernel) can never change the result.
        for idx in range(16):
            bits = [(idx >> j) & 1 for j in range(arity)]
            assert (table >> idx) & 1 == fn(1, *bits) & 1, (kind, idx)


# ----------------------------------------------------------------------
# compiled levelized kernel vs interpreted reference
# ----------------------------------------------------------------------

class TestCompiledLevelized:
    @given(module_and_patterns())
    @settings(max_examples=50, deadline=None)
    def test_matches_interpreter_on_random_netlists(self, case):
        module, patterns = case
        n = len(patterns)
        compiled = LevelizedSimulator(module).run({"a": patterns}, n)
        interp = LevelizedSimulator(module, compiled=False).run(
            {"a": patterns}, n)
        # Net-for-net, every pattern word identical.
        assert compiled.values == interp.values

    def test_matches_interpreter_on_radix16(self):
        from repro.eval.experiments import cached_module
        from repro.eval.workloads import WorkloadGenerator

        module = cached_module("r16")
        stim = WorkloadGenerator(7).multiplier_stimulus(4)
        compiled = LevelizedSimulator(module).run(stim, 4)
        interp = LevelizedSimulator(module, compiled=False).run(stim, 4)
        assert compiled.values == interp.values


# ----------------------------------------------------------------------
# time-wheel engine vs heapq reference
# ----------------------------------------------------------------------

class TestWheelMatchesHeap:
    @given(module_and_patterns())
    @settings(max_examples=40, deadline=None)
    def test_identical_transition_counts(self, case):
        module, patterns = case
        lib = default_library()
        wheel = EventSimulator(module, lib, engine="wheel")
        heap = EventSimulator(module, lib, engine="heap")
        wheel.initialize(_input_stim(module, patterns, 0))
        heap.initialize(_input_stim(module, patterns, 0))
        assert wheel.values == heap.values
        for t in range(1, len(patterns)):
            cw = wheel.apply(_input_stim(module, patterns, t))
            ch = heap.apply(_input_stim(module, patterns, t))
            assert cw.toggles == ch.toggles
            assert cw.settle_time_ps == ch.settle_time_ps
            assert wheel.values == heap.values

    def test_unknown_engine_rejected(self):
        m = Module("demo")
        a = m.input("a", 1)
        m.output("o", [m.gate("INV", a[0])])
        with pytest.raises(SimulationError, match="engine"):
            EventSimulator(m, default_library(), engine="wheelbarrow")


# ----------------------------------------------------------------------
# replay(): C kernel, wheel fallback, heap reference — one answer
# ----------------------------------------------------------------------

class TestReplay:
    @given(module_and_patterns())
    @settings(max_examples=30, deadline=None)
    def test_matches_per_cycle_heap_apply(self, case):
        module, patterns = case
        n = len(patterns)
        lib = default_library()
        run = LevelizedSimulator(module).run({"a": patterns}, n)

        esim = EventSimulator(module, lib)
        counts = esim.replay(run.values, 1, n - 1)

        heap = EventSimulator(module, lib, engine="heap")
        heap.initialize(_input_stim(module, patterns, 0))
        totals = [0] * module.n_nets
        last = None
        for t in range(1, n):
            last = heap.apply(_input_stim(module, patterns, t),
                              toggles_out=totals)
        assert counts.toggles == totals
        assert counts.settle_time_ps == last.settle_time_ps
        assert esim.values == heap.values

    @given(module_and_patterns())
    @settings(max_examples=20, deadline=None)
    def test_python_fallback_matches_kernel_path(self, case):
        module, patterns = case
        n = len(patterns)
        lib = default_library()
        run = LevelizedSimulator(module).run({"a": patterns}, n)
        fast = EventSimulator(module, lib)
        slow = EventSimulator(module, lib)
        slow._ck = None        # force the pure-Python replay path
        cf = fast.replay(run.values, 1, n - 1)
        cs = slow.replay(run.values, 1, n - 1)
        assert cf.toggles == cs.toggles
        assert cf.settle_time_ps == cs.settle_time_ps
        assert fast.values == slow.values

    def test_settles_to_final_cycle_state(self):
        from repro.eval.experiments import cached_module
        from repro.eval.workloads import WorkloadGenerator

        module = cached_module("r4")
        n = 6
        stim = WorkloadGenerator(11).multiplier_stimulus(n)
        run = LevelizedSimulator(module).run(stim, n)
        esim = EventSimulator(module, default_library())
        counts = esim.replay(run.values, 1, n - 1)
        # Feed-forward logic: the settled state after the last transition
        # is the zero-delay state of the last cycle.
        for net in range(module.n_nets):
            assert esim.values[net] == run.net_value(net, n - 1)
        assert counts.total() >= sum(run.toggles_per_net())
        # Perf counters accumulated across the whole window.
        assert esim.stats["applies"] == n - 1
        assert esim.stats["events"] == counts.events_processed

    def test_window_validation(self):
        m = Module("demo")
        a = m.input("a", 1)
        m.output("o", [m.gate("INV", a[0])])
        esim = EventSimulator(m, default_library())
        packed = [0] * m.n_nets
        with pytest.raises(SimulationError, match="window"):
            esim.replay(packed, 0, 3)
        with pytest.raises(SimulationError, match="window"):
            esim.replay(packed, 3, 2)
        with pytest.raises(SimulationError, match="every net"):
            esim.replay([0], 1, 2)

    def test_long_window_chunking(self):
        # More transitions than one C-kernel window (63) in one replay.
        m = Module("chain")
        a = m.input("a", 1)
        net = a[0]
        for __ in range(5):
            net = m.gate("INV", net)
        m.output("o", [net])
        n = 150
        patterns = [(t * 0x9E3779B9 >> 7) & 1 for t in range(n)]
        run = LevelizedSimulator(m).run({"a": patterns}, n)
        esim = EventSimulator(m, default_library())
        counts = esim.replay(run.values, 1, n - 1)
        flips = sum(patterns[t] != patterns[t - 1] for t in range(1, n))
        # A pure inverter chain can't glitch: every net toggles exactly
        # once per input flip.
        assert counts.toggles == [flips] * m.n_nets
        for net_id in range(m.n_nets):
            assert esim.values[net_id] == run.net_value(net_id, n - 1)


# ----------------------------------------------------------------------
# shared toposort
# ----------------------------------------------------------------------

class TestToposort:
    @given(module_and_patterns())
    @settings(max_examples=40, deadline=None)
    def test_gate_order_is_topological(self, case):
        module, __ = case
        order = topo_gate_order(module)
        assert sorted(order) == list(range(len(module.gates)))
        position = {gidx: pos for pos, gidx in enumerate(order)}
        producer = {g.output: i for i, g in enumerate(module.gates)}
        for gidx, gate in enumerate(module.gates):
            for net in gate.inputs:
                if net in producer:
                    assert position[producer[net]] < position[gidx]

    def test_node_order_includes_registers(self):
        m = Module("reg")
        a = m.input("a", 1)
        inv = m.gate("INV", a[0])
        q = m.register(inv, stage=1)
        m.output("o", [m.gate("BUF", q)])
        order = topo_node_order(m)
        assert -1 in order                   # register 0 encoded as -1
        assert sorted(i for i in order if i >= 0) == [0, 1]
        # The register comes after its d-producer and before its q-consumer.
        assert order.index(0) < order.index(-1) < order.index(1)

    def test_cycle_raises_requested_error_type(self):
        m = Module("cyclic")
        a = m.input("a", 1)
        out1 = m.new_net()
        out2 = m.new_net()
        m._driver[out1] = "gate"
        m._driver[out2] = "gate"
        m.gates.append(Gate("AND2", (a[0], out2), out1, ""))
        m.gates.append(Gate("INV", (out1,), out2, ""))
        for fn in (topo_gate_order, topo_node_order):
            with pytest.raises(SimulationError, match="cycle"):
                fn(m)
            with pytest.raises(NetlistError, match="cycle"):
                fn(m, error=NetlistError)


# ----------------------------------------------------------------------
# Monte Carlo: shared simulator, stats, sharding
# ----------------------------------------------------------------------

def _power_fields(report):
    return (report.dynamic_mw, report.register_mw, report.leakage_mw,
            report.zero_delay_dynamic_mw, report.by_block_mw,
            report.total_toggles)


class TestMonteCarlo:
    def _module_and_stim(self, n_cycles):
        from repro.eval.experiments import cached_module
        from repro.eval.workloads import WorkloadGenerator

        module = cached_module("r4")
        stim = WorkloadGenerator(2017).multiplier_stimulus(n_cycles)
        return module, stim

    def test_shared_simulator_is_reused(self):
        module, __ = self._module_and_stim(2)
        lib = default_library()
        esim = shared_event_simulator(module, lib)
        assert shared_event_simulator(module, lib) is esim
        # Library matching is by equality, not identity.
        assert shared_event_simulator(module, default_library()) is esim

    def test_sim_stats_in_report(self):
        module, stim = self._module_and_stim(4)
        lib = default_library()
        report = estimate_power(module, lib, stim, 4)
        stats = report.sim_stats
        assert stats["engine"] == "wheel"
        assert stats["kernel"] in ("c", "python")
        assert stats["kernel"] == shared_event_simulator(module, lib).kernel
        assert stats["transitions"] == 3
        assert stats["workers"] == 1
        assert stats["events_processed"] > 0

        flat = estimate_power(module, lib, stim, 4, glitch=False)
        assert flat.sim_stats["engine"] == "zero-delay"

    def test_workers_match_serial(self):
        module, stim = self._module_and_stim(8)
        lib = default_library()
        serial = estimate_power(module, lib, stim, 8)
        sharded = estimate_power(module, lib, stim, 8, workers=2)
        assert _power_fields(sharded) == _power_fields(serial)
        assert sharded.sim_stats["workers"] == 2
        assert (sharded.sim_stats["events_processed"]
                == serial.sim_stats["events_processed"])

    def test_workers_env_opt_in(self, monkeypatch):
        module, stim = self._module_and_stim(4)
        monkeypatch.setenv("REPRO_POWER_WORKERS", "2")
        report = estimate_power(module, default_library(), stim, 4)
        assert report.sim_stats["workers"] == 2

    def test_workers_env_rejects_garbage(self, monkeypatch):
        module, stim = self._module_and_stim(4)
        monkeypatch.setenv("REPRO_POWER_WORKERS", "abc")
        with pytest.raises(SimulationError, match="REPRO_POWER_WORKERS"):
            estimate_power(module, default_library(), stim, 4)


# ----------------------------------------------------------------------
# on-disk module cache
# ----------------------------------------------------------------------

class TestModuleDiskCache:
    def test_pickle_roundtrip(self, tmp_path, monkeypatch):
        from repro.eval import experiments

        monkeypatch.setenv("REPRO_MODULE_CACHE", str(tmp_path))
        experiments.cached_module.cache_clear()
        try:
            first = experiments.cached_module("r4")
            files = list(tmp_path.glob("r4-*.pkl"))
            assert len(files) == 1
            experiments.cached_module.cache_clear()
            second = experiments.cached_module("r4")   # from pickle
            assert second.n_nets == first.n_nets
            assert ([g.kind for g in second.gates]
                    == [g.kind for g in first.gates])
            assert second.inputs.keys() == first.inputs.keys()
        finally:
            # Don't leave tmp_path-backed entries in the process-wide cache.
            experiments.cached_module.cache_clear()

    def test_cache_disabled_by_env(self, monkeypatch):
        from repro.eval.experiments import _module_cache_dir

        monkeypatch.setenv("REPRO_MODULE_CACHE", "0")
        assert _module_cache_dir() is None
