"""Tests for repro.bits.bitvector."""

import pytest
from hypothesis import given, strategies as st

from repro.bits.bitvector import BitVector
from repro.errors import BitWidthError


class TestConstruction:
    def test_basic(self):
        v = BitVector(0xAB, 8)
        assert v.value == 0xAB
        assert v.width == 8
        assert len(v) == 8
        assert int(v) == 0xAB

    def test_value_must_fit(self):
        with pytest.raises(BitWidthError):
            BitVector(256, 8)
        with pytest.raises(BitWidthError):
            BitVector(-1, 8)

    def test_width_positive(self):
        with pytest.raises(BitWidthError):
            BitVector(0, 0)

    def test_signed(self):
        assert BitVector.signed(-1, 8).value == 0xFF
        assert BitVector.signed(-8, 4).value == 0x8
        with pytest.raises(BitWidthError):
            BitVector.signed(8, 4)

    def test_signed_value(self):
        assert BitVector(0xFF, 8).signed_value == -1
        assert BitVector(0x7F, 8).signed_value == 127

    def test_from_bits(self):
        assert BitVector.from_bits([1, 0, 1]).value == 0b101
        with pytest.raises(BitWidthError):
            BitVector.from_bits([])
        with pytest.raises(BitWidthError):
            BitVector.from_bits([2])


class TestIndexing:
    def test_single_bit(self):
        v = BitVector(0b1010, 4)
        assert v[0] == 0
        assert v[1] == 1
        with pytest.raises(BitWidthError):
            v[4]

    def test_slice_both_orders(self):
        v = BitVector(0xABCD, 16)
        assert v[11:4] == v[4:11]
        assert v[4:11].width == 8
        assert v[4:11].value == (0xABCD >> 4) & 0xFF

    def test_slice_bounds(self):
        v = BitVector(0, 8)
        with pytest.raises(BitWidthError):
            v[0:8]
        with pytest.raises(BitWidthError):
            v[0:4:2]


class TestOps:
    def test_concat_msb_first(self):
        # {a, b}: a holds the MSBs.
        a = BitVector(0b1, 1)
        b = BitVector(0b00, 2)
        assert a.concat(b).value == 0b100
        assert a.concat(b).width == 3

    def test_extend_truncate(self):
        v = BitVector(0x8F, 8)
        assert v.zero_extend(12).value == 0x08F
        assert v.sign_extend(12).value == 0xF8F
        assert v.truncate(4).value == 0xF
        with pytest.raises(BitWidthError):
            v.truncate(9)
        with pytest.raises(BitWidthError):
            v.zero_extend(4)

    def test_bitwise(self):
        a = BitVector(0b1100, 4)
        b = BitVector(0b1010, 4)
        assert (a & b).value == 0b1000
        assert (a | b).value == 0b1110
        assert (a ^ b).value == 0b0110
        assert (~a).value == 0b0011

    def test_width_mismatch(self):
        with pytest.raises(BitWidthError):
            BitVector(1, 4) & BitVector(1, 5)

    def test_shifts_bounded(self):
        v = BitVector(0b1001, 4)
        assert (v << 1).value == 0b0010
        assert (v >> 1).value == 0b0100
        assert (v << 0) == v

    def test_add_modular(self):
        assert (BitVector(0xF, 4) + 1).value == 0
        assert (BitVector(3, 4) + BitVector(4, 4)).value == 7

    def test_equality(self):
        assert BitVector(5, 4) == BitVector(5, 4)
        assert BitVector(5, 4) != BitVector(5, 5)
        assert BitVector(5, 4) == 5

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_bits_roundtrip(self, value):
        v = BitVector(value, 32)
        assert BitVector.from_bits(v.bits()) == v

    @given(st.integers(min_value=0, max_value=(1 << 20) - 1),
           st.integers(min_value=0, max_value=(1 << 20) - 1))
    def test_add_matches_python(self, a, b):
        va = BitVector(a, 20)
        assert (va + b).value == (a + b) % (1 << 20)
