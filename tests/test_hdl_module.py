"""Tests for the netlist builder and validator."""

import pytest

from repro.errors import NetlistError
from repro.hdl.library import default_library
from repro.hdl.module import Module
from repro.hdl.validate import validate


def _small_module():
    m = Module("demo")
    a = m.input("a", 2)
    b = m.input("b", 2)
    with m.block("logic"):
        x = m.gate("XOR2", a[0], b[0])
        y = m.gate("AND2", a[1], b[1])
    m.output("o", [x, y])
    return m


class TestConstruction:
    def test_basic_shape(self):
        m = _small_module()
        stats = m.stats()
        assert stats["gates"] == 2
        assert stats["inputs"] == 4
        assert stats["outputs"] == 2
        assert stats["kinds"] == {"XOR2": 1, "AND2": 1}

    def test_block_tags(self):
        m = _small_module()
        assert all(g.block == "logic" for g in m.gates)

    def test_nested_blocks(self):
        m = Module("demo")
        a = m.input("a", 1)
        with m.block("outer"):
            with m.block("inner"):
                m.gate("INV", a[0])
        assert m.gates[0].block == "outer/inner"

    def test_duplicate_io_rejected(self):
        m = Module("demo")
        m.input("a", 1)
        with pytest.raises(NetlistError):
            m.input("a", 1)
        n = m.input("b", 1)
        m.output("o", n)
        with pytest.raises(NetlistError):
            m.output("o", n)

    def test_undriven_net_rejected(self):
        m = Module("demo")
        with pytest.raises(NetlistError):
            m.gate("INV", 42)

    def test_gate_arity_checked(self):
        m = Module("demo")
        a = m.input("a", 2)
        with pytest.raises(NetlistError):
            m.gate("INV", a[0], a[1])
        with pytest.raises(NetlistError):
            m.gate("XOR2", a[0])

    def test_constants_shared(self):
        m = Module("demo")
        assert m.const(0) == m.const(0)
        assert m.const(1) == m.const(1)
        assert m.const(0) != m.const(1)
        with pytest.raises(NetlistError):
            m.const(2)

    def test_registers(self):
        m = Module("demo")
        a = m.input("a", 4)
        q = m.register_bus(a, stage=1)
        m.output("o", q)
        assert m.stats()["registers"] == 4
        assert m.stage_count() == 2
        assert m.driver_kind(q[0]) == "register"

    def test_driver_kinds(self):
        m = _small_module()
        assert m.driver_kind(m.inputs["a"][0]) == "input"
        assert m.driver_kind(m.gates[0].output) == "gate"
        assert m.driver_kind(m.const(1)) == "const"
        with pytest.raises(NetlistError):
            m.driver_kind(10_000)

    def test_fanout_and_load(self):
        m = Module("demo")
        a = m.input("a", 1)
        m.gate("INV", a[0])
        m.gate("INV", a[0])
        fanout = m.fanout_map()
        assert fanout[a[0]] == [0, 1]
        lib = default_library()
        load = m.load_map(lib)
        assert load[a[0]] == 2 * lib.spec("INV").input_cap


class TestValidate:
    def test_clean_module_passes(self):
        validate(_small_module())

    def test_cycle_detected(self):
        m = Module("demo")
        a = m.input("a", 1)
        # Manually create a combinational cycle.
        from repro.hdl.module import Gate
        out1 = m.new_net()
        out2 = m.new_net()
        m._driver[out1] = "gate"
        m._driver[out2] = "gate"
        m.gates.append(Gate("AND2", (a[0], out2), out1, ""))
        m.gates.append(Gate("INV", (out1,), out2, ""))
        with pytest.raises(NetlistError, match="cycle"):
            validate(m)

    def test_double_driver_detected(self):
        m = Module("demo")
        a = m.input("a", 1)
        n = m.gate("INV", a[0])
        from repro.hdl.module import Gate
        m.gates.append(Gate("INV", (a[0],), n, ""))
        with pytest.raises(NetlistError, match="driven by"):
            validate(m)

    def test_undriven_detected(self):
        m = _small_module()
        m.n_nets += 1
        with pytest.raises(NetlistError, match="no driver"):
            validate(m)
