"""The pluggable scheduler backends and the content-addressed cache.

Load-bearing guarantees:

* every backend (``inline``, ``fork``, work-stealing ``workers``)
  produces byte-identical graph results at any worker count;
* the ``workers`` backend actually steals under skew and recovers from
  a worker crash by re-queueing the in-flight leaf;
* the ``repro.sched/1`` wire envelopes round-trip tasks and results;
* the content-addressed store round-trips through ``export``/
  ``import`` so a second machine replays the graph with **zero leaf
  executions**, bounds itself via LRU eviction, and counts corruption;
* the Monte Carlo shard plan partitions the transition sequence
  exactly, and fault campaigns auto-chunk without changing historic
  plans.
"""

import os
import pickle

import pytest

from repro import obs
from repro.errors import SimulationError
from repro.eval.cache import ResultCache, key_digest
from repro.eval.orchestrator import Job, job, run_graph
from repro.eval.sched import make_backend
from repro.eval.sched.testing import seeded_leaf


def _counter(name):
    return obs.registry().snapshot()["counters"].get(name, 0)


def _mini_graph(fast=6, slow_seconds=0.0):
    """A small skewed graph: one heavy leaf, several light ones, a merge."""
    jobs = [job("slow", "repro.eval.sched.testing:sleepy_leaf",
                weight=8.0, seconds=slow_seconds, seed=99, size=3)]
    jobs += [job(f"fast{i}", "repro.eval.sched.testing:seeded_leaf",
                 weight=1.0, seed=i, size=2)
             for i in range(fast)]
    leaf_names = tuple(j.name for j in jobs)
    jobs.append(Job(name="total",
                    fn=lambda deps: sorted(sum(deps.values(), [])),
                    params=(), deps=leaf_names))
    return jobs


def _expected_total(fast=6):
    values = [seeded_leaf(seed=99, size=3)]
    values += [seeded_leaf(seed=i, size=2) for i in range(fast)]
    return sorted(sum(values, []))


@pytest.mark.parametrize("backend", ["inline", "fork", "workers"])
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_backend_parity(backend, workers):
    """Identical results on every backend at every worker count."""
    outcomes = run_graph(_mini_graph(), workers=workers, cache=None,
                         backend=backend)
    assert outcomes["total"].value == _expected_total()
    assert outcomes["fast0"].value == seeded_leaf(seed=0, size=2)


def test_workers_backend_steals_under_skew():
    before = _counter("orchestrator.steals")
    outcomes = run_graph(_mini_graph(fast=8, slow_seconds=0.4),
                         workers=2, cache=None, backend="workers")
    assert outcomes["total"].value == _expected_total(fast=8)
    assert _counter("orchestrator.steals") > before


def test_workers_backend_recovers_from_crash(tmp_path):
    sentinel = str(tmp_path / "crashed-once")
    before = _counter("orchestrator.worker.crashes")
    jobs = [job("boom", "repro.eval.sched.testing:crashy_leaf",
                weight=4.0, sentinel=sentinel, seed=5)]
    jobs += [job(f"ok{i}", "repro.eval.sched.testing:seeded_leaf",
                 seed=i, size=2) for i in range(3)]
    outcomes = run_graph(jobs, workers=2, cache=None, backend="workers")
    assert outcomes["boom"].value == seeded_leaf(seed=5, size=2)
    assert all(outcomes[f"ok{i}"].value == seeded_leaf(seed=i, size=2)
               for i in range(3))
    assert _counter("orchestrator.worker.crashes") == before + 1
    assert os.path.exists(sentinel)


def test_workers_backend_leaf_error_propagates():
    jobs = [job("bad", "repro.eval.sched.testing:seeded_leaf",
                seed="not-an-int", size=None)]
    with pytest.raises(Exception):
        run_graph(jobs, workers=2, cache=None, backend="workers")


def test_make_backend_rejects_unknown():
    with pytest.raises(SimulationError):
        make_backend("quantum", 2)
    with pytest.raises(SimulationError):
        run_graph(_mini_graph(), workers=2, cache=None, backend="quantum")


def test_wire_envelopes_roundtrip():
    from repro.eval.sched import LeafTask, wire

    task = LeafTask(name="leafy", fn="repro.eval.sched.testing:seeded_leaf",
                    params=(("seed", 3), ("size", 2)), weight=2.0,
                    fingerprint="abc123")
    env = wire.job_envelope(task)
    assert env["schema"] == wire.SCHEMA
    back = wire.task_from_envelope(env)
    assert back.name == task.name and back.params == task.params
    assert back.fingerprint == "abc123"

    from repro.eval.sched.base import execute_task
    res = execute_task(back)
    renv = wire.result_envelope(res, worker=7)
    rback = wire.result_from_envelope(renv)
    assert rback.ok and rback.value == seeded_leaf(seed=3, size=2)
    assert rback.worker == 7


def test_cache_export_import_roundtrip_zero_leaf_executions(tmp_path):
    src = ResultCache(root=str(tmp_path / "src"), fingerprint="fp-x")
    jobs = _mini_graph(fast=4)
    run_graph(jobs, workers=0, cache=src, backend="inline")
    assert src.misses > 0

    archive = str(tmp_path / "results.tar.gz")
    exported = src.export(archive)["entries"]
    assert exported == len([j for j in jobs if not j.deps])

    dst = ResultCache(root=str(tmp_path / "dst"), fingerprint="fp-x")
    stats = dst.import_archive(archive)
    assert stats["imported"] == exported and stats["corrupt"] == 0

    # The warm machine replays the graph without executing one leaf.
    outcomes = run_graph(jobs, workers=2, cache=dst, backend="workers")
    assert outcomes["total"].value == _expected_total(fast=4)
    leaf_modes = {o.mode for n, o in outcomes.items() if n != "total"}
    assert leaf_modes == {"cache"}
    assert dst.misses == 0
    # Lazy backend start: a fully cache-served graph forks no workers.
    spawned = _counter("orchestrator.workers.spawned")
    run_graph(jobs, workers=2, cache=dst, backend="workers")
    assert _counter("orchestrator.workers.spawned") == spawned


def test_cache_import_skips_corrupt_entries(tmp_path):
    src = ResultCache(root=str(tmp_path / "src"), fingerprint="fp-x")
    jb = job("unit", "repro.eval.sched.testing:seeded_leaf", seed=1, size=2)
    run_graph([jb], workers=0, cache=src)
    objects = tmp_path / "src" / "objects"
    (entry,) = os.listdir(objects)
    (objects / entry).write_bytes(pickle.dumps({"schema": "repro.cache/1",
                                                "key": "tampered",
                                                "value": 13}))
    archive = str(tmp_path / "bad.tar.gz")
    src.export(archive)
    dst = ResultCache(root=str(tmp_path / "dst"), fingerprint="fp-x")
    stats = dst.import_archive(archive)
    assert stats["imported"] == 0 and stats["corrupt"] == 1


def test_cache_lru_eviction_is_size_capped(tmp_path):
    cache = ResultCache(root=str(tmp_path), fingerprint="fp")
    blob = list(range(20000))           # ~100 KB pickled
    for i in range(6):
        cache.store(job(f"big{i}", "m:f", i=i), blob)
        hit, __ = cache.load(job(f"big{i}", "m:f", i=i))
        assert hit
    before = cache.stats()
    assert before["entries"] == 6
    evicted = cache.gc(max_mb=0.25)
    assert len(evicted) > 0
    after = cache.stats()
    assert after["entries"] < 6
    assert after["bytes"] <= 0.25 * 1024 * 1024
    # Most-recently-used entries survive.
    hit, __ = cache.load(job("big5", "m:f", i=5))
    assert hit


def test_cache_cli_stats_gc_export_import(tmp_path, capsys):
    from repro.eval import cache as cache_cli

    root = str(tmp_path / "store")
    cache = ResultCache(root=root, fingerprint="fp")
    cache.store(job("one", "m:f", a=1), [1, 2, 3])

    assert cache_cli.main(["--root", root, "stats"]) == 0
    assert "1 entries" in capsys.readouterr().out

    archive = str(tmp_path / "out.tar.gz")
    assert cache_cli.main(["--root", root, "export", archive]) == 0
    capsys.readouterr()

    dst = str(tmp_path / "other")
    assert cache_cli.main(["--root", dst, "import", archive]) == 0
    assert "imported 1" in capsys.readouterr().out

    assert cache_cli.main(["--root", dst, "gc", "--max-mb", "0"]) == 0


def test_key_digest_is_content_address():
    a = key_digest("same-key")
    b = key_digest("same-key")
    c = key_digest("other-key")
    assert a == b != c
    assert len(a) == 64 and set(a) <= set("0123456789abcdef")


def test_transition_windows_partition_exactly():
    from repro.hdl.power.monte_carlo import (power_shard_plan,
                                             transition_windows)

    for n_cycles in (2, 3, 16, 17, 64, 65):
        for shards in (1, 2, 3, 7, 100):
            windows = transition_windows(n_cycles, shards)
            covered = [t for a, b in windows for t in range(a, b + 1)]
            assert covered == list(range(1, n_cycles))
    plan = power_shard_plan(64, max_transitions=16)
    assert len(plan) == 4
    assert all(b - a + 1 <= 16 for a, b in plan)
    assert power_shard_plan(12, max_transitions=16) == [(1, 11)]


def test_chunk_plan_auto_matches_historic_plans():
    from repro.eval.fault_injection import chunk_plan

    # n <= 40 keeps the exact historic 4-way split (same shard seeds).
    assert chunk_plan(40, 7) == chunk_plan(40, 7, 4)
    assert chunk_plan(12, 7) == chunk_plan(12, 7, 4)
    # Larger campaigns refine toward ~10 mutations per leaf.
    plan = chunk_plan(100, 7)
    assert len(plan) == 10
    assert sum(size for __, size in plan) == 100
