"""Tests for the consolidated report and combined unit options."""

import random

import pytest

from repro.bits.ieee754 import BINARY64
from repro.core.formats import MFFormat, OperandBundle, RoundingMode
from repro.core.mfmult import MFMult
from repro.core.pipeline_unit import MFMultUnit
from repro.core.reduction import reduce_binary64


class TestReportGenerator:
    def test_report_contains_every_section(self, tmp_path):
        from repro.eval.report import generate_report

        path = tmp_path / "report.md"
        text = generate_report(n_cycles=4, out_path=str(path))
        assert path.read_text() == text
        for marker in ("Table I ", "Table II ", "Table III ", "Table IV ",
                       "Table V ", "Fig. 1", "Fig. 2", "Fig. 3", "Fig. 4",
                       "Fig. 5", "Fig. 6", "Sec. IV", "Sec. III-E"):
            assert marker in text, marker
        assert "paper" in text and "measured" in text

    def test_cli_report(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "r.md"
        assert main(["--cycles", "4", "--output", str(out), "report"]) == 0
        assert "Table V" in out.read_text()


class TestCombinedUnitOptions:
    """RNE + reducer + operand isolation composed in one build."""

    @pytest.fixture(scope="class")
    def unit(self):
        return MFMultUnit(rounding="rne", with_reducer=True,
                          operand_isolation=True)

    def test_all_features_present(self, unit):
        blocks = {g.block.split("/", 1)[0] for g in unit.module.gates}
        assert "sticky" in blocks
        assert "reducer" in blocks
        assert unit.has_reducer

    def test_rne_and_reducer_together(self, unit):
        mf = MFMult(mode="full", rounding=RoundingMode.RNE)
        rng = random.Random(50)
        ops = [(OperandBundle.fp64(
            BINARY64.pack(0, rng.randint(600, 1400), rng.getrandbits(52)),
            BINARY64.pack(0, rng.randint(600, 1400), rng.getrandbits(52))),
            MFFormat.FP64) for __ in range(12)]
        for (bundle, fmt), res in zip(ops, unit.run_batch(ops)):
            expect = mf.multiply(bundle, fmt).ph
            assert res.ph == expect
            decision = reduce_binary64(expect)
            assert res.reduced == (1 if decision.reduced else 0)
            if decision.reduced:
                assert res.pl == decision.encoding32

    def test_int64_still_exact(self, unit):
        rng = random.Random(51)
        ops = [(OperandBundle.int64(rng.getrandbits(64),
                                    rng.getrandbits(64)), MFFormat.INT64)
               for __ in range(6)]
        for (bundle, __), res in zip(ops, unit.run_batch(ops)):
            assert (res.ph << 64) | res.pl == bundle.x * bundle.y
