"""Tests for the signed-multiplication extension."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arith.partial_products import build_signed_pp_array
from repro.arith.trees import reduce_pp_array
from repro.bits.utils import from_twos_complement, mask, to_twos_complement
from repro.core.mfmult import MFMult
from repro.errors import BitWidthError

S64 = st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1)


class TestSignedPPArray:
    @given(S64, S64)
    @settings(max_examples=120)
    def test_total_is_signed_product(self, x, y):
        array = build_signed_pp_array(to_twos_complement(x, 64),
                                      to_twos_complement(y, 64))
        assert from_twos_complement(array.total(), 128) == x * y

    def test_sixteen_rows(self):
        """The final transfer digit is dropped: 16 rows, not 17."""
        array = build_signed_pp_array(1, 1)
        assert len(array.rows) == 16

    def test_extremes(self):
        lo = -(1 << 63)
        hi = (1 << 63) - 1
        for x in (lo, hi, -1, 0, 1):
            for y in (lo, hi, -1, 0, 1):
                array = build_signed_pp_array(to_twos_complement(x, 64),
                                              to_twos_complement(y, 64))
                assert from_twos_complement(array.total(), 128) == x * y

    @given(st.integers(min_value=-(1 << 7), max_value=(1 << 7) - 1),
           st.integers(min_value=-(1 << 7), max_value=(1 << 7) - 1))
    def test_8bit_radix4(self, x, y):
        array = build_signed_pp_array(to_twos_complement(x, 8),
                                      to_twos_complement(y, 8),
                                      width=8, radix_log2=2,
                                      product_width=16)
        assert from_twos_complement(array.total(), 16) == x * y

    def test_width_must_divide(self):
        with pytest.raises(BitWidthError):
            build_signed_pp_array(0, 0, width=64, radix_log2=3)

    @given(S64, S64)
    @settings(max_examples=40)
    def test_reduces_through_the_tree(self, x, y):
        array = build_signed_pp_array(to_twos_complement(x, 64),
                                      to_twos_complement(y, 64))
        s, c, __ = reduce_pp_array(array)
        assert from_twos_complement((s + c) & mask(128), 128) == x * y


class TestMFMultSigned:
    @given(S64, S64)
    @settings(max_examples=30)
    def test_datapath(self, x, y):
        assert MFMult().mul_int64_signed(x, y) == x * y

    @given(S64, S64)
    def test_fast(self, x, y):
        assert MFMult(fidelity="fast").mul_int64_signed(x, y) == x * y

    def test_range_checked(self):
        with pytest.raises(BitWidthError):
            MFMult(fidelity="fast").mul_int64_signed(1 << 63, 0)
