"""Tests for the encoded PP arrays (Sec. II sign-extension reduction,
Fig. 4 dual-lane arrangement)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arith.partial_products import (
    PPRow,
    array_row_index,
    build_dual_lane_pp_array,
    build_pp_array,
    occupancy_grid,
)
from repro.errors import BitWidthError

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
U24 = st.integers(min_value=0, max_value=(1 << 24) - 1)
SIG24 = st.integers(min_value=1 << 23, max_value=(1 << 24) - 1)


class TestSingleArray:
    @given(U64, U64)
    def test_radix16_total_is_product(self, x, y):
        array = build_pp_array(x, y, width=64, radix_log2=4,
                               product_width=128)
        assert array.total() == x * y

    @given(U64, U64)
    def test_radix4_total_is_product(self, x, y):
        array = build_pp_array(x, y, width=64, radix_log2=2,
                               product_width=128)
        assert array.total() == x * y

    @given(U64, U64)
    def test_radix8_total_is_product(self, x, y):
        array = build_pp_array(x, y, width=64, radix_log2=3,
                               product_width=128)
        assert array.total() == x * y

    @given(U64)
    def test_row_count_radix16(self, y):
        array = build_pp_array(1, y, width=64, radix_log2=4)
        assert len(array.rows) == 17

    @given(U64, U64)
    def test_rows_stay_inside_array(self, x, y):
        array = build_pp_array(x, y, width=64, radix_log2=4,
                               product_width=128)
        for row in array.rows:
            assert row.msb_position < 128

    def test_max_height_17_rows(self):
        """Sec. II: the radix-16 array is 17 rows tall (our structural
        height adds the +1 carry slots of the signed rows on top)."""
        array = build_pp_array((1 << 64) - 1, (1 << 64) - 1, width=64,
                               radix_log2=4, product_width=128)
        heights = {}
        for row in array.rows:
            for b in range(row.width):
                pos = row.offset + b
                heights[pos] = heights.get(pos, 0) + 1
        assert max(heights.values()) == 17
        assert array.max_height() >= 17

    @given(U64)
    def test_zero_x_still_exact(self, y):
        """X = 0 with negative digits exercises the all-ones complement
        pattern whose +1 wraps the field — the correction must absorb it."""
        array = build_pp_array(0, y, width=64, radix_log2=4,
                               product_width=128)
        assert array.total() == 0

    def test_correction_is_data_independent(self):
        a = build_pp_array(0, 0, width=64, radix_log2=4, product_width=128)
        b = build_pp_array((1 << 64) - 1, (1 << 64) - 1, width=64,
                           radix_log2=4, product_width=128)
        assert a.corrections == b.corrections

    @given(st.integers(min_value=2, max_value=4),
           st.integers(min_value=0, max_value=(1 << 16) - 1),
           st.integers(min_value=0, max_value=(1 << 16) - 1))
    def test_all_radices_16bit(self, k, x, y):
        array = build_pp_array(x, y, width=16, radix_log2=k,
                               product_width=32)
        assert array.total() == x * y


class TestDualLaneArray:
    @given(U24, U24, U24, U24)
    @settings(max_examples=60)
    def test_lanes_independent_and_exact(self, x0, y0, x1, y1):
        array = build_dual_lane_pp_array(x0, y0, x1, y1)
        assert array.total() == (x0 * y0) | ((x1 * y1) << 64)

    @given(SIG24, SIG24, SIG24, SIG24)
    @settings(max_examples=60)
    def test_normalized_significands(self, x0, y0, x1, y1):
        array = build_dual_lane_pp_array(x0, y0, x1, y1)
        assert array.total() == (x0 * y0) | ((x1 * y1) << 64)

    @given(U24, U24)
    def test_lower_lane_does_not_touch_upper(self, x0, y0):
        array = build_dual_lane_pp_array(x0, y0, 0, 0)
        for row in array.rows:
            if row.lane == "lo":
                assert row.msb_position < 64

    @given(U24, U24)
    def test_upper_lane_does_not_touch_lower(self, x1, y1):
        array = build_dual_lane_pp_array(0, 0, x1, y1)
        for row in array.rows:
            if row.lane == "hi":
                assert row.offset >= 64

    def test_two_windows(self):
        array = build_dual_lane_pp_array(1, 1, 1, 1)
        assert array.windows == ((0, 64), (64, 128))
        assert len(array.corrections) == 2

    def test_window_lookup(self):
        array = build_dual_lane_pp_array(1, 1, 1, 1)
        assert array.window_of(0) == (0, 64)
        assert array.window_of(63) == (0, 64)
        assert array.window_of(64) == (64, 128)
        with pytest.raises(BitWidthError):
            array.window_of(128)

    def test_physical_row_mapping(self):
        """Fig. 4: upper-lane digit j occupies physical array row j + 8."""
        array = build_dual_lane_pp_array((1 << 24) - 1, (1 << 24) - 1,
                                         (1 << 24) - 1, (1 << 24) - 1)
        lo_rows = sorted(array_row_index(r) for r in array.rows
                         if r.lane == "lo")
        hi_rows = sorted(array_row_index(r) for r in array.rows
                         if r.lane == "hi")
        assert lo_rows == list(range(0, 7))
        assert hi_rows == list(range(8, 15))


class TestOccupancyGrid:
    def test_grid_shape(self):
        array = build_dual_lane_pp_array((1 << 24) - 1, (1 << 24) - 1,
                                         (1 << 24) - 1, (1 << 24) - 1)
        grid = occupancy_grid(array)
        # 14 physical rows + 2 correction rows.
        assert len(grid) == 16
        assert all(len(line) == 128 for line in grid)

    def test_lane_gap_visible(self):
        """The dual arrangement leaves columns 48..63 structurally empty
        below the boundary (the sign-ext corrections fill some)."""
        array = build_dual_lane_pp_array(0xFFFFFF, 0xFFFFFF,
                                         0xFFFFFF, 0xFFFFFF)
        grid = occupancy_grid(array)
        field_rows = grid[:14]
        for line in field_rows:
            # Column 52 (index 128-1-52 from the left) is empty in all rows.
            assert line[128 - 1 - 52] == "."


class TestPPRowValidation:
    def test_payload_must_fit(self):
        with pytest.raises(BitWidthError):
            PPRow(payload=1 << 68, offset=0, carry=0, width=68,
                  signed=True, digit=1)

    def test_carry_is_a_bit(self):
        with pytest.raises(BitWidthError):
            PPRow(payload=0, offset=0, carry=2, width=68,
                  signed=True, digit=1)
