"""Tests for the levelized and event-driven simulators."""

import pytest

from repro.errors import SimulationError
from repro.hdl.library import default_library
from repro.hdl.module import Module
from repro.hdl.sim.event import EventSimulator
from repro.hdl.sim.levelized import LevelizedSimulator


def _adder_bit():
    """A full adder from discrete gates, for hand-checkable simulation."""
    m = Module("fa")
    a = m.input("a", 1)
    b = m.input("b", 1)
    c = m.input("c", 1)
    s = m.gate("XOR3", a[0], b[0], c[0])
    carry = m.gate("MAJ3", a[0], b[0], c[0])
    m.output("s", [s])
    m.output("co", [carry])
    return m


def _pipelined_pair():
    """Two-stage pipeline: stage 1 inverts, stage 2 ANDs with input b...
    deliberately feed-forward so the time-shift register model applies."""
    m = Module("pipe")
    a = m.input("a", 1)
    inv = m.gate("INV", a[0])
    q = m.register(inv, stage=1)
    out = m.gate("BUF", q)
    m.output("o", [out])
    return m


class TestLevelized:
    def test_full_adder_exhaustive(self):
        m = _adder_bit()
        sim = LevelizedSimulator(m)
        stim = {"a": [p & 1 for p in range(8)],
                "b": [(p >> 1) & 1 for p in range(8)],
                "c": [(p >> 2) & 1 for p in range(8)]}
        run = sim.run(stim, 8)
        for p in range(8):
            total = (p & 1) + ((p >> 1) & 1) + ((p >> 2) & 1)
            assert run.bus_word(m.outputs["s"], p) == total & 1
            assert run.bus_word(m.outputs["co"], p) == total >> 1

    def test_register_is_time_shift(self):
        m = _pipelined_pair()
        run = LevelizedSimulator(m).run({"a": [1, 0, 1, 1]}, 4)
        # Output at cycle t is NOT(a) from cycle t-1; cycle 0 sees reset 0.
        assert [run.bus_word(m.outputs["o"], t) for t in range(4)] \
            == [0, 0, 1, 0]

    def test_missing_stimulus_rejected(self):
        m = _adder_bit()
        with pytest.raises(SimulationError):
            LevelizedSimulator(m).run({"a": [0]}, 1)
        with pytest.raises(SimulationError):
            LevelizedSimulator(m).run({"a": [], "b": [], "c": []}, 0)

    def test_toggle_counts(self):
        m = Module("t")
        a = m.input("a", 1)
        n = m.gate("BUF", a[0])
        m.output("o", [n])
        run = LevelizedSimulator(m).run({"a": [0, 1, 1, 0, 1]}, 5)
        toggles = run.toggles_per_net()
        assert toggles[a[0]] == 3
        assert toggles[n] == 3

    def test_short_stimulus_padded_with_zero(self):
        m = Module("t")
        a = m.input("a", 1)
        m.output("o", [m.gate("BUF", a[0])])
        run = LevelizedSimulator(m).run({"a": [1]}, 3)
        assert [run.bus_word(m.outputs["o"], t) for t in range(3)] == [1, 0, 0]

    def test_bus_words_matches_per_cycle_extraction(self):
        import random

        from repro.circuits.mult_common import build_multiplier

        m = build_multiplier(2, width=8)
        rng = random.Random(9)
        n = 17
        stim = {"x": [rng.getrandbits(8) for __ in range(n)],
                "y": [rng.getrandbits(8) for __ in range(n)]}
        run = LevelizedSimulator(m).run(stim, n)
        for bus in list(m.outputs.values()) + list(m.inputs.values()):
            assert run.bus_words(bus) \
                == [run.bus_word(bus, t) for t in range(n)]

    def test_bus_words_all_zero_bus(self):
        m = _adder_bit()
        run = LevelizedSimulator(m).run(
            {"a": [0] * 4, "b": [0] * 4, "c": [0] * 4}, 4)
        assert run.bus_words(m.outputs["s"]) == [0, 0, 0, 0]


class TestEventDriven:
    def test_settles_to_levelized_values(self):
        m = _adder_bit()
        lib = default_library()
        esim = EventSimulator(m, lib)
        nets = {"a": m.inputs["a"][0], "b": m.inputs["b"][0],
                "c": m.inputs["c"][0]}
        esim.initialize({nets["a"]: 0, nets["b"]: 0, nets["c"]: 0})
        for p in range(8):
            esim.apply({nets["a"]: p & 1, nets["b"]: (p >> 1) & 1,
                        nets["c"]: (p >> 2) & 1})
            total = (p & 1) + ((p >> 1) & 1) + ((p >> 2) & 1)
            assert esim.values[m.outputs["s"][0]] == total & 1
            assert esim.values[m.outputs["co"][0]] == total >> 1

    def test_glitch_counted(self):
        """a XOR a-delayed-through-two-inverters glitches on every input
        edge even though its settled value never changes."""
        m = Module("glitch")
        a = m.input("a", 1)
        i1 = m.gate("INV", a[0])
        i2 = m.gate("INV", i1)
        x = m.gate("XOR2", a[0], i2)
        m.output("o", [x])
        lib = default_library()
        esim = EventSimulator(m, lib)
        net = m.inputs["a"][0]
        esim.initialize({net: 0})
        counts = esim.apply({net: 1})
        # Settled value of o is 0 both before and after, but the XOR saw
        # its inputs change at different times: two transitions.
        assert esim.values[x] == 0
        assert counts.toggles[x] == 2

    def test_inertial_cancellation(self):
        """A pulse shorter than a slow gate's delay is swallowed."""
        m = Module("inertial")
        a = m.input("a", 1)
        b = m.input("b", 1)
        # AND of two inputs changed in opposite directions produces a
        # potential runt pulse; with simultaneous application there is no
        # time skew, so the output must not glitch at all.
        x = m.gate("AND2", a[0], b[0])
        m.output("o", [x])
        esim = EventSimulator(m, default_library())
        na, nb = m.inputs["a"][0], m.inputs["b"][0]
        esim.initialize({na: 1, nb: 0})
        counts = esim.apply({na: 0, nb: 1})
        assert esim.values[x] == 0
        assert counts.toggles[x] == 0

    def test_settle_time_close_to_sta(self):
        """The worst event-sim settle time can approach but not exceed
        the STA critical path."""
        from repro.circuits.mult_radix16 import radix16_multiplier
        from repro.hdl.timing.sta import analyze

        m = radix16_multiplier()
        lib = default_library()
        sta = analyze(m, lib).latency_ps
        esim = EventSimulator(m, lib)
        stim0 = {}
        for bus in m.inputs.values():
            for net in bus:
                stim0[net] = 0
        esim.initialize(stim0)
        worst = 0.0
        values = [0xFFFFFFFFFFFFFFFF, 0x0123456789ABCDEF, 0xDEADBEEF12345678]
        for v in values:
            stim = dict(stim0)
            for i, net in enumerate(m.inputs["x"]):
                stim[net] = (v >> i) & 1
            for i, net in enumerate(m.inputs["y"]):
                stim[net] = (v >> (i % 32)) & 1
            counts = esim.apply(stim)
            worst = max(worst, counts.settle_time_ps)
        assert 0 < worst <= sta + 1e-6

    def test_apply_requires_initialize(self):
        esim = EventSimulator(_adder_bit(), default_library())
        with pytest.raises(SimulationError):
            esim.apply({0: 1})

    def test_initialize_requires_full_stimulus(self):
        m = _adder_bit()
        esim = EventSimulator(m, default_library())
        with pytest.raises(SimulationError):
            esim.initialize({m.inputs["a"][0]: 0})


class TestCrossSimulatorConsistency:
    def test_event_final_state_matches_levelized(self):
        """After every applied cycle the event simulator's settled values
        must equal the levelized simulator's — glitches change energy,
        never function."""
        from repro.circuits.mult_radix4 import radix4_multiplier

        m = radix4_multiplier()
        lib = default_library()
        patterns = [(0, 0), (0xFFFFFFFFFFFFFFFF, 1),
                    (0x123456789ABCDEF0, 0xFEDCBA9876543210)]
        stim = {"x": [p[0] for p in patterns],
                "y": [p[1] for p in patterns]}
        run = LevelizedSimulator(m).run(stim, len(patterns))
        esim = EventSimulator(m, lib)

        def net_stim(t):
            s = {}
            for name, bus in m.inputs.items():
                for i, net in enumerate(bus):
                    s[net] = (stim[name][t] >> i) & 1
            return s

        esim.initialize(net_stim(0))
        for t in range(1, len(patterns)):
            esim.apply(net_stim(t))
            for net in range(m.n_nets):
                assert esim.values[net] == run.net_value(net, t), net


def test_bit_transpose_matches_naive_packing():
    """The block transpose must equal per-bit packing for any shape."""
    import random

    from repro.hdl.sim.levelized import bit_transpose

    rng = random.Random(20170)
    for _ in range(60):
        n_rows = rng.randint(1, 130)
        width = rng.randint(1, 130)
        extra = rng.randint(0, 8)      # stray bits beyond width ignored
        rows = [rng.getrandbits(width + extra) for _ in range(n_rows)]
        want = [0] * width
        for r, row in enumerate(rows):
            for c in range(width):
                want[c] |= ((row >> c) & 1) << r
        assert bit_transpose(rows, width) == want, (n_rows, width)
    assert bit_transpose([], 3) == [0, 0, 0]
    assert bit_transpose([0b101], 3) == [1, 0, 1]


def test_bus_words_matches_bus_word():
    m = _adder_bit()
    stim = {"a": [0, 1, 1, 0, 1], "b": [1, 1, 0, 0, 1],
            "c": [0, 0, 1, 0, 1]}
    run = LevelizedSimulator(m).run(stim, 5)
    for name, bus in m.outputs.items():
        words = run.bus_words(bus)
        assert words == [run.bus_word(bus, t) for t in range(5)], name
