"""Tests for recoder, multiples, PPGEN and compressor-tree circuits."""

import random

import pytest

from repro.arith.partial_products import build_dual_lane_pp_array, build_pp_array
from repro.arith.recoding import recode_minimally_redundant
from repro.bits.utils import mask
from repro.circuits.compressor_tree import build_compressor_tree
from repro.circuits.multiples import build_multiples
from repro.circuits.ppgen import (
    build_mf_pp_columns,
    build_plain_pp_columns,
    reference_corrections,
)
from repro.circuits.primitives import GateBuilder
from repro.circuits.recoder import build_recoder
from repro.errors import NetlistError
from repro.hdl.module import Module
from repro.hdl.sim.levelized import LevelizedSimulator
from repro.hdl.validate import validate


class TestRecoderCircuit:
    @pytest.mark.parametrize("k,width", [(2, 8), (3, 9), (4, 8), (4, 16)])
    def test_exhaustive_small_widths(self, k, width):
        m = Module("rec")
        gb = GateBuilder(m)
        y = m.input("y", width)
        digits = build_recoder(gb, y, k)
        sign_bus = [d.sign for d in digits]
        mag_buses = [d.magnitude_onehot for d in digits]
        m.output("signs", sign_bus)
        for i, mags in enumerate(mag_buses):
            m.output(f"mag{i}", mags)
        validate(m)
        n = 1 << width if width <= 10 else 512
        values = (list(range(1 << width)) if width <= 10 else
                  [random.Random(7).getrandbits(width) for __ in range(n)])
        run = LevelizedSimulator(m).run({"y": values}, len(values))
        for t, value in enumerate(values):
            expect = recode_minimally_redundant(value, width, k)
            for i, d in enumerate(expect):
                sign = run.net_value(sign_bus[i], t)
                onehot = [run.net_value(n_, t) if isinstance(n_, int) else 0
                          for n_ in mag_buses[i]]
                assert sum(onehot) == 1, (value, i)
                assert onehot[abs(d)] == 1, (value, i, d)
                if d != 0:
                    assert sign == (1 if d < 0 else 0), (value, i, d)

    def test_radix16_64bit_digit_count(self):
        m = Module("rec64")
        gb = GateBuilder(m)
        y = m.input("y", 64)
        digits = build_recoder(gb, y, 4)
        assert len(digits) == 17
        assert all(len(d.magnitude_onehot) == 9 for d in digits)


class TestMultiplesCircuit:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_all_multiples(self, k):
        m = Module("mult")
        gb = GateBuilder(m)
        x = m.input("x", 64)
        multiples = build_multiples(gb, x, k)
        for mm, bus in multiples.items():
            m.output(f"m{mm}", bus)
        validate(m)
        rng = random.Random(k)
        values = [rng.getrandbits(64) for __ in range(25)] + [0, mask(64)]
        run = LevelizedSimulator(m).run({"x": values}, len(values))
        for t, value in enumerate(values):
            for mm in multiples:
                got = run.bus_word(m.outputs[f"m{mm}"], t)
                assert got == mm * value, (k, mm, hex(value))

    def test_radix16_has_all_eight(self):
        m = Module("m16")
        gb = GateBuilder(m)
        x = m.input("x", 64)
        multiples = build_multiples(gb, x, 4)
        assert sorted(multiples) == [1, 2, 3, 4, 5, 6, 7, 8]

    def test_rejects_radix2(self):
        m = Module("bad")
        gb = GateBuilder(m)
        x = m.input("x", 8)
        with pytest.raises(NetlistError):
            build_multiples(gb, x, 1)


def _columns_sum(run, gb, columns, t, boundaries=(), width=128,
                 split_active=False):
    """Weighted sum of simulated column bits with window isolation."""
    kill = set(boundaries) | {width}
    total = 0
    acc = 0
    base = 0
    for col in range(width):
        for net in columns[col]:
            v = (gb.const_of(net)
                 if gb.const_of(net) is not None else run.net_value(net, t))
            acc += v << (col - base)
        if col + 1 in kill and split_active:
            total += (acc & mask(col + 1 - base)) << base
            acc = 0
            base = col + 1
    if not split_active:
        total = acc & mask(width)
    elif base < width:
        total += (acc & mask(width - base)) << base
    return total


class TestPlainPPColumns:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_column_sum_is_product(self, k):
        m = Module("pp")
        gb = GateBuilder(m)
        x = m.input("x", 64)
        y = m.input("y", 64)
        multiples = build_multiples(gb, x, k)
        digits = build_recoder(gb, y, k)
        columns, row_nets = build_plain_pp_columns(gb, digits, multiples,
                                                   64, k)
        validate(m)
        rng = random.Random(k + 10)
        cases = [(rng.getrandbits(64), rng.getrandbits(64))
                 for __ in range(15)]
        cases += [(0, 0), (mask(64), mask(64)), (1, mask(64)), (mask(64), 1)]
        run = LevelizedSimulator(m).run(
            {"x": [c[0] for c in cases], "y": [c[1] for c in cases]},
            len(cases))
        for t, (xv, yv) in enumerate(cases):
            got = _columns_sum(run, gb, columns, t)
            assert got == (xv * yv) & mask(128), (k, hex(xv), hex(yv))

    def test_corrections_come_from_reference(self):
        ref = build_pp_array(0, 0, width=64, radix_log2=4,
                             product_width=128).corrections
        assert reference_corrections(64, 4) == ref


class TestMFPPColumns:
    def _build(self):
        m = Module("mfpp")
        gb = GateBuilder(m)
        x = m.input("x", 64)
        y = m.input("y", 64)
        fp32 = m.input("fp32", 1)
        multiples = build_multiples(gb, x, 4)
        digits = build_recoder(gb, y, 4)
        columns, __ = build_mf_pp_columns(gb, digits, multiples, fp32[0])
        validate(m)
        return m, gb, columns

    def test_int_mode_matches_product(self):
        m, gb, columns = self._build()
        rng = random.Random(42)
        cases = [(rng.getrandbits(64), rng.getrandbits(64))
                 for __ in range(12)] + [(mask(64), mask(64)), (0, 0)]
        run = LevelizedSimulator(m).run(
            {"x": [c[0] for c in cases], "y": [c[1] for c in cases],
             "fp32": [0] * len(cases)}, len(cases))
        for t, (xv, yv) in enumerate(cases):
            got = _columns_sum(run, gb, columns, t)
            assert got == (xv * yv) & mask(128)

    def test_fp32_mode_isolated_lanes(self):
        m, gb, columns = self._build()
        rng = random.Random(43)
        cases = []
        for __ in range(12):
            x0, y0 = rng.getrandbits(24), rng.getrandbits(24)
            x1, y1 = rng.getrandbits(24), rng.getrandbits(24)
            cases.append((x0, y0, x1, y1))
        cases.append((mask(24), mask(24), mask(24), mask(24)))
        cases.append((0, 0, mask(24), mask(24)))
        run = LevelizedSimulator(m).run(
            {"x": [c[0] | (c[2] << 32) for c in cases],
             "y": [c[1] | (c[3] << 32) for c in cases],
             "fp32": [1] * len(cases)}, len(cases))
        for t, (x0, y0, x1, y1) in enumerate(cases):
            got = _columns_sum(run, gb, columns, t, boundaries=(64,),
                               split_active=True)
            assert got == (x0 * y0) | ((x1 * y1) << 64), t

    def test_requires_17_digits(self):
        m = Module("bad")
        gb = GateBuilder(m)
        x = m.input("x", 8)
        y = m.input("y", 8)
        fp32 = m.input("fp32", 1)
        multiples = build_multiples(gb, x, 4)
        digits = build_recoder(gb, y, 4)    # only 3 digits
        with pytest.raises(NetlistError):
            build_mf_pp_columns(gb, digits, multiples, fp32[0])


class TestCompressorTree:
    @pytest.mark.parametrize("use_4_2", [False, True])
    def test_reduces_mf_array_exactly(self, use_4_2):
        m = Module("tree")
        gb = GateBuilder(m)
        x = m.input("x", 64)
        y = m.input("y", 64)
        multiples = build_multiples(gb, x, 4)
        digits = build_recoder(gb, y, 4)
        columns, __ = build_plain_pp_columns(gb, digits, multiples, 64, 4)
        tree = build_compressor_tree(gb, columns, 128, use_4_2=use_4_2)
        m.output("s", tree.sum_bus)
        m.output("c", tree.carry_bus)
        validate(m)
        rng = random.Random(77)
        cases = [(rng.getrandbits(64), rng.getrandbits(64))
                 for __ in range(10)] + [(mask(64), mask(64))]
        run = LevelizedSimulator(m).run(
            {"x": [c[0] for c in cases], "y": [c[1] for c in cases]},
            len(cases))
        for t, (xv, yv) in enumerate(cases):
            s = run.bus_word(m.outputs["s"], t)
            c = run.bus_word(m.outputs["c"], t)
            assert (s + c) & mask(128) == xv * yv, (use_4_2, t)

    def test_split_control_gates_carry(self):
        """One shared tree must serve both modes via the split net."""
        m = Module("tree_mf")
        gb = GateBuilder(m)
        x = m.input("x", 64)
        y = m.input("y", 64)
        fp32 = m.input("fp32", 1)
        multiples = build_multiples(gb, x, 4)
        digits = build_recoder(gb, y, 4)
        columns, __ = build_mf_pp_columns(gb, digits, multiples, fp32[0])
        tree = build_compressor_tree(gb, columns, 128, split=fp32[0],
                                     boundaries=(64,))
        m.output("s", tree.sum_bus)
        m.output("c", tree.carry_bus)
        validate(m)
        rng = random.Random(78)
        # Interleave int64 and fp32 operations on the same netlist.
        cases = []
        for __ in range(6):
            cases.append((rng.getrandbits(64), rng.getrandbits(64), 0))
            x0, y0 = rng.getrandbits(24), rng.getrandbits(24)
            x1, y1 = rng.getrandbits(24), rng.getrandbits(24)
            cases.append((x0 | (x1 << 32), y0 | (y1 << 32), 1))
        run = LevelizedSimulator(m).run(
            {"x": [c[0] for c in cases], "y": [c[1] for c in cases],
             "fp32": [c[2] for c in cases]}, len(cases))
        for t, (xv, yv, split) in enumerate(cases):
            s = run.bus_word(m.outputs["s"], t)
            c = run.bus_word(m.outputs["c"], t)
            if split:
                lo = (s + c) & mask(64)
                hi = ((s >> 64) + (c >> 64)) & mask(64)
                assert lo == (xv & mask(24)) * (yv & mask(24))
                assert hi == ((xv >> 32) & mask(24)) * ((yv >> 32) & mask(24))
            else:
                assert (s + c) & mask(128) == xv * yv

    def test_column_count_checked(self):
        m = Module("bad")
        gb = GateBuilder(m)
        with pytest.raises(NetlistError):
            build_compressor_tree(gb, [[]], 2)
