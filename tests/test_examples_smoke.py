"""Smoke tests: every shipped example must run clean.

The examples double as integration tests of the public API; each one
asserts its own correctness conditions internally, so a zero exit code
is meaningful.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                            "examples")
EXAMPLES = sorted(f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py"))


def test_example_inventory():
    """The deliverable set: quickstart plus domain scenarios."""
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 4


@pytest.mark.parametrize("name", EXAMPLES)
@pytest.mark.slow
def test_example_runs(name, tmp_path):
    args = [sys.executable, os.path.join(EXAMPLES_DIR, name)]
    if name == "export_and_waveforms.py":
        args.append(str(tmp_path / "out"))
    if name == "design_space_explorer.py":
        pass  # default (no --power) keeps it fast
    result = subprocess.run(args, capture_output=True, text=True,
                            timeout=600)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()
