"""Tests for the workload generators and the experiment harness."""

import pytest

from repro.bits.ieee754 import BINARY32, BINARY64
from repro.core.reduction import reduce_binary64
from repro.errors import FormatError
from repro.eval.tables import paper_vs_measured, render_table
from repro.eval.workloads import WorkloadGenerator


class TestWorkloadGenerator:
    def test_deterministic_per_seed(self):
        a = WorkloadGenerator(7)
        b = WorkloadGenerator(7)
        assert [a.uint64() for __ in range(5)] \
            == [b.uint64() for __ in range(5)]

    def test_different_seeds_differ(self):
        assert WorkloadGenerator(1).uint64() != WorkloadGenerator(2).uint64()

    def test_normal_binary64_is_normal(self):
        gen = WorkloadGenerator(3)
        for __ in range(100):
            enc = gen.normal_binary64()
            assert BINARY64.is_normal(enc)

    def test_normal_binary32_is_normal(self):
        gen = WorkloadGenerator(3)
        for __ in range(100):
            assert BINARY32.is_normal(gen.normal_binary32())

    def test_reducible_generator_invariant(self):
        gen = WorkloadGenerator(4)
        for __ in range(100):
            assert reduce_binary64(gen.reducible_binary64()).reduced

    def test_mixed_stream_fraction(self):
        gen = WorkloadGenerator(5)
        pairs = gen.mixed_binary64_stream(400, 0.5)
        reducible = sum(1 for x, y in pairs
                        if reduce_binary64(x).reduced
                        and reduce_binary64(y).reduced)
        assert 120 <= reducible <= 280

    def test_mixed_stream_extremes(self):
        gen = WorkloadGenerator(6)
        assert all(reduce_binary64(x).reduced and reduce_binary64(y).reduced
                   for x, y in gen.mixed_binary64_stream(20, 1.0))
        assert not any(reduce_binary64(x).reduced
                       for x, __ in gen.mixed_binary64_stream(20, 0.0))

    def test_fraction_validated(self):
        with pytest.raises(FormatError):
            WorkloadGenerator().mixed_binary64_stream(5, 1.5)

    def test_mf_stimulus_shapes(self):
        gen = WorkloadGenerator(8)
        for fmt, code in (("int64", 0), ("fp64", 1), ("fp32_dual", 2),
                          ("fp32_single", 2)):
            stim = gen.mf_stimulus(fmt, 6)
            assert len(stim["x"]) == len(stim["y"]) == 6
            assert stim["frmt"] == [code] * 6

    def test_fp32_single_holds_upper_lane(self):
        gen = WorkloadGenerator(9)
        stim = gen.mf_stimulus("fp32_single", 8)
        uppers_x = {x >> 32 for x in stim["x"]}
        uppers_y = {y >> 32 for y in stim["y"]}
        assert len(uppers_x) == 1 and len(uppers_y) == 1
        lowers = {x & 0xFFFFFFFF for x in stim["x"]}
        assert len(lowers) > 1

    def test_unknown_format(self):
        with pytest.raises(FormatError):
            WorkloadGenerator().mf_stimulus("fp16", 4)


class TestTables:
    def test_render_alignment(self):
        text = render_table(("a", "bb"), [(1, 2.5), ("xxx", "y")], title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "2.50" in text
        assert all(len(lines[2]) == len(lines[3]) or True for __ in [0])

    def test_paper_vs_measured_ratio(self):
        text = paper_vs_measured([("latency", 100, 110), ("note", "n/a", "x")])
        assert "1.10" in text
        assert "n/a" in text


class TestExperiments:
    """Smoke + shape checks on the fast experiments (heavier versions
    run in benchmarks/)."""

    def test_table4_matches_paper_constants(self):
        from repro.eval.experiments import experiment_table4
        rows = {r[0]: r[1:] for r in experiment_table4().rows}
        assert rows["storage (bits)"] == (16, 32, 64, 128)
        assert rows["precision p (bits)"] == (11, 24, 53, 113)
        assert rows["Emax"] == (15, 127, 1023, 16383)
        assert rows["bias"] == (15, 127, 1023, 16383)
        assert rows["trailing significand f"] == (10, 23, 52, 112)

    def test_table1_shape(self):
        from repro.eval.experiments import experiment_table1
        result = experiment_table1()
        assert 25 <= result.latency_fo4 <= 36
        assert {"precomp", "ppgen", "tree", "cpa"} <= set(result.segments_ps)
        assert "radix-16" in result.render()

    def test_table2_shape(self):
        from repro.eval.experiments import (
            experiment_table1,
            experiment_table2,
        )
        r4 = experiment_table2()
        r16 = experiment_table1()
        assert r4.latency_ps < r16.latency_ps
        assert "precomp" not in r4.segments_ps

    def test_fig1_inventory(self):
        from repro.eval.experiments import experiment_fig1_ppgen
        rows = dict(experiment_fig1_ppgen().rows)
        assert rows["partial products (rows)"] == 17
        assert rows["ppgen mux cells (AO22)"] > 1000

    def test_fig3_validates_rounding(self):
        from repro.eval.experiments import experiment_fig3_normround
        rows = dict(experiment_fig3_normround(samples=200).rows)
        assert rows["mismatches vs exact rounding"] == 0
        assert rows["cases checked"] >= 200

    def test_fig4_grids(self):
        from repro.eval.experiments import experiment_fig4_dual_lane
        result = experiment_fig4_dual_lane()
        assert len(result.grid_int) >= 17
        assert result.max_height_dual < result.max_height_int

    def test_fig6_reducer(self):
        from repro.eval.experiments import experiment_fig6_reduction
        result = experiment_fig6_reduction(n_random=500)
        assert result.exhaustive_checked == 40
        assert result.reducible_rate_random < 0.01

    def test_section4_monotone_savings(self):
        from repro.eval.experiments import experiment_section4_savings
        result = experiment_section4_savings(n_ops=120)
        savings = [row[3] for row in result.rows]
        assert savings == sorted(savings)
        assert savings[-1] > 0.5

    def test_calibration_anchors(self):
        from repro.eval.calibration import check_calibration
        status = check_calibration(n_cycles=6)
        assert status.anchors_ok
        # Frozen calibration targets (paper Table III): generous bands so
        # stimulus-seed noise can't break the build.
        assert 6.0 <= status.r16_pipe_power_mw <= 10.0
        assert 7.0 <= status.r4_pipe_power_mw <= 11.0
        assert status.r16_pipe_power_mw < status.r4_pipe_power_mw
