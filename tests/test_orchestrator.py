"""The experiment orchestrator: graphs, caching, determinism.

The load-bearing guarantees tested here:

* a parallel run produces *the same objects* as a serial run at the
  same seeds (the merge order is deterministic, not scheduling-order);
* the persistent result cache hits on identical ``(fingerprint,
  experiment, params)`` keys, misses when the fingerprint moves, and
  silently recomputes over corrupt entries;
* the job-graph checker rejects cycles and conflicting duplicates.
"""

import os
import pickle

import pytest

from repro.errors import SimulationError
from repro.eval import orchestrator as orch
from repro.eval.orchestrator import (
    Job,
    ResultCache,
    build_jobs,
    experiment_names,
    job,
    run_experiment,
    run_experiments,
    run_graph,
)


def test_job_helper_normalizes_params():
    a = job("a", "m:f", weight=2.0, beta=1, alpha=2)
    b = job("a", "m:f", weight=2.0, alpha=2, beta=1)
    assert a == b                     # param order must not matter
    assert a.params == (("alpha", 2), ("beta", 1))


def test_run_graph_serial_topological_merge():
    jobs = [
        job("leaf1", "repro.eval.fault_injection:chunk_plan",
            n_mutations=6, seed=1, chunks=2),
        job("leaf2", "repro.eval.fault_injection:chunk_plan",
            n_mutations=4, seed=1, chunks=2),
        Job(name="total", fn=lambda deps: deps["leaf1"] + deps["leaf2"],
            params=(), deps=("leaf1", "leaf2")),
    ]
    outcomes = run_graph(jobs, workers=0, cache=None)
    assert outcomes["leaf1"].value == [(1000003, 3), (1000004, 3)]
    assert outcomes["total"].value \
        == outcomes["leaf1"].value + outcomes["leaf2"].value


def test_run_graph_rejects_cycles():
    jobs = [
        Job(name="a", fn=lambda deps: 1, params=(), deps=("b",)),
        Job(name="b", fn=lambda deps: 2, params=(), deps=("a",)),
    ]
    with pytest.raises(SimulationError):
        run_graph(jobs, workers=0)


def test_run_graph_rejects_conflicting_duplicates():
    jobs = [
        job("a", "repro.eval.fault_injection:chunk_plan",
            n_mutations=5, seed=1, chunks=1),
        job("a", "repro.eval.fault_injection:chunk_plan",
            n_mutations=6, seed=1, chunks=1),
    ]
    with pytest.raises(SimulationError):
        run_graph(jobs, workers=0)


def test_registry_builds_every_experiment():
    for name in experiment_names():
        jobs = build_jobs(name)
        assert jobs[-1].name == name or any(j.name == name for j in jobs)
        names = [j.name for j in jobs]
        assert len(names) == len(set(names))
        for j in jobs:
            for dep in j.deps:
                assert dep in names


def test_serial_parallel_parity_table3():
    serial = run_experiment("table3", workers=0, cache=False, n_cycles=4)
    parallel = run_experiment("table3", workers=2, cache=False, n_cycles=4)
    assert parallel.power_mw == serial.power_mw
    assert parallel.render() == serial.render()


def test_serial_parallel_parity_fault_chunks():
    serial = run_experiment("fault_r16", workers=0, cache=False,
                            n_mutations=8, seed=11)
    parallel = run_experiment("fault_r16", workers=2, cache=False,
                              n_mutations=8, seed=11)
    assert serial.attempted == parallel.attempted == 8
    assert serial.detected == parallel.detected
    assert [m.description for m in serial.survivors] \
        == [m.description for m in parallel.survivors]


def test_run_experiments_shared_graph():
    results, outcomes = run_experiments(
        [("table4", {}), ("fig2", {})], workers=0, cache=False)
    assert set(results) == {"table4", "fig2"}
    assert any(o.name == "table4" for o in outcomes)


def test_cache_hit_on_identical_params(tmp_path):
    cache = ResultCache(root=str(tmp_path), fingerprint="fp-1")
    first = run_experiment("table4", cache=cache)
    assert cache.hits == 0
    second = run_experiment("table4", cache=cache)
    assert cache.hits >= 1
    assert second.render() == first.render()


def test_cache_distinguishes_params(tmp_path):
    cache = ResultCache(root=str(tmp_path), fingerprint="fp-1")
    run_experiment("fig6", cache=cache, n_random=64)
    hits_before = cache.hits
    run_experiment("fig6", cache=cache, n_random=128)
    assert cache.hits == hits_before   # different params: all misses


def test_cache_invalidated_by_fingerprint_change(tmp_path):
    old = ResultCache(root=str(tmp_path), fingerprint="sources-v1")
    run_experiment("table4", cache=old)
    new = ResultCache(root=str(tmp_path), fingerprint="sources-v2")
    run_experiment("table4", cache=new)
    assert new.hits == 0               # fingerprint moved: cold cache
    assert new.misses >= 1


def test_cache_corrupt_entry_falls_back(tmp_path):
    cache = ResultCache(root=str(tmp_path), fingerprint="fp-1")
    run_experiment("table4", cache=cache)
    objects = os.path.join(str(tmp_path), "objects")
    entries = [os.path.join(objects, f) for f in os.listdir(objects)]
    assert entries
    for path in entries:
        with open(path, "wb") as fh:
            fh.write(b"not a pickle at all")
    fresh = ResultCache(root=str(tmp_path), fingerprint="fp-1")
    result = run_experiment("table4", cache=fresh)    # must not raise
    assert fresh.hits == 0
    assert result.rows


def test_cache_entry_roundtrips_values(tmp_path):
    cache = ResultCache(root=str(tmp_path), fingerprint="fp")
    jb = job("unit", "repro.eval.fault_injection:chunk_plan",
             n_mutations=7, seed=3, chunks=2)
    hit, __ = cache.load(jb)
    assert not hit
    cache.store(jb, 5040)
    hit, value = cache.load(jb)
    assert hit and value == 5040
    # And the stored entry is a content-addressed plain pickle on disk:
    # objects/<sha256(key)>.pkl next to the index.
    objects = os.path.join(str(tmp_path), "objects")
    (entry,) = os.listdir(objects)
    assert entry.endswith(".pkl") and len(entry) == 64 + len(".pkl")
    with open(os.path.join(objects, entry), "rb") as fh:
        payload = pickle.load(fh)
    assert payload["value"] == 5040
    assert os.path.exists(os.path.join(str(tmp_path), "index.json"))


def test_cache_env_disable(monkeypatch):
    monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
    assert orch.resolve_cache(True) is None


def test_report_cli_smoke(tmp_path, capsys):
    from repro.eval import report

    out = tmp_path / "report.txt"
    code = report.main(["--cycles", "4", "--mutations", "4",
                        "--no-sweeps", "--no-verification",
                        "--filter", "table4", "--filter", "fig2",
                        "--no-cache", "--output", str(out), "--json"])
    assert code == 0
    assert out.exists()
    text = out.read_text()
    assert "Table IV" in text
    assert "Fig. 2" in text


def test_parallel_run_counts_oversubscription(monkeypatch):
    """Requesting more workers than cores must be visible in metrics."""
    from repro import obs

    monkeypatch.setattr(orch.os, "cpu_count", lambda: 1)
    counters = obs.registry().snapshot()["counters"]
    before = counters.get("orchestrator.workers.oversubscribed", 0)
    downgraded_before = counters.get("orchestrator.backend.downgraded", 0)
    jobs = [job("leaf", "repro.eval.fault_injection:chunk_plan",
                n_mutations=4, seed=1, chunks=2)]
    outcomes = run_graph(jobs, workers=2, cache=None)
    snap = obs.registry().snapshot()
    assert snap["counters"]["orchestrator.workers.oversubscribed"] \
        == before + 1
    assert snap["gauges"]["orchestrator.workers.requested"] == 2
    assert snap["gauges"]["orchestrator.workers.cpu_count"] == 1
    # ...and the auto policy downgrades to inline rather than paying
    # fork-pool overhead for time slicing on too few cores.
    assert snap["counters"]["orchestrator.backend.downgraded"] \
        == downgraded_before + 1
    assert outcomes["leaf"].mode == "inline"
