"""Tests for the accelerator model and the named workload traces."""

import math
import random

import pytest

from repro.core.accelerator import Accelerator
from repro.core.vector_unit import FormatPowerTable, VectorMultiplier
from repro.errors import FormatError
from repro.eval.traces import TRACES, generate_trace, reducibility


class TestTraces:
    def test_deterministic(self):
        assert generate_trace("dsp_fir", 20, seed=1) \
            == generate_trace("dsp_fir", 20, seed=1)
        assert generate_trace("dsp_fir", 20, seed=1) \
            != generate_trace("dsp_fir", 20, seed=2)

    def test_unknown_trace(self):
        with pytest.raises(FormatError):
            generate_trace("crypto", 10)

    def test_reducibility_spectrum(self):
        """The families span low to high reducibility — the spread that
        makes the Sec. IV study meaningful."""
        rates = {name: reducibility(generate_trace(name, 300))
                 for name in TRACES}
        assert rates["scientific"] < 0.02
        assert 0.1 < rates["finance"] < 0.45
        assert 0.35 < rates["graphics"] < 0.75
        assert 0.5 < rates["ml_inference"] < 0.9
        assert rates["dsp_fir"] > 0.65

    def test_empty_reducibility(self):
        assert reducibility([]) == 0.0

    @pytest.mark.parametrize("name", sorted(TRACES))
    def test_traces_run_through_the_machine(self, name):
        pairs = generate_trace(name, 60)
        result = VectorMultiplier().run(pairs)
        assert len(result.products64) == 60


class TestAcceleratorElementwise:
    def test_exact_on_dyadic_data(self):
        acc = Accelerator(lanes=2)
        xs = [1.5, 2.0, -0.25, 8.0]
        ys = [2.0, 0.5, 4.0, -1.5]
        report = acc.elementwise_multiply(xs, ys)
        assert report.results == [a * b for a, b in zip(xs, ys)]
        # All dyadic pairs demote and pair up.
        assert report.stats.demoted_operations == 4
        assert report.stats.fp32_dual_cycles == 2

    def test_mixed_data_accuracy(self):
        rng = random.Random(3)
        acc = Accelerator(lanes=4)
        xs = [rng.uniform(0.1, 100) for __ in range(30)]
        ys = [float(rng.randint(1, 1000)) for __ in range(30)]
        report = acc.elementwise_multiply(xs, ys)
        for got, a, b in zip(report.results, xs, ys):
            assert got != 0
            assert abs(got - a * b) <= abs(a * b) * 2.0 ** -23

    def test_no_reduction_baseline(self):
        acc = Accelerator(lanes=2, use_reduction=False)
        report = acc.elementwise_multiply([1.5, 2.5], [2.0, 4.0])
        assert report.stats.fp64_cycles == 2
        assert report.stats.demoted_operations == 0

    def test_wall_cycles_scale_with_lanes(self):
        xs = [1.5] * 16
        ys = [2.0] * 16
        one_lane = Accelerator(lanes=1).elementwise_multiply(xs, ys)
        four_lanes = Accelerator(lanes=4).elementwise_multiply(xs, ys)
        assert one_lane.lane_cycles == four_lanes.lane_cycles
        assert four_lanes.wall_cycles * 4 >= four_lanes.lane_cycles
        assert four_lanes.wall_cycles < one_lane.wall_cycles

    def test_length_mismatch(self):
        with pytest.raises(FormatError):
            Accelerator().elementwise_multiply([1.0], [1.0, 2.0])

    def test_lanes_validated(self):
        with pytest.raises(FormatError):
            Accelerator(lanes=0)


class TestAcceleratorKernels:
    def test_dot_product(self):
        acc = Accelerator(lanes=2)
        value, report = acc.dot([1.0, 2.0, 3.0], [4.0, 5.0, 6.0])
        assert value == 32.0
        assert report.stats.total_operations == 3

    def test_gemm_small_exact(self):
        acc = Accelerator(lanes=4)
        a = [[1.0, 2.0], [3.0, 4.0]]
        b = [[5.0, 6.0], [7.0, 8.0]]
        c, report = acc.gemm(a, b)
        assert c == [[19.0, 22.0], [43.0, 50.0]]
        assert report.stats.total_operations == 8

    def test_gemm_energy_savings_on_quantized_weights(self):
        rng = random.Random(4)
        n = 6
        a = [[rng.randint(-127, 127) / 128.0 or 0.5 for __ in range(n)]
             for __ in range(n)]
        b = [[float(rng.randint(1, 100)) for __ in range(n)]
             for __ in range(n)]
        acc = Accelerator(lanes=8)
        c, report = acc.gemm(a, b)
        energy = acc.compare_energy(report)
        assert energy["savings"] > 0.4
        # Reference result within binary32 accuracy.
        for i in range(n):
            for j in range(n):
                expect = sum(a[i][k] * b[k][j] for k in range(n))
                assert abs(c[i][j] - expect) <= abs(expect) * n * 2.0 ** -22

    def test_gemm_shape_validation(self):
        acc = Accelerator()
        with pytest.raises(FormatError):
            acc.gemm([[1.0], [2.0, 3.0]], [[1.0]])
        with pytest.raises(FormatError):
            acc.gemm([[1.0, 2.0]], [[1.0]])

    def test_power_table_injection(self):
        table = FormatPowerTable(fp64=10.0, fp32_dual=5.0)
        acc = Accelerator(lanes=1, power_table=table)
        report = acc.elementwise_multiply([1.5, 2.5], [2.0, 4.0])
        energy = acc.compare_energy(report)
        # Two demoted ops in one dual cycle: 50 pJ vs 200 pJ baseline.
        assert energy["energy_pj"] == pytest.approx(50.0)
        assert energy["baseline_pj"] == pytest.approx(200.0)
        assert energy["savings"] == pytest.approx(0.75)
