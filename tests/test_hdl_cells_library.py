"""Tests for the cell semantics and the characterized library."""

import itertools

import pytest

from repro.errors import NetlistError
from repro.hdl.cell import CELL_KINDS, cell_eval, cell_num_inputs
from repro.hdl.library import (
    FO4_PS,
    NAND2_AREA_UM2,
    CellLibrary,
    default_library,
)

TRUTH = {
    "INV": lambda a: 1 - a,
    "BUF": lambda a: a,
    "AND2": lambda a, b: a & b,
    "AND3": lambda a, b, c: a & b & c,
    "OR2": lambda a, b: a | b,
    "OR3": lambda a, b, c: a | b | c,
    "NAND2": lambda a, b: 1 - (a & b),
    "NAND3": lambda a, b, c: 1 - (a & b & c),
    "NOR2": lambda a, b: 1 - (a | b),
    "NOR3": lambda a, b, c: 1 - (a | b | c),
    "XOR2": lambda a, b: a ^ b,
    "XNOR2": lambda a, b: 1 - (a ^ b),
    "XOR3": lambda a, b, c: a ^ b ^ c,
    "MAJ3": lambda a, b, c: 1 if a + b + c >= 2 else 0,
    "MUX2": lambda a, b, s: b if s else a,
    "AOI21": lambda a, b, c: 1 - ((a & b) | c),
    "OAI21": lambda a, b, c: 1 - ((a | b) & c),
    "AO22": lambda a, b, c, d: (a & b) | (c & d),
    "OA22": lambda a, b, c, d: (a | b) & (c | d),
}


class TestCellSemantics:
    @pytest.mark.parametrize("kind", sorted(CELL_KINDS))
    def test_truth_table(self, kind):
        fn = cell_eval(kind)
        n = cell_num_inputs(kind)
        ref = TRUTH[kind]
        for inputs in itertools.product((0, 1), repeat=n):
            assert fn(1, *inputs) & 1 == ref(*inputs), (kind, inputs)

    @pytest.mark.parametrize("kind", sorted(CELL_KINDS))
    def test_bit_parallel_consistency(self, kind):
        """Evaluating 8 patterns at once equals 8 scalar evaluations."""
        fn = cell_eval(kind)
        n = cell_num_inputs(kind)
        m = (1 << 8) - 1
        patterns = [tuple((p >> i) & 1 for i in range(n)) for p in range(8)]
        packed_inputs = [sum(patterns[p][i] << p for p in range(8))
                         for i in range(n)]
        packed_out = fn(m, *packed_inputs) & m
        for p in range(8):
            assert (packed_out >> p) & 1 == fn(1, *patterns[p]) & 1

    def test_unknown_kind(self):
        with pytest.raises(NetlistError):
            cell_eval("NAND7")
        with pytest.raises(NetlistError):
            cell_num_inputs("NAND7")


class TestLibrary:
    def test_fo4_anchor(self):
        """The paper's library anchor: FO4 = 64 ps."""
        assert default_library().fo4_ps == pytest.approx(FO4_PS)

    def test_nand2_area_anchor(self):
        """The paper's area anchor: NAND2 = 1.06 um^2."""
        lib = default_library()
        assert lib.spec("NAND2").area_um2 == pytest.approx(1.06)
        assert NAND2_AREA_UM2 == 1.06

    def test_all_cell_kinds_characterized(self):
        lib = default_library()
        for kind in CELL_KINDS:
            spec = lib.spec(kind)
            assert spec.area_eq > 0
            assert spec.intrinsic_ps > 0
            assert spec.slope_ps > 0

    def test_delay_grows_with_load(self):
        spec = default_library().spec("XOR2")
        assert spec.delay_ps(8) > spec.delay_ps(1)

    def test_register_overhead_about_3_fo4(self):
        """Sec. III-D: pipeline overhead about 3 FO4."""
        lib = default_library()
        assert 2.0 <= lib.register.overhead_ps / FO4_PS <= 4.0

    def test_scaled_copy(self):
        lib = default_library()
        double = lib.scaled(lib.energy_fj_per_unit * 2)
        assert double.energy_fj_per_unit == 2 * lib.energy_fj_per_unit
        assert double.cells is lib.cells or double.cells == lib.cells

    def test_missing_kind_rejected(self):
        lib = default_library()
        with pytest.raises(NetlistError):
            lib.spec("DLATCH")
        cells = dict(lib.cells)
        cells.pop("INV")
        with pytest.raises(NetlistError):
            CellLibrary(cells=cells, register=lib.register)

    def test_toggle_energy_includes_load(self):
        lib = default_library()
        e0 = lib.toggle_energy_units("INV", 0)
        e4 = lib.toggle_energy_units("INV", 4)
        assert e4 > e0
        assert e0 == pytest.approx(lib.spec("INV").area_eq)
