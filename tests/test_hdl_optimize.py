"""Tests for netlist optimization (constant propagation, DCE,
format specialization)."""

import random

import pytest

from repro.core.pipeline_unit import FRMT_FP64, FRMT_INT64, build_mf_multiplier
from repro.errors import NetlistError
from repro.hdl.module import Module
from repro.hdl.optimize import (
    OptimizeStats,
    eliminate_dead_cells,
    optimize,
    propagate_constants,
    tie_input,
)
from repro.hdl.sim.levelized import LevelizedSimulator
from repro.hdl.validate import validate


class TestConstantPropagation:
    def test_fully_constant_cone_folds(self):
        m = Module("c")
        one = m.const(1)
        zero = m.const(0)
        x = m.gate("AND2", one, zero)      # = 0
        y = m.gate("XOR2", x, one)         # = 1
        a = m.input("a", 1)
        out = m.gate("AND2", a[0], y)      # = a
        m.output("o", [out])
        stats = optimize(m)
        assert stats.constants_folded >= 2
        run = LevelizedSimulator(m).run({"a": [0, 1]}, 2)
        assert [run.bus_word(m.outputs["o"], t) for t in range(2)] == [0, 1]

    def test_partial_constants_simplify(self):
        m = Module("p")
        a = m.input("a", 2)
        one = m.const(1)
        zero = m.const(0)
        outs = [
            m.gate("XOR3", a[0], a[1], one),   # -> XNOR2
            m.gate("MAJ3", a[0], a[1], one),   # -> OR2
            m.gate("MAJ3", a[0], a[1], zero),  # -> AND2
            m.gate("AND3", a[0], a[1], one),   # -> AND2
            m.gate("MUX2", a[0], a[1], one),   # -> wire a[1]
        ]
        m.output("o", outs)
        before = LevelizedSimulator(m).run({"a": [0, 1, 2, 3]}, 4)
        expect = [before.bus_word(m.outputs["o"], t) for t in range(4)]
        stats = optimize(m)
        assert stats.cells_simplified >= 4
        after = LevelizedSimulator(m).run({"a": [0, 1, 2, 3]}, 4)
        assert [after.bus_word(m.outputs["o"], t) for t in range(4)] \
            == expect
        kinds = {g.kind for g in m.gates}
        assert "XOR3" not in kinds
        assert "MAJ3" not in kinds


class TestDeadCellElimination:
    def test_unreachable_cone_removed(self):
        m = Module("d")
        a = m.input("a", 2)
        kept = m.gate("AND2", a[0], a[1])
        dead = m.gate("XOR2", a[0], a[1])
        dead = m.gate("INV", dead)
        m.output("o", [kept])
        stats = OptimizeStats()
        eliminate_dead_cells(m, stats)
        assert stats.dead_cells_removed == 2
        assert len(m.gates) == 1

    def test_registers_feeding_nothing_removed(self):
        m = Module("dr")
        a = m.input("a", 1)
        m.register(a[0], stage=1)          # dangling register
        m.output("o", [m.gate("BUF", a[0])])
        stats = OptimizeStats()
        eliminate_dead_cells(m, stats)
        assert stats.dead_registers_removed == 1

    def test_live_logic_untouched(self):
        m = Module("l")
        a = m.input("a", 4)
        n = a[0]
        for i in range(1, 4):
            n = m.gate("XOR2", n, a[i])
        m.output("o", [n])
        stats = OptimizeStats()
        eliminate_dead_cells(m, stats)
        assert stats.dead_cells_removed == 0
        assert len(m.gates) == 3


class TestFormatSpecialization:
    """Tie the MF unit's frmt input and reap the other formats' logic:
    an upper bound on what multi-format flexibility costs in cells."""

    @pytest.mark.slow
    def test_int64_specialization_preserves_function(self):
        m = build_mf_multiplier(buffer_max_load=None)
        full_gates = len(m.gates)
        tie_input(m, "frmt", FRMT_INT64)
        stats = optimize(m)
        validate(m)
        assert stats.dead_cells_removed + stats.constants_folded > 500
        assert len(m.gates) < full_gates
        rng = random.Random(9)
        cases = [(rng.getrandbits(64), rng.getrandbits(64))
                 for __ in range(10)]
        stim = {"x": [c[0] for c in cases] + [0, 0],
                "y": [c[1] for c in cases] + [0, 0]}
        run = LevelizedSimulator(m).run(stim, len(cases) + 2)
        for t, (x, y) in enumerate(cases):
            ph = run.bus_word(m.outputs["ph"], t + 2)
            pl = run.bus_word(m.outputs["pl"], t + 2)
            assert (ph << 64) | pl == x * y, t

    @pytest.mark.slow
    def test_fp64_specialization_preserves_function(self):
        from repro.bits.ieee754 import BINARY64
        from repro.core.formats import MFFormat, OperandBundle
        from repro.core.mfmult import MFMult

        m = build_mf_multiplier(buffer_max_load=None)
        tie_input(m, "frmt", FRMT_FP64)
        optimize(m)
        validate(m)
        rng = random.Random(10)
        mf = MFMult(fidelity="fast")
        cases = [(BINARY64.pack(rng.getrandbits(1), rng.randint(1, 2046),
                                rng.getrandbits(52)),
                  BINARY64.pack(rng.getrandbits(1), rng.randint(1, 2046),
                                rng.getrandbits(52)))
                 for __ in range(10)]
        stim = {"x": [c[0] for c in cases] + [0, 0],
                "y": [c[1] for c in cases] + [0, 0]}
        run = LevelizedSimulator(m).run(stim, len(cases) + 2)
        for t, (x, y) in enumerate(cases):
            expect = mf.multiply(OperandBundle.fp64(x, y), MFFormat.FP64)
            assert run.bus_word(m.outputs["ph"], t + 2) == expect.ph, t

    def test_tie_unknown_bus(self):
        m = build_mf_multiplier(buffer_max_load=None)
        with pytest.raises(NetlistError):
            tie_input(m, "mode", 0)


class TestOptimizePreservesBehaviour:
    def test_multiplier_after_optimize(self):
        """Optimizing an already-folded netlist is ~a no-op and must not
        change products."""
        from repro.circuits.mult_radix16 import radix16_multiplier

        m = radix16_multiplier(buffer_max_load=None)
        before = len(m.gates)
        optimize(m)
        validate(m)
        assert len(m.gates) <= before
        rng = random.Random(11)
        cases = [(rng.getrandbits(64), rng.getrandbits(64))
                 for __ in range(8)]
        stim = {"x": [c[0] for c in cases], "y": [c[1] for c in cases]}
        run = LevelizedSimulator(m).run(stim, len(cases))
        for t, (x, y) in enumerate(cases):
            assert run.bus_word(m.outputs["p"], t) == x * y
