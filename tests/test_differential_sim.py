"""Equivalence tests: differential cone engine vs full re-simulation.

The differential engine's contract is bit-identity — for any mutant and
any battery, its verdict must match a full clone-and-resimulate check.
These tests assert that exhaustively on a small hand-built pipelined
module (every gate x every same-arity rekind and every meaningful pin
swap) and statistically on the real multiplier netlists, plus the
pruning/early-exit mechanics the speedup relies on.
"""

import random

import pytest

from repro import obs
from repro.eval.experiments import cached_module
from repro.eval.fault_injection import (
    _MEANINGFUL_SWAPS,
    _MUTATION_POOLS,
    Battery,
    campaign_battery,
    clone_module,
    multiplier_battery,
    mutation_coverage,
)
from repro.errors import SimulationError
from repro.hdl.cell import cell_num_inputs
from repro.hdl.module import Gate, Module
from repro.hdl.sim.differential import (
    DifferentialEngine,
    Observation,
    output_observation,
)
from repro.hdl.sim.levelized import LevelizedSimulator


def _toy_module():
    """A two-stage pipelined mix of every mutation-pool arity."""
    m = Module("toy")
    a = m.input("a", 4)
    b = m.input("b", 4)
    s1 = [
        m.gate("AND2", a[0], b[0]),
        m.gate("XOR2", a[1], b[1]),
        m.gate("AO22", a[0], a[1], b[2], b[3]),
        m.gate("MAJ3", a[2], b[2], a[3]),
        m.gate("INV", b[3]),
        m.gate("OAI21", a[2], a[3], b[1]),
    ]
    q = m.register_bus(s1, stage=1)
    s2 = [
        m.gate("OR2", q[0], q[1]),
        m.gate("XOR3", q[2], q[3], q[4]),
        m.gate("NAND2", q[4], q[5]),
        m.gate("MUX2", q[0], q[3], q[5]),
    ]
    m.output("z", s2)
    return m


def _toy_battery(module, n_patterns=12, seed=3):
    """Random stimulus; expectations from the golden simulation itself.

    The first pattern is pipeline fill (stage-1 registers still zero)
    and left unchecked, exercising the observation window logic.
    """
    rng = random.Random(seed)
    stim = {name: [rng.getrandbits(len(bus)) for __ in range(n_patterns)]
            for name, bus in module.inputs.items()}
    run = LevelizedSimulator(module).run(stim, n_patterns)
    expected = {}
    for name, bus in module.outputs.items():
        words = list(run.bus_words(bus))
        words[0] = None
        expected[name] = words
    return Battery(stimulus=stim, n_patterns=n_patterns, expected=expected)


def _all_mutants(module):
    """Every same-arity rekind and every meaningful distinct-net swap."""
    for idx, gate in enumerate(module.gates):
        arity = cell_num_inputs(gate.kind)
        for kind in _MUTATION_POOLS.get(arity, []):
            if kind != gate.kind:
                yield idx, Gate(kind, gate.inputs, gate.output, gate.block)
        for i, j in _MEANINGFUL_SWAPS.get(gate.kind, []):
            if gate.inputs[i] != gate.inputs[j]:
                ins = list(gate.inputs)
                ins[i], ins[j] = ins[j], ins[i]
                yield idx, Gate(gate.kind, tuple(ins), gate.output,
                                gate.block)


class TestExhaustiveToy:
    @pytest.mark.parametrize("compiled", [True, False])
    def test_every_mutant_matches_full_resim(self, compiled):
        module = _toy_module()
        battery = _toy_battery(module)
        engine = DifferentialEngine(module, battery.stimulus,
                                    battery.n_patterns,
                                    battery.observation(module),
                                    compiled=compiled)
        assert battery.check_run(module, engine.golden)
        checked = 0
        for idx, mutant in _all_mutants(module):
            verdict = engine.run_mutant(idx, mutant)
            twin = clone_module(module)
            twin.gates[idx] = mutant
            full_run = LevelizedSimulator(twin, compiled=False).run(
                battery.stimulus, battery.n_patterns)
            assert verdict.detected == \
                (not battery.check_run(twin, full_run)), \
                f"mutant {idx}: {mutant.kind} verdict diverged"
            assert 1 <= verdict.gates_evaluated <= len(module.gates) + 1
            assert verdict.cone_size >= 1
            checked += 1
        assert checked > 20

    def test_overlay_restored_between_mutants(self):
        """Verdicts must not depend on what ran before (overlay hygiene)."""
        module = _toy_module()
        battery = _toy_battery(module)
        obsv = battery.observation(module)
        engine = DifferentialEngine(module, battery.stimulus,
                                    battery.n_patterns, obsv)
        mutants = list(_all_mutants(module))
        first = [engine.run_mutant(i, g) for i, g in mutants]
        again = [engine.run_mutant(i, g) for i, g in reversed(mutants)]
        assert [v.detected for v in first] == \
            [v.detected for v in reversed(again)]

    def test_mutant_must_keep_output_net(self):
        module = _toy_module()
        battery = _toy_battery(module)
        engine = DifferentialEngine(module, battery.stimulus,
                                    battery.n_patterns,
                                    battery.observation(module))
        gate = module.gates[0]
        bad = Gate(gate.kind, gate.inputs, module.gates[1].output,
                   gate.block)
        with pytest.raises(SimulationError):
            engine.run_mutant(0, bad)


class TestPruningAndEarlyExit:
    def test_zero_diff_mutant_stops_at_one_eval(self):
        """OR2(x, x) -> AND2(x, x) is functionally invisible: the diff
        word is zero and the cone must never be entered."""
        m = Module("prune")
        x = m.input("x", 1)
        t = m.gate("OR2", x[0], x[0])
        chain = t
        for __ in range(5):
            chain = m.gate("INV", chain)
        m.output("z", [chain])
        battery = _toy_battery(m, n_patterns=8)
        engine = DifferentialEngine(m, battery.stimulus,
                                    battery.n_patterns,
                                    battery.observation(m))
        gate = m.gates[0]
        verdict = engine.run_mutant(0, Gate("AND2", gate.inputs,
                                            gate.output, gate.block))
        assert not verdict.detected
        assert verdict.gates_evaluated == 1
        assert verdict.cone_size == 6
        assert not verdict.early_exit

    def test_early_exit_when_output_is_hit_first(self):
        """A mutant whose own output net is observed detects immediately,
        leaving the rest of its cone unvisited."""
        m = Module("early")
        x = m.input("x", 2)
        hit = m.gate("AND2", x[0], x[1])
        deep = hit
        for __ in range(6):
            deep = m.gate("INV", deep)
        m.output("z", [hit, deep])
        stim = {"x": [0, 1, 2, 3, 1, 2]}
        run = LevelizedSimulator(m).run(stim, 6)
        battery = Battery(stimulus=stim, n_patterns=6,
                          expected={"z": list(run.bus_words(
                              m.outputs["z"]))})
        engine = DifferentialEngine(m, battery.stimulus,
                                    battery.n_patterns,
                                    battery.observation(m))
        gate = m.gates[0]
        verdict = engine.run_mutant(0, Gate("OR2", gate.inputs,
                                            gate.output, gate.block))
        assert verdict.detected
        assert verdict.early_exit
        assert verdict.gates_evaluated < verdict.cone_size

    def test_register_delays_difference_into_window(self):
        """A difference parked in a flip-flop is only observed once it
        surfaces — the register's time shift must line up with the
        battery's checked pattern window."""
        module = _toy_module()
        battery = _toy_battery(module)
        engine = DifferentialEngine(module, battery.stimulus,
                                    battery.n_patterns,
                                    battery.observation(module))
        # Observe nothing: every mutant must survive.
        blind = DifferentialEngine(module, battery.stimulus,
                                   battery.n_patterns,
                                   Observation(masks={}))
        for idx, mutant in _all_mutants(module):
            assert not blind.run_mutant(idx, mutant).detected
        # Observe everything from t=0: detections can only grow vs the
        # windowed battery observation.
        full_obs = output_observation(module, 0, battery.n_patterns)
        wide = DifferentialEngine(module, battery.stimulus,
                                  battery.n_patterns, full_obs)
        for idx, mutant in _all_mutants(module):
            if engine.run_mutant(idx, mutant).detected:
                assert wide.run_mutant(idx, mutant).detected


@pytest.fixture(scope="module")
def r4():
    return cached_module("r4")


@pytest.fixture(scope="module")
def r16():
    return cached_module("r16")


class TestCampaignEquivalence:
    def _race(self, module, battery, n_mutations, seed):
        full = mutation_coverage(module, n_mutations=n_mutations,
                                 seed=seed, mode="full", battery=battery)
        diff = mutation_coverage(module, n_mutations=n_mutations,
                                 seed=seed, mode="differential",
                                 battery=battery)
        assert (full.attempted, full.detected) == \
            (diff.attempted, diff.detected)
        assert [(s.gate_index, s.description) for s in full.survivors] \
            == [(s.gate_index, s.description) for s in diff.survivors]
        return diff

    def test_r4_bit_identical(self, r4):
        rng = random.Random(21)
        cases = [(rng.getrandbits(64), rng.getrandbits(64))
                 for __ in range(12)]
        self._race(r4, multiplier_battery(r4, cases), 18, seed=31)

    def test_r16_bit_identical(self, r16):
        self._race(r16, campaign_battery("r16", r16), 8, seed=13)

    def test_golden_mismatch_falls_back_to_full(self, r4):
        """A battery the golden module itself fails must not crash the
        differential path — it degrades to full mode (where every mutant
        fails too), keeping the modes equivalent by construction."""
        cases = [(3, 5), (7, 11)]
        battery = multiplier_battery(r4, cases)
        battery.expected["p"] = [1 for __ in battery.expected["p"]]
        result = mutation_coverage(r4, n_mutations=3, seed=2,
                                   mode="differential", battery=battery)
        assert result.detected == 3

    def test_metrics_counters_exposed(self, r4):
        reg = obs.registry()
        reg.reset()
        battery = campaign_battery("r16", r4)
        mutation_coverage(r4, n_mutations=6, seed=5,
                          mode="differential", battery=battery)
        snap = reg.snapshot()
        assert snap["counters"]["fault.mutations"] == 6
        assert snap["counters"]["fault.gates_evaluated"] >= 6
        assert "fault.early_exits" in snap["counters"]
        hist = snap["histograms"]["fault.cone_size"]
        assert hist["count"] == 6
        assert hist["max"] >= 1
