"""Wide-word (W x 64-pattern superword) invariants across the stack.

ISSUE 9's load-bearing property: widening the simulation word must
never change a single bit anywhere.  These tests pin it layer by
layer —

* the block bit-matrix transpose round-trips at ragged superword
  shapes (rows and columns both far beyond one 64-bit limb);
* one :meth:`~repro.hdl.sim.levelized.LevelizedSimulator.run_segments`
  superword settle pass equals independent per-segment runs, including
  across register banks (the boundary-masked time shift);
* the serve path is bit-identical to
  :func:`~repro.serve.transactions.reference_result` at
  ``word_patterns`` 64, 256 and 1024 and at batch-of-one (W=1);
* a differential fault campaign over a full-battery-width golden word
  matches full clone-and-resimulate verdict for verdict;
* the width auto-tuner is deterministic for a fixed profile and
  round-trips through the content-addressed result cache.
"""

import random

import pytest

from repro.errors import FormatError, QueueFullError
from repro.hdl.sim.levelized import LevelizedSimulator, bit_transpose
from repro.serve import Server, WORD_PATTERNS, reference_result
from repro.serve.loadgen import TrafficGenerator
from repro.serve.queueing import BatchingQueue
from repro.serve.transactions import validate_word_patterns


def _stream(n, seed, specials=0.15):
    gen = TrafficGenerator(seed=seed, specials=specials,
                           reducible_fraction=0.5)
    return [gen.next_transaction() for _ in range(n)]


# ---------------------------------------------------------------------------
# transpose: ragged multi-limb round trips
# ---------------------------------------------------------------------------

def test_bit_transpose_round_trips_at_superword_shapes():
    """transpose(transpose(rows)) == rows for ragged wide shapes."""
    rng = random.Random(90210)
    for n_rows, width in [(1, 1024), (1024, 1), (65, 700), (700, 65),
                          (128, 128), (513, 200), (200, 513)]:
        rows = [rng.getrandbits(width) for __ in range(n_rows)]
        cols = bit_transpose(rows, width)
        assert bit_transpose(cols, n_rows) == rows, (n_rows, width)


# ---------------------------------------------------------------------------
# run_segments: one superword pass == independent runs
# ---------------------------------------------------------------------------

def _random_stimulus(module, n, rng):
    return {name: [rng.getrandbits(len(bus)) for __ in range(n)]
            for name, bus in module.inputs.items()}


@pytest.mark.parametrize("compiled", [True, False])
def test_run_segments_bit_identical_to_independent_runs(compiled):
    """Ragged segments through a registered datapath, both kernels."""
    from repro.circuits.mult_radix4 import radix4_multiplier

    module = radix4_multiplier()
    sim = LevelizedSimulator(module, compiled=compiled)
    rng = random.Random(1709)
    lengths = [1, 7, 64, 13, 100]          # ragged: boundaries mid-limb
    jobs = [(_random_stimulus(module, n, rng), n) for n in lengths]
    seg = sim.run_segments(jobs)
    assert seg.n_patterns == sum(lengths)
    for i, (stimulus, n) in enumerate(jobs):
        solo = sim.run(stimulus, n)
        assert seg.segment_run(i).values == solo.values, i
        assert seg.toggles_per_net(i) == solo.toggles_per_net(), i


# ---------------------------------------------------------------------------
# serve: bit-identity at every word width
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("word_patterns", [64, 256, 1024])
def test_serve_bit_identical_at_wide_words(word_patterns):
    """Mixed lanes + specials through superword-sized batches."""
    txs = _stream(min(2 * word_patterns, 600), seed=word_patterns,
                  specials=0.2)
    server = Server(max_wait=60.0, autostart=False,
                    word_patterns=word_patterns)
    assert server.word_patterns == word_patterns
    tickets = [server.submit(tx) for tx in txs]
    server.drain()
    for tx, ticket in zip(txs, tickets):
        assert ticket.result(timeout=0) == reference_result(tx), \
            (word_patterns, tx)


def test_serve_bit_identical_one_per_word():
    """W=1 degenerate: every transaction dispatches alone."""
    txs = _stream(48, seed=48, specials=0.3)
    server = Server(max_batch=1, max_wait=60.0, autostart=False)
    tickets = [server.submit(tx) for tx in txs]
    server.drain()
    for tx, ticket in zip(txs, tickets):
        assert ticket.result(timeout=0) == reference_result(tx), tx


# ---------------------------------------------------------------------------
# width policy: validation and queue scaling
# ---------------------------------------------------------------------------

def test_validate_word_patterns():
    for good in (64, 128, 256, 64 * 64):
        assert validate_word_patterns(good) == good
    for bad in (0, 1, 63, 65, -64, 96, 64.0, True, None, "64"):
        with pytest.raises(FormatError):
            validate_word_patterns(bad)


def test_queue_defaults_scale_with_word_patterns():
    q = BatchingQueue(lane="fp64", word_patterns=512)
    assert q.max_batch == 512
    assert q.max_depth >= 512
    with pytest.raises(FormatError, match="word_patterns"):
        BatchingQueue(lane="fp64", word_patterns=512, max_batch=513)
    with pytest.raises(FormatError):
        BatchingQueue(lane="fp64", word_patterns=96)


def test_queue_full_error_reports_width():
    from repro.serve import Transaction

    server = Server(max_batch=4, max_wait=60.0, max_depth=4,
                    autostart=False)
    rng = random.Random(5)
    txs = [Transaction.int64(rng.getrandbits(64), rng.getrandbits(64))
           for __ in range(5)]
    for tx in txs[:4]:
        server.submit(tx)
    with pytest.raises(QueueFullError, match=r"word_patterns=\d+"):
        server.submit(txs[4], block=False)
    server.drain()


# ---------------------------------------------------------------------------
# fault campaigns: wide golden battery changes nothing
# ---------------------------------------------------------------------------

def test_wide_battery_differential_matches_full():
    from repro.eval.experiments import cached_module
    from repro.eval.fault_injection import (campaign_battery,
                                            mutation_coverage)

    module = cached_module("r16")
    battery = campaign_battery("r16", module, patterns=256)
    assert battery.n_patterns >= 256
    full = mutation_coverage(module, n_mutations=6, seed=11,
                             mode="full", battery=battery)
    diff = mutation_coverage(module, n_mutations=6, seed=11,
                             mode="differential", battery=battery)
    assert (full.attempted, full.detected) == (diff.attempted,
                                               diff.detected)
    assert [(s.gate_index, s.description) for s in full.survivors] \
        == [(s.gate_index, s.description) for s in diff.survivors]


def test_campaign_engine_shares_one_golden_run():
    from repro import obs
    from repro.eval.fault_injection import (campaign_engine,
                                            clear_campaign_cache)

    clear_campaign_cache()
    reg = obs.registry()
    before = reg.counter_value("fault.golden_runs") or 0
    for __ in range(3):
        module, battery, engine = campaign_engine(
            "r16", battery_patterns=128)
        assert engine is not None
    clear_campaign_cache()
    assert (reg.counter_value("fault.golden_runs") or 0) - before == 1


# ---------------------------------------------------------------------------
# width auto-tuner: deterministic knee, cache round trip
# ---------------------------------------------------------------------------

def test_pick_width_knee_is_deterministic():
    from repro.eval.tune import pick_width

    profile = [
        {"width": 1, "ms_per_pattern": 0.100},
        {"width": 2, "ms_per_pattern": 0.055},
        {"width": 4, "ms_per_pattern": 0.022},
        {"width": 8, "ms_per_pattern": 0.021},
        {"width": 16, "ms_per_pattern": 0.0209},
    ]
    # 0.022 <= 1.1 * 0.0209: the knee prefers the smallest near-best width.
    assert pick_width(profile) == 4
    assert pick_width(list(reversed(profile))) == 4
    # A strictly improving profile picks the widest width.
    steep = [{"width": w, "ms_per_pattern": 1.0 / w}
             for w in (1, 2, 4, 8)]
    assert pick_width(steep) == 8


def test_tune_width_cache_round_trip(tmp_path):
    from repro.eval.cache import ResultCache
    from repro.eval.tune import tune_width, tuned_word_patterns

    cache = ResultCache(root=tmp_path)
    profile = [{"width": 1, "ms_per_pattern": 0.5},
               {"width": 4, "ms_per_pattern": 0.1}]
    result = tune_width("r16", cache=cache, profile=profile)
    assert result["word_patterns"] == 256
    assert tuned_word_patterns("r16", cache=cache) == 256
    # A different design (or empty cache) falls back to the default.
    assert tuned_word_patterns("mf", cache=cache, default=64) == 64
    assert tuned_word_patterns("r16", cache=False, default=64) == 64
