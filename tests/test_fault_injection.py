"""Tests for the mutation/fault-injection harness."""

import random

import pytest

from repro.eval.experiments import cached_module
from repro.eval.fault_injection import (
    _MUTATION_POOLS,
    CoverageResult,
    Mutation,
    clone_module,
    inject_mutation,
    multiplier_checker,
    mutation_coverage,
)
from repro.hdl.sim.levelized import LevelizedSimulator


@pytest.fixture(scope="module")
def r16():
    return cached_module("r16")


class TestClone:
    def test_clone_is_independent(self, r16):
        twin = clone_module(r16)
        rng = random.Random(0)
        inject_mutation(twin, rng)
        # The original is untouched.
        diff = sum(1 for a, b in zip(r16.gates, twin.gates) if a != b)
        assert diff == 1

    def test_clone_simulates_identically(self, r16):
        twin = clone_module(r16)
        stim = {"x": [12345], "y": [67890]}
        a = LevelizedSimulator(r16).run(stim, 1)
        b = LevelizedSimulator(twin).run(stim, 1)
        assert a.bus_word(r16.outputs["p"], 0) \
            == b.bus_word(twin.outputs["p"], 0)


class TestMutation:
    def test_mutation_changes_exactly_one_gate(self, r16):
        rng = random.Random(5)
        for __ in range(10):
            twin = clone_module(r16)
            mutation = inject_mutation(twin, rng)
            changed = [i for i, (a, b) in enumerate(zip(r16.gates,
                                                        twin.gates))
                       if a != b]
            assert changed == [mutation.gate_index]

    def test_arity4_pool_has_a_rekind(self):
        """AO22 must have a same-arity alternative (its OA22 dual) —
        otherwise arity-4 gates can only ever mutate by pin swap."""
        assert sorted(_MUTATION_POOLS[4]) == ["AO22", "OA22"]

    def test_ao22_rekind_reachable(self, r16):
        rng = random.Random(12)
        rekinds = set()
        for __ in range(200):
            twin = clone_module(r16)
            mutation = inject_mutation(twin, rng)
            if "AO22 ->" in mutation.description:
                rekinds.add(twin.gates[mutation.gate_index].kind)
        assert "OA22" in rekinds

    def test_commutative_swaps_not_generated(self, r16):
        """AO22 swaps must cross the product pairs; intra-pair swaps are
        equivalent mutants and would corrupt the coverage metric."""
        rng = random.Random(6)
        for __ in range(50):
            twin = clone_module(r16)
            mutation = inject_mutation(twin, rng)
            if "swapped pins" in mutation.description and \
                    "AO22" in mutation.description:
                pins = mutation.description.split("pins ")[1].split(" ")[0]
                i, j = sorted(int(p) for p in pins.split("/"))
                assert (i, j) in ((0, 2), (0, 3), (1, 2), (1, 3))


class TestCoverage:
    def test_multiplier_coverage_high(self, r16):
        rng = random.Random(1)
        cases = [(rng.getrandbits(64), rng.getrandbits(64))
                 for __ in range(16)]
        result = mutation_coverage(r16, multiplier_checker(cases),
                                   n_mutations=30, seed=7)
        # Most mutations must be caught; the known survivors are
        # equivalence classes (one-hot OR==XOR, prefix g/p exclusivity).
        assert result.coverage >= 0.75
        assert result.attempted == 30
        assert result.detected + len(result.survivors) == 30

    def test_detected_mutation_really_breaks_function(self, r16):
        """Spot-check: a detected mutant must actually mis-multiply."""
        rng = random.Random(1)
        cases = [(rng.getrandbits(64), rng.getrandbits(64))
                 for __ in range(16)]
        checker = multiplier_checker(cases)
        result = mutation_coverage(r16, checker, n_mutations=10, seed=3)
        assert checker(r16)                 # the original passes
        assert result.detected >= 1

    def test_render(self, r16):
        rng = random.Random(1)
        cases = [(rng.getrandbits(64), rng.getrandbits(64))
                 for __ in range(4)]
        result = mutation_coverage(r16, multiplier_checker(cases),
                                   n_mutations=5, seed=9)
        text = result.render()
        assert "mutations injected : 5" in text

    def test_render_reports_hidden_survivors(self):
        survivors = [Mutation(i, f"gate {i}: fake") for i in range(14)]
        result = CoverageResult(attempted=20, detected=6,
                                survivors=survivors)
        text = result.render()
        assert text.count("survivor:") == 10
        assert "… and 4 more survivors" in text
        short = CoverageResult(attempted=20, detected=10,
                               survivors=survivors[:10])
        assert "more survivors" not in short.render()
