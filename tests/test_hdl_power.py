"""Tests for the power model and Monte Carlo estimator."""

import pytest

from repro.errors import SimulationError
from repro.hdl.library import default_library
from repro.hdl.module import Module
from repro.hdl.power.model import (
    clock_energy_fj_per_cycle,
    leakage_mw,
    net_toggle_energies,
    toggles_to_power_mw,
)
from repro.hdl.power.monte_carlo import estimate_power


def _toggle_module():
    m = Module("toggler")
    a = m.input("a", 1)
    x = m.gate("INV", a[0])
    m.output("o", [x])
    return m


class TestUnitConversions:
    def test_toggles_to_power(self):
        # 1000 fJ over 10 cycles at 100 MHz = 1000e-15 J / 100e-9 s = 10 uW.
        assert toggles_to_power_mw(1000.0, 10, 100.0) \
            == pytest.approx(0.01)

    def test_zero_cycles(self):
        assert toggles_to_power_mw(1000.0, 0, 100.0) == 0.0

    def test_leakage_scales_with_area(self):
        lib = default_library()
        small = _toggle_module()
        big = Module("big")
        a = big.input("a", 1)
        for __ in range(100):
            big.gate("INV", a[0])
        assert leakage_mw(big, lib) > leakage_mw(small, lib)

    def test_clock_energy_per_register(self):
        lib = default_library()
        m = Module("regs")
        a = m.input("a", 4)
        m.register_bus(a, stage=1)
        expect = 4 * lib.register.clock_energy_units * lib.energy_fj_per_unit
        assert clock_energy_fj_per_cycle(m, lib) == pytest.approx(expect)

    def test_net_energies_cover_drivers(self):
        lib = default_library()
        m = _toggle_module()
        energies = net_toggle_energies(m, lib)
        # The gate output includes the cell's internal term.
        assert energies[m.gates[0].output] >= \
            lib.energy_fj_per_unit * lib.spec("INV").area_eq


class TestEstimatePower:
    def test_idle_circuit_only_leaks(self):
        m = _toggle_module()
        lib = default_library()
        rep = estimate_power(m, lib, {"a": [0, 0, 0, 0]}, 4)
        assert rep.dynamic_mw == 0.0
        assert rep.total_mw == pytest.approx(rep.leakage_mw)

    def test_activity_scales_power(self):
        m = _toggle_module()
        lib = default_library()
        busy = estimate_power(m, lib, {"a": [0, 1, 0, 1]}, 4)
        lazy = estimate_power(m, lib, {"a": [0, 1, 1, 1]}, 4)
        assert busy.dynamic_mw > lazy.dynamic_mw > 0

    def test_power_scales_with_frequency(self):
        m = _toggle_module()
        lib = default_library()
        rep = estimate_power(m, lib, {"a": [0, 1, 0]}, 3,
                             frequency_mhz=100.0)
        scaled = rep.scaled_to(880.0)
        assert scaled.dynamic_mw == pytest.approx(rep.dynamic_mw * 8.8)
        assert scaled.leakage_mw == rep.leakage_mw   # leakage is static

    def test_glitch_free_mode(self):
        m = _toggle_module()
        lib = default_library()
        rep = estimate_power(m, lib, {"a": [0, 1, 0]}, 3, glitch=False)
        assert rep.glitch_mw == pytest.approx(0.0)

    def test_needs_two_cycles(self):
        with pytest.raises(SimulationError):
            estimate_power(_toggle_module(), default_library(),
                           {"a": [0]}, 1)

    def test_block_breakdown_sums_to_dynamic(self):
        from repro.circuits.mult_radix16 import radix16_multiplier
        from repro.eval.workloads import WorkloadGenerator

        m = radix16_multiplier()
        lib = default_library()
        stim = WorkloadGenerator(1).multiplier_stimulus(4)
        rep = estimate_power(m, lib, stim, 4)
        assert sum(rep.by_block_mw.values()) == pytest.approx(
            rep.dynamic_mw, rel=1e-9)

    def test_register_power_positive_for_pipelined(self):
        from repro.circuits.mult_radix16 import radix16_multiplier
        from repro.eval.workloads import WorkloadGenerator

        m = radix16_multiplier(pipeline_cut="after_ppgen")
        lib = default_library()
        stim = WorkloadGenerator(1).multiplier_stimulus(4)
        rep = estimate_power(m, lib, stim, 4)
        assert rep.register_mw > 0

    def test_glitch_power_nonnegative_and_bounded(self):
        from repro.circuits.mult_radix4 import radix4_multiplier
        from repro.eval.workloads import WorkloadGenerator

        m = radix4_multiplier()
        lib = default_library()
        stim = WorkloadGenerator(2).multiplier_stimulus(4)
        rep = estimate_power(m, lib, stim, 4)
        assert rep.glitch_mw >= 0
        assert rep.dynamic_mw >= rep.zero_delay_dynamic_mw
