"""Tests for the issue-level scheduler (Sec. IV energy argument)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bits.ieee754 import BINARY64, decode, encode
from repro.core.reduction import reduce_binary64
from repro.core.vector_unit import (
    FormatPowerTable,
    IssueStats,
    VectorMultiplier,
)
from repro.eval.workloads import WorkloadGenerator


def _pairs(n, fraction, seed=5):
    return WorkloadGenerator(seed).mixed_binary64_stream(n, fraction)


class TestScheduling:
    def test_no_reduction_baseline(self):
        pairs = _pairs(10, 1.0)
        machine = VectorMultiplier(use_reduction=False)
        result = machine.run(pairs)
        assert result.stats.fp64_cycles == 10
        assert result.stats.fp32_dual_cycles == 0
        assert result.stats.demoted_operations == 0

    def test_fully_reducible_pairs_two_per_cycle(self):
        pairs = _pairs(10, 1.0)
        machine = VectorMultiplier(use_reduction=True)
        result = machine.run(pairs)
        assert result.stats.demoted_operations == 10
        assert result.stats.fp32_dual_cycles == 5
        assert result.stats.fp32_single_cycles == 0
        assert result.stats.fp64_cycles == 0

    def test_odd_count_issues_single(self):
        pairs = _pairs(7, 1.0)
        result = VectorMultiplier().run(pairs)
        assert result.stats.fp32_dual_cycles == 3
        assert result.stats.fp32_single_cycles == 1

    def test_mixed_stream_partitions(self):
        pairs = _pairs(50, 0.5)
        result = VectorMultiplier().run(pairs)
        stats = result.stats
        assert stats.total_operations == 50
        assert stats.fp64_cycles + stats.demoted_operations == 50
        assert stats.fp32_dual_cycles * 2 + stats.fp32_single_cycles \
            == stats.demoted_operations

    def test_empty_batch(self):
        result = VectorMultiplier().run([])
        assert result.products64 == []
        assert result.stats.total_cycles == 0

    @given(st.integers(min_value=1, max_value=40),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=30)
    def test_results_in_input_order(self, n, fraction):
        pairs = _pairs(n, fraction)
        result = VectorMultiplier().run(pairs)
        assert len(result.products64) == n
        for (xe, ye), out in zip(pairs, result.products64):
            exact = decode(xe, BINARY64) * decode(ye, BINARY64)
            got = decode(out, BINARY64)
            assert got != 0
            assert abs(got - exact) <= abs(exact) * 2.0 ** -23

    def test_demoted_results_match_fp32_precision(self):
        pairs = _pairs(4, 1.0)
        result = VectorMultiplier().run(pairs)
        for (xe, ye), out in zip(pairs, result.products64):
            exact = decode(xe, BINARY64) * decode(ye, BINARY64)
            got = decode(out, BINARY64)
            assert abs(got - exact) <= abs(exact) * 2.0 ** -23

    def test_range_guard_prevents_overflowing_demotion(self):
        """Two large-but-reducible operands whose product overflows
        binary32 must fall back to the fp64 path."""
        big = BINARY64.pack(0, 1150, 0)     # reducible, e32 = 254
        assert reduce_binary64(big).reduced
        result = VectorMultiplier().run([(big, big)])
        assert result.stats.fp64_cycles == 1
        assert result.stats.demoted_operations == 0
        exact = decode(big, BINARY64) ** 2
        assert decode(result.products64[0], BINARY64) == exact


class TestEnergyAccounting:
    def test_paper_table_defaults(self):
        table = FormatPowerTable()
        assert table.fp64 == 7.20
        assert table.fp32_dual == 5.17
        # 7.2 mW for 10 ns = 72 pJ per fp64 cycle.
        assert table.energy_per_cycle_pj("fp64") == pytest.approx(72.0)

    def test_savings_formula(self):
        stats = IssueStats(fp64_cycles=0, fp32_dual_cycles=5,
                           total_operations=10)
        table = FormatPowerTable()
        # dual: 5 cycles * 51.7 pJ vs baseline 10 * 72 pJ.
        assert stats.energy_pj(table) == pytest.approx(5 * 51.7)
        assert stats.baseline_energy_pj(table) == pytest.approx(720.0)
        assert stats.savings_fraction(table) == pytest.approx(
            1 - (5 * 51.7) / 720.0)

    def test_savings_increase_with_reducibility(self):
        table = FormatPowerTable()
        savings = []
        for fraction in (0.0, 0.5, 1.0):
            pairs = _pairs(40, fraction)
            stats = VectorMultiplier().run(pairs).stats
            savings.append(stats.savings_fraction(table))
        assert savings[0] <= savings[1] <= savings[2]
        assert savings[0] == pytest.approx(0.0)
        assert savings[2] > 0.5   # dual fp32 is > 2x as efficient

    def test_zero_operations(self):
        stats = IssueStats()
        assert stats.savings_fraction(FormatPowerTable()) == 0.0
