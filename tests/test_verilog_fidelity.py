"""Export fidelity: re-simulate the emitted Verilog with a tiny
interpreter and compare against the original netlist.

No Verilog simulator is assumed; the test parses the generated
continuous assignments and register updates directly, which closes the
loop on the export templates independently of the generator.
"""

import random
import re

import pytest

from repro.circuits.mult_radix16 import radix16_multiplier
from repro.hdl.export import to_verilog, to_verilog_testbench
from repro.hdl.module import Module
from repro.hdl.sim.levelized import LevelizedSimulator

_ASSIGN = re.compile(r"^\s*assign n(\d+) = (.+?);(?:\s*//.*)?$")
_INPUT_BIT = re.compile(r"^\s*assign n(\d+) = (\w+)\[(\d+)\];$")
_CONST = re.compile(r"^\s*assign n(\d+) = 1'b([01]);$")
_REG_UPDATE = re.compile(r"^\s*n(\d+) <= n(\d+);")


class VerilogInterpreter:
    """Evaluate the exported module's assigns cycle by cycle."""

    def __init__(self, text):
        self.input_bits = []      # (net, bus, index)
        self.consts = {}
        self.assigns = []         # (net, python expression)
        self.reg_updates = []     # (q, d)
        in_reset = False
        for line in text.splitlines():
            if "if (rst)" in line:
                in_reset = True
                continue
            if "end else begin" in line:
                in_reset = False
                continue
            m = _CONST.match(line)
            if m:
                self.consts[int(m.group(1))] = int(m.group(2))
                continue
            m = _INPUT_BIT.match(line)
            if m:
                self.input_bits.append((int(m.group(1)), m.group(2),
                                        int(m.group(3))))
                continue
            m = _REG_UPDATE.match(line)
            if m and not in_reset:
                self.reg_updates.append((int(m.group(1)), int(m.group(2))))
                continue
            m = _ASSIGN.match(line)
            if m and "[" not in m.group(2) and "{" not in m.group(2):
                self.assigns.append((int(m.group(1)),
                                     self._to_python(m.group(2))))
        self.n_nets = 1 + max(
            [n for n, __ in self.assigns]
            + [n for n, __, __ in self.input_bits]
            + list(self.consts)
            + [q for q, __ in self.reg_updates] + [0])
        self._toposort_assigns()
        self._compiled = [(net, compile(expr, "<assign>", "eval"))
                          for net, expr in self.assigns]

    def _toposort_assigns(self):
        """Order assigns by data dependency (buffer insertion appends
        gates out of construction order, so the text order is not
        topological)."""
        producer = {net: i for i, (net, __) in enumerate(self.assigns)}
        deps = []
        for net, expr in self.assigns:
            used = {int(n) for n in re.findall(r"n(\d+)", expr)}
            deps.append([producer[u] for u in used if u in producer])
        indeg = [0] * len(self.assigns)
        consumers = [[] for __ in self.assigns]
        for i, dd in enumerate(deps):
            for d in dd:
                indeg[i] += 1
                consumers[d].append(i)
        ready = [i for i, d in enumerate(indeg) if d == 0]
        order = []
        while ready:
            i = ready.pop()
            order.append(i)
            for c in consumers[i]:
                indeg[c] -= 1
                if indeg[c] == 0:
                    ready.append(c)
        assert len(order) == len(self.assigns), "cycle in exported assigns"
        self.assigns = [self.assigns[i] for i in order]

    @staticmethod
    def _to_python(expr):
        # "s ? b : a"  ->  "(b if s else a)"
        tern = re.match(r"^(.+?) \? (.+?) : (.+)$", expr)
        if tern:
            return (f"({tern.group(2)} if {tern.group(1)} "
                    f"else {tern.group(3)})")
        return expr.replace("~", "1 ^ ")

    def run(self, module, stimulus, n_cycles):
        values = {n: 0 for n in range(self.n_nets)}
        values.update(self.consts)
        out_words = {name: [] for name in module.outputs}
        env_names = {}
        for t in range(n_cycles):
            for net, bus, idx in self.input_bits:
                word = stimulus[bus][t] if t < len(stimulus[bus]) else 0
                values[net] = (word >> idx) & 1
            env = {f"n{n}": v for n, v in values.items()}
            for net, code in self._compiled:
                v = eval(code, {"__builtins__": {}}, env) & 1
                env[f"n{net}"] = v
                values[net] = v
            for name, bus in module.outputs.items():
                out_words[name].append(
                    sum(values[net] << i for i, net in enumerate(bus)))
            latched = [(q, values[d]) for q, d in self.reg_updates]
            for q, v in latched:
                values[q] = v
        return out_words


def _roundtrip(module, stimulus, n_cycles):
    text = to_verilog(module)
    interp = VerilogInterpreter(text)
    got = interp.run(module, stimulus, n_cycles)
    run = LevelizedSimulator(module).run(stimulus, n_cycles)
    for name, bus in module.outputs.items():
        expect = [run.bus_word(bus, t) for t in range(n_cycles)]
        assert got[name] == expect, name


class TestVerilogRoundtrip:
    def test_combinational_gates(self):
        m = Module("comb")
        a = m.input("a", 4)
        b = m.input("b", 4)
        outs = [
            m.gate("XOR3", a[0], b[0], a[1]),
            m.gate("MAJ3", a[1], b[1], a[2]),
            m.gate("MUX2", a[2], b[2], a[3]),
            m.gate("AO22", a[0], b[0], a[3], b[3]),
            m.gate("AOI21", a[0], b[1], a[2]),
            m.gate("OAI21", b[0], a[1], b[2]),
            m.gate("NAND3", a[0], a[1], a[2]),
            m.gate("XNOR2", a[0], b[0]),
        ]
        m.output("o", outs)
        rng = random.Random(1)
        stim = {"a": [rng.getrandbits(4) for __ in range(20)],
                "b": [rng.getrandbits(4) for __ in range(20)]}
        _roundtrip(m, stim, 20)

    def test_registered_module(self):
        m = Module("seq")
        a = m.input("a", 3)
        stage1 = [m.gate("INV", n) for n in a]
        q = m.register_bus(stage1, stage=1)
        out = [m.gate("XOR2", q[i], a[i]) for i in range(3)]
        m.output("o", out)
        rng = random.Random(2)
        stim = {"a": [rng.getrandbits(3) for __ in range(16)]}
        _roundtrip(m, stim, 16)

    @pytest.mark.slow
    def test_radix16_multiplier_roundtrip(self):
        """The big one: the full 20k-gate netlist through the exported
        Verilog interpreter (a handful of vectors; eval is slow)."""
        m = radix16_multiplier()
        rng = random.Random(3)
        stim = {"x": [rng.getrandbits(64) for __ in range(3)],
                "y": [rng.getrandbits(64) for __ in range(3)]}
        _roundtrip(m, stim, 3)


class TestTestbenchGeneration:
    def test_combinational_tb(self):
        m = Module("c")
        a = m.input("a", 2)
        m.output("o", [m.gate("AND2", a[0], a[1]),
                       m.gate("XOR2", a[0], a[1])])
        tb = to_verilog_testbench(m, {"a": [0, 1, 2, 3]}, 4)
        assert "module c_tb;" in tb
        assert tb.count("if (o !==") == 4
        assert "PASS" in tb
        assert "clk" not in tb

    def test_registered_tb_has_clocking(self):
        m = Module("s")
        a = m.input("a", 1)
        q = m.register(a[0], stage=1)
        m.output("o", [q])
        tb = to_verilog_testbench(m, {"a": [1, 0, 1]}, 3)
        assert "always #5 clk = ~clk;" in tb
        assert "rst = 0;" in tb
        assert "@(negedge clk);" in tb
        # Expected values follow the one-cycle register delay.
        assert "if (o !== 1'h0)" in tb.splitlines()[
            [i for i, l in enumerate(tb.splitlines())
             if "if (o !==" in l][0]]

    def test_expected_values_match_levelized(self):
        m = Module("s2")
        a = m.input("a", 2)
        q = m.register_bus(a, stage=1)
        m.output("o", q)
        stim = {"a": [3, 1, 2]}
        tb = to_verilog_testbench(m, stim, 3)
        expects = re.findall(r"if \(o !== 2'h([0-9A-F])\)", tb)
        # Registered bus: output lags input by one cycle (reset -> 0).
        assert [int(e, 16) for e in expects] == [0, 3, 1]
