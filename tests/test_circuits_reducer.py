"""Tests for the structural Fig. 6 reducer."""

import random

import pytest

from repro.bits.ieee754 import BINARY64, encode
from repro.bits.utils import mask
from repro.core.reduction import reduce_binary64
from repro.circuits.reducer import build_reducer
from repro.hdl.area.model import area_report
from repro.hdl.library import default_library
from repro.hdl.sim.levelized import LevelizedSimulator


@pytest.fixture(scope="module")
def reducer():
    module = build_reducer()
    return module, LevelizedSimulator(module)


def _run(reducer, cases):
    module, sim = reducer
    return module, sim.run({"d": cases}, len(cases))


class TestReducerCircuit:
    def test_matches_algorithm1_random(self, reducer):
        rng = random.Random(3)
        cases = [rng.getrandbits(64) for __ in range(300)]
        module, run = _run(reducer, cases)
        for t, d in enumerate(cases):
            expect = reduce_binary64(d)
            assert run.bus_word(module.outputs["reduced"], t) \
                == (1 if expect.reduced else 0), hex(d)
            out = run.bus_word(module.outputs["out"], t)
            if expect.reduced:
                assert out == expect.encoding32
            else:
                assert out == d

    def test_matches_algorithm1_on_reducibles(self, reducer):
        rng = random.Random(4)
        cases = [BINARY64.pack(rng.getrandbits(1),
                               rng.randint(897, 1150),
                               rng.getrandbits(23) << 29)
                 for __ in range(200)]
        module, run = _run(reducer, cases)
        for t, d in enumerate(cases):
            expect = reduce_binary64(d)
            assert run.bus_word(module.outputs["reduced"], t) == 1
            assert run.bus_word(module.outputs["out"], t) \
                == expect.encoding32

    def test_exponent_boundaries(self, reducer):
        cases = [BINARY64.pack(0, e, 0)
                 for e in (0, 1, 895, 896, 897, 1023, 1150, 1151, 2046, 2047)]
        module, run = _run(reducer, cases)
        for t, d in enumerate(cases):
            expect = reduce_binary64(d)
            assert run.bus_word(module.outputs["reduced"], t) \
                == (1 if expect.reduced else 0), hex(d)

    def test_condition_bits_exposed(self, reducer):
        cases = [encode(1.5, BINARY64), encode(0.1, BINARY64),
                 encode(1e300, BINARY64), encode(1e-300, BINARY64)]
        module, run = _run(reducer, cases)
        for t, d in enumerate(cases):
            expect = reduce_binary64(d)
            assert run.bus_word(module.outputs["c1"], t) == expect.c1
            assert run.bus_word(module.outputs["c2"], t) == expect.c2
            assert run.bus_word(module.outputs["zero"], t) == expect.zero

    def test_hardware_is_small(self, reducer):
        """Sec. IV: 'the small hardware of Fig. 6' — a few hundred gates
        at most, orders of magnitude below the multiplier."""
        module, __ = reducer
        lib = default_library()
        area = area_report(module, lib)
        assert len(module.gates) < 400
        assert area.total_nand2_eq < 500

    def test_sign_transferred(self, reducer):
        pos = encode(1.5, BINARY64)
        neg = encode(-1.5, BINARY64)
        module, run = _run(reducer, [pos, neg])
        assert run.bus_word(module.outputs["out"], 0) >> 31 == 0
        assert (run.bus_word(module.outputs["out"], 1) >> 31) & 1 == 1
