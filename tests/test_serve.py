"""The transaction-batched service: batching must never change bits.

The load-bearing property: for ANY mixed-format transaction stream —
including NaN/infinity/zero/subnormal operands and both
reduction-eligible and ineligible binary64 encodings — routing through
the coalescing :class:`~repro.serve.server.Server` at ANY batch size
1..64, under full, timeout, manual or drain flushes, yields results
bit-identical to calling :class:`~repro.core.mfmult.MFMult` / the
reduction unit one transaction at a time
(:func:`~repro.serve.transactions.reference_result`).

Alongside the property: backpressure (bounded queues, QueueFullError),
the asyncio front end, the flush-reason/occupancy observability, and
the float-level :class:`~repro.serve.server.Client` conveniences.
"""

import asyncio

import pytest

from repro import obs
from repro.bits.ieee754 import BINARY32, BINARY64, encode
from repro.errors import FormatError, QueueFullError, SimulationError
from repro.eval.workloads import WorkloadGenerator
from repro.serve import (
    AsyncClient,
    Client,
    Server,
    Transaction,
    TxKind,
    WORD_PATTERNS,
    reference_result,
)
from repro.serve.loadgen import TrafficGenerator
from repro.serve.queueing import BatchingQueue


def _stream(n, seed, specials=0.15):
    """Seeded mixed-format stream with IEEE specials sprinkled in."""
    gen = TrafficGenerator(seed=seed, specials=specials,
                           reducible_fraction=0.5)
    return [gen.next_transaction() for _ in range(n)]


def _counters():
    return obs.registry().snapshot()["counters"]


# ---------------------------------------------------------------------------
# The core property: bit-identity at every batch size
# ---------------------------------------------------------------------------

def test_bit_identical_at_every_batch_size():
    """All 64 batch sizes, mixed lanes, specials included."""
    for k in range(1, WORD_PATTERNS + 1):
        txs = _stream(min(2 * k + 3, 40), seed=1000 + k)
        server = Server(max_batch=k, max_wait=60.0, autostart=False)
        tickets = [server.submit(tx) for tx in txs]
        server.drain()
        for tx, ticket in zip(txs, tickets):
            assert ticket.result(timeout=0) == reference_result(tx), \
                (k, tx)


def test_specials_heavy_stream_bit_identical():
    """A stream that is mostly zero/inf/NaN/subnormal operands."""
    txs = _stream(80, seed=4242, specials=0.8)
    server = Server(max_batch=WORD_PATTERNS, max_wait=60.0, autostart=False)
    tickets = [server.submit(tx) for tx in txs]
    server.drain()
    for tx, ticket in zip(txs, tickets):
        assert ticket.result(timeout=0) == reference_result(tx), tx


def test_reduction_lane_eligible_and_ineligible():
    gen = WorkloadGenerator(11)
    txs = [Transaction.reduce64(gen.reducible_binary64()) for _ in range(8)]
    txs += [Transaction.reduce64(encode(1e300, BINARY64)) for _ in range(3)]
    txs += [Transaction.reduce64(encode(float("nan"), BINARY64)),
            Transaction.reduce64(encode(float("inf"), BINARY64)),
            Transaction.reduce64(encode(0.0, BINARY64))]
    server = Server(max_batch=8, max_wait=60.0, autostart=False)
    tickets = [server.submit(tx) for tx in txs]
    server.drain()
    results = [t.result(timeout=0) for t in tickets]
    assert any(r.reduced for r in results)
    assert any(not r.reduced for r in results)
    for tx, got in zip(txs, results):
        assert got == reference_result(tx), tx


# ---------------------------------------------------------------------------
# Flush policy: timeouts, manual steps, drain
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("max_batch", [3, 7, WORD_PATTERNS])
def test_timeout_flush_dispatches_partial_words(max_batch):
    """Words that never fill must flush on max_wait, bits intact."""
    before = _counters().get("serve.flushes.timeout", 0)
    with Server(max_batch=max_batch, max_wait=0.01) as server:
        txs = _stream(max_batch + 1, seed=77 + max_batch)
        tickets = [server.submit(tx) for tx in txs]
        for tx, ticket in zip(txs, tickets):
            assert ticket.result(timeout=10.0) == reference_result(tx), tx
    assert _counters().get("serve.flushes.timeout", 0) > before


def test_manual_step_flushes_one_word():
    gen = WorkloadGenerator(5)
    txs = [Transaction.fp64(gen.normal_binary64(), gen.normal_binary64())
           for _ in range(10)]
    server = Server(max_batch=4, max_wait=60.0, autostart=False)
    tickets = [server.submit(tx) for tx in txs]
    assert server.queue_depths()["fp64"] == 10
    assert server.step() == 4          # one full word
    assert server.queue_depths()["fp64"] == 6
    assert server.step() == 4
    assert server.step() == 2          # forced partial word
    assert server.step() == 0          # nothing left
    for tx, ticket in zip(txs, tickets):
        assert ticket.result(timeout=0) == reference_result(tx)


# ---------------------------------------------------------------------------
# Backpressure
# ---------------------------------------------------------------------------

def test_queue_full_backpressure_and_recovery():
    gen = WorkloadGenerator(6)
    txs = [Transaction.fp64(gen.normal_binary64(), gen.normal_binary64())
           for _ in range(6)]
    server = Server(max_batch=4, max_wait=60.0, max_depth=4,
                    autostart=False)
    rejected_before = _counters().get("serve.rejected", 0)
    for tx in txs[:4]:
        server.submit(tx)
    with pytest.raises(QueueFullError):
        server.submit(txs[4], block=False)
    with pytest.raises(QueueFullError):
        server.submit(txs[4], block=True, timeout=0.05)
    assert _counters().get("serve.rejected", 0) == rejected_before + 2
    assert server.step() == 4          # frees the lane
    ticket = server.submit(txs[4], block=False)
    server.drain()
    assert ticket.result(timeout=0) == reference_result(txs[4])


def test_blocking_submit_rides_through_backpressure():
    """With the dispatcher live, blocking submits wait out full lanes."""
    gen = WorkloadGenerator(8)
    txs = [Transaction.fp64(gen.normal_binary64(), gen.normal_binary64())
           for _ in range(10)]
    with Server(max_batch=2, max_wait=0.005, max_depth=2) as server:
        tickets = [server.submit(tx, block=True, timeout=30.0)
                   for tx in txs]
        for tx, ticket in zip(txs, tickets):
            assert ticket.result(timeout=30.0) == reference_result(tx)


def test_batching_queue_validates_parameters():
    with pytest.raises(FormatError):
        BatchingQueue(lane="fp64", max_batch=0)
    with pytest.raises(FormatError):
        BatchingQueue(lane="fp64", max_batch=WORD_PATTERNS + 1)
    with pytest.raises(FormatError):
        BatchingQueue(lane="fp64", max_batch=8, max_depth=4)
    with pytest.raises(FormatError):
        BatchingQueue(lane="fp64", max_wait=-1.0)


# ---------------------------------------------------------------------------
# Asyncio front end
# ---------------------------------------------------------------------------

def test_async_client_gather_bit_identical():
    txs = _stream(48, seed=909)

    async def go():
        server = Server(max_batch=16, max_wait=0.005, max_depth=16)
        try:
            return await AsyncClient(server).gather(txs)
        finally:
            server.close()

    results = asyncio.run(go())
    for tx, got in zip(txs, results):
        assert got == reference_result(tx), tx


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------

def test_flush_reasons_and_occupancy_metrics():
    gen = WorkloadGenerator(3)
    txs = [Transaction.fp64(gen.normal_binary64(), gen.normal_binary64())
           for _ in range(20)]
    reg = obs.registry()
    snap_before = reg.snapshot()
    server = Server(max_batch=8, max_wait=60.0, autostart=False)
    for tx in txs:
        server.submit(tx)
    server.drain()

    snap = reg.snapshot()
    delta = lambda name: (snap["counters"].get(name, 0)
                          - snap_before["counters"].get(name, 0))
    assert delta("serve.requests") == 20
    assert delta("serve.fp64.requests") == 20
    assert delta("serve.flushes.full") == 2      # 8 + 8
    assert delta("serve.flushes.manual") == 1    # forced 4-wide tail
    # Histograms are cumulative in the process-wide registry; compare
    # against the pre-test snapshot.
    for name in ("serve.batch.occupancy", "serve.fp64.batch.occupancy"):
        occ = snap["histograms"][name]
        occ_before = snap_before["histograms"].get(
            name, {"count": 0, "total": 0})
        assert occ["count"] - occ_before["count"] == 3, name
        assert occ["total"] - occ_before["total"] == 20, name
        assert occ["max"] >= 8, name


def test_errors_propagate_to_every_ticket():
    server = Server(lanes=[TxKind.FP64], autostart=False)
    with pytest.raises(FormatError):
        server.submit(Transaction.int64(1, 2))   # lane not served
    with pytest.raises(FormatError):
        server.submit("not a transaction")
    ticket = server.submit(Transaction.fp64(encode(1.5, BINARY64),
                                            encode(2.0, BINARY64)))
    with pytest.raises(SimulationError):
        ticket.result(timeout=0.01)              # nothing flushed yet
    server.drain()
    assert ticket.result(timeout=0).fp64_encoding == encode(3.0, BINARY64)


# ---------------------------------------------------------------------------
# Client conveniences
# ---------------------------------------------------------------------------

def test_client_float_level_api():
    with Server(max_batch=4, max_wait=0.002) as server:
        client = Client(server)
        assert client.mul_int64(0xDEADBEEF, 0x1234_5678_9ABC_DEF0) \
            == 0xDEADBEEF * 0x1234_5678_9ABC_DEF0
        assert client.mul_fp64(1.5, -2.0) == -3.0
        assert client.mul_fp32_pair((1.5, 0.5), (2.0, 8.0)) == (3.0, 4.0)
        assert client.mul_fp16_quad([1.5, 2.0, 0.5, -1.0],
                                    [2.0, 2.0, 2.0, 2.0]) \
            == (3.0, 4.0, 1.0, -2.0)
        assert client.reduce64(encode(1.5, BINARY64)) \
            == (True, encode(1.5, BINARY32))
        reduced, enc = client.reduce64(encode(1e300, BINARY64))
        assert not reduced and enc == encode(1e300, BINARY64)
