"""Tests for the high-radix recoders (Sec. II recoding invariants)."""

import pytest
from hypothesis import given, strategies as st

from repro.arith.recoding import (
    booth_radix4_digits,
    digit_count,
    digits_value,
    radix8_digits,
    radix16_digits,
    recode_minimally_redundant,
    recoder_digit_bits,
)
from repro.errors import BitWidthError

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestRadix16:
    """The paper's recoding: 17 digits in {-8..8} for 64-bit operands."""

    @given(U64)
    def test_value_preserved(self, y):
        digits = radix16_digits(y)
        assert digits_value(digits, 4) == y

    @given(U64)
    def test_digit_set_minimally_redundant(self, y):
        assert all(-8 <= d <= 8 for d in radix16_digits(y))

    @given(U64)
    def test_seventeen_digits(self, y):
        assert len(radix16_digits(y)) == 17

    @given(U64)
    def test_top_digit_is_transfer(self, y):
        """The 17th PP is 0 or X: its digit is the final transfer bit."""
        digits = radix16_digits(y)
        assert digits[-1] in (0, 1)
        assert digits[-1] == (y >> 63)

    def test_all_zero(self):
        assert radix16_digits(0) == [0] * 17

    def test_all_ones(self):
        # 0xFF..F = 2**64 - 1: each group's -1 cancels the incoming
        # transfer except at the very bottom and the final transfer.
        digits = radix16_digits((1 << 64) - 1)
        assert digits == [-1] + [0] * 15 + [1]

    def test_transfer_is_group_msb(self):
        """Carry-free property: the transfer out of group i is its MSB."""
        y = 0x8  # group 0 = 8 -> transfer 1, digit -8
        digits = radix16_digits(y)
        assert digits[0] == -8
        assert digits[1] == 1


class TestRadix4:
    @given(U64)
    def test_value_preserved(self, y):
        assert digits_value(booth_radix4_digits(y), 2) == y

    @given(U64)
    def test_digit_set(self, y):
        assert all(-2 <= d <= 2 for d in booth_radix4_digits(y))

    @given(U64)
    def test_thirty_three_digits(self, y):
        assert len(booth_radix4_digits(y)) == 33


class TestRadix8:
    @given(U64)
    def test_value_preserved(self, y):
        assert digits_value(radix8_digits(y), 3) == y

    @given(U64)
    def test_digit_set(self, y):
        assert all(-4 <= d <= 4 for d in radix8_digits(y))

    @given(U64)
    def test_twenty_three_digits(self, y):
        assert len(radix8_digits(y)) == 23

    @given(U64)
    def test_last_digit_always_zero(self, y):
        """64 isn't a multiple of 3: the top transfer can never fire."""
        assert radix8_digits(y)[-1] == 0

    @given(U64)
    def test_partial_group_digit_non_negative(self, y):
        """Group 21 holds only bit 63: its digit cannot go negative."""
        assert radix8_digits(y)[21] >= 0


class TestGenericRecoder:
    @given(st.integers(min_value=0, max_value=(1 << 24) - 1))
    def test_lane_recode_matches_word_recode_prefix(self, y24):
        """A 24-bit lane recodes to the same digits as the low seven
        digits of the 64-bit recoding when the upper word bits are zero —
        the property that lets the dual-binary32 mode share the recoder
        (Sec. III-B)."""
        lane = recode_minimally_redundant(y24, 24, 4)
        word = radix16_digits(y24)
        assert word[:7] == lane
        assert all(d == 0 for d in word[7:])

    @given(st.integers(min_value=0, max_value=(1 << 24) - 1))
    def test_upper_lane_alignment(self, z24):
        """Z placed at word bits 32..55 recodes into digits 8..14."""
        word = radix16_digits(z24 << 32)
        lane = recode_minimally_redundant(z24, 24, 4)
        assert word[8:15] == lane
        assert all(d == 0 for d in word[:8])
        assert all(d == 0 for d in word[15:])

    def test_bad_parameters(self):
        with pytest.raises(BitWidthError):
            recode_minimally_redundant(0, 64, 0)
        with pytest.raises(BitWidthError):
            recode_minimally_redundant(0, 0, 4)
        with pytest.raises(BitWidthError):
            recode_minimally_redundant(-1, 64, 4)
        with pytest.raises(BitWidthError):
            recode_minimally_redundant(1 << 64, 64, 4)

    def test_digit_count(self):
        assert digit_count(64, 4) == 17
        assert digit_count(64, 2) == 33
        assert digit_count(64, 3) == 23


class TestDigitControlBits:
    @given(st.integers(min_value=-8, max_value=8))
    def test_one_hot(self, digit):
        sign, onehot = recoder_digit_bits(digit, 4)
        assert sum(onehot) == 1
        assert onehot[abs(digit)] == 1
        assert sign == (1 if digit < 0 else 0)

    def test_out_of_set(self):
        with pytest.raises(BitWidthError):
            recoder_digit_bits(9, 4)
        with pytest.raises(BitWidthError):
            recoder_digit_bits(-3, 2)
