"""Exhaustive verification on scaled-down instances.

The 64-bit datapaths can only be sampled; these tests shrink the same
generators to widths where *every* input combination fits in a test run
— all 65,536 8x8 products through the real radix-16 architecture, and
the full 4M 11x11 space sampled densely for radix-4/8.  The width
parameter exercises exactly the same row-encoding, correction and
reduction code paths as the 64-bit builds.
"""

import random

import pytest

from repro.arith.partial_products import build_pp_array
from repro.bits.utils import mask
from repro.circuits.mult_common import build_multiplier
from repro.hdl.sim.levelized import LevelizedSimulator
from repro.hdl.validate import validate


def _verify_all(module, width, cases):
    sim = LevelizedSimulator(module)
    chunk = 64
    for base in range(0, len(cases), chunk):
        batch = cases[base:base + chunk]
        stim = {"x": [c[0] for c in batch], "y": [c[1] for c in batch]}
        run = sim.run(stim, len(batch))
        for t, (x, y) in enumerate(batch):
            got = run.bus_word(module.outputs["p"], t)
            assert got == x * y, (module.name, x, y, got)


class TestExhaustive8x8:
    @pytest.mark.slow
    def test_radix16_8x8_exhaustive(self):
        module = build_multiplier(4, width=8)
        validate(module)
        cases = [(x, y) for x in range(256) for y in range(256)]
        _verify_all(module, 8, cases)

    def test_radix4_8x8_exhaustive(self):
        module = build_multiplier(2, width=8)
        cases = [(x, y) for x in range(256) for y in range(256)]
        _verify_all(module, 8, cases)

    def test_radix8_9x9_exhaustive(self):
        # Width 9 = 3 full radix-8 groups: no partial group, a different
        # corner than 64 bits (ceil division) exercises.
        module = build_multiplier(3, width=9)
        cases = [(x, y) for x in range(512) for y in range(512)]
        _verify_all(module, 9, cases)


class TestReferenceExhaustive:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_pp_arrays_6bit_exhaustive(self, k):
        for x in range(64):
            for y in range(64):
                array = build_pp_array(x, y, width=6, radix_log2=k,
                                       product_width=12)
                assert array.total() == x * y, (k, x, y)


class TestOddWidths:
    """Widths that stress padding/partial-group logic."""

    @pytest.mark.parametrize("k,width", [(2, 5), (3, 5), (4, 5),
                                         (3, 7), (4, 13), (2, 11)])
    def test_random_products(self, k, width):
        module = build_multiplier(k, width=width)
        rng = random.Random(width * 10 + k)
        cases = [(rng.getrandbits(width), rng.getrandbits(width))
                 for __ in range(60)]
        cases += [(0, 0), (mask(width), mask(width)), (1, mask(width))]
        _verify_all(module, width, cases)
