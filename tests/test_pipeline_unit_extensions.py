"""Tests for the unit's paper-suggested extensions.

* structural RNE (the sticky bit Sec. III-A lists as missing), and
* the Fig. 6 reducer absorbed into the output formatter (Sec. IV).
"""

import random

import pytest

from repro.bits.ieee754 import BINARY32, BINARY64, encode
from repro.core.formats import MFFormat, OperandBundle, RoundingMode
from repro.core.mfmult import MFMult
from repro.core.pipeline_unit import MFMultUnit, build_mf_multiplier
from repro.core.reduction import reduce_binary64
from repro.errors import NetlistError


@pytest.fixture(scope="module")
def rne_unit():
    return MFMultUnit(rounding="rne")


@pytest.fixture(scope="module")
def reducer_unit():
    return MFMultUnit(with_reducer=True)


def _mid64(rng):
    return BINARY64.pack(rng.getrandbits(1), rng.randint(600, 1400),
                         rng.getrandbits(52))


def _mid32(rng):
    return BINARY32.pack(rng.getrandbits(1), rng.randint(64, 190),
                         rng.getrandbits(23))


def _tie64_cases():
    """Deterministic binary64 tie cases: 1.5 * m_y.

    With m_x = 3*2^51, the product is (3*m_y) << 51; for odd m_y with
    3*m_y < 2^54 the guard bit is 1 and everything below is 0 — an exact
    low-case tie.  For m_y = 2 (mod 4) with 3*m_y >= 2^54 the same holds
    one position up (a high-case tie).
    """
    one_point_five = BINARY64.pack(0, 1023, 1 << 51)
    cases = []
    limit = (1 << 54) // 3
    for m_y in (
        (1 << 52) + 1, (1 << 52) + 3, (1 << 52) + 12345,
        limit - 2 if (limit - 2) % 2 == 1 else limit - 3,
    ):
        assert m_y % 2 == 1 and 3 * m_y < (1 << 54)
        cases.append((one_point_five, BINARY64.pack(0, 1023,
                                                    m_y - (1 << 52))))
    for m_y in ((1 << 53) - 2, (1 << 53) - 6):
        assert m_y % 4 == 2 and 3 * m_y >= (1 << 54)
        cases.append((one_point_five, BINARY64.pack(0, 1023,
                                                    m_y - (1 << 52))))
    return cases


def _tie32_cases():
    one_point_five = BINARY32.pack(0, 127, 1 << 22)
    cases = []
    for m_y in ((1 << 23) + 1, (1 << 23) + 777, 11184809):
        assert m_y % 2 == 1 and 3 * m_y < (1 << 25)
        cases.append((one_point_five, BINARY32.pack(0, 127,
                                                    m_y - (1 << 23))))
    return cases


class TestStructuralRNE:
    def test_random_fp64_matches_full_model(self, rne_unit):
        rng = random.Random(21)
        mf = MFMult(mode="full", rounding=RoundingMode.RNE)
        ops = [(OperandBundle.fp64(_mid64(rng), _mid64(rng)), MFFormat.FP64)
               for __ in range(40)]
        results = rne_unit.run_batch(ops)
        for (bundle, fmt), res in zip(ops, results):
            assert res.ph == mf.multiply(bundle, fmt).ph, hex(bundle.x)

    def test_fp64_ties_round_to_even(self, rne_unit):
        mf = MFMult(mode="full", rounding=RoundingMode.RNE)
        injection = MFMult(fidelity="fast")
        ops = [(OperandBundle.fp64(a, b), MFFormat.FP64)
               for a, b in _tie64_cases()]
        results = rne_unit.run_batch(ops)
        corrections = 0
        for (bundle, fmt), res in zip(ops, results):
            expect = mf.multiply(bundle, fmt).ph
            assert res.ph == expect
            if injection.multiply(bundle, fmt).ph != expect:
                corrections += 1
        # The tie family must actually exercise the correction path.
        assert corrections >= 3

    def test_fp32_ties_round_to_even(self, rne_unit):
        mf = MFMult(mode="full", rounding=RoundingMode.RNE)
        ops = []
        for a, b in _tie32_cases():
            ops.append((OperandBundle.fp32_pair(a, b, b, a),
                        MFFormat.FP32X2))
        results = rne_unit.run_batch(ops)
        for (bundle, fmt), res in zip(ops, results):
            assert res.ph == mf.multiply(bundle, fmt).ph

    def test_random_fp32_matches_full_model(self, rne_unit):
        rng = random.Random(22)
        mf = MFMult(mode="full", rounding=RoundingMode.RNE)
        ops = [(OperandBundle.fp32_pair(_mid32(rng), _mid32(rng),
                                        _mid32(rng), _mid32(rng)),
                MFFormat.FP32X2) for __ in range(40)]
        results = rne_unit.run_batch(ops)
        for (bundle, fmt), res in zip(ops, results):
            assert res.ph == mf.multiply(bundle, fmt).ph

    def test_int64_unaffected(self, rne_unit):
        rng = random.Random(23)
        ops = [(OperandBundle.int64(rng.getrandbits(64),
                                    rng.getrandbits(64)), MFFormat.INT64)
               for __ in range(10)]
        for (bundle, __), res in zip(ops, rne_unit.run_batch(ops)):
            assert (res.ph << 64) | res.pl == bundle.x * bundle.y

    def test_sticky_block_exists(self, rne_unit):
        blocks = {g.block.split("/", 1)[0] for g in rne_unit.module.gates}
        assert "sticky" in blocks

    def test_bad_rounding_rejected(self):
        with pytest.raises(NetlistError):
            build_mf_multiplier(rounding="stochastic")


class TestIntegratedReducer:
    def test_reduced_flag_and_payload(self, reducer_unit):
        mf = MFMult(fidelity="fast")
        rng = random.Random(24)
        ops = [(OperandBundle.fp64(_mid64(rng), _mid64(rng)), MFFormat.FP64)
               for __ in range(15)]
        # Guaranteed-reducible product: 1.5 * 2.0 = 3.0.
        ops.append((OperandBundle.fp64(encode(1.5, BINARY64),
                                       encode(2.0, BINARY64)),
                    MFFormat.FP64))
        results = reducer_unit.run_batch(ops)
        seen_reduced = 0
        for (bundle, fmt), res in zip(ops, results):
            ph = mf.multiply(bundle, fmt).ph
            assert res.ph == ph
            decision = reduce_binary64(ph)
            assert res.reduced == (1 if decision.reduced else 0)
            if decision.reduced:
                assert res.pl == decision.encoding32
                seen_reduced += 1
            else:
                assert res.pl == 0
        assert seen_reduced >= 1

    def test_flag_low_outside_fp64(self, reducer_unit):
        ops = [(OperandBundle.int64(3, 5), MFFormat.INT64)]
        res = reducer_unit.run_batch(ops)[0]
        assert res.reduced == 0
        assert res.pl == 15          # int64's PL untouched

    def test_plain_unit_has_no_flag(self):
        unit = MFMultUnit()
        assert not unit.has_reducer
        res = unit.multiply(OperandBundle.int64(2, 2), MFFormat.INT64)
        assert res.reduced is None
