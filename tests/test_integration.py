"""Cross-layer integration tests.

These exercise complete user workflows: software model <-> gate-level
unit equivalence under random mixed traffic, the demote-and-issue
pipeline of Sec. IV end to end, and power-harness consistency.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bits.ieee754 import BINARY32, BINARY64, decode
from repro.bits.utils import mask
from repro.core.formats import MFFormat, OperandBundle
from repro.core.mfmult import MFMult
from repro.core.pipeline_unit import MFMultUnit
from repro.core.reduction import reduce_binary64, widen_binary32
from repro.core.vector_unit import VectorMultiplier
from repro.eval.workloads import WorkloadGenerator

NORMAL64 = st.builds(
    BINARY64.pack,
    st.integers(min_value=0, max_value=1),
    st.integers(min_value=1, max_value=2046),
    st.integers(min_value=0, max_value=mask(52)),
)
NORMAL32 = st.builds(
    BINARY32.pack,
    st.integers(min_value=0, max_value=1),
    st.integers(min_value=1, max_value=254),
    st.integers(min_value=0, max_value=mask(23)),
)


@pytest.fixture(scope="module")
def unit():
    return MFMultUnit()


class TestStructuralFunctionalEquivalence:
    """Hypothesis-driven co-simulation: the netlist IS the model."""

    @given(NORMAL64, NORMAL64)
    @settings(max_examples=25, deadline=None)
    def test_fp64(self, unit, xe, ye):
        mf = MFMult(fidelity="fast")
        bundle = OperandBundle.fp64(xe, ye)
        expect = mf.multiply(bundle, MFFormat.FP64)
        got = unit.multiply(bundle, MFFormat.FP64)
        assert got.ph == expect.ph

    @given(NORMAL32, NORMAL32, NORMAL32, NORMAL32)
    @settings(max_examples=25, deadline=None)
    def test_fp32_dual(self, unit, x0, y0, x1, y1):
        mf = MFMult(fidelity="fast")
        bundle = OperandBundle.fp32_pair(x0, y0, x1, y1)
        expect = mf.multiply(bundle, MFFormat.FP32X2)
        got = unit.multiply(bundle, MFFormat.FP32X2)
        assert got.ph == expect.ph

    @given(st.integers(min_value=0, max_value=mask(64)),
           st.integers(min_value=0, max_value=mask(64)))
    @settings(max_examples=25, deadline=None)
    def test_int64(self, unit, x, y):
        got = unit.multiply(OperandBundle.int64(x, y), MFFormat.INT64)
        assert (got.ph << 64) | got.pl == x * y


class TestReduceThenMultiplyEndToEnd:
    """Sec. IV's full story: demote, multiply on the narrow lane,
    widen back — error-free for reducible operands."""

    @given(st.integers(min_value=0, max_value=1),
           st.integers(min_value=960, max_value=1085),
           st.integers(min_value=0, max_value=mask(23)),
           st.integers(min_value=0, max_value=1),
           st.integers(min_value=960, max_value=1085),
           st.integers(min_value=0, max_value=mask(23)))
    @settings(max_examples=40, deadline=None)
    def test_demoted_product_matches_binary32_semantics(
            self, sx, ex, fx, sy, ey, fy):
        xe = BINARY64.pack(sx, ex, fx << 29)
        ye = BINARY64.pack(sy, ey, fy << 29)
        dx, dy = reduce_binary64(xe), reduce_binary64(ye)
        assert dx.reduced and dy.reduced
        mf = MFMult(fidelity="fast")
        bundle = OperandBundle.fp32_pair(dx.encoding32, dy.encoding32,
                                         dx.encoding32, dy.encoding32)
        out = mf.multiply(bundle, MFFormat.FP32X2)
        back = decode(widen_binary32(out.fp32_encoding(0)), BINARY64)
        exact = decode(xe, BINARY64) * decode(ye, BINARY64)
        assert abs(back - exact) <= abs(exact) * 2.0 ** -23

    def test_vector_machine_against_pure_fp64(self):
        """The demoting machine and the baseline produce results that
        agree to binary32 precision on the same stream."""
        gen = WorkloadGenerator(11)
        pairs = gen.mixed_binary64_stream(60, 0.7)
        with_red = VectorMultiplier(use_reduction=True).run(pairs)
        without = VectorMultiplier(use_reduction=False).run(pairs)
        assert with_red.stats.total_cycles < without.stats.total_cycles
        for a, b in zip(with_red.products64, without.products64):
            va, vb = decode(a, BINARY64), decode(b, BINARY64)
            assert abs(va - vb) <= abs(vb) * 2.0 ** -23


class TestMixedTrafficThroughput:
    def test_dual_lane_throughput_double(self, unit):
        """2 results per issued cycle in fp32 mode, 1 otherwise — the
        basis of Table V's throughput column."""
        assert MFFormat.FP32X2.flops_per_cycle == 2
        assert MFFormat.FP64.flops_per_cycle == 1

    def test_pipeline_accepts_new_op_every_cycle(self, unit):
        rng = random.Random(10)
        ops = [(OperandBundle.int64(rng.getrandbits(64),
                                    rng.getrandbits(64)), MFFormat.INT64)
               for __ in range(8)]
        results = unit.run_batch(ops)
        assert len(results) == 8
        for (bundle, __), res in zip(ops, results):
            assert (res.ph << 64) | res.pl == bundle.x * bundle.y


class TestPowerHarnessConsistency:
    def test_idle_lane_saves_power(self):
        """Table V row 4 vs row 3: a single binary32 issue must dissipate
        less than a dual issue (the idle lane stops toggling)."""
        from repro.eval.experiments import cached_module
        from repro.hdl.library import default_library
        from repro.hdl.power.monte_carlo import estimate_power

        lib = default_library()
        module = cached_module("mf")
        gen = WorkloadGenerator(12)
        dual = estimate_power(module, lib, gen.mf_stimulus("fp32_dual", 8), 8)
        gen = WorkloadGenerator(12)
        single = estimate_power(module, lib,
                                gen.mf_stimulus("fp32_single", 8), 8)
        assert single.total_mw < dual.total_mw

    def test_fp64_cheaper_than_int64(self):
        """Table V: only 53 of 64 significand bits are active in fp64."""
        from repro.eval.experiments import cached_module
        from repro.hdl.library import default_library
        from repro.hdl.power.monte_carlo import estimate_power

        lib = default_library()
        module = cached_module("mf")
        gen = WorkloadGenerator(13)
        i64 = estimate_power(module, lib, gen.mf_stimulus("int64", 8), 8)
        gen = WorkloadGenerator(13)
        f64 = estimate_power(module, lib, gen.mf_stimulus("fp64", 8), 8)
        assert f64.total_mw < i64.total_mw
