"""The multi-host scheduler: wire framing, handshake, daemon, backend.

Load-bearing guarantees:

* the shared framing layer rejects truncated / oversized / garbage
  buffers with :class:`WireError` (never an opaque unpickling error),
  and every ``repro.sched/1`` frame kind round-trips over a real
  socketpair;
* no pickle is loaded from a socket before the HMAC handshake
  completes, and a wrong ``REPRO_SCHED_TOKEN`` is rejected both ways;
* a pipe worker answers a malformed frame with a structured ``error``
  frame and keeps serving (instead of dying silently), and a poison
  leaf fails its job after ``MAX_TASK_CRASHES`` respawns instead of
  burning workers forever;
* two localhost daemons produce results identical to ``inline`` —
  including a bit-identical report — survive losing a daemon mid-run
  with zero lost leaves, and replay a warm cluster with zero dispatched
  jobs via digest-based cache sync.
"""

import multiprocessing
import pickle
import socket
import threading
import time
import urllib.request

import pytest

from repro import obs
from repro.errors import SimulationError
from repro.eval.cache import ResultCache
from repro.eval.orchestrator import Job, job, run_graph
from repro.eval.sched import wire
from repro.eval.sched.base import LeafResult, LeafTask
from repro.eval.sched.daemon import WorkerDaemon
from repro.eval.sched.remote import parse_hosts
from repro.eval.sched.testing import seeded_leaf, sleepy_leaf


def _counter(name):
    return obs.registry().snapshot()["counters"].get(name, 0)


def _mini_graph(fast=6, slow_seconds=0.0):
    """A small skewed graph: one heavy leaf, several light ones, a merge."""
    jobs = [job("slow", "repro.eval.sched.testing:sleepy_leaf",
                weight=8.0, seconds=slow_seconds, seed=99, size=3)]
    jobs += [job(f"fast{i}", "repro.eval.sched.testing:seeded_leaf",
                 weight=1.0, seed=i, size=2)
             for i in range(fast)]
    leaf_names = tuple(j.name for j in jobs)
    jobs.append(Job(name="total",
                    fn=lambda deps: sorted(sum(deps.values(), [])),
                    params=(), deps=leaf_names))
    return jobs


def _expected_total(fast=6):
    values = [seeded_leaf(seed=99, size=3)]
    values += [seeded_leaf(seed=i, size=2) for i in range(fast)]
    return sorted(sum(values, []))


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------

def test_pack_unpack_roundtrip_both_formats():
    env = {"schema": wire.SCHEMA, "kind": "ping", "seq": 3}
    assert wire.unpack_frame(wire.pack_frame(env)) == env
    assert wire.unpack_frame(wire.pack_frame(env, wire.FORMAT_JSON)) == env


@pytest.mark.parametrize("buf,fatal", [
    (b"", True),                                  # shorter than header
    (b"\x00\x00", True),                          # truncated header
    (b"\x00\x00\x00\x10P", True),                 # body shorter than declared
    (b"\xff\xff\xff\xffP", True),                 # oversized declaration
    (b"\x00\x00\x00\x03Pxx", False),              # garbage pickle body
    (b"\x00\x00\x00\x03Jxx", False),              # garbage JSON body
    (b"\x00\x00\x00\x03Xxx", False),              # unknown format byte
])
def test_unpack_rejects_malformed_buffers(buf, fatal):
    with pytest.raises(wire.WireError) as err:
        wire.unpack_frame(buf)
    assert err.value.fatal is fatal


def test_unpack_rejects_schema_skew_not_opaquely():
    frame = wire.pack_frame({"schema": "repro.sched/999", "kind": "job"})
    with pytest.raises(wire.WireError) as err:
        wire.unpack_frame(frame)
    assert "repro.sched/1" in str(err.value)
    assert not err.value.fatal                   # stream is still synced


def test_oversized_frame_guard_on_send():
    with pytest.raises(wire.WireError) as err:
        wire.pack_frame({"schema": wire.SCHEMA, "kind": "job",
                         "blob": b"x" * (wire.MAX_FRAME_BYTES + 1)})
    assert err.value.fatal


def _stream_pair():
    a, b = socket.socketpair()
    return wire.FrameStream(a), wire.FrameStream(b)


def test_every_frame_kind_roundtrips_over_a_socketpair():
    task = LeafTask(name="leafy",
                    fn="repro.eval.sched.testing:seeded_leaf",
                    params=(("seed", 3),), fingerprint="f" * 64,
                    trace_ctx={"trace": "t", "span": "s", "flow": "w"})
    result = LeafResult(name="leafy", value=[1, 2], seconds=0.5, worker=1)
    failure = LeafResult(name="leafy", error="boom",
                         exception=ValueError("boom"))
    frames = [
        wire.job_envelope(task),
        wire.result_envelope(result, worker=1),
        wire.result_envelope(failure, worker=2),
        wire.error_envelope("?", "malformed frame", worker=3),
        wire.shutdown_envelope(),
        wire.ping_envelope(7),
        wire.pong_envelope(7, {"jobs": 4}),
        wire.cache_offer_envelope("leafy", ["f" * 64]),
        wire.cache_hits_envelope("leafy", ["f" * 64]),
        wire.cache_pull_envelope("f" * 64),
        wire.cache_object_envelope("f" * 64, {"value": 9}),
        wire.cache_miss_envelope("f" * 64),
        wire.cache_push_envelope("f" * 64, [3, 4]),
    ]
    a, b = _stream_pair()
    try:
        for env in frames:
            a.send(env)
            got = b.recv()
            assert got["kind"] == env["kind"]
            assert got == env
        # the payloads decode back to what went in
        a.send(wire.job_envelope(task))
        back = wire.task_from_envelope(b.recv())
        assert back == task and back.trace_ctx == task.trace_ctx
        a.send(wire.result_envelope(result, worker=1))
        rb = wire.result_from_envelope(b.recv())
        assert rb.ok and rb.value == [1, 2]
        a.send(wire.result_envelope(failure, worker=2))
        fb = wire.result_from_envelope(b.recv())
        assert not fb.ok and isinstance(fb.exception, ValueError)
        assert a.bytes_sent == b.bytes_recv > 0
    finally:
        a.close()
        b.close()


def test_stream_eof_and_midframe_truncation():
    a, b = _stream_pair()
    a.close()
    with pytest.raises(EOFError):
        b.recv()                                  # clean close at boundary
    b.close()

    a, b = _stream_pair()
    frame = wire.pack_frame(wire.ping_envelope(1))
    a.sock.sendall(frame[:len(frame) - 2])        # cut mid-frame
    a.close()
    with pytest.raises(wire.WireError) as err:
        b.recv()
    assert err.value.fatal
    b.close()


# ----------------------------------------------------------------------
# handshake
# ----------------------------------------------------------------------

def _handshake_pair(server_token, client_token):
    a, b = _stream_pair()
    box = {}

    def serve():
        try:
            wire.server_handshake(a, server_token, info={"workers": 3})
            box["server"] = "ok"
        except wire.WireError as exc:
            box["server"] = str(exc)

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    try:
        welcome = wire.client_handshake(b, client_token)
    finally:
        thread.join(timeout=5.0)
        a.close()
        b.close()
    return box, welcome


def test_handshake_accepts_matching_token():
    box, welcome = _handshake_pair("sesame", "sesame")
    assert box["server"] == "ok"
    assert welcome["kind"] == "welcome" and welcome["workers"] == 3


def test_handshake_rejects_wrong_token():
    with pytest.raises(wire.WireError, match="rejected"):
        _handshake_pair("sesame", "wrong")


def test_no_pickle_is_loaded_before_auth():
    a, b = _stream_pair()
    try:
        a.send(wire.shutdown_envelope())          # a pickle frame
        with pytest.raises(wire.WireError, match="handshake"):
            b.recv(allow_pickle=False)
    finally:
        a.close()
        b.close()


# ----------------------------------------------------------------------
# pipe-worker resilience (satellite: no more silent deaths)
# ----------------------------------------------------------------------

def test_worker_loop_survives_malformed_frames():
    from repro.eval.sched.stealing import _worker_main

    ctx = multiprocessing.get_context("fork")
    parent, child = ctx.Pipe()
    proc = ctx.Process(target=_worker_main, args=(child, 0), daemon=True)
    proc.start()
    child.close()
    try:
        # Well-framed but undecodable: a pickled non-dict.
        parent.send_bytes(wire.pack_frame("not-an-envelope"))
        reply = wire.unpack_frame(parent.recv_bytes())
        assert reply["kind"] == "error" and reply["name"] == "?"
        assert "malformed" in reply["error"]
        # A frame kind the worker does not serve gets the same courtesy.
        parent.send_bytes(wire.pack_frame(wire.ping_envelope(1)))
        reply = wire.unpack_frame(parent.recv_bytes())
        assert reply["kind"] == "error" and "ping" in reply["error"]
        # ...and the loop is still alive to run a real job.
        task = LeafTask(name="after",
                        fn="repro.eval.sched.testing:seeded_leaf",
                        params=(("seed", 4), ("size", 2)))
        parent.send_bytes(wire.pack_frame(wire.job_envelope(task)))
        result = wire.result_from_envelope(
            wire.unpack_frame(parent.recv_bytes()))
        assert result.ok and result.value == seeded_leaf(seed=4, size=2)
        parent.send_bytes(wire.pack_frame(wire.shutdown_envelope()))
        proc.join(timeout=5.0)
        assert proc.exitcode == 0
    finally:
        if proc.is_alive():
            proc.terminate()
        parent.close()


def test_poison_leaf_fails_instead_of_respawning_forever():
    from repro.eval.sched.stealing import MAX_TASK_CRASHES

    crashes = _counter("orchestrator.worker.crashes")
    jobs = [job("poison", "repro.eval.sched.testing:poison_leaf", seed=1)]
    with pytest.raises(SimulationError, match="crashed"):
        run_graph(jobs, workers=2, cache=None, backend="workers")
    assert (_counter("orchestrator.worker.crashes") - crashes
            == MAX_TASK_CRASHES + 1)


# ----------------------------------------------------------------------
# the remote backend against real localhost daemons
# ----------------------------------------------------------------------

@pytest.fixture
def two_daemons(tmp_path):
    daemons = [
        WorkerDaemon(workers=2,
                     cache=ResultCache(root=tmp_path / f"daemon{i}",
                                       fingerprint="(daemon)"),
                     label=f"d{i}").start()
        for i in range(2)
    ]
    hosts = ",".join(f"127.0.0.1:{d.port}" for d in daemons)
    try:
        yield daemons, hosts
    finally:
        for d in daemons:
            d.stop()


def test_parse_hosts():
    assert parse_hosts("a:9700, b:9701") == [("a", 9700), ("b", 9701)]
    assert parse_hosts([":9700"]) == [("127.0.0.1", 9700)]
    with pytest.raises(SimulationError):
        parse_hosts("no-port")
    with pytest.raises(SimulationError):
        parse_hosts("")


def test_remote_backend_matches_inline(two_daemons):
    __, hosts = two_daemons
    inline = run_graph(_mini_graph(), cache=None, backend="inline")
    remote = run_graph(_mini_graph(), cache=None, backend="remote",
                       hosts=hosts)
    assert remote["total"].value == inline["total"].value
    assert remote["total"].value == _expected_total()
    leaf_modes = {o.mode for n, o in remote.items() if n != "total"}
    assert leaf_modes == {"remote"}


def test_remote_report_is_bit_identical_to_inline(two_daemons):
    from repro.eval.report import generate_report

    __, hosts = two_daemons
    kwargs = dict(filters=["table4", "fig1"], cache=False)
    baseline = generate_report(backend="inline", **kwargs)
    remote = generate_report(backend="remote", hosts=hosts, **kwargs)
    assert remote == baseline


def test_remote_backend_rejects_unreachable_cluster():
    with pytest.raises(SimulationError, match="could not reach"):
        run_graph(_mini_graph(), cache=None, backend="remote",
                  hosts="127.0.0.1:9")           # discard port: refused


def test_remote_handshake_rejects_wrong_token(tmp_path, monkeypatch):
    daemon = WorkerDaemon(workers=1, token="sesame").start()
    try:
        monkeypatch.setenv("REPRO_SCHED_TOKEN", "wrong")
        with pytest.raises(SimulationError, match="could not reach"):
            run_graph(_mini_graph(fast=1), cache=None, backend="remote",
                      hosts=f"127.0.0.1:{daemon.port}")
        deadline = time.monotonic() + 5.0
        while daemon.stats()["rejected"] == 0 \
                and time.monotonic() < deadline:
            time.sleep(0.01)     # the session thread books the reject
        assert daemon.stats()["rejected"] >= 1
        assert daemon.stats()["sessions"] == 0
    finally:
        daemon.stop()


def test_remote_survives_losing_a_daemon_with_zero_lost_leaves(two_daemons):
    daemons, hosts = two_daemons
    lost = _counter("sched.remote.hosts.lost")
    jobs = [job(f"leaf{i}", "repro.eval.sched.testing:sleepy_leaf",
                seconds=0.25, seed=i) for i in range(8)]
    killer = threading.Timer(0.4, daemons[1].stop)
    killer.start()
    try:
        out = run_graph(jobs, cache=None, backend="remote", hosts=hosts)
    finally:
        killer.cancel()
    assert len(out) == 8
    for i in range(8):
        assert out[f"leaf{i}"].value == sleepy_leaf(seed=i)
    assert _counter("sched.remote.hosts.lost") == lost + 1


def test_remote_cache_sync_executes_zero_leaves_when_warm(two_daemons,
                                                          tmp_path):
    __, hosts = two_daemons
    jobs = _mini_graph(fast=5)
    first = run_graph(jobs, cache=ResultCache(root=tmp_path / "coord1",
                                              fingerprint="fp"),
                      backend="remote", hosts=hosts)
    assert first["total"].value == _expected_total(fast=5)

    # Fresh coordinator cache, same daemons: every leaf digest is
    # offered, every daemon answers from its store, nothing executes.
    dispatched = _counter("sched.remote.jobs")
    pulled = _counter("sched.remote.cache.pulled")
    second = run_graph(jobs, cache=ResultCache(root=tmp_path / "coord2",
                                               fingerprint="fp"),
                       backend="remote", hosts=hosts)
    assert second["total"].value == first["total"].value
    assert _counter("sched.remote.jobs") == dispatched
    assert _counter("sched.remote.cache.pulled") == pulled + 6


def test_daemon_healthz_reflects_pool_state(tmp_path):
    daemon = WorkerDaemon(workers=1).start()
    server = daemon.start_telemetry(0)
    try:
        with urllib.request.urlopen(
                f"{server.url}/healthz", timeout=5.0) as resp:
            verdict = resp.status, resp.read()
        assert verdict[0] == 200
        body = verdict[1].decode()
        assert "daemon.pool" in body and "daemon.coordinator" in body
    finally:
        daemon.stop()


def test_digest_object_store_roundtrip(tmp_path):
    cache = ResultCache(root=tmp_path / "store", fingerprint="fp")
    digest = "ab" * 32
    assert not cache.has_object(digest)
    assert cache.load_object(digest) == (False, None)
    cache.store_object(digest, {"x": [1, 2, 3]}, name="leafy")
    assert cache.has_object(digest)
    assert cache.load_object(digest) == (True, {"x": [1, 2, 3]})
    # A digest-form entry survives export/import digest verification.
    archive = tmp_path / "a.tar.gz"
    cache.export(archive)
    other = ResultCache(root=tmp_path / "other", fingerprint="fp")
    stats = other.import_archive(archive)
    assert stats["imported"] == 1 and stats["corrupt"] == 0
    assert other.load_object(digest) == (True, {"x": [1, 2, 3]})
    # ...and a tampered one is rejected, not trusted.
    path = other._object_path(digest)
    path.write_bytes(pickle.dumps({"schema": "repro.cache/1",
                                   "digest": "f" * 64, "value": 1}))
    assert other.load_object(digest) == (False, None)
