"""Tests for the carry-save primitives."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.arith.csa import (
    compress_3_2,
    compress_4_2,
    compress_words_4_2,
    full_adder,
    half_adder,
)
from repro.bits.utils import mask
from repro.errors import BitWidthError

BIT = st.integers(min_value=0, max_value=1)


class TestBitCells:
    def test_half_adder_exhaustive(self):
        for a, b in itertools.product((0, 1), repeat=2):
            s, c = half_adder(a, b)
            assert s + 2 * c == a + b

    def test_full_adder_exhaustive(self):
        for a, b, c in itertools.product((0, 1), repeat=3):
            s, carry = full_adder(a, b, c)
            assert s + 2 * carry == a + b + c

    def test_4_2_exhaustive(self):
        for a, b, c, d, cin in itertools.product((0, 1), repeat=5):
            s, carry, cout = compress_4_2(a, b, c, d, cin)
            assert s + 2 * carry + 2 * cout == a + b + c + d + cin

    def test_4_2_cout_independent_of_cin(self):
        """No horizontal ripple: cout depends only on a, b, c."""
        for a, b, c, d in itertools.product((0, 1), repeat=4):
            __, __, cout0 = compress_4_2(a, b, c, d, 0)
            __, __, cout1 = compress_4_2(a, b, c, d, 1)
            assert cout0 == cout1

    def test_non_bit_rejected(self):
        with pytest.raises(BitWidthError):
            full_adder(2, 0, 0)
        with pytest.raises(BitWidthError):
            half_adder(0, -1)


class TestWordCells:
    @given(st.integers(min_value=0, max_value=mask(64)),
           st.integers(min_value=0, max_value=mask(64)),
           st.integers(min_value=0, max_value=mask(64)))
    def test_3_2_invariant(self, a, b, c):
        s, carry = compress_3_2(a, b, c, 64)
        assert s + carry == a + b + c

    @given(st.integers(min_value=0, max_value=mask(32)),
           st.integers(min_value=0, max_value=mask(32)),
           st.integers(min_value=0, max_value=mask(32)),
           st.integers(min_value=0, max_value=mask(32)))
    def test_4_2_invariant(self, a, b, c, d):
        s, carry = compress_words_4_2(a, b, c, d, 32)
        assert s + carry == a + b + c + d

    def test_width_checked(self):
        with pytest.raises(BitWidthError):
            compress_3_2(1 << 8, 0, 0, 8)
