"""Tests for repro.bits.utils."""

import pytest
from hypothesis import given, strategies as st

from repro.bits.utils import (
    bit,
    bit_length,
    bits_of,
    from_twos_complement,
    mask,
    ones_count,
    popcount,
    to_twos_complement,
)
from repro.errors import BitWidthError


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    def test_small(self):
        assert mask(1) == 1
        assert mask(4) == 0xF
        assert mask(64) == (1 << 64) - 1

    def test_negative_width_rejected(self):
        with pytest.raises(BitWidthError):
            mask(-1)


class TestBit:
    def test_lsb(self):
        assert bit(0b10, 0) == 0
        assert bit(0b10, 1) == 1

    def test_beyond_value(self):
        assert bit(1, 63) == 0

    def test_negative_position_rejected(self):
        with pytest.raises(BitWidthError):
            bit(1, -1)


class TestBitsOf:
    def test_lsb_first(self):
        assert bits_of(0b1101, 4) == [1, 0, 1, 1]

    def test_width_checked(self):
        with pytest.raises(BitWidthError):
            bits_of(16, 4)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_roundtrip(self, value):
        bits = bits_of(value, 64)
        assert sum(b << i for i, b in enumerate(bits)) == value


class TestBitLength:
    def test_zero_is_one(self):
        assert bit_length(0) == 1

    def test_matches_int(self):
        assert bit_length(255) == 8
        assert bit_length(256) == 9

    def test_negative_rejected(self):
        with pytest.raises(BitWidthError):
            bit_length(-1)


class TestOnesCount:
    def test_zero(self):
        assert ones_count(0) == 0

    def test_all_ones(self):
        assert ones_count(mask(17)) == 17

    @given(st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_matches_bin(self, value):
        assert ones_count(value) == bin(value).count("1")


class TestPopcount:
    def test_zero(self):
        assert popcount(0) == 0

    def test_multiword(self):
        # The simulators call this on multi-thousand-bit packed words.
        value = (mask(3000) ^ (mask(1000) << 500))
        assert popcount(value) == 2000

    @given(st.integers(min_value=0, max_value=(1 << 4096) - 1))
    def test_matches_bin(self, value):
        assert popcount(value) == bin(value).count("1")

    def test_negative_rejected(self):
        with pytest.raises(BitWidthError):
            popcount(-1)


class TestTwosComplement:
    def test_positive(self):
        assert to_twos_complement(5, 8) == 5

    def test_negative(self):
        assert to_twos_complement(-1, 8) == 0xFF
        assert to_twos_complement(-128, 8) == 0x80

    def test_bounds(self):
        with pytest.raises(BitWidthError):
            to_twos_complement(128, 8)
        with pytest.raises(BitWidthError):
            to_twos_complement(-129, 8)

    def test_decode(self):
        assert from_twos_complement(0xFF, 8) == -1
        assert from_twos_complement(0x80, 8) == -128
        assert from_twos_complement(0x7F, 8) == 127

    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_roundtrip(self, value):
        assert from_twos_complement(to_twos_complement(value, 64), 64) == value

    @given(st.integers(min_value=0, max_value=(1 << 16) - 1),
           st.integers(min_value=1, max_value=16))
    def test_encode_is_mod(self, pattern, width):
        pattern &= mask(width)
        signed = from_twos_complement(pattern, width)
        assert signed % (1 << width) == pattern
