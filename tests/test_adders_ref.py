"""Tests for the reference adders."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arith.adders_ref import (
    brent_kung_carries,
    carry_select_add,
    kogge_stone_carries,
    lane_split_add,
    ripple_add,
)
from repro.bits.utils import mask
from repro.errors import BitWidthError

WIDTHS = st.integers(min_value=1, max_value=96)


@st.composite
def operand_pair(draw):
    width = draw(WIDTHS)
    a = draw(st.integers(min_value=0, max_value=mask(width)))
    b = draw(st.integers(min_value=0, max_value=mask(width)))
    cin = draw(st.integers(min_value=0, max_value=1))
    return a, b, width, cin


class TestRippleAdd:
    @given(operand_pair())
    def test_matches_python(self, case):
        a, b, width, cin = case
        total, cout, carries = ripple_add(a, b, width, cin)
        expect = a + b + cin
        assert total == expect & mask(width)
        assert cout == expect >> width
        assert len(carries) == width + 1
        assert carries[0] == cin
        assert carries[-1] == cout

    def test_width_checked(self):
        with pytest.raises(BitWidthError):
            ripple_add(4, 0, 2)


class TestPrefixAdders:
    @given(operand_pair())
    def test_kogge_stone(self, case):
        a, b, width, cin = case
        total, cout, carries = kogge_stone_carries(a, b, width, cin)
        expect = a + b + cin
        assert total == expect & mask(width)
        assert cout == expect >> width

    @given(operand_pair())
    def test_brent_kung(self, case):
        a, b, width, cin = case
        total, cout, carries = brent_kung_carries(a, b, width, cin)
        expect = a + b + cin
        assert total == expect & mask(width)
        assert cout == expect >> width

    @given(operand_pair())
    @settings(max_examples=60)
    def test_carry_vectors_agree(self, case):
        """All three adders must compute identical internal carries."""
        a, b, width, cin = case
        __, __, ripple = ripple_add(a, b, width, cin)
        __, __, ks = kogge_stone_carries(a, b, width, cin)
        __, __, bk = brent_kung_carries(a, b, width, cin)
        assert ripple == ks == bk


class TestCarrySelect:
    @given(operand_pair(), st.integers(min_value=1, max_value=16))
    def test_matches_python(self, case, block):
        a, b, width, cin = case
        total, cout = carry_select_add(a, b, width, block=block,
                                       carry_in=cin)
        expect = a + b + cin
        assert total == expect & mask(width)
        assert cout == expect >> width


class TestLaneSplitAdd:
    @given(st.integers(min_value=0, max_value=mask(128)),
           st.integers(min_value=0, max_value=mask(128)))
    def test_unsplit_is_plain_add(self, a, b):
        total, cout = lane_split_add(a, b, 128, 64, split=False)
        assert total == (a + b) & mask(128)
        assert cout == (a + b) >> 128

    @given(st.integers(min_value=0, max_value=mask(128)),
           st.integers(min_value=0, max_value=mask(128)))
    def test_split_isolates_lanes(self, a, b):
        total, __ = lane_split_add(a, b, 128, 64, split=True)
        lo = ((a & mask(64)) + (b & mask(64))) & mask(64)
        hi = (((a >> 64) & mask(64)) + ((b >> 64) & mask(64))) & mask(64)
        assert total == lo | (hi << 64)

    def test_boundary_checked(self):
        with pytest.raises(BitWidthError):
            lane_split_add(0, 0, 8, 8, split=True)
        with pytest.raises(BitWidthError):
            lane_split_add(0, 0, 8, 0, split=True)
