"""Tests for Algorithm 1 / Sec. IV (binary64 -> binary32 reduction)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.bits.ieee754 import BINARY32, BINARY64, decode, encode
from repro.bits.utils import mask
from repro.core.reduction import (
    BIAS_DELTA,
    DISCARDED_FRACTION_BITS,
    UPPER_BOUND,
    LossyReducer,
    PeriodicReducer,
    is_reducible,
    reduce_binary64,
    widen_binary32,
)
from repro.errors import FormatError

ANY64 = st.integers(min_value=0, max_value=mask(64))
REDUCIBLE = st.builds(
    lambda s, e, f: BINARY64.pack(s, e, f << DISCARDED_FRACTION_BITS),
    st.integers(min_value=0, max_value=1),
    st.integers(min_value=897, max_value=1150),
    st.integers(min_value=0, max_value=mask(23)),
)


class TestAlgorithmConstants:
    def test_paper_constants(self):
        """Algorithm 1 hard-codes -896 and -1151; they must derive from
        the Table IV parameters."""
        assert BIAS_DELTA == 896 == BINARY64.bias - BINARY32.bias
        assert UPPER_BOUND == 1151 == 896 + 255
        assert DISCARDED_FRACTION_BITS == 29 == 52 - 23


class TestExactReduction:
    @given(REDUCIBLE)
    def test_reducible_and_error_free(self, encoding):
        decision = reduce_binary64(encoding)
        assert decision.reduced
        assert decode(decision.encoding32, BINARY32) \
            == decode(encoding, BINARY64)

    @given(REDUCIBLE)
    def test_widen_is_inverse(self, encoding):
        decision = reduce_binary64(encoding)
        assert widen_binary32(decision.encoding32) == encoding

    @given(ANY64)
    @settings(max_examples=300)
    def test_reduction_never_lies(self, encoding):
        """Whenever the algorithm reduces, the value is preserved exactly;
        whenever it refuses, at least one condition genuinely fails."""
        decision = reduce_binary64(encoding)
        sign, e64, fraction = BINARY64.unpack(encoding)
        if decision.reduced:
            assert decode(decision.encoding32, BINARY32) \
                == decode(encoding, BINARY64)
        else:
            assert (decision.c1 == 0 or decision.c2 == 0
                    or decision.zero == 1)

    @given(ANY64)
    def test_condition_bits_match_definition(self, encoding):
        decision = reduce_binary64(encoding)
        __, e64, fraction = BINARY64.unpack(encoding)
        assert decision.e32 == e64 - 896
        assert decision.c1 == (1 if e64 - 896 > 0 else 0)
        assert decision.c2 == (1 if e64 - 1151 < 0 else 0)
        assert decision.zero == (1 if fraction & mask(29) else 0)

    def test_boundary_exponents(self):
        f = 0
        assert not reduce_binary64(BINARY64.pack(0, 896, f)).reduced  # E32=0
        assert reduce_binary64(BINARY64.pack(0, 897, f)).reduced      # E32=1
        assert reduce_binary64(BINARY64.pack(0, 1150, f)).reduced     # E32=254
        assert not reduce_binary64(BINARY64.pack(0, 1151, f)).reduced # inf enc

    def test_boundary_fractions(self):
        e = 1023
        assert reduce_binary64(BINARY64.pack(0, e, 0)).reduced
        assert reduce_binary64(BINARY64.pack(0, e, 1 << 29)).reduced
        assert not reduce_binary64(BINARY64.pack(0, e, 1)).reduced
        assert not reduce_binary64(BINARY64.pack(0, e, mask(29))).reduced

    def test_specials_never_reduce(self):
        for encoding in (BINARY64.pack(0, 0, 0),       # zero
                         BINARY64.pack(0, 0, 123),     # subnormal
                         BINARY64.pack(0, 2047, 0),    # inf
                         BINARY64.pack(0, 2047, 99)):  # NaN
            assert not reduce_binary64(encoding).reduced

    def test_known_values(self):
        assert is_reducible(encode(1.5, BINARY64))
        assert is_reducible(encode(-2.0, BINARY64))
        assert is_reducible(encode(1234.0, BINARY64))
        assert not is_reducible(encode(0.1, BINARY64))   # periodic tail
        assert not is_reducible(encode(1e300, BINARY64))  # out of range
        assert not is_reducible(encode(1e-300, BINARY64))

    def test_sign_preserved(self):
        d = reduce_binary64(encode(-1.5, BINARY64))
        assert decode(d.encoding32, BINARY32) == -1.5

    def test_widen_rejects_specials(self):
        with pytest.raises(FormatError):
            widen_binary32(BINARY32.pack(0, 0, 0))
        with pytest.raises(FormatError):
            widen_binary32(BINARY32.pack(0, 255, 0))


class TestPeriodicReducer:
    def test_one_third_reduces(self):
        """1/3 has a periodic significand (01 repeating): the extension
        demotes it within half a binary32 ulp."""
        reducer = PeriodicReducer()
        encoding = encode(1.0 / 3.0, BINARY64)
        assert not reduce_binary64(encoding).reduced   # exact alg refuses
        decision = reducer.reduce(encoding)
        assert decision.reduced
        v32 = decode(decision.encoding32, BINARY32)
        v64 = decode(encoding, BINARY64)
        ulp = math.ldexp(1.0, math.frexp(v64)[1] - 24)
        assert abs(v32 - v64) <= 0.5 * ulp

    def test_exact_cases_still_exact(self):
        reducer = PeriodicReducer()
        decision = reducer.reduce(encode(1.5, BINARY64))
        assert decision.reduced
        assert decode(decision.encoding32, BINARY32) == 1.5

    def test_aperiodic_refused(self):
        reducer = PeriodicReducer(max_period=8)
        encoding = encode(math.pi, BINARY64)
        assert not reducer.reduce(encoding).reduced

    def test_out_of_range_refused(self):
        reducer = PeriodicReducer()
        assert not reducer.reduce(encode(1e300, BINARY64)).reduced

    def test_expand_replays_period(self):
        reducer = PeriodicReducer()
        encoding = encode(1.0 / 3.0, BINARY64)
        decision = reducer.reduce(encoding)
        # 1/3's period is 2 and divides 23 unevenly; expansion is
        # best-effort but must stay within one binary32 ulp of the value.
        expanded = reducer.expand(decision.encoding32)
        v = decode(expanded, BINARY64)
        assert abs(v - 1.0 / 3.0) <= math.ldexp(1.0, -24)

    def test_period_validation(self):
        with pytest.raises(FormatError):
            PeriodicReducer(max_period=0)
        with pytest.raises(FormatError):
            PeriodicReducer(max_period=24)


class TestLossyReducer:
    def test_budget_zero_equals_exact(self):
        reducer = LossyReducer(max_ulp_error=0.0)
        assert not reducer.reduce(encode(0.1, BINARY64)).reduced
        assert reducer.reduce(encode(1.5, BINARY64)).reduced

    def test_half_ulp_accepts_roundable(self):
        reducer = LossyReducer(max_ulp_error=0.5)
        decision = reducer.reduce(encode(0.1, BINARY64))
        assert decision.reduced
        v32 = decode(decision.encoding32, BINARY32)
        assert abs(v32 - 0.1) <= math.ldexp(1.0, -4 - 24)

    @given(st.floats(min_value=1e-30, max_value=1e30))
    @settings(max_examples=100)
    def test_error_bound_respected(self, value):
        reducer = LossyReducer(max_ulp_error=0.5)
        encoding = encode(value, BINARY64)
        decision = reducer.reduce(encoding)
        if decision.reduced:
            v32 = decode(decision.encoding32, BINARY32)
            v64 = decode(encoding, BINARY64)
            __, e32, __ = BINARY32.unpack(decision.encoding32)
            ulp = 2.0 ** (e32 - 127 - 23)
            assert abs(v32 - v64) <= 0.5 * ulp

    def test_range_still_enforced(self):
        reducer = LossyReducer(max_ulp_error=100.0)
        assert not reducer.reduce(encode(1e300, BINARY64)).reduced

    def test_negative_budget_rejected(self):
        with pytest.raises(FormatError):
            LossyReducer(max_ulp_error=-1.0)
