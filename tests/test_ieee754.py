"""Tests for repro.bits.ieee754 (Table IV parameters and the codecs)."""

import math
import struct

import pytest
from hypothesis import given, strategies as st

from repro.bits.ieee754 import (
    BINARY16,
    BINARY32,
    BINARY64,
    BINARY128,
    decode,
    encode,
    format_by_name,
    round_significand,
)
from repro.errors import BitWidthError, FormatError


class TestTableIVParameters:
    """The format parameters must match the paper's Table IV exactly."""

    def test_storage(self):
        assert [f.storage_bits for f in (BINARY16, BINARY32, BINARY64,
                                         BINARY128)] == [16, 32, 64, 128]

    def test_precision(self):
        assert [f.precision for f in (BINARY16, BINARY32, BINARY64,
                                      BINARY128)] == [11, 24, 53, 113]

    def test_exponent_bits(self):
        assert [f.exponent_bits for f in (BINARY16, BINARY32, BINARY64,
                                          BINARY128)] == [5, 8, 11, 15]

    def test_emax(self):
        assert [f.emax for f in (BINARY16, BINARY32, BINARY64,
                                 BINARY128)] == [15, 127, 1023, 16383]

    def test_bias(self):
        assert [f.bias for f in (BINARY16, BINARY32, BINARY64,
                                 BINARY128)] == [15, 127, 1023, 16383]

    def test_trailing_significand(self):
        assert [f.trailing_significand_bits
                for f in (BINARY16, BINARY32, BINARY64,
                          BINARY128)] == [10, 23, 52, 112]

    def test_lookup(self):
        assert format_by_name("binary64") is BINARY64
        with pytest.raises(FormatError):
            format_by_name("binary31")


class TestPackUnpack:
    def test_roundtrip_fields(self):
        enc = BINARY64.pack(1, 1023, 0x8000000000000)
        assert BINARY64.unpack(enc) == (1, 1023, 0x8000000000000)

    def test_field_bounds(self):
        with pytest.raises(FormatError):
            BINARY64.pack(2, 0, 0)
        with pytest.raises(FormatError):
            BINARY64.pack(0, 2048, 0)
        with pytest.raises(FormatError):
            BINARY32.pack(0, 0, 1 << 23)

    def test_unpack_width_checked(self):
        with pytest.raises(BitWidthError):
            BINARY32.unpack(1 << 32)

    def test_classification(self):
        assert BINARY32.is_zero(BINARY32.pack(1, 0, 0))
        assert BINARY32.is_subnormal(BINARY32.pack(0, 0, 1))
        assert BINARY32.is_normal(BINARY32.pack(0, 1, 0))
        assert BINARY32.is_inf(BINARY32.pack(0, 255, 0))
        assert BINARY32.is_nan(BINARY32.pack(0, 255, 1))

    def test_significand_hidden_bit(self):
        assert BINARY32.significand(BINARY32.pack(0, 1, 0)) == 1 << 23
        assert BINARY32.significand(BINARY32.pack(0, 0, 5)) == 5


class TestCodecAgainstStruct:
    """Cross-check the reference codec against the C double/float codecs."""

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_binary64_encode_matches_struct(self, value):
        expected = struct.unpack("<Q", struct.pack("<d", value))[0]
        assert encode(value, BINARY64) == expected

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_binary32_encode_matches_struct(self, value):
        expected = struct.unpack("<I", struct.pack("<f", value))[0]
        assert encode(value, BINARY32) == expected

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_binary64_decode_matches_struct(self, encoding):
        expected = struct.unpack("<d", struct.pack("<Q", encoding))[0]
        got = decode(encoding, BINARY64)
        if math.isnan(expected):
            assert math.isnan(got)
        else:
            assert got == expected

    def test_specials(self):
        assert decode(encode(math.inf, BINARY32), BINARY32) == math.inf
        assert decode(encode(-math.inf, BINARY32), BINARY32) == -math.inf
        assert math.isnan(decode(encode(math.nan, BINARY64), BINARY64))
        assert encode(0.0, BINARY64) == 0
        assert encode(-0.0, BINARY64) == 1 << 63

    def test_overflow_to_inf(self):
        assert BINARY32.is_inf(encode(1e300, BINARY32))

    def test_underflow_to_zero(self):
        assert BINARY32.is_zero(encode(1e-300, BINARY32))

    def test_subnormal_binary32(self):
        smallest = math.ldexp(1.0, -149)
        assert encode(smallest, BINARY32) == 1
        assert decode(1, BINARY32) == smallest


class TestRoundSignificand:
    def test_truncate(self):
        assert round_significand(0b1111, 2, mode="truncate") == (0b11, 0)

    def test_injection_rounds_half_up(self):
        # 0b101 -> keep 2 bits, discarded '1' is exactly half: rounds up.
        assert round_significand(0b101, 2, mode="injection") == (0b11, 0)
        assert round_significand(0b100, 2, mode="injection") == (0b10, 0)

    def test_injection_overflow_renormalizes(self):
        # 0b111 + half -> 0b1000: carry out, renormalized.
        assert round_significand(0b111, 2, mode="injection") == (0b10, 1)

    def test_rne_tie_to_even(self):
        assert round_significand(0b101, 2, mode="rne") == (0b10, 0)
        assert round_significand(0b111, 2, mode="rne") == (0b10, 1)
        assert round_significand(0b1101, 3, mode="rne") == (0b110, 0)

    def test_rne_sticky_breaks_tie(self):
        # guard 1 + sticky 1 always rounds up.
        assert round_significand(0b1011, 2, mode="rne") == (0b11, 0)

    def test_explicit_sticky_operand(self):
        assert round_significand(0b1010, 2, mode="rne",
                                 sticky_lsbs=1) == (0b11, 0)
        assert round_significand(0b1010, 2, mode="rne",
                                 sticky_lsbs=0) == (0b10, 0)

    def test_errors(self):
        with pytest.raises(FormatError):
            round_significand(0, 2)
        with pytest.raises(FormatError):
            round_significand(0b11, 2)
        with pytest.raises(FormatError):
            round_significand(0b111, 2, mode="stochastic")

    @given(st.integers(min_value=1 << 10, max_value=(1 << 20) - 1))
    def test_rne_matches_float_rounding(self, product):
        kept, carry = round_significand(product, 8, mode="rne")
        d = product.bit_length() - 8
        exact = product / (1 << d)
        reference = round(exact)          # Python round is ties-to-even
        if carry:
            assert reference == 1 << 8
            assert kept == 1 << 7
        else:
            assert kept == reference

    @given(st.integers(min_value=1 << 10, max_value=(1 << 20) - 1))
    def test_injection_within_half_ulp(self, product):
        kept, carry = round_significand(product, 8, mode="injection")
        d = product.bit_length() - 8
        exact = product / (1 << d)
        value = (kept << 1) if carry else kept
        scale = 2 if carry else 1
        assert abs(value - exact) <= 0.5 * scale
