"""Tests for the unified observability layer (:mod:`repro.obs`).

Covers the metrics registry (instruments, snapshot/merge semantics,
fork guards, record caps), the Chrome trace-event spans, the enforced
``sim_stats`` schema, the per-net power attribution (bit-identical
headline numbers, block sums equal to the report total), and the
worker protocols: Monte Carlo shards and orchestrator jobs must merge
child metrics exactly once.
"""

import json
import os

import pytest

from repro import obs
from repro.hdl.library import default_library
from repro.hdl.module import Module
from repro.hdl.power.attribution import net_cells, net_stages
from repro.hdl.power.monte_carlo import estimate_power
from repro.obs.metrics import MAX_RECORDS_PER_NAME, MetricsRegistry
from repro.obs.quantile import (
    GAMMA,
    QuantileSketch,
    diff_bucket_dicts,
    merge_bucket_dicts,
    quantiles_from_aggregate,
)


@pytest.fixture(autouse=True)
def _clean_registry():
    """Each test sees (and leaves behind) an empty process registry."""
    obs.registry().reset()
    obs.drain_events()
    yield
    obs.registry().reset()
    obs.drain_events()


def _module_and_stim(n_cycles, seed=2017):
    from repro.eval.experiments import cached_module
    from repro.eval.workloads import WorkloadGenerator

    module = cached_module("r4")
    stim = WorkloadGenerator(seed).multiplier_stimulus(n_cycles)
    return module, stim


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------

class TestMetricsRegistry:
    def test_counters_gauges_timers(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.inc("c", 4)
        reg.gauge("g", 7.5)
        reg.observe("t", 0.25)
        reg.observe("t", 0.75)
        reg.observe_value("h", 10)
        snap = reg.snapshot()
        assert snap["schema"] == "repro.obs/1"
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 7.5
        timer = snap["timers"]["t"]
        assert {k: timer[k] for k in ("count", "total", "min", "max")} \
            == {"count": 2, "total": 1.0, "min": 0.25, "max": 0.75}
        assert sum(timer["buckets"].values()) == 2
        assert snap["histograms"]["h"]["count"] == 1

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.record("rows", {"x": 1})
        reg.annotate("path", "/tmp/x")
        round_tripped = json.loads(json.dumps(reg.snapshot()))
        assert round_tripped["counters"]["a"] == 1
        assert round_tripped["records"]["rows"] == [{"x": 1}]
        assert round_tripped["meta"]["path"] == "/tmp/x"

    def test_merge_adds_counters_and_appends_records(self):
        parent, child = MetricsRegistry(), MetricsRegistry()
        parent.inc("jobs", 2)
        child.inc("jobs", 3)
        child.record("rows", {"i": 0})
        parent.merge(child.snapshot())
        snap = parent.snapshot()
        assert snap["counters"]["jobs"] == 5
        assert snap["records"]["rows"] == [{"i": 0}]

    def test_merge_combines_timers(self):
        parent, child = MetricsRegistry(), MetricsRegistry()
        parent.observe("t", 1.0)
        child.observe("t", 3.0)
        parent.merge(child.snapshot())
        agg = parent.snapshot()["timers"]["t"]
        assert {k: agg[k] for k in ("count", "total", "min", "max")} \
            == {"count": 2, "total": 4.0, "min": 1.0, "max": 3.0}
        assert sum(agg["buckets"].values()) == 2

    def test_merge_rejects_wrong_schema(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="schema"):
            reg.merge({"schema": "other/9", "counters": {}})
        with pytest.raises(ValueError, match="schema"):
            reg.merge(None)

    def test_merge_twice_double_counts_by_design(self):
        # The no-double-count guarantee comes from task_collect draining
        # exactly once per task, not from merge() deduplicating.
        parent, child = MetricsRegistry(), MetricsRegistry()
        child.inc("n")
        snap = child.snapshot()
        parent.merge(snap)
        parent.merge(snap)
        assert parent.snapshot()["counters"]["n"] == 2

    def test_record_cap_counts_drops(self):
        reg = MetricsRegistry()
        for i in range(MAX_RECORDS_PER_NAME + 5):
            reg.record("rows", {"i": i})
        snap = reg.snapshot()
        assert len(snap["records"]["rows"]) == MAX_RECORDS_PER_NAME
        assert snap["counters"]["rows.dropped"] == 5

    def test_disabled_registry_is_a_noop(self):
        reg = MetricsRegistry(enabled=False)
        reg.inc("c")
        reg.record("rows", {})
        snap = reg.snapshot()
        assert snap["counters"] == {} and snap["records"] == {}
        reg.set_enabled(True)
        reg.inc("c")
        assert reg.snapshot()["counters"]["c"] == 1

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.gauge("g", 1)
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"] == {} and snap["gauges"] == {}


# ----------------------------------------------------------------------
# quantile sketches
# ----------------------------------------------------------------------

class TestQuantileSketch:
    def test_quantile_within_relative_error_bound(self):
        sketch = QuantileSketch()
        values = [1.5 ** (i % 23) + i * 0.01 for i in range(500)]
        for v in values:
            sketch.add(v)
        exact = sorted(values)
        for q in (0.5, 0.9, 0.95, 0.99):
            true = exact[round(q * (len(exact) - 1))]
            est = sketch.quantile(q)
            assert abs(est - true) / true <= (GAMMA - 1.0)

    def test_merge_is_associative_and_commutative(self):
        def make(samples):
            s = QuantileSketch()
            for v in samples:
                s.add(v)
            return s

        sets = ([0.1, 2.0, 2.0, 300.0], [0.0, -1.0, 5.5],
                [7.0, 0.002, 90000.0, 0.0])

        def fold(order):
            acc = QuantileSketch()
            for i in order:
                acc.merge(make(sets[i]))
            return acc

        reference = fold((0, 1, 2))
        for order in ((2, 1, 0), (1, 0, 2), (0, 2, 1)):
            other = fold(order)
            assert other.buckets == reference.buckets
            assert other.count == reference.count
        # (a + b) + c == a + (b + c) on the raw bucket tables too.
        left = merge_bucket_dicts(
            merge_bucket_dicts(dict(make(sets[0]).buckets),
                               make(sets[1]).buckets),
            make(sets[2]).buckets)
        bc = merge_bucket_dicts(dict(make(sets[1]).buckets),
                                make(sets[2]).buckets)
        right = merge_bucket_dicts(dict(make(sets[0]).buckets), bc)
        assert left == right == reference.buckets

    def test_merged_sketch_equals_single_stream(self):
        stream = [0.01 * i + 0.5 for i in range(200)]
        whole = QuantileSketch()
        for v in stream:
            whole.add(v)
        a, b = QuantileSketch(), QuantileSketch()
        for v in stream[:77]:
            a.add(v)
        for v in stream[77:]:
            b.add(v)
        a.merge(b)
        assert a.buckets == whole.buckets
        assert a.quantile(0.95) == whole.quantile(0.95)

    def test_diff_bucket_dicts_scopes_a_run(self):
        before = QuantileSketch()
        for v in (1.0, 2.0, 4.0):
            before.add(v)
        after = QuantileSketch.from_dict(before.to_dict())
        run = [10.0, 20.0, 20.0]
        for v in run:
            after.add(v)
        scoped = QuantileSketch.from_dict(
            diff_bucket_dicts(after.to_dict(), before.to_dict()))
        only_run = QuantileSketch()
        for v in run:
            only_run.add(v)
        assert scoped.buckets == only_run.buckets
        assert scoped.count == 3

    def test_zero_and_negative_pseudo_buckets(self):
        sketch = QuantileSketch()
        for v in (-1.0, 0.0, 0.0, 8.0):
            sketch.add(v)
        assert sketch.quantile(0.0, lo=-1.0) == -1.0
        assert sketch.quantile(0.5) == 0.0
        assert sketch.quantile(1.0, hi=8.0) \
            == pytest.approx(8.0, rel=GAMMA - 1.0)

    def test_registry_aggregate_roundtrips_through_json(self):
        reg = MetricsRegistry()
        for i in range(1, 101):
            reg.observe_value("lat", float(i))
        snap = json.loads(json.dumps(reg.snapshot()))
        qs = quantiles_from_aggregate(snap["histograms"]["lat"])
        assert set(qs) == {"p50", "p95", "p99"}
        assert qs["p50"] == pytest.approx(50.0, rel=GAMMA - 1.0)
        assert qs["p95"] == pytest.approx(95.0, rel=GAMMA - 1.0)
        # min/max clamps keep the tail honest.
        assert qs["p99"] <= 100.0

    def test_merged_registries_answer_quantiles(self):
        parent, child = MetricsRegistry(), MetricsRegistry()
        for i in range(50):
            parent.observe("t", 0.001 * (i + 1))
        for i in range(50):
            child.observe("t", 0.001 * (i + 51))
        parent.merge(child.snapshot())
        qs = quantiles_from_aggregate(parent.snapshot()["timers"]["t"])
        assert qs["p50"] == pytest.approx(0.050, rel=2 * (GAMMA - 1.0))


# ----------------------------------------------------------------------
# trace spans
# ----------------------------------------------------------------------

class TestTrace:
    def test_span_records_complete_event(self):
        obs.start_trace()
        try:
            with obs.span("unit:test", cat="test", detail=7) as note:
                note["extra"] = "yes"
        finally:
            events = obs.stop_trace()
        assert len(events) == 1
        ev = events[0]
        assert ev["name"] == "unit:test" and ev["ph"] == "X"
        assert ev["cat"] == "test"
        assert ev["dur"] >= 0 and ev["pid"] == os.getpid()
        assert ev["args"]["detail"] == 7 and ev["args"]["extra"] == "yes"
        assert ev["args"]["span"]          # spans now carry identity
        assert "parent" not in ev["args"]  # top-level span has no parent

    def test_spans_are_noops_when_disabled(self):
        assert not obs.is_tracing()
        with obs.span("ignored"):
            pass
        obs.complete_event("ignored", 0.0, 1.0)
        assert obs.drain_events() == []

    def test_trace_json_is_perfetto_shaped(self, tmp_path):
        obs.start_trace()
        try:
            with obs.span("a"):
                pass
            path = tmp_path / "trace.json"
            n = obs.write_trace(str(path))
        finally:
            obs.stop_trace()
        assert n == 1
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"
        for key in ("name", "cat", "ph", "ts", "dur", "pid", "tid"):
            assert key in doc["traceEvents"][0]

    def test_task_payload_roundtrip(self):
        obs.start_trace()
        try:
            obs.task_begin()
            obs.registry().inc("child.work", 2)
            with obs.span("child:op"):
                pass
            payload = obs.task_collect()
            # Simulate the parent side: reset, then merge.
            obs.task_begin()
            obs.task_merge(payload)
            snap = obs.registry().snapshot()
            events = obs.drain_events()
        finally:
            obs.stop_trace()
        assert snap["counters"]["child.work"] == 2
        assert [ev["name"] for ev in events] == ["child:op"]
        # The trace buffer drains on collect; metrics are scoped by the
        # *next* task_begin (pool workers are reused across tasks).
        assert obs.task_collect()["trace"] == []
        obs.task_begin()
        assert "child.work" \
            not in obs.task_collect()["metrics"]["counters"]


# ----------------------------------------------------------------------
# stitched distributed traces
# ----------------------------------------------------------------------

def _assert_stitched(events):
    """No orphan parents; every flow arrow resolves head-to-tail."""
    spans = {ev["args"]["span"] for ev in events
             if ev.get("ph") == "X" and "span" in ev.get("args", {})}
    orphans = [ev["args"]["parent"] for ev in events
               if ev.get("ph") == "X"
               and ev.get("args", {}).get("parent") not in spans | {None}]
    assert orphans == [], f"orphan parent span ids: {orphans}"
    starts = sorted((ev["cat"], ev["name"], ev["id"])
                    for ev in events if ev.get("ph") == "s")
    ends = sorted((ev["cat"], ev["name"], ev["id"])
                  for ev in events if ev.get("ph") == "f")
    assert starts == ends, "unmatched flow arrows"
    return spans


def _tiny_graph(n=3):
    from repro.eval.orchestrator import job

    return [job(f"leaf{i}", "repro.eval.fault_injection:chunk_plan",
                n_mutations=4 + i, seed=1, chunks=2) for i in range(n)]


class TestTraceStitching:
    @pytest.mark.parametrize("backend", ["fork", "workers"])
    def test_worker_leaves_stitch_into_one_trace(self, backend):
        from repro.eval.orchestrator import run_graph

        obs.start_trace()
        try:
            run_graph(_tiny_graph(), workers=2, cache=None,
                      backend=backend)
        finally:
            events = obs.stop_trace()
        spans = _assert_stitched(events)
        by_name = {}
        for ev in events:
            if ev.get("ph") == "X":
                by_name.setdefault(ev["name"], []).append(ev)
        assert "graph:run" in by_name
        root = by_name["graph:run"][0]["args"]["span"]
        leaves = [ev for name, evs in by_name.items()
                  for ev in evs if name.startswith("leaf:leaf")]
        assert len(leaves) == 3
        for ev in leaves:
            # Remote leaf spans adopt the coordinator's graph:run span.
            assert ev["args"]["parent"] == root
            assert ev["args"]["span"] in spans
        # One flow arrow per dispatched leaf, coordinator -> worker.
        flows = [ev for ev in events if ev.get("ph") == "s"]
        assert {ev["name"] for ev in flows} \
            == {"sched:leaf0", "sched:leaf1", "sched:leaf2"}

    def test_serve_lane_flows_stitch(self):
        from repro.serve.server import Server
        from repro.serve.transactions import Transaction

        obs.start_trace()
        try:
            server = Server(max_batch=8, max_wait=0.005)
            tickets = [server.submit(Transaction.int64(i + 1, i + 3))
                       for i in range(6)]
            server.drain()
            server.stop()
            for t in tickets:
                t.result(timeout=0)
        finally:
            events = obs.stop_trace()
        _assert_stitched(events)
        flows = [ev for ev in events if ev.get("ph") == "s"]
        assert len(flows) == 6      # one client->flush arrow per submit
        assert {ev["name"] for ev in flows} == {"serve:tx:int64"}
        flushes = [ev for ev in events if ev.get("ph") == "X"
                   and ev["name"] == "serve:flush:int64"]
        assert flushes
        flush_spans = {ev["args"]["span"] for ev in flushes}
        runs = [ev for ev in events if ev.get("ph") == "X"
                and ev["name"] == "serve:run:int64"]
        assert runs
        for ev in runs:             # engine work nests under its flush
            assert ev["args"]["parent"] in flush_spans


# ----------------------------------------------------------------------
# sim_stats schema
# ----------------------------------------------------------------------

class TestSimStatsSchema:
    def test_normalize_fills_defaults_and_rate(self):
        stats = obs.normalize_sim_stats(
            {"engine": "zero-delay", "transitions": 10, "elapsed_s": 2.0})
        obs.assert_sim_stats_schema(stats)
        assert stats["kernel"] == "none"
        assert stats["transitions_per_s"] == pytest.approx(5.0)

    def test_normalize_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown sim_stats"):
            obs.normalize_sim_stats({"engin": "typo"})

    def test_assert_schema_rejects_partial(self):
        with pytest.raises(ValueError, match="missing"):
            obs.assert_sim_stats_schema({"engine": "wheel"})
        with pytest.raises(ValueError):
            obs.assert_sim_stats_schema(None)

    def test_both_engines_emit_identical_key_sets(self):
        module, stim = _module_and_stim(4)
        lib = default_library()
        glitchy = estimate_power(module, lib, stim, 4)
        flat = estimate_power(module, lib, stim, 4, glitch=False)
        obs.assert_sim_stats_schema(glitchy.sim_stats)
        obs.assert_sim_stats_schema(flat.sim_stats)
        assert set(glitchy.sim_stats) == set(flat.sim_stats)
        assert flat.sim_stats["engine"] == "zero-delay"
        assert flat.sim_stats["transitions"] == 3
        assert flat.sim_stats["transitions_per_s"] > 0


# ----------------------------------------------------------------------
# power attribution
# ----------------------------------------------------------------------

class TestPowerAttribution:
    def test_headline_numbers_bit_identical_with_attribution(self):
        module, stim = _module_and_stim(6)
        lib = default_library()
        plain = estimate_power(module, lib, stim, 6)
        attributed = estimate_power(module, lib, stim, 6, attribution=True)
        assert plain.attribution is None
        assert attributed.attribution is not None
        assert attributed.dynamic_mw == plain.dynamic_mw
        assert attributed.register_mw == plain.register_mw
        assert attributed.leakage_mw == plain.leakage_mw
        assert attributed.zero_delay_dynamic_mw == plain.zero_delay_dynamic_mw
        assert attributed.by_block_mw == plain.by_block_mw
        assert attributed.total_toggles == plain.total_toggles

    def test_blocks_sum_to_report_total(self):
        module, stim = _module_and_stim(6)
        lib = default_library()
        rep = estimate_power(module, lib, stim, 6, attribution=True)
        att = rep.attribution
        for rollup in (att.by_block, att.by_cell, att.by_stage):
            total = sum(e["total_mw"] for e in rollup.values())
            assert total == pytest.approx(rep.total_mw, rel=1e-9)
        assert att.glitch_mw() == pytest.approx(rep.glitch_mw, rel=1e-9)
        assert att.functional_mw() \
            == pytest.approx(rep.zero_delay_dynamic_mw, rel=1e-9)

    def test_no_glitch_attribution_has_zero_glitch(self):
        module, stim = _module_and_stim(4)
        rep = estimate_power(module, default_library(), stim, 4,
                             glitch=False, attribution=True)
        assert rep.attribution.glitch_mw() == 0.0
        assert rep.attribution.glitch_retention == 0.0

    def test_scaled_report_scales_attribution(self):
        module, stim = _module_and_stim(4)
        rep = estimate_power(module, default_library(), stim, 4,
                             attribution=True)
        scaled = rep.scaled_to(880.0)
        assert scaled.attribution.total_mw() \
            == pytest.approx(scaled.total_mw, rel=1e-9)
        # Leakage must not scale with frequency.
        assert sum(e["leakage_mw"]
                   for e in scaled.attribution.by_block.values()) \
            == pytest.approx(rep.leakage_mw, rel=1e-9)

    def test_net_stages_and_cells(self):
        m = Module("pipe")
        a = m.input("a", 2)
        x = m.gate("AND2", a[0], a[1])
        (q,) = m.register_bus([x], stage=1)
        y = m.gate("INV", q)
        m.output("o", [y])
        stages = net_stages(m)
        cells = net_cells(m)
        assert stages[a[0]] == 1 and stages[x] == 1
        assert stages[q] == 2 and stages[y] == 2
        assert cells[x] == "AND2" and cells[q] == "DFF"
        assert cells[y] == "INV" and cells[a[0]] == "(input)"

    def test_render_mentions_blocks_and_hot_nets(self):
        module, stim = _module_and_stim(4)
        rep = estimate_power(module, default_library(), stim, 4,
                             attribution=True)
        text = rep.attribution.render(top=5)
        assert "by named sub-block" in text
        assert "by cell type" in text
        assert "by pipeline stage" in text
        assert "hot nets" in text


# ----------------------------------------------------------------------
# fork safety: Monte Carlo shards and orchestrator workers
# ----------------------------------------------------------------------

class TestWorkerMerge:
    def test_sharded_monte_carlo_merges_without_double_count(self):
        module, stim = _module_and_stim(8)
        lib = default_library()
        reg = obs.registry()

        serial = estimate_power(module, lib, stim, 8)
        serial_snap = reg.snapshot()
        reg.reset()
        sharded = estimate_power(module, lib, stim, 8, workers=2)
        sharded_snap = reg.snapshot()

        # Exactly-once merge: both runs replay the same 7 transitions.
        assert serial_snap["counters"]["sim.replay.transitions"] == 7
        assert sharded_snap["counters"]["sim.replay.transitions"] == 7
        assert (sharded_snap["counters"]["sim.replay.events"]
                == serial_snap["counters"]["sim.replay.events"])
        shards = sharded_snap["records"]["power.shards"]
        assert len(shards) == 2
        assert sum(s["transitions"] for s in shards) == 7
        for s in shards:
            assert s["workers"] == 1 and s["elapsed_s"] >= 0
        # The headline power merge is untouched by the obs payloads.
        assert sharded.dynamic_mw == serial.dynamic_mw
        assert (sharded.sim_stats["events_processed"]
                == serial.sim_stats["events_processed"])
        assert sharded.sim_stats["elapsed_s"] > 0
        assert sharded.sim_stats["transitions_per_s"] > 0

    def test_orchestrator_workers_merge_job_metrics(self):
        from repro.eval.orchestrator import run_experiment

        reg = obs.registry()
        # Explicit backend: the auto policy would downgrade an
        # oversubscribed request to inline on small boxes, but this
        # test is *about* worker-process metrics merging.
        result = run_experiment("table3", workers=2, cache=False,
                                n_cycles=4, backend="fork")
        snap = reg.snapshot()
        assert set(result.power_mw) \
            == {"comb_r4", "comb_r16", "pipe_r4", "pipe_r16"}
        # 4 leaves ran in workers + 1 merge inline — each counted once.
        assert snap["counters"]["orchestrator.jobs"] == 5
        assert snap["counters"]["orchestrator.jobs.worker"] == 4
        assert snap["counters"]["orchestrator.jobs.inline"] == 1
        names = [r["name"] for r in snap["records"]["orchestrator.jobs"]]
        assert sorted(names) == sorted(
            ["table3", "table3/comb_r4", "table3/comb_r16",
             "table3/pipe_r4", "table3/pipe_r16"])
        # The workers' own estimator metrics merged into the parent:
        # one estimate per leaf, none double-counted.
        assert snap["counters"]["power.estimates"] == 4
        assert len(snap["records"]["power.estimates"]) == 4

    def test_orchestrator_serial_matches_worker_counters(self):
        from repro.eval.orchestrator import run_experiment

        reg = obs.registry()
        run_experiment("table3", workers=0, cache=False, n_cycles=4)
        serial = reg.snapshot()
        reg.reset()
        run_experiment("table3", workers=2, cache=False, n_cycles=4,
                       backend="fork")
        parallel = reg.snapshot()
        for key in ("orchestrator.jobs", "power.estimates",
                    "sim.replay.transitions"):
            assert serial["counters"][key] == parallel["counters"][key]


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------

class TestCLIs:
    def test_power_breakdown_cli_fp32x2(self, capsys):
        from repro.eval.power_breakdown import main

        assert main(["--format", "fp32x2", "--cycles", "4"]) == 0
        out = capsys.readouterr().out
        assert "attribution check: OK" in out
        assert "by named sub-block" in out

    def test_power_breakdown_cli_json(self, capsys):
        from repro.eval.power_breakdown import main

        assert main(["--module", "r4", "--cycles", "4", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.power_breakdown/1"
        blocks = doc["attribution"]["by_block"]
        total = sum(e["total_mw"] for e in blocks.values())
        assert total == pytest.approx(doc["total_mw"], rel=1e-9)
        obs.assert_sim_stats_schema(doc["sim_stats"])

    def test_report_cli_trace_and_metrics_json(self, tmp_path, capsys):
        from repro.eval.report import main

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        code = main(["--cycles", "4", "--filter", "table4",
                     "--workers", "1", "--no-cache",
                     "--output", str(tmp_path / "report.txt"),
                     "--trace", str(trace_path),
                     "--metrics-json", str(metrics_path)])
        assert code == 0
        obs.stop_trace()         # main() leaves tracing on; clean up
        doc = json.loads(trace_path.read_text())
        names = [ev["name"] for ev in doc["traceEvents"]]
        assert "job:table4" in names
        assert "report:experiments" in names and "report:render" in names
        metrics = json.loads(metrics_path.read_text())
        assert metrics["schema"] == "repro.obs/1"
        assert metrics["counters"]["report.jobs"] == 1
        assert metrics["records"]["report.jobs"][0]["name"] == "table4"
        out = capsys.readouterr().out
        assert "1 jobs, 0 served from cache" in out

    def test_report_json_matches_metrics_json(self, tmp_path, capsys):
        from repro.eval.report import main

        metrics_path = tmp_path / "metrics.json"
        code = main(["--cycles", "4", "--filter", "table4",
                     "--workers", "1", "--no-cache", "--json",
                     "--output", str(tmp_path / "report.txt"),
                     "--metrics-json", str(metrics_path)])
        assert code == 0
        printed = json.loads(capsys.readouterr().out)
        written = json.loads(metrics_path.read_text())
        assert printed == written
