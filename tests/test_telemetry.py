"""Live telemetry: HTTP endpoints, exposition, sampler, perf gate.

Exercises the observability tentpole end-to-end over real sockets: the
Prometheus text exposition (format sanity plus quantile rows from the
log-bucket sketches), the ``/metrics`` / ``/metrics.json`` /
``/series.json`` / ``/healthz`` routes, the background gauge sampler's
ring buffers, the serve-server integration (health checks plus per-lane
latency summaries during a live burst), the loadgen SLO gate, and the
``python -m repro perf`` record/check regression gate — including a
demonstrable failure on an injected regression.
"""

import json
import re
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.eval import perf
from repro.obs.http import (
    TelemetryServer,
    metric_name,
    prometheus_exposition,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.sampler import TimeSeriesSampler


@pytest.fixture(autouse=True)
def _clean_registry():
    obs.registry().reset()
    obs.drain_events()
    yield
    obs.registry().reset()
    obs.drain_events()


def _get(url, timeout=10):
    """(status, headers, body-str) — 4xx/5xx bodies included."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), \
                resp.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read().decode("utf-8")


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------

#: One exposition sample line: name, optional labels, and a float.
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? "
    r"(NaN|[+-]Inf|[-+0-9.e]+)$")


class TestExposition:
    def test_metric_name_sanitizes_dots(self):
        assert metric_name("serve.queue.depth.fp32x2") \
            == "repro_serve_queue_depth_fp32x2"
        assert metric_name("jobs", "_total") == "repro_jobs_total"

    def test_counters_gauges_and_summaries(self):
        reg = MetricsRegistry()
        reg.inc("jobs", 3)
        reg.gauge("depth", 7.5)
        for i in range(1, 101):
            reg.observe_value("lat", float(i))
        text = prometheus_exposition(reg.snapshot())
        lines = text.splitlines()
        assert "# TYPE repro_jobs_total counter" in lines
        assert "repro_jobs_total 3.0" in lines
        assert "repro_depth 7.5" in lines
        assert "repro_lat_count 100.0" in lines
        quantile_rows = {}
        for line in lines:
            m = re.match(r'repro_lat\{quantile="([0-9.]+)"\} (\S+)', line)
            if m:
                quantile_rows[m.group(1)] = float(m.group(2))
        assert set(quantile_rows) == {"0.5", "0.95", "0.99"}
        assert quantile_rows["0.5"] == pytest.approx(50.0, rel=0.05)
        assert quantile_rows["0.5"] <= quantile_rows["0.95"] \
            <= quantile_rows["0.99"]

    def test_every_sample_line_parses(self):
        reg = MetricsRegistry()
        reg.inc("a.b.c")
        reg.gauge("weird-name!x", float("inf"))
        reg.observe("t", 0.01)
        for line in prometheus_exposition(reg.snapshot()).splitlines():
            if not line or line.startswith("#"):
                continue
            assert _SAMPLE_RE.match(line), f"bad exposition line: {line!r}"


# ----------------------------------------------------------------------
# the HTTP endpoint
# ----------------------------------------------------------------------

class TestTelemetryServer:
    def test_routes_and_content_types(self):
        reg = obs.registry()
        reg.inc("unit.requests", 2)
        reg.observe_value("unit.lat", 5.0)
        with TelemetryServer() as server:
            status, headers, text = _get(server.url + "/metrics")
            assert status == 200
            assert headers["Content-Type"].startswith("text/plain")
            assert "repro_unit_requests_total 2.0" in text
            assert 'repro_unit_lat{quantile="0.99"}' in text

            status, headers, body = _get(server.url + "/metrics.json")
            assert status == 200
            snap = json.loads(body)
            assert snap["schema"] == "repro.obs/1"
            assert snap["counters"]["unit.requests"] == 2

            status, __, body = _get(server.url + "/healthz")
            assert status == 200 and json.loads(body)["ok"] is True

            status, __, __ = _get(server.url + "/nope")
            assert status == 404
        # Scrapes themselves were counted.
        assert reg.counter_value("telemetry.requests") == 4

    def test_failing_health_check_returns_503(self):
        with TelemetryServer() as server:
            server.add_health_check("good", lambda: {"ok": True})
            server.add_health_check("bad", lambda: {"ok": False, "n": 3})
            status, __, body = _get(server.url + "/healthz")
            assert status == 503
            verdict = json.loads(body)
            assert verdict["ok"] is False
            assert verdict["checks"]["bad"] == {"ok": False, "n": 3}
            assert verdict["checks"]["good"]["ok"] is True

    def test_raising_health_check_is_a_failure_not_a_crash(self):
        with TelemetryServer() as server:
            server.add_health_check(
                "boom", lambda: (_ for _ in ()).throw(RuntimeError("x")))
            status, __, body = _get(server.url + "/healthz")
            assert status == 503
            assert "RuntimeError" in json.loads(body)["checks"]["boom"]["error"]

    def test_series_endpoint_serves_sampler_rings(self):
        sam = TimeSeriesSampler(interval_s=0.01)
        sam.add_source("unit.level", lambda: 4.5)
        sam.sample_once(now=1.0)
        sam.sample_once(now=2.0)
        with TelemetryServer(sampler=sam) as server:
            status, __, body = _get(server.url + "/series.json")
        assert status == 200
        doc = json.loads(body)
        assert doc["schema"] == "repro.obs.series/1"
        assert [v for __, v in doc["series"]["unit.level"]] == [4.5, 4.5]


# ----------------------------------------------------------------------
# background sampler
# ----------------------------------------------------------------------

class TestSampler:
    def test_sample_once_fills_ring_and_mirrors_gauge(self):
        reg = MetricsRegistry()
        sam = TimeSeriesSampler(interval_s=0.01, capacity=3, registry=reg)
        sam.add_source("q", lambda: 2.0)
        for t in range(5):
            sam.sample_once(now=float(t))
        series = sam.series()["series"]["q"]
        assert len(series) == 3                # ring capacity
        assert [t for t, __ in series] == [2.0, 3.0, 4.0]
        assert reg.gauge_value("q") == 2.0

    def test_none_skips_and_errors_count(self):
        reg = MetricsRegistry()
        sam = TimeSeriesSampler(interval_s=0.01, registry=reg)
        sam.add_source("sometimes", lambda: None)
        sam.add_source("broken", lambda: 1 / 0)
        sam.sample_once(now=1.0)
        series = sam.series()["series"]
        assert series["sometimes"] == []
        assert reg.counter_value("sampler.errors") == 1

    def test_background_thread_ticks(self):
        import time

        sam = TimeSeriesSampler(interval_s=0.005)
        sam.add_source("x", lambda: 1.0)
        with sam:
            deadline = time.monotonic() + 5.0
            while not sam.series()["series"]["x"]:
                assert time.monotonic() < deadline
                time.sleep(0.005)
        assert not sam.running


# ----------------------------------------------------------------------
# live burst: serve.Server + telemetry + loadgen SLO
# ----------------------------------------------------------------------

class TestServeTelemetry:
    def test_loadgen_sketch_quantiles_and_live_scrape(self):
        from repro.serve.loadgen import run_load

        scraped = {}

        def scrape(server):
            assert server.telemetry is not None
            # Force a sampler tick: a short burst can finish inside the
            # sampling interval, and the queue-depth gauges only appear
            # once the ring buffers have sampled the sources.
            obs.sampler().sample_once()
            __, __, scraped["metrics"] = \
                _get(server.telemetry.url + "/metrics")
            scraped["health"] = json.loads(
                _get(server.telemetry.url + "/healthz")[2])

        rec = run_load(requests=48, mix={"int64": 1.0}, burst_mean=8,
                       telemetry_port=0, before_stop=scrape)
        assert rec["mismatches"] == 0
        assert rec["latency_quantile_source"] == "sketch"
        lat = rec["latency_ms"]
        assert lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]
        # Scraped mid-flight: per-lane p99 and queue-depth series live.
        assert 'repro_serve_int64_latency_ms{quantile="0.99"}' \
            in scraped["metrics"]
        assert "repro_serve_queue_depth_int64" in scraped["metrics"]
        health = scraped["health"]
        assert health["ok"] is True
        assert health["checks"]["dispatcher"]["ok"] is True
        assert "int64" in health["checks"]["lanes"]["ready"]

    def test_loadgen_slo_gate_breach_exits_nonzero(self, capsys):
        from repro.serve.loadgen import main

        assert main(["--requests", "12", "--burst", "4",
                     "--slo-p99-ms", "1e-6"]) == 2
        assert "SLO BREACH" in capsys.readouterr().err

    def test_loadgen_slo_gate_pass(self, capsys):
        from repro.serve.loadgen import main

        assert main(["--requests", "12", "--burst", "4",
                     "--slo-p99-ms", "1e9"]) == 0
        assert "SLO ok" in capsys.readouterr().err


# ----------------------------------------------------------------------
# perf-history store and regression gate
# ----------------------------------------------------------------------

def _write_bench(root, name, results):
    doc = {"schema": "repro.bench/1", "bench": name, "results": results}
    (root / f"BENCH_{name}.json").write_text(json.dumps(doc))


class TestPerfGate:
    def test_record_then_check_passes(self, tmp_path):
        hist = tmp_path / "history"
        results = {"speedup": 30.0,
                   "coalesced": {"requests_per_s": 1500.0},
                   "wide": {"requests_per_s": 3000.0},
                   "wide_speedup_vs_coalesced64": 2.0}
        entry = perf.record("serve", results, history_dir=hist)
        assert entry["schema"] == "repro.perf/1"
        assert entry["metrics"] == {"speedup": 30.0,
                                    "coalesced.requests_per_s": 1500.0,
                                    "wide.requests_per_s": 3000.0,
                                    "wide_speedup_vs_coalesced64": 2.0}
        verdicts = perf.check("serve", results, history_dir=hist)
        assert all(v["ok"] for v in verdicts)
        assert {v["status"] for v in verdicts} == {"ok"}

    def test_injected_regression_fails(self, tmp_path):
        hist = tmp_path / "history"
        for speedup in (28.0, 30.0, 29.0, 31.0, 30.0):
            perf.record("serve", {"speedup": speedup,
                                  "coalesced": {"requests_per_s": 1000.0}},
                        history_dir=hist)
        # Structural regression: 30x -> 10x is far beyond rel_tol=0.30.
        verdicts = perf.check(
            "serve", {"speedup": 10.0,
                      "coalesced": {"requests_per_s": 1000.0}},
            history_dir=hist)
        by_metric = {v["metric"]: v for v in verdicts}
        assert by_metric["speedup"]["status"] == "regressed"
        assert by_metric["speedup"]["ok"] is False
        assert by_metric["coalesced.requests_per_s"]["status"] == "ok"

    def test_missing_metric_fails_when_baselined(self, tmp_path):
        hist = tmp_path / "history"
        perf.record("fault_sim", {"per_mutation_speedup": 50.0},
                    history_dir=hist)
        verdicts = perf.check("fault_sim", {"something_else": 1},
                              history_dir=hist)
        assert verdicts[0]["status"] == "missing"
        assert verdicts[0]["ok"] is False

    def test_no_history_is_not_a_failure(self, tmp_path):
        verdicts = perf.check("serve", {"speedup": 5.0},
                              history_dir=tmp_path / "empty")
        assert all(v["status"] == "no-baseline" and v["ok"]
                   for v in verdicts)

    def test_lower_is_better_direction(self, tmp_path):
        hist = tmp_path / "history"
        legs = {"legs": {"metrics": {"overhead_vs_disabled": 0.01},
                         "trace": {"overhead_vs_disabled": 0.05}}}
        perf.record("obs_overhead", legs, history_dir=hist)
        # Within tolerance: 2x the baseline but under the abs floor.
        ok = perf.check("obs_overhead",
                        {"legs": {"metrics": {"overhead_vs_disabled": 0.025},
                                  "trace": {"overhead_vs_disabled": 0.06}}},
                        history_dir=hist)
        assert all(v["ok"] for v in ok)
        # Way past rel_tol + abs_floor: fails.
        bad = perf.check("obs_overhead",
                         {"legs": {"metrics": {"overhead_vs_disabled": 0.30},
                                   "trace": {"overhead_vs_disabled": 0.06}}},
                         history_dir=hist)
        assert any(v["status"] == "regressed" for v in bad)

    def test_cli_check_fails_on_injected_regression(self, tmp_path,
                                                    capsys):
        hist = tmp_path / "history"
        root = tmp_path
        for speedup in (30.0, 29.0, 31.0):
            perf.record("serve", {"speedup": speedup,
                                  "coalesced": {"requests_per_s": 900.0}},
                        history_dir=hist)
        _write_bench(root, "serve",
                     {"speedup": 30.5,
                      "coalesced": {"requests_per_s": 910.0}})
        assert perf.main(["check", "serve", "--root", str(root),
                          "--history", str(hist)]) == 0
        _write_bench(root, "serve",
                     {"speedup": 9.0,
                      "coalesced": {"requests_per_s": 905.0}})
        assert perf.main(["check", "serve", "--root", str(root),
                          "--history", str(hist)]) == 1
        assert "perf gate FAILED" in capsys.readouterr().err

    def test_cli_record_appends_jsonl(self, tmp_path, capsys):
        hist = tmp_path / "history"
        _write_bench(tmp_path, "fault_sim", {"per_mutation_speedup": 44.0})
        assert perf.main(["record", "fault_sim", "--root", str(tmp_path),
                          "--history", str(hist)]) == 0
        lines = (hist / "fault_sim.jsonl").read_text().splitlines()
        assert len(lines) == 1
        entry = json.loads(lines[0])
        assert entry["bench"] == "fault_sim"
        assert entry["metrics"]["per_mutation_speedup"] == 44.0

    def test_legacy_flat_bench_files_still_load(self, tmp_path):
        (tmp_path / "BENCH_serve.json").write_text(
            json.dumps({"speedup": 25.0}))
        results = perf.load_results("serve", tmp_path)
        assert results == {"speedup": 25.0}
        assert perf.extract_metrics("serve", results) == {"speedup": 25.0}
