"""Tests for Verilog export, VCD dumping and the CLI."""

import os
import re

import pytest

from repro.errors import SimulationError
from repro.hdl.export import to_verilog, write_verilog
from repro.hdl.module import Module
from repro.hdl.sim.levelized import LevelizedSimulator
from repro.hdl.sim.waveform import dump_vcd


def _small_module(with_regs=False):
    m = Module("demo-top")
    a = m.input("a", 2)
    b = m.input("b", 2)
    s = m.gate("XOR2", a[0], b[0])
    c = m.gate("AND2", a[1], b[1])
    if with_regs:
        s = m.register(s, stage=1)
        c = m.register(c, stage=1)
    m.output("out", [s, c])
    return m


class TestVerilogExport:
    def test_combinational_module(self):
        text = to_verilog(_small_module())
        assert "module demo_top (" in text
        assert "input  [1:0] a;" in text
        assert "output [1:0] out;" in text
        assert re.search(r"assign n\d+ = n\d+ \^ n\d+;", text)
        assert "clk" not in text
        assert text.strip().endswith("endmodule")

    def test_registers_emit_clocked_block(self):
        text = to_verilog(_small_module(with_regs=True))
        assert "input clk;" in text
        assert "always @(posedge clk)" in text
        assert "if (rst)" in text
        assert text.count("<=") == 4          # 2 reset + 2 data assignments

    def test_every_cell_kind_has_template(self):
        from repro.hdl.cell import CELL_KINDS
        from repro.hdl.export import _EXPRESSIONS
        assert set(_EXPRESSIONS) == set(CELL_KINDS)

    def test_deterministic(self):
        assert to_verilog(_small_module()) == to_verilog(_small_module())

    def test_full_multiplier_exports(self):
        from repro.eval.experiments import cached_module
        module = cached_module("r16")
        text = to_verilog(module)
        # Every gate appears exactly once as an assignment.
        assert text.count("assign n") >= len(module.gates)
        assert "endmodule" in text

    def test_write_to_file(self, tmp_path):
        path = write_verilog(_small_module(), tmp_path / "demo.v")
        assert os.path.getsize(path) > 100

    def test_constants_tied(self):
        m = Module("c")
        a = m.input("a", 1)
        one = m.const(1)
        m.output("o", [m.gate("AND2", a[0], one)])
        text = to_verilog(m)
        assert "= 1'b1;" in text


class TestVCD:
    def test_dump_and_structure(self, tmp_path):
        m = _small_module()
        run = LevelizedSimulator(m).run({"a": [0, 1, 2, 3],
                                         "b": [3, 3, 3, 3]}, 4)
        path = dump_vcd(m, run, tmp_path / "wave.vcd")
        text = open(path).read()
        assert "$timescale 1ns $end" in text
        assert "$var wire 2" in text
        assert "$enddefinitions $end" in text
        assert "#0" in text and "#3" in text

    def test_only_changes_recorded(self, tmp_path):
        m = _small_module()
        run = LevelizedSimulator(m).run({"a": [1, 1, 1], "b": [2, 2, 2]}, 3)
        path = dump_vcd(m, run, tmp_path / "wave.vcd")
        text = open(path).read()
        # Constant signals appear once (at time 0) only; bus 'a' gets the
        # first VCD id '!' (sorted order).
        body = text.split("$enddefinitions $end")[1]
        assert body.count("b01 !") == 1      # bus 'a' dumped once

    def test_custom_bus_selection(self, tmp_path):
        m = _small_module()
        run = LevelizedSimulator(m).run({"a": [0, 3], "b": [0, 3]}, 2)
        path = dump_vcd(m, run, tmp_path / "w.vcd",
                        buses={"xor_bit": [m.gates[0].output]})
        text = open(path).read()
        assert "xor_bit" in text
        assert "$var wire 1" in text

    def test_empty_selection_rejected(self, tmp_path):
        m = _small_module()
        run = LevelizedSimulator(m).run({"a": [0], "b": [0]}, 1)
        with pytest.raises(SimulationError):
            dump_vcd(m, run, tmp_path / "w.vcd", buses={})

    def test_bad_net_rejected(self, tmp_path):
        m = _small_module()
        run = LevelizedSimulator(m).run({"a": [0], "b": [0]}, 1)
        with pytest.raises(SimulationError):
            dump_vcd(m, run, tmp_path / "w.vcd", buses={"x": [10_000]})


class TestCLI:
    def test_single_experiment(self, capsys):
        from repro.__main__ import main
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "binary128" in out

    def test_unknown_experiment(self):
        from repro.__main__ import main
        with pytest.raises(SystemExit):
            main(["table9"])

    def test_export_verilog_command(self, tmp_path, capsys):
        from repro.__main__ import main
        path = str(tmp_path / "reducer.v")
        assert main(["export-verilog", "reducer", path]) == 0
        assert "endmodule" in open(path).read()

    def test_export_verilog_bad_module(self, tmp_path):
        from repro.__main__ import main
        assert main(["export-verilog", "r32",
                     str(tmp_path / "x.v")]) == 2

    def test_export_verilog_usage(self):
        from repro.__main__ import main
        assert main(["export-verilog"]) == 2
