"""Tests for the quad-binary16 extension format."""

import math
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.arith.adders_ref import multi_window_add
from repro.arith.partial_products import build_quad_lane_pp_array
from repro.arith.rounding import FP16_LANES, normalize_round_fp16_quad
from repro.arith.trees import reduce_pp_array
from repro.bits.ieee754 import BINARY16, decode, encode, round_significand
from repro.bits.utils import mask
from repro.core.formats import MFFormat, OperandBundle
from repro.core.mfmult import MFMult
from repro.errors import BitWidthError, FormatError

SIG11 = st.integers(min_value=1 << 10, max_value=(1 << 11) - 1)
U11 = st.integers(min_value=0, max_value=(1 << 11) - 1)
MID16 = st.builds(
    BINARY16.pack,
    st.integers(min_value=0, max_value=1),
    st.integers(min_value=8, max_value=22),   # central: products in range
    st.integers(min_value=0, max_value=mask(10)),
)


class TestMultiWindowAdd:
    @given(st.integers(min_value=0, max_value=mask(128)),
           st.integers(min_value=0, max_value=mask(128)))
    def test_four_windows(self, a, b):
        total = multi_window_add(a, b, 128, (32, 64, 96))
        for k in range(4):
            lo = 32 * k
            wa = (a >> lo) & mask(32)
            wb = (b >> lo) & mask(32)
            assert (total >> lo) & mask(32) == (wa + wb) & mask(32)

    def test_no_boundaries_is_plain_add(self):
        assert multi_window_add(7, 9, 8, ()) == 16

    def test_bad_boundary(self):
        with pytest.raises(BitWidthError):
            multi_window_add(0, 0, 8, (8,))


class TestQuadArray:
    @given(st.tuples(U11, U11, U11, U11), st.tuples(U11, U11, U11, U11))
    @settings(max_examples=60)
    def test_total_is_four_products(self, xs, ys):
        array = build_quad_lane_pp_array(list(xs), list(ys))
        expect = sum((xs[k] * ys[k]) << (32 * k) for k in range(4))
        assert array.total() == expect

    def test_four_windows(self):
        array = build_quad_lane_pp_array([1] * 4, [1] * 4)
        assert array.windows == ((0, 32), (32, 64), (64, 96), (96, 128))

    def test_lane_containment(self):
        ones = (1 << 11) - 1
        array = build_quad_lane_pp_array([ones] * 4, [ones] * 4)
        for row in array.rows:
            k = int(row.lane[1])
            assert 32 * k <= row.offset
            assert row.msb_position < 32 * (k + 1)

    def test_shape_validated(self):
        with pytest.raises(BitWidthError):
            build_quad_lane_pp_array([1, 2, 3], [1, 2, 3, 4])

    @given(st.tuples(SIG11, SIG11, SIG11, SIG11),
           st.tuples(SIG11, SIG11, SIG11, SIG11))
    @settings(max_examples=40)
    def test_reduces_and_rounds(self, xs, ys):
        array = build_quad_lane_pp_array(list(xs), list(ys))
        s, c, __ = reduce_pp_array(array)
        lanes = normalize_round_fp16_quad(s, c)
        for k in range(4):
            product = xs[k] * ys[k]
            expect, carry = round_significand(product, 11,
                                              mode="injection")
            high = (product >> 21) & 1
            assert lanes[k].significand == expect, k
            assert lanes[k].exponent_increment == (high | carry), k


class TestMFMultFP16:
    @given(MID16, MID16, MID16, MID16)
    @settings(max_examples=40)
    def test_datapath_equals_fast(self, a, b, c, d):
        bundle = OperandBundle.fp16_quad([a, b, c, d], [d, c, b, a])
        dp = MFMult().multiply(bundle, MFFormat.FP16X4)
        fast = MFMult(fidelity="fast").multiply(bundle, MFFormat.FP16X4)
        assert dp.ph == fast.ph

    @given(MID16, MID16)
    @settings(max_examples=60)
    def test_lane_rounding_near_ieee(self, xe, ye):
        mf = MFMult(fidelity="fast")
        bundle = OperandBundle.fp16_quad([xe] * 4, [ye] * 4)
        result = mf.multiply(bundle, MFFormat.FP16X4)
        ieee = encode(decode(xe, BINARY16) * decode(ye, BINARY16),
                      BINARY16)
        for k in range(4):
            assert result.fp16_encoding(k) in (ieee, ieee + 1)

    def test_convenience_wrapper(self):
        got = MFMult().mul_fp16_quad((1.5, 2.0, -0.5, 4.0),
                                     (2.0, 2.0, 8.0, 0.25))
        assert got == (3.0, 4.0, -4.0, 1.0)

    def test_lanes_independent(self):
        mf = MFMult()
        a = mf.mul_fp16_quad((1.5, 7.0, 1.0, 1.0), (2.0, 3.0, 1.0, 1.0))
        b = mf.mul_fp16_quad((1.5, 5.0, 2.0, 9.0), (2.0, 2.0, 2.0, 2.0))
        assert a[0] == b[0] == 3.0

    def test_throughput_property(self):
        assert MFFormat.FP16X4.flops_per_cycle == 4

    def test_full_mode_matches_numpy_style_half(self):
        mf = MFMult(mode="full")
        vals = [(1.5, 2.5), (0.1, 3.0), (1e4, 2.0), (0.0, 5.0),
                (6.0e-5, 0.5)]
        for a, b in vals:
            got = mf.mul_fp16_quad((a, 1.0, 1.0, 1.0),
                                   (b, 1.0, 1.0, 1.0))[0]
            expect = decode(encode(
                decode(encode(a, BINARY16), BINARY16)
                * decode(encode(b, BINARY16), BINARY16), BINARY16),
                BINARY16)
            # Full mode rounds by injection by default; allow one ulp.
            if expect:
                assert abs(got - expect) <= abs(expect) * 2.0 ** -10
            else:
                assert got == 0.0

    def test_trace_has_four_lanes(self):
        mf = MFMult()
        mf.mul_fp16_quad((1.5, 2.0, 3.0, 4.0), (1.5, 2.0, 3.0, 4.0))
        assert len(mf.last_trace.lane_results) == 4
        assert len(mf.last_trace.pp_array.windows) == 4

    def test_bundle_validation(self):
        with pytest.raises(BitWidthError):
            OperandBundle.fp16_quad([1 << 16, 0, 0, 0], [0, 0, 0, 0])
        with pytest.raises(BitWidthError):
            OperandBundle.fp16_quad([0, 0], [0, 0])
        with pytest.raises(FormatError):
            OperandBundle.int64(0, 0).lane16(4)
