"""Tests for the functional multi-format multiplier."""

import math
import struct
from fractions import Fraction

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.bits.ieee754 import BINARY32, BINARY64, decode, encode
from repro.bits.utils import mask
from repro.core.formats import Flag, MFFormat, OperandBundle, RoundingMode
from repro.core.mfmult import MFMult
from repro.errors import (
    BitWidthError,
    FormatError,
    UnsupportedOperationError,
)

U64 = st.integers(min_value=0, max_value=mask(64))
NORMAL64 = st.builds(
    BINARY64.pack,
    st.integers(min_value=0, max_value=1),
    st.integers(min_value=1, max_value=2046),
    st.integers(min_value=0, max_value=mask(52)),
)
NORMAL32 = st.builds(
    BINARY32.pack,
    st.integers(min_value=0, max_value=1),
    st.integers(min_value=1, max_value=254),
    st.integers(min_value=0, max_value=mask(23)),
)
# Exponents kept central so results stay in range (paper mode has no
# overflow handling; range flags are tested separately).
MID64 = st.builds(
    BINARY64.pack,
    st.integers(min_value=0, max_value=1),
    st.integers(min_value=523, max_value=1523),
    st.integers(min_value=0, max_value=mask(52)),
)
MID32 = st.builds(
    BINARY32.pack,
    st.integers(min_value=0, max_value=1),
    st.integers(min_value=64, max_value=190),
    st.integers(min_value=0, max_value=mask(23)),
)


class TestInt64:
    @given(U64, U64)
    @settings(max_examples=30)
    def test_datapath_exact(self, x, y):
        assert MFMult().mul_int64(x, y) == x * y

    @given(U64, U64)
    def test_fast_exact(self, x, y):
        assert MFMult(fidelity="fast").mul_int64(x, y) == x * y

    def test_result_ports(self):
        """int64 presents the product on both ports (PH | PL)."""
        r = MFMult(fidelity="fast").multiply(
            OperandBundle.int64(mask(64), mask(64)), MFFormat.INT64)
        product = mask(64) ** 2
        assert r.ph == product >> 64
        assert r.pl == product & mask(64)
        assert r.int128 == product

    def test_port_accessors_guarded(self):
        r = MFMult(fidelity="fast").multiply(
            OperandBundle.int64(1, 1), MFFormat.INT64)
        with pytest.raises(FormatError):
            __ = r.fp64_encoding
        with pytest.raises(FormatError):
            r.fp32_encoding(0)


class TestFP64PaperMode:
    @given(MID64, MID64)
    @settings(max_examples=40)
    def test_datapath_equals_fast(self, xe, ye):
        bundle = OperandBundle.fp64(xe, ye)
        a = MFMult().multiply(bundle, MFFormat.FP64)
        b = MFMult(fidelity="fast").multiply(bundle, MFFormat.FP64)
        assert a.ph == b.ph

    @given(MID64, MID64)
    @settings(max_examples=200)
    def test_within_half_ulp_of_exact(self, xe, ye):
        """Injection rounding is round-to-nearest (ties away): the result
        is always within half an ulp of the exact product."""
        bundle = OperandBundle.fp64(xe, ye)
        r = MFMult(fidelity="fast").multiply(bundle, MFFormat.FP64)
        got = decode(r.fp64_encoding, BINARY64)
        # Measure against the infinitely precise product: a float
        # "exact" is itself RNE-rounded, so an exact tie (which the
        # datapath rounds away and RNE rounds to even) would read as a
        # full-ulp error instead of the true half ulp.
        exact = Fraction(decode(xe, BINARY64)) * Fraction(decode(ye, BINARY64))
        assert got != 0
        assert abs(Fraction(got) - exact) / abs(exact) \
            <= Fraction(1, 2 ** 53) + Fraction(1, 2 ** 80)

    @given(MID64, MID64)
    @settings(max_examples=100)
    def test_differs_from_rne_only_on_ties(self, xe, ye):
        bundle = OperandBundle.fp64(xe, ye)
        ours = MFMult(fidelity="fast").multiply(bundle, MFFormat.FP64)
        ieee = encode(decode(xe, BINARY64) * decode(ye, BINARY64), BINARY64)
        # Equal, or one ulp up (tie rounded away instead of to even).
        assert ours.ph in (ieee, ieee + 1)

    def test_sign_rule(self):
        mf = MFMult(fidelity="fast")
        assert mf.mul_fp64(-2.0, 3.0) == -6.0
        assert mf.mul_fp64(-2.0, -3.0) == 6.0
        assert mf.mul_fp64(2.0, 3.0) == 6.0

    def test_exponent_increment_case(self):
        # 1.5 * 1.5 = 2.25: leading one lands high -> exponent + 1.
        assert MFMult().mul_fp64(1.5, 1.5) == 2.25

    def test_rounding_overflow_renormalizes(self):
        # 1.5 * m_y with m_y chosen so the significand product is exactly
        # 2**105 - 2**51: the injection tie rounds the low-leading
        # product up to 2**53, which must renormalize to exactly 2.0.
        m_y = ((1 << 54) - 1) // 3          # 3 * m_y = 2**54 - 1
        y = decode(BINARY64.pack(0, 1023, m_y - (1 << 52)), BINARY64)
        assert (3 << 51) * m_y == (1 << 105) - (1 << 51)
        assert MFMult().mul_fp64(1.5, y) == 2.0

    def test_overflow_flag(self):
        big = BINARY64.pack(0, 2046, 0)
        r = MFMult(fidelity="fast").multiply(OperandBundle.fp64(big, big),
                                             MFFormat.FP64)
        assert Flag.OVERFLOW in r.flags

    def test_underflow_flag(self):
        tiny = BINARY64.pack(0, 1, 0)
        r = MFMult(fidelity="fast").multiply(OperandBundle.fp64(tiny, tiny),
                                             MFFormat.FP64)
        assert Flag.UNDERFLOW in r.flags

    @pytest.mark.parametrize("encoding, kind", [
        (BINARY64.pack(0, 0, 0), "zero"),
        (BINARY64.pack(0, 0, 1), "subnormal"),
        (BINARY64.pack(0, 2047, 0), "infinity"),
        (BINARY64.pack(0, 2047, 1), "NaN"),
    ])
    def test_unsupported_operands_raise(self, encoding, kind):
        one = encode(1.0, BINARY64)
        with pytest.raises(UnsupportedOperationError, match=kind):
            MFMult().multiply(OperandBundle.fp64(encoding, one),
                              MFFormat.FP64)


class TestFP32DualPaperMode:
    @given(MID32, MID32, MID32, MID32)
    @settings(max_examples=40)
    def test_datapath_equals_fast(self, x0, y0, x1, y1):
        bundle = OperandBundle.fp32_pair(x0, y0, x1, y1)
        a = MFMult().multiply(bundle, MFFormat.FP32X2)
        b = MFMult(fidelity="fast").multiply(bundle, MFFormat.FP32X2)
        assert a.ph == b.ph

    @given(MID32, MID32, MID32, MID32)
    @settings(max_examples=100)
    def test_lanes_are_independent(self, x0, y0, x1, y1):
        """Changing lane 1 operands must not affect lane 0's result."""
        mf = MFMult(fidelity="fast")
        one = encode(1.0, BINARY32)
        a = mf.multiply(OperandBundle.fp32_pair(x0, y0, x1, y1),
                        MFFormat.FP32X2)
        b = mf.multiply(OperandBundle.fp32_pair(x0, y0, one, one),
                        MFFormat.FP32X2)
        assert a.fp32_encoding(0) == b.fp32_encoding(0)

    @given(MID32, MID32)
    @settings(max_examples=60)
    def test_lane_matches_scalar_semantics(self, xe, ye):
        """Each lane rounds exactly like a standalone binary32 multiply."""
        mf = MFMult(fidelity="fast")
        r = mf.multiply(OperandBundle.fp32_pair(xe, ye, xe, ye),
                        MFFormat.FP32X2)
        assert r.fp32_encoding(0) == r.fp32_encoding(1)
        ieee = encode(decode(xe, BINARY32) * decode(ye, BINARY32), BINARY32)
        assert r.fp32_encoding(0) in (ieee, ieee + 1)

    def test_convenience_wrapper(self):
        r0, r1 = MFMult().mul_fp32_pair((1.5, 3.0), (2.0, 7.0))
        assert (r0, r1) == (3.0, 21.0)


class TestFullMode:
    @given(st.floats(min_value=-1e150, max_value=1e150,
                     allow_nan=False, allow_infinity=False),
           st.floats(min_value=-1e150, max_value=1e150,
                     allow_nan=False, allow_infinity=False))
    @settings(max_examples=200)
    def test_rne_matches_hardware_float(self, a, b):
        mf = MFMult(mode="full", rounding=RoundingMode.RNE)
        assert mf.mul_fp64(a, b) == a * b

    @given(st.floats(width=32, allow_nan=False, allow_infinity=False),
           st.floats(width=32, allow_nan=False, allow_infinity=False))
    @settings(max_examples=200)
    def test_rne_binary32_matches_numpy_style(self, a, b):
        mf = MFMult(mode="full", rounding=RoundingMode.RNE)
        product = (struct.unpack("<f", struct.pack("<f", a))[0]
                   * struct.unpack("<f", struct.pack("<f", b))[0])
        try:
            expect = struct.unpack("<f", struct.pack("<f", product))[0]
        except OverflowError:
            expect = math.copysign(math.inf, product)
        r0, __ = mf.mul_fp32_pair((a, 1.0), (b, 1.0))
        if math.isnan(expect):
            assert math.isnan(r0)
        else:
            assert r0 == expect

    def test_specials(self):
        mf = MFMult(mode="full", rounding=RoundingMode.RNE)
        assert mf.mul_fp64(0.0, 5.0) == 0.0
        assert math.copysign(1.0, mf.mul_fp64(-0.0, 5.0)) == -1.0
        assert mf.mul_fp64(math.inf, 2.0) == math.inf
        assert mf.mul_fp64(-math.inf, 2.0) == -math.inf
        assert math.isnan(mf.mul_fp64(math.inf, 0.0))
        assert math.isnan(mf.mul_fp64(math.nan, 1.0))

    def test_subnormal_inputs_and_outputs(self):
        mf = MFMult(mode="full", rounding=RoundingMode.RNE)
        tiny = math.ldexp(1.0, -1060)
        assert mf.mul_fp64(tiny, 0.5) == tiny * 0.5
        sub = math.ldexp(1.0, -1030)
        assert mf.mul_fp64(sub, sub) == 0.0         # underflows to zero
        a, b = math.ldexp(1.0, -540), math.ldexp(1.0, -535)
        assert mf.mul_fp64(a, b) == a * b           # the half-ulp tie case

    def test_overflow_to_infinity(self):
        mf = MFMult(mode="full", rounding=RoundingMode.RNE)
        assert mf.mul_fp64(1e300, 1e300) == math.inf
        assert mf.mul_fp64(-1e300, 1e300) == -math.inf

    def test_injection_mode_in_full_envelope(self):
        mf = MFMult(mode="full", rounding=RoundingMode.INJECTION)
        assert mf.mul_fp64(1.5, 2.0) == 3.0
        assert mf.mul_fp64(0.0, 3.0) == 0.0


class TestConfiguration:
    def test_paper_mode_rejects_rne(self):
        """The paper's unit has no sticky bit (Sec. III-A)."""
        with pytest.raises(UnsupportedOperationError):
            MFMult(mode="paper", rounding=RoundingMode.RNE)

    def test_bad_mode(self):
        with pytest.raises(FormatError):
            MFMult(mode="silicon")
        with pytest.raises(FormatError):
            MFMult(fidelity="quantum")

    def test_operand_bundle_validation(self):
        with pytest.raises(BitWidthError):
            OperandBundle.int64(1 << 64, 0)
        with pytest.raises(BitWidthError):
            OperandBundle.fp32_pair(1 << 32, 0, 0, 0)
        with pytest.raises(FormatError):
            OperandBundle.int64(0, 0).lane32(2)

    def test_multiply_requires_bundle(self):
        with pytest.raises(FormatError):
            MFMult().multiply((1, 2), MFFormat.INT64)


class TestTrace:
    def test_datapath_trace_populated(self):
        mf = MFMult()
        mf.mul_fp64(1.5, 2.5)
        trace = mf.last_trace
        assert trace.fmt is MFFormat.FP64
        assert trace.pp_array is not None
        assert len(trace.lane_results) == 1
        assert (trace.tree_sum + trace.tree_carry) & mask(128) \
            == (3 << 51) * (5 << 50)

    def test_fp32_trace_has_two_lanes(self):
        mf = MFMult()
        mf.mul_fp32_pair((1.5, 2.0), (2.0, 3.0))
        assert len(mf.last_trace.lane_results) == 2
        assert len(mf.last_trace.pp_array.windows) == 2
