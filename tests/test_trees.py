"""Tests for the Dadda reduction scheduler (the TREE of Fig. 2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arith.csa import full_adder, half_adder
from repro.arith.partial_products import build_dual_lane_pp_array, build_pp_array
from repro.arith.trees import (
    columns_from_rows,
    columns_total,
    dadda_sequence,
    reduce_columns,
    reduce_pp_array,
)
from repro.bits.utils import mask
from repro.errors import BitWidthError

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestDaddaSequence:
    def test_radix16_height(self):
        # 17-high array: 6 stages (13, 9, 6, 4, 3, 2).
        assert dadda_sequence(17) == [2, 3, 4, 6, 9, 13]

    def test_radix4_height(self):
        # 33-high array: 8 stages.
        assert dadda_sequence(33) == [2, 3, 4, 6, 9, 13, 19, 28]

    def test_trivial(self):
        assert dadda_sequence(2) == [2]
        assert dadda_sequence(1) == [2]

    def test_strictly_below_height(self):
        for h in range(3, 100):
            assert dadda_sequence(h)[-1] < h


class TestReduceColumns:
    def _reduce(self, columns, **kwargs):
        return reduce_columns(columns, fa=full_adder, ha=half_adder,
                              **kwargs)

    @given(st.lists(st.lists(st.integers(min_value=0, max_value=1),
                             max_size=20),
                    min_size=1, max_size=12))
    @settings(max_examples=80)
    def test_sum_preserved(self, columns):
        width = len(columns) + 8          # headroom for carries
        columns = columns + [[] for __ in range(8)]
        before = columns_total(columns)
        reduced, schedule = self._reduce(columns)
        assert columns_total(reduced) == before
        assert all(len(c) <= 2 for c in reduced)

    def test_already_reduced_is_noop(self):
        columns = [[1, 1], [0], []]
        reduced, schedule = self._reduce(columns)
        assert reduced == columns
        assert schedule.full_adders == 0
        assert schedule.half_adders == 0

    def test_carry_kill_hook(self):
        # Two full columns; kill everything crossing into column 1.
        columns = [[1, 1, 1, 1], [], []]
        reduced, schedule = self._reduce(
            columns, carry_hook=lambda c, i: None if i == 0 else c)
        assert schedule.killed_carries > 0
        # Column 0 sums to 4 -> 0 mod carries killed.
        assert columns_total(reduced) == (4 - 2 * schedule.killed_carries)

    def test_escape_detected(self):
        with pytest.raises(BitWidthError):
            self._reduce([[1, 1, 1]])     # carry has nowhere to go

    def test_stage_count_logarithmic(self):
        columns = [[1] * 33 for __ in range(4)] + [[] for __ in range(8)]
        __, schedule = self._reduce(columns)
        assert schedule.stages == 8       # the Dadda sequence for h=33

    def test_bad_target(self):
        with pytest.raises(BitWidthError):
            self._reduce([[1]], target=0)

    def test_order_key_does_not_change_sum(self):
        columns = [[1, 0, 1, 1, 0, 1] for __ in range(4)]
        columns += [[] for __ in range(6)]
        plain, __ = self._reduce([list(c) for c in columns])
        ordered, __ = self._reduce([list(c) for c in columns],
                                   order_key=lambda b: -b)
        assert columns_total(plain) == columns_total(ordered)


class TestColumnsFromRows:
    def test_simple(self):
        columns = columns_from_rows([(0b101, 1)], 8)
        assert columns_total(columns) == 0b1010

    def test_negative_rejected(self):
        with pytest.raises(BitWidthError):
            columns_from_rows([(-1, 0)], 8)

    def test_overflow_rejected(self):
        with pytest.raises(BitWidthError):
            columns_from_rows([(0b11, 7)], 8)


class TestReducePPArray:
    """End-to-end: encoded array -> carry-save pair -> product."""

    @given(U64, U64)
    @settings(max_examples=40)
    def test_radix16_end_to_end(self, x, y):
        array = build_pp_array(x, y, width=64, radix_log2=4,
                               product_width=128)
        s, c, schedule = reduce_pp_array(array)
        assert (s + c) & mask(128) == x * y
        assert schedule.stages <= 7

    @given(U64, U64)
    @settings(max_examples=25)
    def test_radix4_end_to_end(self, x, y):
        array = build_pp_array(x, y, width=64, radix_log2=2,
                               product_width=128)
        s, c, __ = reduce_pp_array(array)
        assert (s + c) & mask(128) == x * y

    @given(st.integers(min_value=0, max_value=(1 << 24) - 1),
           st.integers(min_value=0, max_value=(1 << 24) - 1),
           st.integers(min_value=0, max_value=(1 << 24) - 1),
           st.integers(min_value=0, max_value=(1 << 24) - 1))
    @settings(max_examples=40)
    def test_dual_lane_window_isolation(self, x0, y0, x1, y1):
        """Carry kill at bit 64 keeps the two lane sums independent."""
        array = build_dual_lane_pp_array(x0, y0, x1, y1)
        s, c, schedule = reduce_pp_array(array)
        assert (s + c) & mask(64) == x0 * y0
        assert ((s >> 64) + (c >> 64)) & mask(64) == x1 * y1

    def test_radix4_deeper_than_radix16(self):
        """The paper's core motivation: radix-16 tree is shallower.

        (The reference feeder only materializes *set* bits, so dense
        operands are used to exercise the full structural height.)"""
        x, y = 0xDEADBEEFCAFEBABE, 0x123456789ABCDEF1
        a16 = build_pp_array(x, y, width=64, radix_log2=4,
                             product_width=128)
        a4 = build_pp_array(x, y, width=64, radix_log2=2,
                            product_width=128)
        __, __, s16 = reduce_pp_array(a16)
        __, __, s4 = reduce_pp_array(a4)
        assert s4.stages > s16.stages
        assert s4.full_adders > s16.full_adders
