"""Property-based tests of the HDL substrate on random netlists.

A hypothesis strategy generates arbitrary feed-forward gate networks;
every engine in the substrate must agree on them: levelized vs
event-driven values, STA vs event settle times, and function
preservation under buffering and optimization.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hdl.buffering import insert_buffers
from repro.hdl.cell import CELL_KINDS, cell_num_inputs
from repro.hdl.library import default_library
from repro.hdl.module import Module
from repro.hdl.optimize import optimize
from repro.hdl.sim.event import EventSimulator
from repro.hdl.sim.levelized import LevelizedSimulator
from repro.hdl.timing.sta import analyze
from repro.hdl.validate import validate

KINDS = sorted(CELL_KINDS)


@st.composite
def random_module(draw, max_gates=30, n_inputs=6):
    """A random acyclic gate network with some constants mixed in."""
    m = Module("random")
    a = m.input("a", n_inputs)
    nets = list(a) + [m.const(0), m.const(1)]
    n_gates = draw(st.integers(min_value=1, max_value=max_gates))
    for __ in range(n_gates):
        kind = draw(st.sampled_from(KINDS))
        arity = cell_num_inputs(kind)
        ins = [nets[draw(st.integers(0, len(nets) - 1))]
               for __ in range(arity)]
        nets.append(m.gate(kind, *ins))
    out_count = draw(st.integers(min_value=1, max_value=4))
    outs = [nets[draw(st.integers(0, len(nets) - 1))]
            for __ in range(out_count)]
    # Outputs must be distinct nets? Buses may repeat nets; allowed.
    m.output("o", outs)
    return m


@st.composite
def module_and_patterns(draw, n_patterns=6):
    m = draw(random_module())
    patterns = [draw(st.integers(0, (1 << 6) - 1))
                for __ in range(n_patterns)]
    return m, patterns


def _out_words(module, run, n):
    return [run.bus_word(module.outputs["o"], t) for t in range(n)]


class TestRandomNetlists:
    @given(module_and_patterns())
    @settings(max_examples=60, deadline=None)
    def test_validates(self, case):
        module, __ = case
        validate(module)

    @given(module_and_patterns())
    @settings(max_examples=60, deadline=None)
    def test_event_settles_to_levelized(self, case):
        module, patterns = case
        lib = default_library()
        run = LevelizedSimulator(module).run({"a": patterns}, len(patterns))
        esim = EventSimulator(module, lib)

        def stim(t):
            return {net: (patterns[t] >> i) & 1
                    for i, net in enumerate(module.inputs["a"])}

        # A trivially valid upper bound covering gates that feed no
        # output (STA endpoints exclude them; the event sim does not).
        load = module.load_map(lib)
        delay_bound = sum(lib.spec(g.kind).delay_ps(load[g.output])
                          for g in module.gates)
        esim.initialize(stim(0))
        for t in range(1, len(patterns)):
            counts = esim.apply(stim(t))
            for net in range(module.n_nets):
                assert esim.values[net] == run.net_value(net, t)
            assert counts.settle_time_ps <= delay_bound + 1e-6

    @given(module_and_patterns())
    @settings(max_examples=40, deadline=None)
    def test_buffering_preserves_function(self, case):
        module, patterns = case
        lib = default_library()
        before = LevelizedSimulator(module).run({"a": patterns},
                                                len(patterns))
        expect = _out_words(module, before, len(patterns))
        insert_buffers(module, lib, max_load=3.0)
        validate(module)
        after = LevelizedSimulator(module).run({"a": patterns},
                                               len(patterns))
        assert _out_words(module, after, len(patterns)) == expect
        # Pin loads (gate/register inputs) are bounded; output-pad load
        # is fixed at its net and cannot be buffered away.
        pad = [0.0] * module.n_nets
        for bus in module.outputs.values():
            for net in bus:
                pad[net] += lib.output_load
        load = module.load_map(lib)
        buf_cap = lib.spec("BUF").input_cap
        for net in range(module.n_nets):
            if net in module.constants:
                continue
            pin_load = load[net] - pad[net]
            if pad[net] == 0:
                assert pin_load <= 3.0 + 1e-9, net
            else:
                assert pin_load <= 3.0 + pad[net] + 2 * buf_cap + 1e-9, net

    @given(module_and_patterns())
    @settings(max_examples=40, deadline=None)
    def test_optimize_preserves_function(self, case):
        module, patterns = case
        before = LevelizedSimulator(module).run({"a": patterns},
                                                len(patterns))
        expect = _out_words(module, before, len(patterns))
        optimize(module)
        validate(module)
        after = LevelizedSimulator(module).run({"a": patterns},
                                               len(patterns))
        assert _out_words(module, after, len(patterns)) == expect

    @given(module_and_patterns())
    @settings(max_examples=30, deadline=None)
    def test_export_roundtrip(self, case):
        from tests.test_verilog_fidelity import VerilogInterpreter
        from repro.hdl.export import to_verilog

        module, patterns = case
        run = LevelizedSimulator(module).run({"a": patterns},
                                             len(patterns))
        expect = _out_words(module, run, len(patterns))
        interp = VerilogInterpreter(to_verilog(module))
        got = interp.run(module, {"a": patterns}, len(patterns))
        assert got["o"] == expect

    @given(module_and_patterns())
    @settings(max_examples=30, deadline=None)
    def test_zero_delay_toggles_lower_bound_event(self, case):
        """Per net, glitch-aware counts can never undercut functional
        transition counts."""
        module, patterns = case
        lib = default_library()
        run = LevelizedSimulator(module).run({"a": patterns},
                                             len(patterns))
        zero = run.toggles_per_net()
        esim = EventSimulator(module, lib)

        def stim(t):
            return {net: (patterns[t] >> i) & 1
                    for i, net in enumerate(module.inputs["a"])}

        esim.initialize(stim(0))
        totals = [0] * module.n_nets
        for t in range(1, len(patterns)):
            counts = esim.apply(stim(t))
            for net, c in enumerate(counts.toggles):
                totals[net] += c
        for net in range(module.n_nets):
            assert totals[net] >= zero[net], net
            assert (totals[net] - zero[net]) % 2 == 0   # glitches pair up