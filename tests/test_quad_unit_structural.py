"""Tests for the structural quad-binary16 unit (quad_fp16=True builds).

Four formats on one netlist: int64, binary64, dual binary32 and quad
binary16, co-simulated against the software model, interleaved.
"""

import random

import pytest

from repro.bits.ieee754 import BINARY16, BINARY32, BINARY64
from repro.core.formats import MFFormat, OperandBundle
from repro.core.mfmult import MFMult
from repro.core.pipeline_unit import (
    FRMT_FP16X4,
    MFMultUnit,
    build_mf_multiplier,
)
from repro.errors import SimulationError
from repro.hdl.pipeline import pipeline_report
from repro.hdl.validate import validate


@pytest.fixture(scope="module")
def quad_unit():
    return MFMultUnit(quad_fp16=True)


def _n16(rng, lo=8, hi=22):
    return BINARY16.pack(rng.getrandbits(1), rng.randint(lo, hi),
                         rng.getrandbits(10))


def _n32(rng):
    return BINARY32.pack(rng.getrandbits(1), rng.randint(1, 254),
                         rng.getrandbits(23))


def _n64(rng):
    return BINARY64.pack(rng.getrandbits(1), rng.randint(1, 2046),
                         rng.getrandbits(52))


class TestQuadUnit:
    def test_structure(self, quad_unit):
        validate(quad_unit.module)
        assert quad_unit.supports_fp16
        assert pipeline_report(quad_unit.module).n_stages == 3

    def test_fp16_quad_matches_functional(self, quad_unit):
        rng = random.Random(61)
        mf = MFMult(fidelity="fast")
        ops = [(OperandBundle.fp16_quad([_n16(rng) for __ in range(4)],
                                        [_n16(rng) for __ in range(4)]),
                MFFormat.FP16X4) for __ in range(25)]
        for (bundle, fmt), res in zip(ops, quad_unit.run_batch(ops)):
            assert res.ph == mf.multiply(bundle, fmt).ph, hex(bundle.x)
            assert res.pl == 0

    def test_legacy_formats_still_exact(self, quad_unit):
        rng = random.Random(62)
        mf = MFMult(fidelity="fast")
        ops = []
        for __ in range(10):
            ops.append((OperandBundle.int64(rng.getrandbits(64),
                                            rng.getrandbits(64)),
                        MFFormat.INT64))
            ops.append((OperandBundle.fp64(_n64(rng), _n64(rng)),
                        MFFormat.FP64))
            ops.append((OperandBundle.fp32_pair(_n32(rng), _n32(rng),
                                                _n32(rng), _n32(rng)),
                        MFFormat.FP32X2))
        for (bundle, fmt), res in zip(ops, quad_unit.run_batch(ops)):
            expect = mf.multiply(bundle, fmt)
            assert (res.ph, res.pl) == (expect.ph, expect.pl), fmt

    def test_interleaved_all_four_formats(self, quad_unit):
        rng = random.Random(63)
        mf = MFMult(fidelity="fast")
        ops = []
        for i in range(16):
            pick = i % 4
            if pick == 0:
                ops.append((OperandBundle.int64(rng.getrandbits(64),
                                                rng.getrandbits(64)),
                            MFFormat.INT64))
            elif pick == 1:
                ops.append((OperandBundle.fp64(_n64(rng), _n64(rng)),
                            MFFormat.FP64))
            elif pick == 2:
                ops.append((OperandBundle.fp32_pair(
                    _n32(rng), _n32(rng), _n32(rng), _n32(rng)),
                    MFFormat.FP32X2))
            else:
                ops.append((OperandBundle.fp16_quad(
                    [_n16(rng) for __ in range(4)],
                    [_n16(rng) for __ in range(4)]), MFFormat.FP16X4))
        for (bundle, fmt), res in zip(ops, quad_unit.run_batch(ops)):
            expect = mf.multiply(bundle, fmt)
            assert (res.ph, res.pl) == (expect.ph, expect.pl), fmt

    def test_fp16_rounding_boundaries(self, quad_unit):
        """All-ones mantissas: the renormalization window per lane."""
        mf = MFMult(fidelity="fast")
        all_ones = BINARY16.pack(0, 15, (1 << 10) - 1)
        half = BINARY16.pack(0, 15, 1 << 9)
        one = BINARY16.pack(0, 15, 0)
        ops = []
        for a in (all_ones, half, one):
            for b in (all_ones, half, one):
                ops.append((OperandBundle.fp16_quad([a, b, a, b],
                                                    [b, a, a, b]),
                            MFFormat.FP16X4))
        for (bundle, fmt), res in zip(ops, quad_unit.run_batch(ops)):
            assert res.ph == mf.multiply(bundle, fmt).ph

    def test_lane_isolation(self, quad_unit):
        """Changing one lane's operands must not disturb the others."""
        rng = random.Random(64)
        mf = MFMult(fidelity="fast")
        base_x = [_n16(rng) for __ in range(4)]
        base_y = [_n16(rng) for __ in range(4)]
        ops = [(OperandBundle.fp16_quad(base_x, base_y), MFFormat.FP16X4)]
        for lane in range(4):
            xs = list(base_x)
            xs[lane] = _n16(rng)
            ops.append((OperandBundle.fp16_quad(xs, base_y),
                        MFFormat.FP16X4))
        results = quad_unit.run_batch(ops)
        ref = results[0]
        for lane in range(4):
            changed = results[lane + 1]
            for other in range(4):
                if other == lane:
                    continue
                assert ((changed.ph >> (16 * other)) & 0xFFFF) \
                    == ((ref.ph >> (16 * other)) & 0xFFFF), (lane, other)

    def test_default_unit_rejects_fp16(self):
        unit = MFMultUnit()
        rng = random.Random(65)
        op = (OperandBundle.fp16_quad([_n16(rng)] * 4, [_n16(rng)] * 4),
              MFFormat.FP16X4)
        with pytest.raises(SimulationError):
            unit.run_batch([op])

    def test_default_build_unchanged_by_quad_code(self):
        """The quad overlay folds away: default builds keep their size."""
        default = build_mf_multiplier(buffer_max_load=None)
        # The classic unit stays near its established size (the overlay
        # muxes with a constant select all fold out).
        assert 18000 < len(default.gates) < 22000
        quad = build_mf_multiplier(buffer_max_load=None, quad_fp16=True)
        assert len(quad.gates) > len(default.gates)

    def test_frmt_code(self):
        assert FRMT_FP16X4 == 0b11
