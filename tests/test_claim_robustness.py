"""Seed-robustness of the headline reproduction claims.

The benchmarks assert the paper's shape claims for one committed seed;
these tests re-check the claims across several stimulus seeds and
Monte Carlo depths, so the reproduction cannot hinge on a lucky draw.
Kept at modest cycle counts — direction, not precision.
"""

import pytest

from repro.eval.experiments import cached_module
from repro.eval.workloads import WorkloadGenerator
from repro.hdl.library import default_library
from repro.hdl.power.monte_carlo import estimate_power


def _power(which, fmt_or_stim, n_cycles, seed):
    lib = default_library()
    module = cached_module(which)
    gen = WorkloadGenerator(seed)
    if which == "mf":
        stim = gen.mf_stimulus(fmt_or_stim, n_cycles)
    else:
        stim = gen.multiplier_stimulus(n_cycles)
    return estimate_power(module, lib, stim, n_cycles).total_mw


@pytest.mark.slow
@pytest.mark.parametrize("seed", [11, 222, 3333])
class TestTableIIIRobustness:
    def test_pipelined_radix16_wins(self, seed):
        r16 = _power("r16_pipe", None, 10, seed)
        r4 = _power("r4_pipe", None, 10, seed)
        assert r16 < r4
        assert 0.80 < r16 / r4 < 0.97


@pytest.mark.slow
@pytest.mark.parametrize("seed", [7, 77, 777])
class TestTableVRobustness:
    def test_format_power_ordering(self, seed):
        mw = {fmt: _power("mf", fmt, 10, seed)
              for fmt in ("int64", "fp64", "fp32_dual", "fp32_single")}
        assert mw["int64"] > mw["fp64"] > mw["fp32_dual"] \
            > mw["fp32_single"]

    def test_dual_lane_efficiency_wins(self, seed):
        fp64 = _power("mf", "fp64", 10, seed)
        dual = _power("mf", "fp32_dual", 10, seed)
        # 2 FLOPs/cycle at lower power: efficiency gain well over 2x.
        assert 2 * fp64 / dual > 2.0


class TestCycleCountRobustness:
    @pytest.mark.parametrize("n_cycles", [6, 12, 24])
    def test_table3_ratio_stable(self, n_cycles):
        r16 = _power("r16_pipe", None, n_cycles, 2017)
        r4 = _power("r4_pipe", None, n_cycles, 2017)
        assert 0.80 < r16 / r4 < 0.97
