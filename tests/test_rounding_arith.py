"""Tests for the Fig. 3 speculative normalization/rounding algebra."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arith.rounding import (
    FP32_HIGH_LANE,
    FP32_LOW_LANE,
    FP64_LANE,
    injection_vectors,
    int64_product,
    normalize_round_fp32_dual,
    normalize_round_fp64,
    normalize_round_lane,
    speculative_sums,
)
from repro.bits.ieee754 import round_significand
from repro.bits.utils import mask
from repro.errors import BitWidthError

SIG53 = st.integers(min_value=1 << 52, max_value=(1 << 53) - 1)
SIG24 = st.integers(min_value=1 << 23, max_value=(1 << 24) - 1)


def _split_carry_save(product, salt):
    """Split an integer into an (s, c) pair like a tree would produce."""
    s = product & ~salt & mask(128)
    c = product - s
    assert s + c == product
    return s, c & mask(128)


class TestLaneGeometry:
    def test_fp64_positions(self):
        """Kept field P105..P53, round bit 52 (the paper's prose; Fig. 3's
        printed '53' is off by one — see the module docstring)."""
        assert FP64_LANE.r1_position == 52
        assert FP64_LANE.r0_position == 51
        assert FP64_LANE.significand_lsb == 53

    def test_fp32_positions_match_paper_verbatim(self):
        """Sec. III-B gives the dual vectors explicitly: 87/23 and 86/22."""
        r1, r0 = injection_vectors([FP32_LOW_LANE, FP32_HIGH_LANE])
        assert r1 == (1 << 87) | (1 << 23)
        assert r0 == (1 << 86) | (1 << 22)


class TestFP64Rounding:
    @given(SIG53, SIG53, st.integers(min_value=0, max_value=mask(128)))
    @settings(max_examples=150)
    def test_matches_exact_injection_rounding(self, mx, my, salt):
        product = mx * my
        s, c = _split_carry_save(product, salt)
        lane = normalize_round_fp64(s, c)
        expect, carry = round_significand(product, 53, mode="injection")
        high = (product >> 105) & 1
        assert lane.significand == expect
        assert lane.exponent_increment == (high | carry)

    def test_renormalization_window(self):
        """Products in [2**105 - 2**52, 2**105) round up to 1.0 x 2^(e+1)
        only above 2**105 - 2**51; the mux select must split this window
        correctly (this is the case a P1-based select would get wrong)."""
        for product in ((1 << 105) - (1 << 52),          # rounds to 1.11..1
                        (1 << 105) - (1 << 51) - 1,      # just below the tie
                        (1 << 105) - (1 << 51),          # rounds up: 1.0, e+1
                        (1 << 105) - 1):                 # rounds up: 1.0, e+1
            lane = normalize_round_fp64(product, 0)
            expect, carry = round_significand(product, 53, mode="injection")
            assert lane.significand == expect, hex(product)
            assert lane.exponent_increment == carry, hex(product)

    def test_exact_one_times_one(self):
        product = (1 << 52) * (1 << 52)
        lane = normalize_round_fp64(product, 0)
        assert lane.significand == 1 << 52
        assert lane.exponent_increment == 0

    def test_max_product_no_overflow(self):
        mx = my = (1 << 53) - 1
        lane = normalize_round_fp64(mx * my, 0)
        expect, __ = round_significand(mx * my, 53, mode="injection")
        assert lane.significand == expect
        assert lane.exponent_increment == 1


class TestFP32DualRounding:
    @given(SIG24, SIG24, SIG24, SIG24)
    @settings(max_examples=150)
    def test_both_lanes_round_independently(self, x0, y0, x1, y1):
        p_lo = x0 * y0
        p_hi = x1 * y1
        s = p_lo | (p_hi << 64)
        low, high = normalize_round_fp32_dual(s, 0)
        e_lo, c_lo = round_significand(p_lo, 24, mode="injection")
        e_hi, c_hi = round_significand(p_hi, 24, mode="injection")
        assert low.significand == e_lo
        assert high.significand == e_hi
        assert low.exponent_increment == (((p_lo >> 47) & 1) | c_lo)
        assert high.exponent_increment == (((p_hi >> 47) & 1) | c_hi)

    @given(SIG24, SIG24, st.integers(min_value=0, max_value=mask(64)))
    @settings(max_examples=100)
    def test_lane_isolation_under_carry_save_noise(self, x1, y1, lo_bits):
        """Whatever the lower window holds, the upper lane's result only
        depends on the upper window (the split CPA kills the carry)."""
        p_hi = x1 * y1
        s = lo_bits | (p_hi << 64)
        __, high = normalize_round_fp32_dual(s, 0)
        __, high_ref = normalize_round_fp32_dual(p_hi << 64, 0)
        assert high.significand == high_ref.significand
        assert high.exponent_increment == high_ref.exponent_increment


class TestSpeculativeSums:
    @given(st.integers(min_value=0, max_value=mask(128)),
           st.integers(min_value=0, max_value=mask(128)))
    def test_unsplit_sums(self, s, c):
        p1, p0 = speculative_sums(s, c, 1 << 52, 1 << 51, split=False)
        assert p1 == (s + c + (1 << 52)) & mask(128)
        assert p0 == (s + c + (1 << 51)) & mask(128)

    @given(st.integers(min_value=0, max_value=mask(64)),
           st.integers(min_value=0, max_value=mask(64)))
    def test_split_windows(self, lo, hi):
        s = lo | (hi << 64)
        p1, __ = speculative_sums(s, 0, 0, 0, split=True)
        assert p1 == s                      # no carries to cross anyway

    def test_width_checked(self):
        with pytest.raises(BitWidthError):
            speculative_sums(1 << 128, 0, 0, 0)


class TestInt64Path:
    @given(st.integers(min_value=0, max_value=mask(64)),
           st.integers(min_value=0, max_value=mask(64)),
           st.integers(min_value=0, max_value=mask(128)))
    def test_single_cpa_no_injection(self, x, y, salt):
        product = x * y
        s, c = _split_carry_save(product, salt)
        assert int64_product(s, c) == product
