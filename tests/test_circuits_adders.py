"""Tests for the structural adders (co-simulated against references)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bits.utils import mask
from repro.circuits.adders import (
    adder_styles,
    brent_kung_adder,
    carry_select_adder,
    kogge_stone_adder,
    lane_split_adder,
    make_adder,
    ripple_adder,
)
from repro.circuits.primitives import GateBuilder
from repro.errors import NetlistError
from repro.hdl.module import Module
from repro.hdl.sim.levelized import LevelizedSimulator
from repro.hdl.timing.sta import analyze
from repro.hdl.library import default_library
from repro.hdl.validate import validate


def _build_adder(style, width, with_cin=False):
    m = Module(f"add_{style}_{width}")
    gb = GateBuilder(m)
    a = m.input("a", width)
    b = m.input("b", width)
    cin = m.input("cin", 1)[0] if with_cin else None
    total, cout = make_adder(style)(gb, a, b, carry_in=cin)
    m.output("s", total)
    m.output("co", [cout])
    return validate(m)


def _run_cases(module, cases, with_cin=False):
    stim = {"a": [c[0] for c in cases], "b": [c[1] for c in cases]}
    if with_cin:
        stim["cin"] = [c[2] for c in cases]
    sim = LevelizedSimulator(module)
    return sim.run(stim, len(cases))


STYLES = ["ripple", "kogge_stone", "brent_kung", "carry_select"]


class TestAdderStyles:
    @pytest.mark.parametrize("style", STYLES)
    @pytest.mark.parametrize("width", [1, 7, 16, 64])
    def test_exhaustive_small_random_large(self, style, width):
        import random
        rng = random.Random(width)
        if width <= 4:
            cases = [(a, b) for a in range(1 << width)
                     for b in range(1 << width)]
        else:
            cases = [(rng.getrandbits(width), rng.getrandbits(width))
                     for __ in range(40)]
            cases += [(0, 0), (mask(width), mask(width)), (mask(width), 1)]
        module = _build_adder(style, width)
        run = _run_cases(module, cases)
        for t, (a, b) in enumerate(cases):
            got = run.bus_word(module.outputs["s"], t)
            co = run.bus_word(module.outputs["co"], t)
            assert got == (a + b) & mask(width), (style, a, b)
            assert co == (a + b) >> width

    @pytest.mark.parametrize("style", STYLES)
    def test_carry_in(self, style):
        import random
        rng = random.Random(99)
        cases = [(rng.getrandbits(16), rng.getrandbits(16),
                  rng.getrandbits(1)) for __ in range(30)]
        module = _build_adder(style, 16, with_cin=True)
        run = _run_cases(module, cases, with_cin=True)
        for t, (a, b, c) in enumerate(cases):
            got = run.bus_word(module.outputs["s"], t)
            assert got == (a + b + c) & mask(16)

    def test_unknown_style(self):
        with pytest.raises(NetlistError):
            make_adder("magic")
        assert set(STYLES) == set(adder_styles())

    def test_width_mismatch(self):
        m = Module("bad")
        gb = GateBuilder(m)
        a = m.input("a", 4)
        b = m.input("b", 5)
        with pytest.raises(NetlistError):
            ripple_adder(gb, a, b)

    def test_kogge_stone_faster_than_ripple(self):
        lib = default_library()
        ks = analyze(_build_adder("kogge_stone", 64), lib).latency_ps
        rp = analyze(_build_adder("ripple", 64), lib).latency_ps
        assert ks < rp / 3

    def test_brent_kung_smaller_than_kogge_stone(self):
        ks = _build_adder("kogge_stone", 64)
        bk = _build_adder("brent_kung", 64)
        assert len(bk.gates) < len(ks.gates)


class TestLaneSplitAdder:
    def _build(self, width=32, boundary=16):
        m = Module("lane")
        gb = GateBuilder(m)
        a = m.input("a", width)
        b = m.input("b", width)
        split = m.input("split", 1)
        total, cout = lane_split_adder(gb, a, b, split[0],
                                       boundary=boundary)
        m.output("s", total)
        m.output("co", [cout])
        return validate(m)

    @given(st.integers(min_value=0, max_value=mask(32)),
           st.integers(min_value=0, max_value=mask(32)),
           st.integers(min_value=0, max_value=1))
    @settings(max_examples=40, deadline=None)
    def test_both_modes(self, a, b, split):
        module = self._build()
        run = LevelizedSimulator(module).run(
            {"a": [a], "b": [b], "split": [split]}, 1)
        got = run.bus_word(module.outputs["s"], 0)
        if split:
            lo = ((a & mask(16)) + (b & mask(16))) & mask(16)
            hi = (((a >> 16) + (b >> 16)) & mask(16)) << 16
            assert got == lo | hi
        else:
            assert got == (a + b) & mask(32)

    def test_boundary_validated(self):
        m = Module("bad")
        gb = GateBuilder(m)
        a = m.input("a", 8)
        b = m.input("b", 8)
        s = m.input("split", 1)
        with pytest.raises(NetlistError):
            lane_split_adder(gb, a, b, s[0], boundary=8)
