"""Tests for STA, area accounting, buffering and pipeline analysis."""

import pytest

from repro.errors import NetlistError, PipelineError
from repro.hdl.area.model import area_report
from repro.hdl.buffering import insert_buffers
from repro.hdl.library import FO4_PS, default_library
from repro.hdl.module import Module
from repro.hdl.pipeline import pipeline_report, stage_map
from repro.hdl.sim.levelized import LevelizedSimulator
from repro.hdl.timing.sta import analyze, critical_path_breakdown


def _chain(n, width_in=1):
    """A chain of n inverters (hand-computable timing)."""
    m = Module("chain")
    a = m.input("a", 1)
    net = a[0]
    for __ in range(n):
        net = m.gate("INV", net)
    m.output("o", [net])
    return m


class TestSTA:
    def test_inverter_chain_delay(self):
        lib = default_library()
        m = _chain(4)
        report = analyze(m, lib)
        spec = lib.spec("INV")
        # First three INVs drive one INV pin; the last drives the output.
        expect = 3 * spec.delay_ps(spec.input_cap) \
            + spec.delay_ps(lib.output_load)
        assert report.latency_ps == pytest.approx(expect)

    def test_parallel_paths_take_max(self):
        m = Module("par")
        a = m.input("a", 1)
        slow = m.gate("INV", a[0])
        slow = m.gate("INV", slow)
        fast = m.gate("BUF", a[0])
        out = m.gate("AND2", slow, fast)
        m.output("o", [out])
        lib = default_library()
        report = analyze(m, lib)
        path_kinds = [m.gates[g].kind for g in report.stages[0].path_gates]
        assert path_kinds == ["INV", "INV", "AND2"]

    def test_stage_endpoints(self):
        m = Module("pipe")
        a = m.input("a", 1)
        x = m.gate("INV", a[0])
        q = m.register(x, stage=1)
        y = m.gate("INV", q)
        y = m.gate("INV", y)
        m.output("o", [y])
        report = analyze(m, default_library())
        assert len(report.stages) == 2
        assert report.stages[1].delay_ps > report.stages[0].delay_ps
        assert report.clock_period_ps == pytest.approx(
            report.stages[1].delay_ps
            + default_library().register.overhead_ps)

    def test_breakdown_sums_to_latency(self):
        from repro.circuits.mult_radix16 import radix16_multiplier
        lib = default_library()
        m = radix16_multiplier()
        report = analyze(m, lib)
        segments = critical_path_breakdown(m, lib)
        assert sum(s.delay_ps for s in segments) \
            == pytest.approx(report.latency_ps)

    def test_fo4_normalization(self):
        m = _chain(2)
        report = analyze(m, default_library())
        assert report.latency_fo4 == pytest.approx(
            report.latency_ps / FO4_PS)


class TestArea:
    def test_counts_every_gate(self):
        lib = default_library()
        m = Module("area")
        a = m.input("a", 2)
        with m.block("one"):
            m.gate("XOR2", a[0], a[1])
        with m.block("two"):
            m.gate("NAND2", a[0], a[1])
        report = area_report(m, lib)
        assert report.total_um2 == pytest.approx(
            lib.spec("XOR2").area_um2 + lib.spec("NAND2").area_um2)
        assert report.block_um2("one") == pytest.approx(
            lib.spec("XOR2").area_um2)
        assert report.total_nand2_eq == pytest.approx(
            lib.spec("XOR2").area_eq + 1.0)

    def test_registers_counted(self):
        lib = default_library()
        m = Module("area")
        a = m.input("a", 3)
        m.register_bus(a, stage=1)
        report = area_report(m, lib)
        assert report.register_um2 == pytest.approx(
            3 * lib.register.area_um2)
        assert report.total_um2 == report.register_um2


class TestBuffering:
    def _fanout_module(self, sinks):
        m = Module("fan")
        a = m.input("a", 1)
        src = m.gate("INV", a[0])
        outs = [m.gate("BUF", src) for __ in range(sinks)]
        x = outs[0]
        for o in outs[1:]:
            x = m.gate("OR2", x, o)
        m.output("o", [x])
        return m

    def test_loads_bounded_after_pass(self):
        lib = default_library()
        m = self._fanout_module(40)
        insert_buffers(m, lib, max_load=8.0)
        load = m.load_map(lib)
        for net in range(m.n_nets):
            if net in m.constants:
                continue
            assert load[net] <= 8.0 + lib.output_load, net

    def test_function_preserved(self):
        lib = default_library()
        m = self._fanout_module(20)
        before = LevelizedSimulator(m).run({"a": [0, 1]}, 2)
        out_before = [before.bus_word(m.outputs["o"], t) for t in range(2)]
        insert_buffers(m, lib, max_load=6.0)
        after = LevelizedSimulator(m).run({"a": [0, 1]}, 2)
        out_after = [after.bus_word(m.outputs["o"], t) for t in range(2)]
        assert out_before == out_after

    def test_constants_exempt(self):
        lib = default_library()
        m = Module("const_fan")
        a = m.input("a", 1)
        one = m.const(1)
        x = a[0]
        for __ in range(30):
            x = m.gate("AND2", x, one)
        m.output("o", [x])
        gates_before = len(m.gates)
        insert_buffers(m, lib, max_load=4.0)
        # No buffers on the constant net.
        assert all(g.inputs[1] == one for g in m.gates[:gates_before]
                   if g.kind == "AND2")

    def test_threshold_validated(self):
        with pytest.raises(NetlistError):
            insert_buffers(Module("m"), default_library(), max_load=0.5)


class TestPipelineAnalysis:
    def test_stage_map_simple(self):
        m = Module("p")
        a = m.input("a", 1)
        x = m.gate("INV", a[0])
        q = m.register(x, stage=1)
        y = m.gate("INV", q)
        m.output("o", [y])
        gate_stages, net_stages = stage_map(m)
        assert gate_stages == [1, 2]

    def test_mixed_stage_gate_rejected(self):
        m = Module("p")
        a = m.input("a", 2)
        q = m.register(a[0], stage=1)   # stage-2 value
        bad = m.gate("AND2", q, a[1])   # mixes stage 2 with stage 1
        m.output("o", [bad])
        with pytest.raises(PipelineError):
            stage_map(m, strict=True)
        gate_stages, __ = stage_map(m, strict=False)
        assert gate_stages == [2]

    def test_report_counts(self):
        from repro.circuits.mult_radix16 import radix16_multiplier
        m = radix16_multiplier(pipeline_cut="after_ppgen")
        report = pipeline_report(m)
        assert report.n_stages == 2
        assert set(report.gates_per_stage) == {1, 2}
        assert report.registers_per_cut == {1: len(m.registers)}
        assert 0 < report.stage_share(1) < 1
