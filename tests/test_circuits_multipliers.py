"""Tests for the assembled 64x64 multipliers (Fig. 2, Tables I-III)."""

import random

import pytest

from repro.bits.utils import mask
from repro.circuits.mult_common import build_multiplier
from repro.circuits.mult_radix4 import radix4_multiplier
from repro.circuits.mult_radix8 import radix8_multiplier
from repro.circuits.mult_radix16 import radix16_multiplier
from repro.errors import NetlistError
from repro.hdl.library import default_library
from repro.hdl.pipeline import pipeline_report
from repro.hdl.sim.levelized import LevelizedSimulator
from repro.hdl.timing.sta import analyze

BUILDERS = {
    "r4": radix4_multiplier,
    "r8": radix8_multiplier,
    "r16": radix16_multiplier,
}

EDGE_CASES = [
    (0, 0), (1, 1), (0, mask(64)), (mask(64), 0),
    (mask(64), mask(64)), (1 << 63, 1 << 63), (1 << 63, mask(64)),
    (0x8888888888888888, 0x8888888888888888),   # all digits -8
    (0x7777777777777777, 0x7777777777777777),   # all digits +7
    (0xAAAAAAAAAAAAAAAA, 0x5555555555555555),
]


def _verify(module, cases, latency=0):
    stim = {"x": [c[0] for c in cases] + [0] * latency,
            "y": [c[1] for c in cases] + [0] * latency}
    run = LevelizedSimulator(module).run(stim, len(cases) + latency)
    for t, (x, y) in enumerate(cases):
        got = run.bus_word(module.outputs["p"], t + latency)
        assert got == x * y, (module.name, hex(x), hex(y))


@pytest.fixture(scope="module")
def modules():
    return {name: builder() for name, builder in BUILDERS.items()}


@pytest.fixture(scope="module")
def pipelined_modules():
    return {name: builder(pipeline_cut="after_ppgen")
            for name, builder in BUILDERS.items()}


class TestCombinational:
    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_edge_cases(self, modules, name):
        _verify(modules[name], EDGE_CASES)

    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_random(self, modules, name):
        rng = random.Random(hash(name) & 0xFFFF)
        cases = [(rng.getrandbits(64), rng.getrandbits(64))
                 for __ in range(50)]
        _verify(modules[name], cases)

    def test_block_structure_matches_fig2(self, modules):
        blocks = {g.block.split("/", 1)[0] for g in modules["r16"].gates}
        assert {"precomp", "recoder", "ppgen", "tree", "cpa"} <= blocks
        # radix-4 has no multiple pre-computation (2X is wiring).
        r4_blocks = {g.block.split("/", 1)[0] for g in modules["r4"].gates}
        assert "precomp" not in r4_blocks


class TestPipelined:
    @pytest.mark.parametrize("name", ["r4", "r16"])
    def test_one_cycle_latency_results(self, pipelined_modules, name):
        rng = random.Random(5)
        cases = [(rng.getrandbits(64), rng.getrandbits(64))
                 for __ in range(20)]
        _verify(pipelined_modules[name], cases, latency=1)

    @pytest.mark.parametrize("name", ["r4", "r16"])
    def test_two_stages(self, pipelined_modules, name):
        module = pipelined_modules[name]
        assert module.stage_count() == 2
        report = pipeline_report(module)
        assert report.n_stages == 2

    def test_after_precomp_cut(self):
        module = radix16_multiplier(pipeline_cut="after_precomp")
        rng = random.Random(6)
        cases = [(rng.getrandbits(64), rng.getrandbits(64))
                 for __ in range(10)]
        _verify(module, cases, latency=1)
        # Fewer registers than the after-ppgen cut.
        after_ppgen = radix16_multiplier(pipeline_cut="after_ppgen")
        assert len(module.registers) < len(after_ppgen.registers)

    def test_unknown_cut_rejected(self):
        with pytest.raises(NetlistError):
            build_multiplier(4, pipeline_cut="mid_tree")


class TestPaperShapeClaims:
    """The relative claims of Sec. II-A, robust to calibration."""

    def test_radix4_faster_than_radix16(self, modules):
        lib = default_library()
        t4 = analyze(modules["r4"], lib).latency_ps
        t16 = analyze(modules["r16"], lib).latency_ps
        assert t4 < t16
        # Paper: about 20% faster; allow a generous band.
        assert 0.70 < t4 / t16 < 0.98

    def test_radix8_dominated(self, modules):
        """Sec. II-A's reason to skip radix-8: needs the pre-computation
        like radix-16 but keeps a taller tree."""
        lib = default_library()
        t8 = analyze(modules["r8"], lib).latency_ps
        t16 = analyze(modules["r16"], lib).latency_ps
        assert t8 >= t16 * 0.95

    def test_radix16_fewer_tree_gates(self, modules):
        def tree_gates(m):
            return sum(1 for g in m.gates
                       if g.block.split("/", 1)[0] == "tree")
        assert tree_gates(modules["r16"]) < 0.62 * tree_gates(modules["r4"])

    def test_radix16_latency_near_29_fo4(self, modules):
        lib = default_library()
        fo4 = analyze(modules["r16"], lib).latency_fo4
        assert 25 <= fo4 <= 36      # paper: 29

    def test_adder_style_option(self):
        module = build_multiplier(4, adder_style="brent_kung")
        rng = random.Random(8)
        cases = [(rng.getrandbits(64), rng.getrandbits(64))
                 for __ in range(8)]
        _verify(module, cases)

    def test_4_2_tree_option(self):
        module = build_multiplier(4, use_4_2=True)
        rng = random.Random(9)
        cases = [(rng.getrandbits(64), rng.getrandbits(64))
                 for __ in range(8)]
        _verify(module, cases)

    def test_unbuffered_build(self):
        module = build_multiplier(4, buffer_max_load=None)
        _verify(module, EDGE_CASES[:4])
