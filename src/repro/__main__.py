"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro                      # everything (fast settings)
    python -m repro table3 table5        # selected experiments
    python -m repro --cycles 32 table3   # deeper Monte Carlo
    python -m repro export-verilog mfmult out.v
    python -m repro cache stats          # result-cache maintenance
    python -m repro perf record          # append BENCH_* to perf history
    python -m repro perf check           # gate vs the rolling baseline
    python -m repro tune width           # measure + cache superword widths
    python -m repro worker serve --bind 0.0.0.0:9700 --workers 8
                                         # serve this box's cores to
                                         # --backend remote coordinators
"""

import argparse
import sys


def _experiment_registry():
    from repro.eval import experiments as ex

    return {
        "table1": lambda args: ex.experiment_table1(),
        "table2": lambda args: ex.experiment_table2(),
        "table3": lambda args: ex.experiment_table3(n_cycles=args.cycles),
        "table4": lambda args: ex.experiment_table4(),
        "table5": lambda args: ex.experiment_table5(n_cycles=args.cycles),
        "fig1": lambda args: ex.experiment_fig1_ppgen(),
        "fig2": lambda args: ex.experiment_fig2_multiplier(),
        "fig3": lambda args: ex.experiment_fig3_normround(),
        "fig4": lambda args: ex.experiment_fig4_dual_lane(),
        "fig5": lambda args: ex.experiment_fig5_pipeline(),
        "fig6": lambda args: ex.experiment_fig6_reduction(),
        "section4": lambda args: ex.experiment_section4_savings(),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the tables and figures of Nannarelli, "
                    "'A Multi-Format Floating-Point Multiplier for "
                    "Power-Efficient Operations', SOCC 2017.")
    parser.add_argument("targets", nargs="*",
                        help="experiments to run (default: all); or "
                             "'export-verilog <which> <path>' where "
                             "<which> is one of r4/r8/r16/mf/reducer")
    parser.add_argument("--cycles", type=int, default=16,
                        help="Monte Carlo cycles for the power "
                             "experiments (default 16)")
    parser.add_argument("--workers", type=int, default=0,
                        help="for 'report': worker processes for the "
                             "experiment job graph (default serial)")
    parser.add_argument("--backend", default="auto",
                        help="for 'report': execution backend "
                             "(auto/inline/fork/workers/remote)")
    parser.add_argument("--hosts", default=None,
                        help="for 'report' with --backend remote: "
                             "worker daemons as HOST:PORT,... "
                             "(default REPRO_SCHED_HOSTS)")
    parser.add_argument("--output", default=None,
                        help="for 'report': write the markdown report "
                             "to this path")
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "cache":
        # Result-cache maintenance: delegate to the cache CLI.
        from repro.eval.cache import main as cache_main

        return cache_main(argv[1:])
    if argv and argv[0] == "perf":
        # Perf-history record/check: delegate to the perf-gate CLI.
        from repro.eval.perf import main as perf_main

        return perf_main(argv[1:])
    if argv and argv[0] == "tune":
        # Superword width auto-tuner: delegate to the tuner CLI.
        from repro.eval.tune import main as tune_main

        return tune_main(argv[1:])
    if argv and argv[0] == "worker":
        # Remote-backend worker daemon: delegate to the daemon CLI.
        from repro.eval.sched.daemon import main as worker_main

        return worker_main(argv[1:])
    args = parser.parse_args(argv)

    if args.targets and args.targets[0] == "export-verilog":
        return _export_verilog(args.targets[1:])
    if args.targets and args.targets[0] == "report":
        # The full orchestrated CLI lives at ``python -m repro.eval.report``;
        # this short form keeps the historic sections and defaults.
        from repro.eval.report import generate_report

        text = generate_report(n_cycles=args.cycles,
                               out_path=args.output,
                               workers=args.workers,
                               backend=args.backend,
                               hosts=args.hosts)
        if args.output:
            print(f"wrote report to {args.output}")
        else:
            print(text)
        return 0

    registry = _experiment_registry()
    targets = args.targets or list(registry)
    unknown = [t for t in targets if t not in registry]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}; "
                     f"choose from {', '.join(registry)}")
    for target in targets:
        print(f"===== {target} =====")
        result = registry[target](args)
        print(result.render())
        print()
    return 0


def _export_verilog(rest):
    if len(rest) != 2:
        print("usage: python -m repro export-verilog "
              "<r4|r8|r16|mf|reducer> <path>", file=sys.stderr)
        return 2
    which, path = rest
    from repro.eval.experiments import cached_module
    from repro.hdl.export import write_verilog

    try:
        module = cached_module(which)
    except KeyError:
        print(f"unknown module {which!r}; choose r4/r8/r16/mf/reducer",
              file=sys.stderr)
        return 2
    write_verilog(module, path)
    print(f"wrote {module.name!r} ({len(module.gates)} cells, "
          f"{len(module.registers)} FFs) to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
