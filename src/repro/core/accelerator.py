"""A multi-lane accelerator model built from MFmult units.

The paper's opening motivation: "increasing [multiplication] efficiency
is highly desirable especially in systems performing several
multiplications per cycle in parallel, such as accelerators, multi-lane
vector units and GPUs."  This module models exactly that system level:
``Accelerator`` instantiates N multiplier lanes, schedules element-wise
and GEMM-style kernels over them, optionally demoting operands through
the Fig. 6 reducer, and accounts cycles and energy with a per-format
power table (the paper's Table V or our measured one).

The model is issue-accurate, not netlist-level: each lane is the
3-stage pipelined unit (throughput 1 op/cycle, 2 for dual binary32),
and results are numerically produced by the functional MFMult so the
accuracy impact of demotion is real, not estimated.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bits.ieee754 import BINARY64, decode, encode
from repro.core.mfmult import MFMult
from repro.core.reduction import reduce_binary64, widen_binary32
from repro.core.vector_unit import FormatPowerTable, IssueStats
from repro.core.formats import MFFormat, OperandBundle
from repro.errors import FormatError


@dataclass
class KernelReport:
    """Cycles/energy accounting for one executed kernel."""

    lanes: int
    stats: IssueStats = field(default_factory=IssueStats)
    results: List[float] = field(default_factory=list)

    @property
    def lane_cycles(self):
        """Issued multiplier cycles summed over lanes."""
        return self.stats.total_cycles

    @property
    def wall_cycles(self):
        """Critical-path cycles with perfect lane balancing."""
        return -(-self.stats.total_cycles // self.lanes)

    def energy_pj(self, table):
        return self.stats.energy_pj(table)

    def summary(self, table):
        return (f"{self.stats.total_operations} multiplies on "
                f"{self.lanes} lanes: {self.lane_cycles} lane-cycles "
                f"({self.wall_cycles} wall), "
                f"{self.stats.demoted_operations} demoted, "
                f"{self.energy_pj(table):.0f} pJ")


class Accelerator:
    """N multiplier lanes with an optional demoting front-end."""

    def __init__(self, lanes=4, use_reduction=True, power_table=None):
        if lanes < 1:
            raise FormatError("an accelerator needs at least one lane")
        self.lanes = lanes
        self.use_reduction = use_reduction
        self.power_table = power_table or FormatPowerTable()
        self._mf = MFMult(mode="paper", fidelity="fast")

    # ------------------------------------------------------------------

    def elementwise_multiply(self, xs, ys):
        """``z[i] = x[i] * y[i]`` over Python floats.

        Demotable pairs are packed two per dual-binary32 cycle; the rest
        issue on the binary64 path.  Returns a :class:`KernelReport`
        whose ``results`` hold the actually-computed values.
        """
        if len(xs) != len(ys):
            raise FormatError("operand vectors must have equal length")
        report = KernelReport(lanes=self.lanes)
        report.stats.total_operations = len(xs)
        slots: List[Optional[float]] = [None] * len(xs)
        demote_queue = []

        for i, (a, b) in enumerate(zip(xs, ys)):
            xe, ye = encode(a, BINARY64), encode(b, BINARY64)
            if self.use_reduction:
                dx, dy = reduce_binary64(xe), reduce_binary64(ye)
                if dx.reduced and dy.reduced and self._fits(dx, dy):
                    demote_queue.append((i, dx.encoding32, dy.encoding32))
                    report.stats.demoted_operations += 1
                    continue
            out = self._mf.multiply(OperandBundle.fp64(xe, ye),
                                    MFFormat.FP64)
            slots[i] = decode(out.fp64_encoding, BINARY64)
            report.stats.fp64_cycles += 1

        for j in range(0, len(demote_queue) - 1, 2):
            (i0, x0, y0), (i1, x1, y1) = demote_queue[j], demote_queue[j + 1]
            out = self._mf.multiply(
                OperandBundle.fp32_pair(x0, y0, x1, y1), MFFormat.FP32X2)
            slots[i0] = decode(widen_binary32(out.fp32_encoding(0)),
                               BINARY64)
            slots[i1] = decode(widen_binary32(out.fp32_encoding(1)),
                               BINARY64)
            report.stats.fp32_dual_cycles += 1
        if len(demote_queue) % 2:
            i0, x0, y0 = demote_queue[-1]
            one = 0x3F800000
            out = self._mf.multiply(
                OperandBundle.fp32_pair(x0, y0, one, one), MFFormat.FP32X2)
            slots[i0] = decode(widen_binary32(out.fp32_encoding(0)),
                               BINARY64)
            report.stats.fp32_single_cycles += 1

        report.results = [s for s in slots]
        if any(s is None for s in report.results):
            raise FormatError("kernel scheduler lost elements")
        return report

    def dot(self, xs, ys):
        """Dot product; returns ``(value, KernelReport)``.

        Accumulation is modeled in binary64 (the unit under study is the
        multiplier; the paper does not include an adder)."""
        report = self.elementwise_multiply(xs, ys)
        return sum(report.results), report

    def gemm(self, a, b):
        """``C = A @ B`` on nested float lists; returns ``(C, report)``.

        Multiplications are batched row-by-column to maximize dual-lane
        pairing within each output element's partial products.
        """
        rows = len(a)
        inner = len(a[0]) if rows else 0
        if any(len(r) != inner for r in a):
            raise FormatError("matrix A is ragged")
        if len(b) != inner:
            raise FormatError("A columns must equal B rows")
        cols = len(b[0]) if inner else 0
        if any(len(r) != cols for r in b):
            raise FormatError("matrix B is ragged")

        total = KernelReport(lanes=self.lanes)
        c = [[0.0] * cols for __ in range(rows)]
        for i in range(rows):
            for j in range(cols):
                xs = [a[i][k] for k in range(inner)]
                ys = [b[k][j] for k in range(inner)]
                report = self.elementwise_multiply(xs, ys)
                c[i][j] = sum(report.results)
                _merge(total.stats, report.stats)
        return c, total

    def compare_energy(self, report):
        """Energy vs an all-binary64 machine, per the power table."""
        table = self.power_table
        return {
            "energy_pj": report.energy_pj(table),
            "baseline_pj": report.stats.baseline_energy_pj(table),
            "savings": report.stats.savings_fraction(table),
        }

    @staticmethod
    def _fits(dx, dy):
        predicted = dx.e32 + dy.e32 - 127
        return 1 <= predicted and predicted + 1 <= 254


def _merge(into, other):
    into.fp64_cycles += other.fp64_cycles
    into.fp32_dual_cycles += other.fp32_dual_cycles
    into.fp32_single_cycles += other.fp32_single_cycles
    into.demoted_operations += other.demoted_operations
    into.total_operations += other.total_operations
