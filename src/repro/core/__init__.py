"""The paper's contribution: the multi-format multiplier and reducer.

:mod:`repro.core.mfmult` is the functional model, mirrored gate by gate
by :mod:`repro.core.pipeline_unit` (the structural 3-stage unit of
Fig. 5).  :mod:`repro.core.reduction` implements the binary64 ->
binary32 demotion of Sec. IV, and :mod:`repro.core.vector_unit` the
issue-level scheduling that turns demotion into power savings.
"""

from repro.core.accelerator import Accelerator, KernelReport
from repro.core.formats import (
    Flag,
    MFFormat,
    OperandBundle,
    ResultBundle,
    RoundingMode,
)
from repro.core.mfmult import DatapathTrace, MFMult
from repro.core.reduction import (
    LossyReducer,
    PeriodicReducer,
    ReductionDecision,
    is_reducible,
    reduce_binary64,
    widen_binary32,
)
from repro.core.vector_unit import (
    BatchResult,
    FormatPowerTable,
    IssueStats,
    VectorMultiplier,
)

__all__ = [
    "Accelerator",
    "BatchResult",
    "DatapathTrace",
    "KernelReport",
    "Flag",
    "FormatPowerTable",
    "IssueStats",
    "LossyReducer",
    "MFFormat",
    "MFMult",
    "OperandBundle",
    "PeriodicReducer",
    "ReductionDecision",
    "ResultBundle",
    "RoundingMode",
    "VectorMultiplier",
    "is_reducible",
    "reduce_binary64",
    "widen_binary32",
]
