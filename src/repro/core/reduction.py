"""binary64 -> binary32 reduction (Sec. IV, Algorithm 1 and Fig. 6).

A binary64 operand can be demoted **error-free** to binary32 when

1.  its re-biased exponent ``E32 = E64 - 896`` is positive
    (``896 = 1023 - 127``, the bias difference);
2.  ``E64 - 1151 < 0`` so ``E32 <= 254`` stays below the binary32
    infinity/NaN encoding (``1151 = 896 + 255``);
3.  the 29 least significant fraction bits are all zero
    (a 52-bit fraction whose payload fits 23 bits).

The hardware cost (Fig. 6) is one 5-bit adder (the 7 LSBs of -896 are
zero), one 12-bit adder (-1151 is odd; the figure draws 11 bits — see
DESIGN.md), a 29-input OR tree and a 2:1 mux.

Demoting operands pays because a single binary32 multiplication is ~2x
more power-efficient than binary64 and the dual-lane mode ~2.8x
(Table V); :mod:`repro.eval.experiments` quantifies the savings.

Extensions (the paper's future work, opt-in):

* :class:`PeriodicReducer` also demotes significands whose fraction is a
  repeating bit pattern (e.g. products of small ratios like 1/3 or
  decimal constants like 0.1), rounding the periodic tail with a bounded
  error instead of requiring exact zeros;
* :class:`LossyReducer` demotes whenever the value is representable in
  binary32 within a caller-chosen ulp budget.
"""

from dataclasses import dataclass
from typing import Optional

from repro.bits.ieee754 import BINARY32, BINARY64, decode
from repro.bits.utils import mask
from repro.errors import FormatError

#: Bias difference binary64 -> binary32 (Algorithm 1's ``-896``).
BIAS_DELTA = BINARY64.bias - BINARY32.bias
#: Upper-bound constant of Algorithm 1 (``-1151``).
UPPER_BOUND = BIAS_DELTA + BINARY32.exponent_mask
#: Fraction bits that must be zero (52 - 23).
DISCARDED_FRACTION_BITS = (
    BINARY64.trailing_significand_bits - BINARY32.trailing_significand_bits
)


@dataclass(frozen=True)
class ReductionDecision:
    """Outcome of one reduction attempt (mirrors the Fig. 6 signals)."""

    reduced: bool
    encoding32: Optional[int]   # binary32 encoding when reduced
    e32: int                    # Algorithm 1's Eb32 = Eb64 - 896 (signed)
    c1: int                     # 1 when Eb32 > 0 (lower-bound check passes)
    c2: int                     # 1 when Eb64 - 1151 < 0 (upper bound passes)
    zero: int                   # OR of the 29 LSBs (0 required to reduce)


def reduce_binary64(encoding64):
    """Run Algorithm 1 on a binary64 encoding.

    Returns a :class:`ReductionDecision`; when ``reduced`` the binary32
    encoding represents *exactly* the same real value (property-tested).
    """
    sign, e64, fraction = BINARY64.unpack(encoding64)
    e32 = e64 - BIAS_DELTA
    c1 = 1 if e32 > 0 else 0
    c2 = 1 if (e64 - UPPER_BOUND) < 0 else 0
    low = fraction & mask(DISCARDED_FRACTION_BITS)
    zero = 1 if low else 0
    ok = bool(c1 and c2 and not zero)
    encoding32 = None
    if ok:
        encoding32 = BINARY32.pack(sign, e32,
                                   fraction >> DISCARDED_FRACTION_BITS)
    return ReductionDecision(reduced=ok, encoding32=encoding32, e32=e32,
                             c1=c1, c2=c2, zero=zero)


def widen_binary32(encoding32):
    """The inverse conversion (exact by construction): binary32 -> binary64."""
    sign, e32, fraction = BINARY32.unpack(encoding32)
    if e32 == 0 or e32 == BINARY32.exponent_mask:
        raise FormatError(
            "widen_binary32 handles normalized values only (as does the unit)"
        )
    return BINARY64.pack(sign, e32 + BIAS_DELTA,
                         fraction << DISCARDED_FRACTION_BITS)


def is_reducible(encoding64):
    """Convenience predicate over Algorithm 1."""
    return reduce_binary64(encoding64).reduced


class PeriodicReducer:
    """Future-work extension: also demote *periodic* significands.

    A fraction produced by a ratio of small integers has an eventually
    repeating bit pattern; when the 52-bit fraction continues a period
    ``P <= max_period`` established in the kept 23 bits, demoting to
    binary32 with round-to-nearest loses at most half a binary32 ulp —
    and re-expanding by replaying the period recovers the binary64 value
    exactly.  ``reduce`` reports both.
    """

    def __init__(self, max_period=12):
        if not 1 <= max_period <= BINARY32.trailing_significand_bits:
            raise FormatError(
                f"max_period must be in 1..23, got {max_period}"
            )
        self.max_period = max_period

    def reduce(self, encoding64):
        exact = reduce_binary64(encoding64)
        if exact.reduced:
            return exact
        if not (exact.c1 and exact.c2):
            return exact
        sign, e64, fraction = BINARY64.unpack(encoding64)
        period = self._find_period(fraction)
        if period is None:
            return exact
        # Round the 52-bit fraction to 23 bits (nearest, ties to even on
        # the kept field).
        kept, carry = _round_fraction(fraction)
        e32 = exact.e32 + carry
        if not 0 < e32 < BINARY32.exponent_mask:
            return exact
        encoding32 = BINARY32.pack(sign, e32, kept)
        return ReductionDecision(reduced=True, encoding32=encoding32,
                                 e32=e32, c1=exact.c1, c2=exact.c2,
                                 zero=exact.zero)

    def _find_period(self, fraction):
        """Smallest period of the 52-bit fraction, or None."""
        bits = [(fraction >> (51 - i)) & 1 for i in range(52)]
        for period in range(1, self.max_period + 1):
            if all(bits[i] == bits[i % period] for i in range(52)):
                return period
        return None

    def expand(self, encoding32):
        """Replay the period to reconstruct a binary64 from a reduced value.

        Exact for values reduced by this class when the period divides
        the kept field evenly; otherwise best-effort (documented
        limitation of the future-work sketch).
        """
        sign, e32, fraction23 = BINARY32.unpack(encoding32)
        bits = [(fraction23 >> (22 - i)) & 1 for i in range(23)]
        period = None
        for p in range(1, self.max_period + 1):
            if all(bits[i] == bits[i % p] for i in range(23)):
                period = p
                break
        if period is None:
            return widen_binary32(encoding32)
        full = [bits[i % period] for i in range(52)]
        fraction52 = 0
        for i, b in enumerate(full):
            fraction52 |= b << (51 - i)
        return BINARY64.pack(sign, e32 + BIAS_DELTA, fraction52)


class LossyReducer:
    """Future-work extension: demote within an explicit error budget.

    ``max_ulp_error`` is measured in binary32 ulps of the result; the
    exact Algorithm 1 reduction corresponds to a budget of 0.
    """

    def __init__(self, max_ulp_error=0.5):
        if max_ulp_error < 0:
            raise FormatError("max_ulp_error must be non-negative")
        self.max_ulp_error = max_ulp_error

    def reduce(self, encoding64):
        exact = reduce_binary64(encoding64)
        if exact.reduced or not (exact.c1 and exact.c2):
            return exact
        sign, e64, fraction = BINARY64.unpack(encoding64)
        kept, carry = _round_fraction(fraction)
        e32 = exact.e32 + carry
        if not 0 < e32 < BINARY32.exponent_mask:
            return exact
        candidate = BINARY32.pack(sign, e32, kept)
        value64 = decode(encoding64, BINARY64)
        value32 = decode(candidate, BINARY32)
        ulp = 2.0 ** (e32 - BINARY32.bias - BINARY32.trailing_significand_bits)
        if abs(value32 - value64) <= self.max_ulp_error * ulp:
            return ReductionDecision(reduced=True, encoding32=candidate,
                                     e32=e32, c1=exact.c1, c2=exact.c2,
                                     zero=exact.zero)
        return exact


def _round_fraction(fraction52):
    """Round a 52-bit fraction to 23 bits, nearest/ties-to-even.

    Returns ``(fraction23, exponent_carry)``.
    """
    d = DISCARDED_FRACTION_BITS
    kept = fraction52 >> d
    guard = (fraction52 >> (d - 1)) & 1
    sticky = 1 if (fraction52 & mask(d - 1)) else 0
    if guard and (sticky or (kept & 1)):
        kept += 1
    if kept >> BINARY32.trailing_significand_bits:
        return 0, 1
    return kept, 0
