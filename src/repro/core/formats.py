"""Operation formats of the multi-format unit (Sec. III).

``MFFormat`` enumerates the three operating modes of the paper's unit.
``OperandBundle``/``ResultBundle`` model the unit's 64-bit input and
output ports, including the dual-lane packing rules of the input/output
formatter blocks in Fig. 5:

* ``INT64``  — ``X``, ``Y`` are 64-bit unsigned; the 128-bit product is
  presented on both output ports (``PH`` high half, ``PL`` low half).
* ``FP64``   — ``X``, ``Y`` are binary64 encodings; result on ``PH``.
* ``FP32X2`` — each 64-bit operand word carries **two** binary32
  encodings: lane 0 in the 32 LSBs, lane 1 in the 32 MSBs.  Both
  products are returned packed the same way in ``PH``.
"""

import enum
from dataclasses import dataclass

from repro.bits.ieee754 import BINARY16, BINARY32, BINARY64
from repro.bits.utils import mask
from repro.errors import BitWidthError, FormatError


class MFFormat(enum.Enum):
    """The ``frmt`` control input of Fig. 5.

    ``FP16X4`` is an extension beyond the paper's three formats: four
    binary16 products per cycle on the same array (software model only;
    see DESIGN.md).
    """

    INT64 = "int64"
    FP64 = "binary64"
    FP32X2 = "binary32x2"
    FP16X4 = "binary16x4"

    @property
    def flops_per_cycle(self):
        """FP operations completed per issued cycle (Table V throughput)."""
        if self is MFFormat.FP32X2:
            return 2
        if self is MFFormat.FP16X4:
            return 4
        return 1


class RoundingMode(enum.Enum):
    """Rounding behaviour of the FP paths.

    ``INJECTION`` is the paper's implemented scheme (round-to-nearest
    with ties away from zero via injection, no sticky bit).  ``RNE`` is
    the sticky-based round-to-nearest-even extension the paper lists as
    not yet implemented; we provide it as an opt-in mode.
    """

    INJECTION = "injection"
    RNE = "rne"


@dataclass(frozen=True)
class OperandBundle:
    """One 64-bit operand word pair as seen by the input formatter."""

    x: int
    y: int

    def __post_init__(self):
        for name, v in (("x", self.x), ("y", self.y)):
            if v < 0 or v > mask(64):
                raise BitWidthError(f"operand {name}={v:#x} is not a 64-bit word")

    @classmethod
    def int64(cls, x, y):
        return cls(x, y)

    @classmethod
    def fp64(cls, x_encoding, y_encoding):
        return cls(x_encoding, y_encoding)

    @classmethod
    def fp32_pair(cls, x0, y0, x1, y1):
        """Pack two binary32 multiplications: lane 0 low word, lane 1 high."""
        for name, v in (("x0", x0), ("y0", y0), ("x1", x1), ("y1", y1)):
            if v < 0 or v > mask(32):
                raise BitWidthError(f"{name}={v:#x} is not a 32-bit encoding")
        return cls(x=(x1 << 32) | x0, y=(y1 << 32) | y0)

    @classmethod
    def fp16_quad(cls, xs, ys):
        """Pack four binary16 multiplications, lane k in bits [16k, 16k+16).

        Extension format (not in the paper's unit).
        """
        if len(xs) != 4 or len(ys) != 4:
            raise BitWidthError("fp16_quad takes four encodings per side")
        for name, vals in (("x", xs), ("y", ys)):
            for k, v in enumerate(vals):
                if v < 0 or v > mask(16):
                    raise BitWidthError(
                        f"{name}{k}={v:#x} is not a 16-bit encoding")
        x = sum(v << (16 * k) for k, v in enumerate(xs))
        y = sum(v << (16 * k) for k, v in enumerate(ys))
        return cls(x=x, y=y)

    def lane16(self, lane):
        """Extract one binary16 operand pair (lane 0 = LSBs)."""
        if lane not in (0, 1, 2, 3):
            raise FormatError(f"lane must be 0..3, got {lane}")
        shift = 16 * lane
        return (self.x >> shift) & mask(16), (self.y >> shift) & mask(16)

    def lane32(self, lane):
        """Extract one binary32 operand pair (lane 0 = LSBs, 1 = MSBs)."""
        if lane not in (0, 1):
            raise FormatError(f"lane must be 0 or 1, got {lane}")
        shift = 32 * lane
        return (self.x >> shift) & mask(32), (self.y >> shift) & mask(32)


@dataclass(frozen=True)
class ResultBundle:
    """The unit's two 64-bit output ports (Fig. 5)."""

    ph: int
    pl: int
    fmt: MFFormat
    flags: tuple = ()

    def __post_init__(self):
        for name, v in (("ph", self.ph), ("pl", self.pl)):
            if v < 0 or v > mask(64):
                raise BitWidthError(f"{name}={v:#x} is not a 64-bit word")

    @property
    def int128(self):
        """The 128-bit integer product (int64 mode)."""
        if self.fmt is not MFFormat.INT64:
            raise FormatError(f"int128 is only defined for INT64, not {self.fmt}")
        return (self.ph << 64) | self.pl

    @property
    def fp64_encoding(self):
        if self.fmt is not MFFormat.FP64:
            raise FormatError(f"fp64_encoding is only defined for FP64, not {self.fmt}")
        return self.ph

    def fp32_encoding(self, lane):
        if self.fmt is not MFFormat.FP32X2:
            raise FormatError(f"fp32_encoding is only defined for FP32X2, not {self.fmt}")
        if lane not in (0, 1):
            raise FormatError(f"lane must be 0 or 1, got {lane}")
        return (self.ph >> (32 * lane)) & mask(32)

    def fp16_encoding(self, lane):
        if self.fmt is not MFFormat.FP16X4:
            raise FormatError(
                f"fp16_encoding is only defined for FP16X4, not {self.fmt}")
        if lane not in (0, 1, 2, 3):
            raise FormatError(f"lane must be 0..3, got {lane}")
        return (self.ph >> (16 * lane)) & mask(16)


#: The IEEE format backing each FP mode.
FORMAT_OF = {
    MFFormat.FP64: BINARY64,
    MFFormat.FP32X2: BINARY32,
    MFFormat.FP16X4: BINARY16,
}


class Flag(enum.Enum):
    """Status flags raised by the functional model.

    The silicon unit has no flag outputs; these exist so software users
    can detect when an operation left the unit's supported envelope.
    """

    OVERFLOW = "overflow"
    UNDERFLOW = "underflow"
    INEXACT = "inexact"
    UNSUPPORTED_INPUT = "unsupported-input"
