"""The structural 3-stage multi-format multiplier (Fig. 5).

Stage 1: input formatter, odd-multiple pre-computation, recoding, sign
and exponent handling.  Stage 2: multi-format PPGEN (with the Fig. 4
lane blanking) and the compressor TREE.  Stage 3: the speculative
normalize/round datapath of Fig. 3 (two CSA+CPA paths, lane-split),
speculative exponent increment and selection, output formatter.

Format control (the ``frmt`` input, 2 bits):

====== ======= =====================================
frmt   mode    operands
====== ======= =====================================
``00`` int64   ``x``, ``y`` unsigned 64-bit
``01`` fp64    ``x``, ``y`` binary64 encodings
``10`` fp32x2  two binary32 encodings per word
====== ======= =====================================

The unit mirrors :class:`repro.core.mfmult.MFMult` (paper mode) bit for
bit; the test suite co-simulates the two against each other across all
formats.  Like the silicon, the unit assumes normalized FP operands —
feeding zeros/subnormals/inf/NaN produces unspecified results.

``MFMultUnit`` wraps the raw module with batch drivers used by the
tests and the Table V power benchmarks.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.arith.rounding import FP32_HIGH_LANE, FP32_LOW_LANE, FP64_LANE
from repro.bits.ieee754 import BINARY32, BINARY64
from repro.bits.utils import mask
from repro.circuits.adders import lane_split_adder, make_adder
from repro.circuits.compressor_tree import build_compressor_tree
from repro.circuits.multiples import build_multiples
from repro.circuits.ppgen import build_mf_pp_columns
from repro.circuits.primitives import GateBuilder
from repro.circuits.recoder import RecodedDigit, build_recoder
from repro.core.formats import MFFormat, OperandBundle
from repro.errors import NetlistError, SimulationError
from repro.hdl.buffering import insert_buffers
from repro.hdl.library import default_library
from repro.hdl.module import Module
from repro.hdl.sim.levelized import LevelizedSimulator
from repro.hdl.validate import validate

#: frmt encodings (bit 0 = fp64, bit 1 = fp32 dual; 0b11 = quad fp16,
#: only decoded by ``quad_fp16=True`` builds).
FRMT_INT64 = 0b00
FRMT_FP64 = 0b01
FRMT_FP32X2 = 0b10
FRMT_FP16X4 = 0b11

FRMT_OF = {
    MFFormat.INT64: FRMT_INT64,
    MFFormat.FP64: FRMT_FP64,
    MFFormat.FP32X2: FRMT_FP32X2,
    MFFormat.FP16X4: FRMT_FP16X4,
}

#: Pipeline latency in cycles (3 stages -> results 2 cycles later).
LATENCY = 2


def build_mf_multiplier(adder_style="kogge_stone", buffer_max_load=8.0,
                        name="mfmult", rounding="injection",
                        with_reducer=False, operand_isolation=False,
                        quad_fp16=False):
    """Build the Fig. 5 unit; returns a validated, buffered Module.

    Extensions beyond the paper's implemented unit (both suggested in
    the paper itself):

    * ``rounding="rne"`` adds the sticky-bit computation the paper lists
      as "not yet implemented" (Sec. III-A): narrow raw-product CPAs
      feed guard/sticky OR-trees, and detected ties clear the result
      LSB, turning the injection rounding into exact
      round-to-nearest-even (for normalized, in-range results).
    * ``with_reducer=True`` absorbs the Fig. 6 reducer into the output
      formatter (Sec. IV: "can be easily included in the multi-format
      multiplier of Fig. 5"): in binary64 mode the ``pl`` port carries
      the demoted binary32 encoding and the extra 1-bit ``reduced``
      output says whether it is valid.
    * ``operand_isolation=True`` gates the sign & exponent handling's
      operand bits with the FP-mode signal.  The paper measures "some
      10% overhead due to the activity in the S&EH that is inactive for
      int64 operations" (Sec. III-E); isolation removes exactly that
      activity at the cost of one AND per isolated bit (ablated in the
      benchmarks).
    * ``quad_fp16=True`` adds a **fourth format**: four binary16 products
      per cycle (frmt = 0b11), generalizing the Fig. 4 sectioning to
      32-bit lane pitch with three carry-kill boundaries.  Entirely
      beyond the paper; co-simulated against the software model.
    """
    if rounding not in ("injection", "rne"):
        raise NetlistError(f"unknown rounding {rounding!r}")
    if quad_fp16 and name == "mfmult":
        name = "mfmult_quad"
    m = Module(name)
    gb = GateBuilder(m)
    x = m.input("x", 64)
    y = m.input("y", 64)
    frmt = m.input("frmt", 2)
    if quad_fp16:
        fp64 = gb.g_and(frmt[0], gb.g_not(frmt[1]))
        fp32 = gb.g_and(frmt[1], gb.g_not(frmt[0]))
        fp16 = gb.g_and(frmt[0], frmt[1])
    else:
        fp64 = frmt[0]
        fp32 = frmt[1]
        fp16 = gb.zero

    # ------------------------------------------------------------- stage 1
    with m.block("informat"):
        xw = _format_operand(gb, x, fp64, fp32, fp16)
        yw = _format_operand(gb, y, fp64, fp32, fp16)
    with m.block("precomp"):
        multiples = build_multiples(gb, xw, 4, adder_style=adder_style)
    with m.block("recoder"):
        digits = build_recoder(gb, yw, 4)
    with m.block("seh"):
        if operand_isolation:
            # Gate every S&EH operand bit with the FP-mode signal so the
            # whole exponent/sign cone is static for int64 operations.
            is_fp = gb.g_or(fp64, fp32)
            xg = list(x[:23]) + [gb.g_and(b, is_fp) for b in x[23:]]
            yg = list(y[:23]) + [gb.g_and(b, is_fp) for b in y[23:]]
        else:
            xg, yg = list(x), list(y)
        sign_hi = gb.g_xor(xg[63], yg[63])
        sign_lo = gb.g_xor(xg[31], yg[31])
        ep_hi = _exponent_sum(gb, xg, yg, fp32, adder_style)
        ep_lo = _exponent_sum_low(gb, xg, yg, adder_style)
        if quad_fp16:
            signs16 = [gb.g_xor(xg[16 * k + 15], yg[16 * k + 15])
                       for k in range(4)]
            eps16 = [_exponent_sum_fp16(gb, xg, yg, k, adder_style)
                     for k in range(4)]

    with m.block("pipe1"):
        reg1 = _Registrar(m, gb, stage=1)
        multiples = {mm: reg1.bus(bus) for mm, bus in multiples.items()}
        digits = [RecodedDigit(sign=reg1.net(d.sign),
                               magnitude_onehot=[reg1.net(n)
                                                 for n in d.magnitude_onehot])
                  for d in digits]
        fp64_s2, fp32_s2 = reg1.net(fp64), reg1.net(fp32)
        fp16_s2 = reg1.net(fp16) if quad_fp16 else gb.zero
        sign_hi_s2, sign_lo_s2 = reg1.net(sign_hi), reg1.net(sign_lo)
        ep_hi_s2 = reg1.bus(ep_hi)
        ep_lo_s2 = reg1.bus(ep_lo)
        if quad_fp16:
            signs16_s2 = [reg1.net(n) for n in signs16]
            eps16_s2 = [reg1.bus(b) for b in eps16]

    # ------------------------------------------------------------- stage 2
    with m.block("ppgen"):
        columns, __ = build_mf_pp_columns(gb, digits, multiples, fp32_s2,
                                          fp16=fp16_s2 if quad_fp16
                                          else None)
    with m.block("tree"):
        if quad_fp16:
            mode32_64 = gb.g_or(fp32_s2, fp16_s2)
            kills = {32: fp16_s2, 64: mode32_64, 96: fp16_s2}
            tree = build_compressor_tree(gb, columns, 128,
                                         kill_controls=kills)
        else:
            tree = build_compressor_tree(gb, columns, 128, split=fp32_s2,
                                         boundaries=(64,))

    with m.block("pipe2"):
        reg2 = _Registrar(m, gb, stage=2)
        s_bus = reg2.bus(tree.sum_bus)
        c_bus = reg2.bus(tree.carry_bus)
        fp64_s3, fp32_s3 = reg2.net(fp64_s2), reg2.net(fp32_s2)
        fp16_s3 = reg2.net(fp16_s2) if quad_fp16 else gb.zero
        sign_hi_s3, sign_lo_s3 = reg2.net(sign_hi_s2), reg2.net(sign_lo_s2)
        ep_hi_s3 = reg2.bus(ep_hi_s2)
        ep_lo_s3 = reg2.bus(ep_lo_s2)
        if quad_fp16:
            signs16_s3 = [reg2.net(n) for n in signs16_s2]
            eps16_s3 = [reg2.bus(b) for b in eps16_s2]

    # ------------------------------------------------------------- stage 3
    with m.block("normround"):
        p1, p0 = _speculative_paths(gb, s_bus, c_bus, fp64_s3, fp32_s3,
                                    adder_style, fp16=fp16_s3,
                                    quad=quad_fp16)
        sel64 = gb.g_and(p0[FP64_LANE.high_leading_bit], fp64_s3)
        sel_hi32 = p0[FP32_HIGH_LANE.high_leading_bit]
        sel_lo32 = p0[FP32_LOW_LANE.high_leading_bit]
        sels16 = ([p0[32 * k + 21] for k in range(4)]
                  if quad_fp16 else None)
    if rounding == "rne":
        with m.block("sticky"):
            ties = _sticky_tie_detect(gb, s_bus, c_bus, sel64, sel_hi32,
                                      sel_lo32, fp32_s3, adder_style)
    else:
        ties = None
    with m.block("exp3"):
        exp_hi_sel = _speculative_exponent(gb, ep_hi_s3,
                                           gb.g_mux(sel64, sel_hi32, fp32_s3),
                                           adder_style)
        exp_lo_sel = _speculative_exponent(gb, ep_lo_s3, sel_lo32,
                                           adder_style)
        exps16_sel = ([_speculative_exponent(gb, eps16_s3[k], sels16[k],
                                             adder_style)
                       for k in range(4)] if quad_fp16 else None)
    with m.block("outformat"):
        ph, pl = _output_formatter(gb, p1, p0, sel64, sel_hi32, sel_lo32,
                                   sign_hi_s3, sign_lo_s3,
                                   exp_hi_sel, exp_lo_sel, fp64_s3, fp32_s3,
                                   ties=ties)
        if quad_fp16:
            fp16_ph = _fp16_output(gb, p1, p0, sels16, signs16_s3,
                                   exps16_sel)
            ph = gb.bus_mux(ph, fp16_ph, fp16_s3)
            pl = [gb.g_and(b, gb.g_not(fp16_s3)) for b in pl]
    reduced_flag = None
    if with_reducer:
        from repro.circuits.reducer import reducer_logic

        with m.block("reducer"):
            red_out, reduce_ok, __, __, __ = reducer_logic(gb, ph)
            is_fp64 = gb.g_and(fp64_s3, gb.g_not(fp32_s3))
            reduced_flag = gb.g_and(reduce_ok, is_fp64)
            # In binary64 mode PL (otherwise unused) carries the demoted
            # binary32 encoding when valid.
            pl = [gb.g_mux(pl[i],
                           gb.g_and(red_out[i] if i < 32 else gb.zero,
                                    reduced_flag),
                           is_fp64)
                  for i in range(64)]
    m.output("ph", ph)
    m.output("pl", pl)
    if reduced_flag is not None:
        m.output("reduced", [reduced_flag])
    if buffer_max_load is not None:
        insert_buffers(m, default_library(), max_load=buffer_max_load)
    return validate(m)


# ----------------------------------------------------------------------
# stage-1 helpers
# ----------------------------------------------------------------------

def _format_operand(gb, word, fp64, fp32, fp16=None):
    """The input formatter: place significands per format (Fig. 5)."""
    int_mode_bits = list(word)
    # binary64: fraction in 0..51, hidden bit at 52.
    fp64_bits = list(word[:52]) + [gb.one] + [gb.zero] * 11
    # dual binary32: lane 0 fraction 0..22 + hidden at 23; gap 24..31;
    # lane 1 fraction at 32..54 + hidden at 55; gap 56..63.
    fp32_bits = (list(word[:23]) + [gb.one] + [gb.zero] * 8
                 + list(word[32:55]) + [gb.one] + [gb.zero] * 8)
    # quad binary16 (extension): lane k's 11-bit significand at 16k.
    quad = fp16 is not None and gb.const_of(fp16) != 0
    if quad:
        fp16_bits = []
        for k in range(4):
            fp16_bits += (list(word[16 * k:16 * k + 10]) + [gb.one]
                          + [gb.zero] * 5)
    out = []
    for b in range(64):
        val = gb.g_mux(int_mode_bits[b], fp64_bits[b], fp64)
        val = gb.g_mux(val, fp32_bits[b], fp32)
        if quad:
            val = gb.g_mux(val, fp16_bits[b], fp16)
        out.append(val)
    return out


def _exponent_sum(gb, x, y, fp32, adder_style):
    """Shared 11-bit exponent path: EX + EY - bias, 13-bit two's compl.

    In fp64 mode the inputs are the 11-bit exponents and the bias 1023;
    in fp32 mode the *upper lane*'s 8-bit exponents and bias 127 ride
    the same adders (Sec. III-C).
    """
    ex64 = list(x[52:63])
    ey64 = list(y[52:63])
    ex32 = list(x[55:63]) + [gb.zero] * 3
    ey32 = list(y[55:63]) + [gb.zero] * 3
    ex = gb.bus_mux(ex64, ex32, fp32)
    ey = gb.bus_mux(ey64, ey32, fp32)
    bias64 = (-BINARY64.bias) & mask(13)
    bias32 = (-BINARY32.bias) & mask(13)
    neg_bias = gb.bus_mux(gb.bus_const(bias64, 13), gb.bus_const(bias32, 13),
                          fp32)
    return _add3(gb, gb.bus_pad(ex, 13), gb.bus_pad(ey, 13), neg_bias,
                 adder_style)


def _exponent_sum_low(gb, x, y, adder_style):
    """The lower binary32 lane's own narrow exponent datapath."""
    ex = list(x[23:31])
    ey = list(y[23:31])
    neg_bias = gb.bus_const((-BINARY32.bias) & mask(10), 10)
    return _add3(gb, gb.bus_pad(ex, 10), gb.bus_pad(ey, 10), neg_bias,
                 adder_style)


def _exponent_sum_fp16(gb, x, y, lane, adder_style):
    """One binary16 lane's exponent path (quad extension): 8 bits."""
    from repro.bits.ieee754 import BINARY16

    lo = 16 * lane + 10
    ex = list(x[lo:lo + 5])
    ey = list(y[lo:lo + 5])
    neg_bias = gb.bus_const((-BINARY16.bias) & mask(8), 8)
    return _add3(gb, gb.bus_pad(ex, 8), gb.bus_pad(ey, 8), neg_bias,
                 adder_style)


def _add3(gb, a, b, c, adder_style):
    """Three-operand addition: one CSA row + one CPA."""
    s = [gb.fa(ai, bi, ci) for ai, bi, ci in zip(a, b, c)]
    xor_bus = [t[0] for t in s]
    maj_bus = gb.bus_shift_left([t[1] for t in s], 1, len(a))
    total, __ = make_adder(adder_style)(gb, xor_bus, maj_bus)
    return total


# ----------------------------------------------------------------------
# stage-3 helpers
# ----------------------------------------------------------------------

def _speculative_paths(gb, s_bus, c_bus, fp64, fp32, adder_style,
                       fp16=None, quad=False):
    """Fig. 3: the two injection CSA rows and lane-split CPAs.

    With ``quad`` the CPAs divide at 32/64/96 (each boundary with its own
    mode-dependent kill) and the binary16 lanes get their injections.
    """
    from repro.arith.rounding import FP16_LANES
    from repro.circuits.adders import multi_lane_split_adder

    if fp16 is None:
        fp16 = gb.zero
    r1 = [gb.zero] * 128
    r0 = [gb.zero] * 128
    fp64_only = gb.g_and(fp64, gb.g_not(fp32))
    if quad:
        fp64_only = gb.g_and(fp64_only, gb.g_not(fp16))
    r1[FP64_LANE.r1_position] = fp64_only
    r0[FP64_LANE.r0_position] = fp64_only
    for lane in (FP32_LOW_LANE, FP32_HIGH_LANE):
        r1[lane.r1_position] = fp32
        r0[lane.r0_position] = fp32
    if quad:
        for lane in FP16_LANES:
            r1[lane.r1_position] = gb.g_or(r1[lane.r1_position], fp16) \
                if gb.const_of(r1[lane.r1_position]) != 0 else fp16
            r0[lane.r0_position] = gb.g_or(r0[lane.r0_position], fp16) \
                if gb.const_of(r0[lane.r0_position]) != 0 else fp16

    mode_64 = gb.g_or(fp32, fp16) if quad else fp32

    def path(r):
        sums = []
        carries = [gb.zero]
        for i in range(128):
            s, cy = gb.fa(s_bus[i], c_bus[i], r[i])
            sums.append(s)
            carries.append(cy)
        carry_bus = carries[:128]
        # Kill the CSA carries crossing lane boundaries per mode.
        carry_bus[64] = gb.g_and(carry_bus[64], gb.g_not(mode_64))
        if quad:
            not_fp16 = gb.g_not(fp16)
            carry_bus[32] = gb.g_and(carry_bus[32], not_fp16)
            carry_bus[96] = gb.g_and(carry_bus[96], not_fp16)
            total, __ = multi_lane_split_adder(
                gb, sums, carry_bus,
                kills=[(32, fp16), (64, mode_64), (96, fp16)],
                style=adder_style)
        else:
            total, __ = lane_split_adder(gb, sums, carry_bus, fp32,
                                         boundary=64, style=adder_style)
        return total

    return path(r1), path(r0)


def _sticky_tie_detect(gb, s_bus, c_bus, sel64, sel_hi32, sel_lo32, fp32,
                       adder_style):
    """Sticky-bit computation (the paper's future work, Sec. III-A).

    Two narrow CPAs recover the raw product's discarded bits from the
    carry-save pair: bits 0..52 (binary64 guard/sticky; the low binary32
    lane's are a subset) and bits 64..87 (the upper binary32 lane's).
    OR-trees compress them into per-lane tie signals: a tie exists when
    the guard bit of the *selected* normalization case is 1 and every
    bit below it is 0.  The output formatter clears the fraction LSB on
    a tie, which converts injection rounding (ties away from zero) into
    exact round-to-nearest-even.
    """
    adder = make_adder(adder_style)
    raw_lo, __ = adder(gb, s_bus[0:53], c_bus[0:53])     # product bits 0..52
    raw_hi, __ = adder(gb, s_bus[64:88], c_bus[64:88])   # product bits 64..87

    def lane_tie(raw, guard_hi_pos, sel_high):
        sticky_base = gb.or_tree(raw[:guard_hi_pos - 1])
        guard_hi = raw[guard_hi_pos]
        guard_lo = raw[guard_hi_pos - 1]
        tie_hi = gb.g_and(guard_hi,
                          gb.g_not(gb.g_or(sticky_base, guard_lo)))
        tie_lo = gb.g_and(guard_lo, gb.g_not(sticky_base))
        return gb.g_mux(tie_lo, tie_hi, sel_high)

    return {
        "fp64": lane_tie(raw_lo, 52, sel64),
        "lo32": lane_tie(raw_lo, 23, sel_lo32),
        "hi32": lane_tie(raw_hi, 23, sel_hi32),
    }


def _speculative_exponent(gb, ep, increment_sel, adder_style):
    """EP and EP+1 computed speculatively, then selected (Sec. III-D)."""
    one = gb.bus_const(1, len(ep))
    plus_one, __ = make_adder(adder_style)(gb, list(ep), one)
    return gb.bus_mux(list(ep), plus_one, increment_sel)


def _output_formatter(gb, p1, p0, sel64, sel_hi32, sel_lo32,
                      sign_hi, sign_lo, exp_hi, exp_lo, fp64, fp32,
                      ties=None):
    """Pack PH/PL per format (Fig. 5's output formatter).

    ``ties`` (RNE extension) carries per-lane tie signals; a tie clears
    the corresponding fraction LSB (round-to-even correction).
    """
    # int64: PH = product[127:64], PL = product[63:0] (P1 path, R = 0).
    int_ph = p1[64:128]
    int_pl = p1[0:64]

    # fp64 fraction: P1[104:53] or (P0 << 1)[104:53] = P0[103:52].
    f64 = [gb.g_mux(p0[52 + i], p1[53 + i], sel64) for i in range(52)]
    if ties is not None:
        f64[0] = gb.g_and(f64[0], gb.g_not(ties["fp64"]))
    fp64_ph = f64 + list(exp_hi[:11]) + [sign_hi]

    # fp32 lane 0 (low): P1[46:24] or P0[45:23].
    f32lo = [gb.g_mux(p0[23 + i], p1[24 + i], sel_lo32) for i in range(23)]
    # fp32 lane 1 (high): P1[110:88] or P0[109:87].
    f32hi = [gb.g_mux(p0[87 + i], p1[88 + i], sel_hi32) for i in range(23)]
    if ties is not None:
        f32lo[0] = gb.g_and(f32lo[0], gb.g_not(ties["lo32"]))
        f32hi[0] = gb.g_and(f32hi[0], gb.g_not(ties["hi32"]))
    fp32_ph = (f32lo + list(exp_lo[:8]) + [sign_lo]
               + f32hi + list(exp_hi[:8]) + [sign_hi])

    ph = []
    pl = []
    for b in range(64):
        with_fp64 = gb.g_mux(int_ph[b], fp64_ph[b], fp64)
        ph.append(gb.g_mux(with_fp64, fp32_ph[b], fp32))
        pl.append(gb.g_and(int_pl[b],
                           gb.g_not(gb.g_or(fp64, fp32))))
    return ph, pl


def _fp16_output(gb, p1, p0, sels16, signs16, exps16):
    """Pack the four binary16 results (quad extension).

    Lane k: fraction = P1[32k+20 .. 32k+11] (high case) or
    P0[32k+19 .. 32k+10] (low case, pre-shift), 5-bit exponent, sign.
    """
    out = []
    for k in range(4):
        base = 32 * k
        fraction = [gb.g_mux(p0[base + 10 + i], p1[base + 11 + i],
                             sels16[k]) for i in range(10)]
        out.extend(fraction + list(exps16[k][:5]) + [signs16[k]])
    return out


class _Registrar:
    """Deduplicated register insertion for one pipeline boundary."""

    def __init__(self, module, gb, stage):
        self.m = module
        self.gb = gb
        self.stage = stage
        self._map = {}

    def net(self, n):
        if self.gb.const_of(n) is not None:
            return n
        if n not in self._map:
            self._map[n] = self.m.register(n, self.stage)
        return self._map[n]

    def bus(self, nets):
        return [self.net(n) for n in nets]


# ----------------------------------------------------------------------
# batch driver
# ----------------------------------------------------------------------

@dataclass
class UnitResult:
    """One operation's output words."""

    ph: int
    pl: int
    reduced: Optional[int] = None   # with_reducer builds only


class MFMultUnit:
    """Simulation driver around the structural unit.

    Builds the netlist once and runs operand batches through the
    levelized simulator, aligning for the 2-cycle latency.
    """

    def __init__(self, adder_style="kogge_stone", module=None, **build_kwargs):
        self.module = module if module is not None else build_mf_multiplier(
            adder_style=adder_style, **build_kwargs)
        self._sim = LevelizedSimulator(self.module)
        self.has_reducer = "reduced" in self.module.outputs
        self.supports_fp16 = (build_kwargs.get("quad_fp16", False)
                              or "quad" in self.module.name)

    def run_batch(self, operations):
        """Run ``[(OperandBundle, MFFormat), ...]``; returns UnitResults."""
        if not operations:
            return []
        n = len(operations) + LATENCY
        xs, ys, fs = [], [], []
        for bundle, fmt in operations:
            if fmt is MFFormat.FP16X4 and not self.supports_fp16:
                raise SimulationError(
                    "this unit was built without quad_fp16=True"
                )
            xs.append(bundle.x)
            ys.append(bundle.y)
            fs.append(FRMT_OF[fmt])
        # Pad the pipeline flush cycles with repeats of the last op.
        xs += [xs[-1]] * LATENCY
        ys += [ys[-1]] * LATENCY
        fs += [fs[-1]] * LATENCY
        run = self._sim.run({"x": xs, "y": ys, "frmt": fs}, n)
        ph_words = run.bus_words(self.module.outputs["ph"])
        pl_words = run.bus_words(self.module.outputs["pl"])
        reduced_words = (run.bus_words(self.module.outputs["reduced"])
                         if self.has_reducer else None)
        results = []
        for t in range(len(operations)):
            results.append(UnitResult(
                ph=ph_words[t + LATENCY],
                pl=pl_words[t + LATENCY],
                reduced=(None if reduced_words is None
                         else reduced_words[t + LATENCY]),
            ))
        return results

    def multiply(self, bundle, fmt):
        """Single-operation convenience wrapper."""
        return self.run_batch([(bundle, fmt)])[0]
