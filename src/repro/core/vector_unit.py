"""Issue-level model of using the multiplier in a vector/accelerator lane.

The paper's power argument (Sec. IV) is an *issue scheduling* argument:
a stream of binary64 multiplications can be partially demoted to
binary32 by the Fig. 6 reducer, and demoted operations can be paired
two-per-cycle in the dual-lane mode.  ``VectorMultiplier`` models
exactly that pipeline front-end:

* each work item is a pair of binary64 encodings;
* items whose **both** operands pass Algorithm 1 are demoted and queued
  on the binary32 lane; others issue as binary64;
* demoted items are issued two per cycle (dual lane), with a final
  odd item issued as a single binary32 (Table V's fourth row);
* per-cycle energy is taken from a :class:`FormatPowerTable` so the same
  model can be driven by the paper's numbers or by our measured ones.

This is the machinery behind ``benchmarks/bench_section4_savings.py``
and the ``precision_autotuner`` example.
"""

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.formats import MFFormat, OperandBundle
from repro.core.mfmult import MFMult
from repro.core.reduction import reduce_binary64, widen_binary32
from repro.errors import FormatError


@dataclass(frozen=True)
class FormatPowerTable:
    """Per-cycle power by issue kind, in mW at a reference frequency.

    The defaults are the paper's Table V measurements; the benchmarks
    substitute our own measured table to check the claim holds for the
    reproduction as well.
    """

    fp64: float = 7.20
    fp32_dual: float = 5.17
    fp32_single: float = 3.77
    int64: float = 8.90
    reference_mhz: float = 100.0

    def energy_per_cycle_pj(self, kind):
        """Energy of one issued cycle in picojoules at the reference clock."""
        power_mw = {
            "fp64": self.fp64,
            "fp32_dual": self.fp32_dual,
            "fp32_single": self.fp32_single,
            "int64": self.int64,
        }[kind]
        cycle_ns = 1e3 / self.reference_mhz
        return power_mw * cycle_ns          # mW * ns = pJ


@dataclass
class IssueStats:
    """What the scheduler did with one batch."""

    fp64_cycles: int = 0
    fp32_dual_cycles: int = 0
    fp32_single_cycles: int = 0
    demoted_operations: int = 0
    total_operations: int = 0

    @property
    def total_cycles(self):
        return (self.fp64_cycles + self.fp32_dual_cycles
                + self.fp32_single_cycles)

    def energy_pj(self, table):
        return (self.fp64_cycles * table.energy_per_cycle_pj("fp64")
                + self.fp32_dual_cycles * table.energy_per_cycle_pj("fp32_dual")
                + self.fp32_single_cycles
                * table.energy_per_cycle_pj("fp32_single"))

    def baseline_energy_pj(self, table):
        """Energy had every operation issued as binary64."""
        return self.total_operations * table.energy_per_cycle_pj("fp64")

    def savings_fraction(self, table):
        baseline = self.baseline_energy_pj(table)
        if baseline == 0:
            return 0.0
        return 1.0 - self.energy_pj(table) / baseline


@dataclass
class BatchResult:
    """Results and accounting for one :meth:`VectorMultiplier.run` call."""

    products64: List[int] = field(default_factory=list)
    stats: IssueStats = field(default_factory=IssueStats)


class VectorMultiplier:
    """Schedule binary64 multiplication streams onto the MFmult.

    ``use_reduction=False`` gives the baseline machine that issues
    everything as binary64.
    """

    def __init__(self, use_reduction=True, multiplier=None):
        self.use_reduction = use_reduction
        self.mf = multiplier if multiplier is not None else MFMult(
            mode="paper", fidelity="fast")

    def run(self, operand_pairs):
        """Multiply ``[(x64_encoding, y64_encoding), ...]``.

        Returns a :class:`BatchResult` whose ``products64`` are binary64
        encodings in input order (demoted lanes are widened back), plus
        the issue statistics for the energy accounting.
        """
        result = BatchResult()
        result.stats.total_operations = len(operand_pairs)
        reduced_queue = []      # (input_index, x32, y32)
        slots = [None] * len(operand_pairs)

        for index, (xe, ye) in enumerate(operand_pairs):
            if self.use_reduction:
                dx = reduce_binary64(xe)
                dy = reduce_binary64(ye)
                if dx.reduced and dy.reduced and self._product_fits(dx, dy):
                    reduced_queue.append((index, dx.encoding32, dy.encoding32))
                    result.stats.demoted_operations += 1
                    continue
            bundle = OperandBundle.fp64(xe, ye)
            out = self.mf.multiply(bundle, MFFormat.FP64)
            slots[index] = out.fp64_encoding
            result.stats.fp64_cycles += 1

        # Pair the demoted operations two per cycle.
        for i in range(0, len(reduced_queue) - 1, 2):
            (i0, x0, y0), (i1, x1, y1) = reduced_queue[i], reduced_queue[i + 1]
            bundle = OperandBundle.fp32_pair(x0, y0, x1, y1)
            out = self.mf.multiply(bundle, MFFormat.FP32X2)
            slots[i0] = widen_binary32(out.fp32_encoding(0))
            slots[i1] = widen_binary32(out.fp32_encoding(1))
            result.stats.fp32_dual_cycles += 1
        if len(reduced_queue) % 2:
            i0, x0, y0 = reduced_queue[-1]
            # A lone binary32 op: the idle lane multiplies 1.0 * 1.0.
            one = 0x3F800000
            bundle = OperandBundle.fp32_pair(x0, y0, one, one)
            out = self.mf.multiply(bundle, MFFormat.FP32X2)
            slots[i0] = widen_binary32(out.fp32_encoding(0))
            result.stats.fp32_single_cycles += 1

        missing = [i for i, s in enumerate(slots) if s is None]
        if missing:
            raise FormatError(f"scheduler lost items at indices {missing}")
        result.products64 = slots
        return result

    @staticmethod
    def _product_fits(dx, dy):
        """Conservative check that the binary32 product stays normal.

        The demoted multiplication runs on the paper-mode unit, which
        has no overflow/underflow handling, so the scheduler only
        demotes when the predicted biased exponent (including a possible
        +1 normalization increment) stays strictly inside [1, 254].
        """
        predicted = dx.e32 + dy.e32 - 127
        return 1 <= predicted and predicted + 1 <= 254
