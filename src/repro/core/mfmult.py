"""Functional model of the multi-format multiplier (Sec. III, Fig. 5).

``MFMult`` mirrors the paper's datapath step by step:

1.  **input formatter** — unpack the 64-bit operand words per format;
2.  **recoding & PP generation** — radix-16 minimally redundant recoding
    and the encoded partial product array (single window for
    int64/binary64, dual-lane windows for binary32, Fig. 4);
3.  **TREE** — Dadda reduction to a carry-save pair with lane-boundary
    carry kill;
4.  **normalize & round** — the speculative dual-CPA scheme of Fig. 3;
5.  **sign & exponent handling** — XOR sign, biased exponent add with
    speculative increment (Sec. III-C);
6.  **output formatter** — pack the result word(s).

Two fidelity levels are provided:

* ``fidelity="datapath"`` (default) runs the real PP/tree/Fig.-3 flow, so
  every intermediate value a hardware test would observe is available in
  :attr:`MFMult.last_trace`;
* ``fidelity="fast"`` computes the same results with plain integer
  arithmetic (property-tested equal) for high-volume software use.

Two behavioural modes:

* ``mode="paper"`` reproduces the silicon exactly: normalized operands
  only (no zeros, subnormals, infinities or NaNs), rounding by
  injection.  Unsupported operands raise
  :class:`~repro.errors.UnsupportedOperationError`.
* ``mode="full"`` adds the extensions the paper lists as future work:
  sticky-based round-to-nearest-even, subnormal inputs/outputs and IEEE
  special values, handled in the formatter wrapper around the same core.
"""

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.arith.partial_products import (
    PPArray,
    build_dual_lane_pp_array,
    build_pp_array,
)
from repro.arith.rounding import (
    FP32_HIGH_LANE,
    FP32_LOW_LANE,
    FP64_LANE,
    NormRoundResult,
    injection_vectors,
    int64_product,
    normalize_round_lane,
    speculative_sums,
)
from repro.arith.trees import reduce_pp_array
from repro.bits.ieee754 import BINARY32, BINARY64, round_significand
from repro.bits.utils import mask
from repro.core.formats import (
    Flag,
    MFFormat,
    OperandBundle,
    ResultBundle,
    RoundingMode,
)
from repro.errors import FormatError, UnsupportedOperationError


@dataclass
class DatapathTrace:
    """Intermediate values of the last datapath-fidelity multiplication."""

    fmt: Optional[MFFormat] = None
    pp_array: Optional[PPArray] = None
    tree_sum: int = 0
    tree_carry: int = 0
    p1: int = 0
    p0: int = 0
    lane_results: Tuple[NormRoundResult, ...] = ()
    exponents: Tuple[int, ...] = ()
    flags: Tuple[Flag, ...] = ()


@dataclass(frozen=True)
class _UnpackedFloat:
    sign: int
    exponent: int       # biased
    significand: int    # with hidden bit


class MFMult:
    """The multi-format multiplier, software edition.

    Parameters
    ----------
    mode:
        ``"paper"`` (silicon-exact envelope) or ``"full"`` (IEEE
        extensions enabled).
    rounding:
        :class:`RoundingMode`; the paper mode default is ``INJECTION``.
    fidelity:
        ``"datapath"`` (mirror the hardware structures) or ``"fast"``.
    """

    def __init__(self, mode="paper", rounding=RoundingMode.INJECTION,
                 fidelity="datapath"):
        if mode not in ("paper", "full"):
            raise FormatError(f"mode must be 'paper' or 'full', got {mode!r}")
        if fidelity not in ("datapath", "fast"):
            raise FormatError(
                f"fidelity must be 'datapath' or 'fast', got {fidelity!r}"
            )
        if mode == "paper" and rounding is RoundingMode.RNE:
            raise UnsupportedOperationError(
                "the paper's unit has no sticky bit: RNE needs mode='full'"
            )
        self.mode = mode
        self.rounding = rounding
        self.fidelity = fidelity
        self.last_trace = DatapathTrace()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def multiply(self, operands, fmt):
        """Multiply one operand bundle; returns a :class:`ResultBundle`."""
        if not isinstance(operands, OperandBundle):
            raise FormatError("operands must be an OperandBundle")
        if fmt is MFFormat.INT64:
            return self._multiply_int64(operands)
        if fmt is MFFormat.FP64:
            return self._multiply_fp64(operands)
        if fmt is MFFormat.FP32X2:
            return self._multiply_fp32x2(operands)
        if fmt is MFFormat.FP16X4:
            return self._multiply_fp16x4(operands)
        raise FormatError(f"unknown format {fmt!r}")

    def mul_int64(self, x, y):
        """Convenience: 64x64 -> 128-bit unsigned product."""
        return self.multiply(OperandBundle.int64(x, y), MFFormat.INT64).int128

    def mul_int64_signed(self, x, y):
        """Signed 64x64 -> 128-bit product (extension, see
        :func:`repro.arith.partial_products.build_signed_pp_array`).

        Accepts and returns Python signed integers; the datapath runs on
        two's complement patterns with the recoder's final transfer digit
        dropped — the classic Booth signed-multiplication property.
        """
        from repro.arith.partial_products import build_signed_pp_array
        from repro.bits.utils import from_twos_complement, to_twos_complement

        xe = to_twos_complement(x, 64)
        ye = to_twos_complement(y, 64)
        if self.fidelity == "fast":
            return x * y
        array = build_signed_pp_array(xe, ye, width=64, radix_log2=4,
                                      product_width=128)
        s, c, __ = reduce_pp_array(array)
        product = int64_product(s, c)
        self.last_trace = DatapathTrace(
            fmt=MFFormat.INT64, pp_array=array, tree_sum=s, tree_carry=c,
            p1=product, p0=product,
        )
        return from_twos_complement(product, 128)

    def mul_fp64(self, x, y):
        """Convenience: multiply two Python floats through the fp64 path."""
        from repro.bits.ieee754 import decode, encode

        bundle = OperandBundle.fp64(encode(x, BINARY64), encode(y, BINARY64))
        result = self.multiply(bundle, MFFormat.FP64)
        return decode(result.fp64_encoding, BINARY64)

    def mul_fp32_pair(self, pair_a, pair_b):
        """Convenience: two binary32 products in one issue.

        ``pair_a = (x0, x1)`` and ``pair_b = (y0, y1)`` as Python floats;
        returns ``(x0*y0, x1*y1)`` computed by the dual-lane path.
        """
        from repro.bits.ieee754 import decode, encode

        x0, x1 = pair_a
        y0, y1 = pair_b
        bundle = OperandBundle.fp32_pair(
            encode(x0, BINARY32), encode(y0, BINARY32),
            encode(x1, BINARY32), encode(y1, BINARY32),
        )
        result = self.multiply(bundle, MFFormat.FP32X2)
        return (
            decode(result.fp32_encoding(0), BINARY32),
            decode(result.fp32_encoding(1), BINARY32),
        )

    def mul_fp16_quad(self, xs, ys):
        """Convenience: four binary16 products in one issue (extension).

        ``xs``/``ys`` are 4-tuples of Python floats; returns the four
        products as Python floats.
        """
        from repro.bits.ieee754 import BINARY16, decode, encode

        bundle = OperandBundle.fp16_quad(
            [encode(v, BINARY16) for v in xs],
            [encode(v, BINARY16) for v in ys],
        )
        result = self.multiply(bundle, MFFormat.FP16X4)
        return tuple(decode(result.fp16_encoding(k), BINARY16)
                     for k in range(4))

    # ------------------------------------------------------------------
    # int64
    # ------------------------------------------------------------------

    def _multiply_int64(self, operands):
        if self.fidelity == "fast":
            product = operands.x * operands.y
            self.last_trace = DatapathTrace(fmt=MFFormat.INT64)
        else:
            array = build_pp_array(operands.x, operands.y, width=64,
                                   radix_log2=4, product_width=128)
            s, c, _schedule = reduce_pp_array(array)
            product = int64_product(s, c)
            self.last_trace = DatapathTrace(
                fmt=MFFormat.INT64, pp_array=array, tree_sum=s, tree_carry=c,
                p1=product, p0=product,
            )
        return ResultBundle(ph=product >> 64, pl=product & mask(64),
                            fmt=MFFormat.INT64)

    # ------------------------------------------------------------------
    # binary64
    # ------------------------------------------------------------------

    def _multiply_fp64(self, operands):
        special = self._special_product(operands.x, operands.y, BINARY64)
        if special is not None:
            return ResultBundle(ph=special, pl=0, fmt=MFFormat.FP64)
        ux = self._unpack(operands.x, BINARY64)
        uy = self._unpack(operands.y, BINARY64)

        result, exponent, flags = self._fp_core_single(ux, uy, BINARY64)
        encoding = BINARY64.pack(
            ux.sign ^ uy.sign, exponent & BINARY64.exponent_mask,
            result & mask(52),
        )
        return ResultBundle(ph=encoding, pl=0, fmt=MFFormat.FP64, flags=flags)

    def _fp_core_single(self, ux, uy, fmt):
        """The shared normalized-operand core for one full-width lane."""
        if self.mode == "full":
            return self._fp_exact(ux, uy, fmt)
        if self.fidelity == "fast":
            return self._fast_round(ux.significand * uy.significand,
                                    ux, uy, fmt)
        return self._fp_datapath_fp64(ux, uy)

    def _fast_round(self, product, ux, uy, fmt):
        """Paper-mode rounding without the datapath structures.

        Matches the Fig. 3 outcome bit for bit: injection rounding with
        renormalization when the low-case rounding carries up.
        """
        p = fmt.precision
        high = (product >> (2 * p - 1)) & 1
        rounded, carry = round_significand(product, p, mode="injection")
        increment = high | carry
        exponent = ux.exponent + uy.exponent - fmt.bias + increment
        flags = self._range_flags(exponent, fmt)
        return rounded, exponent, flags

    def _fp_datapath_fp64(self, ux, uy):
        array = build_pp_array(ux.significand, uy.significand, width=64,
                               radix_log2=4, product_width=128)
        s, c, _schedule = reduce_pp_array(array)
        r1, r0 = injection_vectors([FP64_LANE])
        p1, p0 = speculative_sums(s, c, r1, r0, split=False)
        lane = normalize_round_lane(p1, p0, FP64_LANE)
        exponent = (ux.exponent + uy.exponent - BINARY64.bias
                    + lane.exponent_increment)
        flags = self._range_flags(exponent, BINARY64)
        self.last_trace = DatapathTrace(
            fmt=MFFormat.FP64, pp_array=array, tree_sum=s, tree_carry=c,
            p1=p1, p0=p0, lane_results=(lane,), exponents=(exponent,),
            flags=flags,
        )
        return lane.significand, exponent, flags

    # ------------------------------------------------------------------
    # dual binary32
    # ------------------------------------------------------------------

    def _multiply_fp32x2(self, operands):
        unpacked = []
        for lane in (0, 1):
            xe, ye = operands.lane32(lane)
            special = self._special_product(xe, ye, BINARY32)
            if special is not None:
                unpacked.append((None, None, special))
                continue
            ux = self._unpack(xe, BINARY32)
            uy = self._unpack(ye, BINARY32)
            unpacked.append((ux, uy, None))

        if self.mode == "full" or self.fidelity == "fast":
            encodings = []
            all_flags = []
            for ux, uy, special in unpacked:
                if special is not None:
                    encodings.append(special)
                    all_flags.append(())
                    continue
                if self.mode == "full":
                    sig, exponent, flags = self._fp_exact(ux, uy, BINARY32)
                else:
                    sig, exponent, flags = self._fast_round(
                        ux.significand * uy.significand, ux, uy, BINARY32)
                encodings.append(BINARY32.pack(
                    ux.sign ^ uy.sign, exponent & BINARY32.exponent_mask,
                    sig & mask(23)))
                all_flags.append(flags)
            ph = (encodings[1] << 32) | encodings[0]
            return ResultBundle(ph=ph, pl=0, fmt=MFFormat.FP32X2,
                                flags=tuple(f for fl in all_flags for f in fl))

        (ux0, uy0, _s0), (ux1, uy1, _s1) = unpacked
        array = build_dual_lane_pp_array(
            ux0.significand, uy0.significand,
            ux1.significand, uy1.significand,
        )
        s, c, _schedule = reduce_pp_array(array)
        r1, r0 = injection_vectors([FP32_LOW_LANE, FP32_HIGH_LANE])
        p1, p0 = speculative_sums(s, c, r1, r0, split=True)
        low = normalize_round_lane(p1, p0, FP32_LOW_LANE)
        high = normalize_round_lane(p1, p0, FP32_HIGH_LANE)

        encodings = []
        exponents = []
        flags = []
        for lane_result, (ux, uy) in ((low, (ux0, uy0)), (high, (ux1, uy1))):
            exponent = (ux.exponent + uy.exponent - BINARY32.bias
                        + lane_result.exponent_increment)
            flags.extend(self._range_flags(exponent, BINARY32))
            exponents.append(exponent)
            encodings.append(BINARY32.pack(
                ux.sign ^ uy.sign, exponent & BINARY32.exponent_mask,
                lane_result.significand & mask(23)))
        self.last_trace = DatapathTrace(
            fmt=MFFormat.FP32X2, pp_array=array, tree_sum=s, tree_carry=c,
            p1=p1, p0=p0, lane_results=(low, high),
            exponents=tuple(exponents), flags=tuple(flags),
        )
        ph = (encodings[1] << 32) | encodings[0]
        return ResultBundle(ph=ph, pl=0, fmt=MFFormat.FP32X2,
                            flags=tuple(flags))

    # ------------------------------------------------------------------
    # quad binary16 (extension format)
    # ------------------------------------------------------------------

    def _multiply_fp16x4(self, operands):
        """Four binary16 products per issue (beyond the paper's formats).

        Shares all the machinery: the quad-lane PP array at 32-bit
        pitch, the multi-window Fig. 3 flow, per-lane exponent paths.
        """
        from repro.arith.partial_products import build_quad_lane_pp_array
        from repro.arith.rounding import FP16_LANES, normalize_round_fp16_quad
        from repro.bits.ieee754 import BINARY16

        unpacked = []
        for lane in range(4):
            xe, ye = operands.lane16(lane)
            special = self._special_product(xe, ye, BINARY16)
            if special is not None:
                unpacked.append((None, None, special))
                continue
            ux = self._unpack(xe, BINARY16)
            uy = self._unpack(ye, BINARY16)
            unpacked.append((ux, uy, None))

        encodings = []
        flags: list = []
        if self.mode == "full" or self.fidelity == "fast":
            for ux, uy, special in unpacked:
                if special is not None:
                    encodings.append(special)
                    continue
                if self.mode == "full":
                    sig, exponent, lane_flags = self._fp_exact(ux, uy,
                                                               BINARY16)
                else:
                    sig, exponent, lane_flags = self._fast_round(
                        ux.significand * uy.significand, ux, uy, BINARY16)
                flags.extend(lane_flags)
                encodings.append(BINARY16.pack(
                    ux.sign ^ uy.sign, exponent & BINARY16.exponent_mask,
                    sig & mask(10)))
        else:
            sigs_x = [u[0].significand for u in unpacked]
            sigs_y = [u[1].significand for u in unpacked]
            array = build_quad_lane_pp_array(sigs_x, sigs_y)
            s, c, __ = reduce_pp_array(array)
            lanes = normalize_round_fp16_quad(s, c)
            for (ux, uy, __unused), lane_result in zip(unpacked, lanes):
                exponent = (ux.exponent + uy.exponent - BINARY16.bias
                            + lane_result.exponent_increment)
                flags.extend(self._range_flags(exponent, BINARY16))
                encodings.append(BINARY16.pack(
                    ux.sign ^ uy.sign, exponent & BINARY16.exponent_mask,
                    lane_result.significand & mask(10)))
            self.last_trace = DatapathTrace(
                fmt=MFFormat.FP16X4, pp_array=array, tree_sum=s,
                tree_carry=c, lane_results=tuple(lanes),
                flags=tuple(flags),
            )
        ph = sum(enc << (16 * k) for k, enc in enumerate(encodings))
        return ResultBundle(ph=ph, pl=0, fmt=MFFormat.FP16X4,
                            flags=tuple(flags))

    # ------------------------------------------------------------------
    # operand unpacking and the full-mode IEEE envelope
    # ------------------------------------------------------------------

    def _unpack(self, encoding, fmt):
        sign, biased, fraction = fmt.unpack(encoding)
        if 0 < biased < fmt.exponent_mask:
            return _UnpackedFloat(sign, biased,
                                  fraction | (1 << fmt.trailing_significand_bits))
        if self.mode == "paper":
            kind = ("zero" if (biased == 0 and fraction == 0) else
                    "subnormal" if biased == 0 else
                    "infinity" if fraction == 0 else "NaN")
            raise UnsupportedOperationError(
                f"the paper's unit only multiplies normalized {fmt.name} "
                f"operands; got a {kind}"
            )
        if biased == 0 and fraction != 0:
            # Full mode: normalize the subnormal into an unbiased-extended
            # exponent so the shared core can treat it uniformly.
            shift = fmt.precision - fraction.bit_length()
            return _UnpackedFloat(sign, 1 - shift,
                                  fraction << shift)
        return None    # zero, inf or NaN: handled by _special_product

    def _special_product(self, xe, ye, fmt):
        """IEEE special-value handling (full mode only); None if ordinary."""
        if self.mode == "paper":
            return None
        x_nan, y_nan = fmt.is_nan(xe), fmt.is_nan(ye)
        x_inf, y_inf = fmt.is_inf(xe), fmt.is_inf(ye)
        x_zero, y_zero = fmt.is_zero(xe), fmt.is_zero(ye)
        sign = ((xe >> fmt.sign_position) ^ (ye >> fmt.sign_position)) & 1
        if x_nan or y_nan or (x_inf and y_zero) or (y_inf and x_zero):
            return fmt.pack(0, fmt.exponent_mask,
                            1 << (fmt.trailing_significand_bits - 1))
        if x_inf or y_inf:
            return fmt.pack(sign, fmt.exponent_mask, 0)
        if x_zero or y_zero:
            return fmt.pack(sign, 0, 0)
        return None

    def _fp_exact(self, ux, uy, fmt):
        """Full-mode core: exact product, subnormal-aware IEEE rounding.

        ``ux``/``uy`` carry significands with the hidden bit set and
        possibly *extended* exponents (subnormal inputs were normalized
        by :meth:`_unpack`), so the exact value of the product is
        ``mx * my * 2**(ex + ey - 2*bias - 2*(p-1))``.
        """
        p = fmt.precision
        product = ux.significand * uy.significand
        high = (product >> (2 * p - 1)) & 1
        leading = 2 * p - 2 + high          # bit index of the leading one
        # Unbiased exponent of the product's leading bit.
        exp_unbiased = (ux.exponent - fmt.bias) + (uy.exponent - fmt.bias) + high
        rmode = "rne" if self.rounding is RoundingMode.RNE else "injection"

        if exp_unbiased < fmt.emin:
            return self._fp_exact_subnormal(product, leading, exp_unbiased,
                                            fmt, rmode)

        sig, carry = round_significand(product, p, mode=rmode)
        exp_unbiased += carry
        biased = exp_unbiased + fmt.bias
        inexact = (Flag.INEXACT,) if product & mask(leading + 1 - p) else ()
        if biased >= fmt.exponent_mask:
            # Overflow to infinity (fraction 0, all-ones exponent).
            return 0, fmt.exponent_mask, (Flag.OVERFLOW, Flag.INEXACT)
        return sig, biased, inexact

    @staticmethod
    def _fp_exact_subnormal(product, leading, exp_unbiased, fmt, rmode):
        """Round an exact product into the subnormal range of ``fmt``."""
        p = fmt.precision
        shift = fmt.emin - exp_unbiased     # > 0
        keep = p - shift                    # fraction bits that survive
        flags = (Flag.UNDERFLOW, Flag.INEXACT)
        if keep <= 0:
            # The value is at most half the smallest subnormal ulp away
            # from zero; only a value >= half an ulp can round to 1.
            if keep == 0:
                if rmode == "injection":        # ties round up
                    return 1, 0, flags
                above_half = product > (1 << leading)
                return (1 if above_half else 0), 0, flags
            return 0, 0, flags
        sig, carry = round_significand(product, keep, mode=rmode)
        if carry:
            # Renormalized by round_significand: the true rounded value
            # was 2**keep.
            full = 1 << keep
        else:
            full = sig
        if full >> (p - 1):
            # Rounded all the way up to the smallest normal.
            return 1 << (p - 1), 1, flags
        inexact = product & mask(leading + 1 - keep)
        if not inexact:
            return full, 0, (Flag.UNDERFLOW,)
        return full, 0, flags

    @staticmethod
    def _range_flags(biased_exponent, fmt):
        if biased_exponent >= fmt.exponent_mask:
            return (Flag.OVERFLOW,)
        if biased_exponent <= 0:
            return (Flag.UNDERFLOW,)
        return ()


