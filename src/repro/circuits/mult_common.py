"""Shared assembly for the standalone 64x64 multipliers (Fig. 2).

The radix-4, radix-8 and radix-16 multipliers differ only in recoding
width, multiple set and array shape, so one parameterized builder covers
all three (thin wrappers in ``mult_radix{4,8,16}.py`` fix the radix and
document the paper context).  Block tags match the paper's critical-path
breakdown: ``precomp`` / ``recoder`` / ``ppgen`` / ``tree`` / ``cpa``.

Pipelining (Table III's "two-stage pipelined" rows) inserts one register
bank at a selectable cut:

* ``"after_ppgen"`` (default) — balances the stages best for radix-16
  (pre-computation + recoding + PPGEN vs TREE + CPA);
* ``"after_precomp"`` — fewest flip-flops for radix-16;
* ``None`` — purely combinational.
"""

from repro.circuits.adders import make_adder
from repro.circuits.compressor_tree import build_compressor_tree
from repro.circuits.multiples import build_multiples
from repro.circuits.ppgen import build_plain_pp_columns
from repro.circuits.primitives import GateBuilder
from repro.circuits.recoder import RecodedDigit, build_recoder
from repro.errors import NetlistError
from repro.hdl.module import Module
from repro.hdl.validate import validate


def build_multiplier(radix_log2, width=64, pipeline_cut=None,
                     adder_style="kogge_stone", precomp_adder_style=None,
                     use_4_2=False, name=None, buffer_max_load=8.0):
    """Build a ``width x width`` unsigned multiplier module.

    Returns a validated :class:`Module` with inputs ``x``/``y`` and the
    ``2*width``-bit output ``p``.  ``buffer_max_load`` drives the fanout
    buffering pass (None disables it).
    """
    k = radix_log2
    if pipeline_cut not in (None, "after_ppgen", "after_precomp"):
        raise NetlistError(f"unknown pipeline cut {pipeline_cut!r}")
    if precomp_adder_style is None:
        precomp_adder_style = adder_style
    if name is None:
        suffix = "" if pipeline_cut is None else "_p2"
        name = f"mult{width}_r{1 << k}{suffix}"
    m = Module(name)
    gb = GateBuilder(m)
    x = m.input("x", width)
    y = m.input("y", width)
    product_width = 2 * width

    with m.block("precomp"):
        multiples = build_multiples(gb, x, k, adder_style=precomp_adder_style)
    with m.block("recoder"):
        digits = build_recoder(gb, y, k)

    if pipeline_cut == "after_precomp":
        with m.block("pipe"):
            multiples, digits = _register_controls(m, gb, multiples, digits)

    with m.block("ppgen"):
        columns, __ = build_plain_pp_columns(gb, digits, multiples, width, k,
                                             product_width=product_width)

    if pipeline_cut == "after_ppgen":
        with m.block("pipe"):
            columns = _register_columns(m, gb, columns)

    with m.block("tree"):
        tree = build_compressor_tree(gb, columns, product_width,
                                     use_4_2=use_4_2)
    with m.block("cpa"):
        adder = make_adder(adder_style)
        total, __ = adder(gb, tree.sum_bus, tree.carry_bus)

    m.output("p", total)
    if buffer_max_load is not None:
        from repro.hdl.buffering import insert_buffers
        from repro.hdl.library import default_library
        insert_buffers(m, default_library(), max_load=buffer_max_load)
    return validate(m)


def _register_columns(m, gb, columns, stage=1):
    """Register every distinct non-constant net feeding the tree."""
    mapping = {}
    out = []
    for col in columns:
        new_col = []
        for net in col:
            if gb.const_of(net) is not None:
                new_col.append(net)
                continue
            if net not in mapping:
                mapping[net] = m.register(net, stage)
            new_col.append(mapping[net])
        out.append(new_col)
    return out


def _register_controls(m, gb, multiples, digits, stage=1):
    """Register the multiple buses and recoded digit controls."""
    mapping = {}

    def reg(net):
        if gb.const_of(net) is not None:
            return net
        if net not in mapping:
            mapping[net] = m.register(net, stage)
        return mapping[net]

    new_multiples = {mm: [reg(n) for n in bus]
                     for mm, bus in multiples.items()}
    new_digits = [RecodedDigit(sign=reg(d.sign),
                               magnitude_onehot=[reg(n)
                                                 for n in d.magnitude_onehot])
                  for d in digits]
    return new_multiples, new_digits
