"""A radix-8 64x64 multiplier (ablation).

The paper declined to implement radix-8: "it also needs the
pre-computation of 3X, but its reduction tree is larger than the
radix-16 tree" (Sec. II-A).  We build it anyway so the benchmarks can
verify that claim: 23 partial products in ``{-4..4}``, one
pre-computation CPA (3X).
"""

from repro.circuits.mult_common import build_multiplier


def radix8_multiplier(pipeline_cut=None, adder_style="kogge_stone",
                      use_4_2=False, buffer_max_load=8.0):
    """Build the radix-8 64x64 multiplier."""
    return build_multiplier(3, width=64, pipeline_cut=pipeline_cut,
                            adder_style=adder_style, use_4_2=use_4_2,
                            buffer_max_load=buffer_max_load)
