"""OR trees (sticky / zero detection).

Fig. 6 needs a 29-input OR tree to test the low fraction bits for zero;
the sticky-bit extension (Sec. IV: "part of the OR-tree can be shared
with the sticky-bit computation") reuses the same structure.
"""

from repro.circuits.primitives import GateBuilder


def or_tree(gb, nets):
    """Balanced OR reduction (delegates to the folding builder)."""
    return gb.or_tree(list(nets))


def zero_flag(gb, nets):
    """1 when every net is 0 (NOR over the bus, built as OR + INV)."""
    return gb.g_not(gb.or_tree(list(nets)))
