"""The baseline 64x64 radix-16 multiplier of Sec. II (Fig. 2, Table I).

17 partial products in the minimally redundant digit set ``{-8..8}``,
odd multiples 3X/5X/7X pre-computed by three parallel CPAs, Dadda 3:2
reduction, fast final CPA.
"""

from repro.circuits.mult_common import build_multiplier


def radix16_multiplier(pipeline_cut=None, adder_style="kogge_stone",
                       use_4_2=False, buffer_max_load=8.0):
    """Build the radix-16 64x64 multiplier.

    ``pipeline_cut=None`` reproduces Table I (combinational);
    ``"after_ppgen"`` the two-stage pipelined row of Table III.
    """
    return build_multiplier(4, width=64, pipeline_cut=pipeline_cut,
                            adder_style=adder_style, use_4_2=use_4_2,
                            buffer_max_load=buffer_max_load)
