"""Structural circuit generators.

Each generator builds gates into a :class:`repro.hdl.module.Module` and
mirrors, node for node, a reference algorithm from :mod:`repro.arith`;
the tests co-simulate the two layers.  Constant folding in
:mod:`repro.circuits.primitives` plays the role a synthesis tool would:
cells with constant inputs are simplified away, so the area/power
numbers refer to netlists a real flow would produce.
"""

from repro.circuits.adders import kogge_stone_adder, make_adder, ripple_adder
from repro.circuits.compressor_tree import build_compressor_tree
from repro.circuits.mult_radix4 import radix4_multiplier
from repro.circuits.mult_radix8 import radix8_multiplier
from repro.circuits.mult_radix16 import radix16_multiplier
from repro.circuits.primitives import Bus, bus_from_const

__all__ = [
    "Bus",
    "build_compressor_tree",
    "bus_from_const",
    "kogge_stone_adder",
    "make_adder",
    "radix16_multiplier",
    "radix4_multiplier",
    "radix8_multiplier",
    "ripple_adder",
]
