"""Structural multiplicand multiple generation (pre-computation, Fig. 1).

Builds the bus set ``{X, 2X, ..., 2**(k-1) X}`` used by the PPGEN muxes:
even multiples by wiring, odd multiples by fast CPAs —
``3X = X + 2X``, ``5X = X + 4X``, ``7X = 8X - X`` (one CPA each,
computed in parallel, Sec. II), ``6X = 3X << 1``.
"""

from typing import Dict, List

from repro.circuits.adders import make_adder
from repro.circuits.primitives import GateBuilder
from repro.errors import NetlistError


def build_multiples(gb, x_bus, radix_log2, adder_style="kogge_stone"):
    """Return ``{m: bus}`` for ``m = 1 .. 2**(k-1)``, all equal width.

    Buses are ``len(x_bus) + k - 1`` bits wide (enough for the largest
    multiple), zero-padded by wiring.
    """
    k = radix_log2
    if k < 2:
        raise NetlistError("multiples need radix >= 4 (k >= 2)")
    top = 1 << (k - 1)
    width = len(x_bus) + k - 1
    adder = make_adder(adder_style)

    multiples: Dict[int, List[int]] = {}
    multiples[1] = gb.bus_pad(x_bus, width)
    for m in range(2, top + 1):
        if m % 2 == 0:
            continue
        if m == 3:
            a = gb.bus_pad(x_bus, width)
            b = gb.bus_shift_left(x_bus, 1, width)
            total, __ = adder(gb, a, b)
        elif m == 5:
            a = gb.bus_pad(x_bus, width)
            b = gb.bus_shift_left(x_bus, 2, width)
            total, __ = adder(gb, a, b)
        elif m == 7:
            # 7X = 8X - X = 8X + ~X + 1 (single CPA, carry-in 1).
            a = gb.bus_shift_left(x_bus, 3, width)
            b = gb.bus_invert(gb.bus_pad(x_bus, width))
            total, __ = adder(gb, a, b, carry_in=gb.one)
        else:
            raise NetlistError(f"no generator for odd multiple {m}")
        multiples[m] = total
    for m in range(2, top + 1):
        if m % 2 == 0:
            half_bus = multiples[m // 2] if (m // 2) in multiples else None
            if half_bus is None:
                raise NetlistError(f"missing multiple {m // 2} for {m}")
            multiples[m] = gb.bus_shift_left(half_bus[:width - 1], 1, width)
    return multiples
