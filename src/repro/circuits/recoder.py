"""Structural high-radix recoders (the "Recoder" block of Fig. 1).

For radix ``2**k`` the recoder turns each ``k``-bit group of ``Y`` plus
the previous group's MSB (the carry-free transfer digit, Sec. II) into
PPGEN controls: a sign bit and a one-hot magnitude ``0..2**(k-1)``.

Per digit, with ``u = group + transfer_in`` (a ``k+1``-bit value in
``0..2**k``):

* ``magnitude m`` is selected when ``u == m`` or ``u == 2**k - m``;
* ``sign = group_msb AND NOT (u == 2**k)``.

This reproduces the minimally redundant digit
``d = u - 2**k * group_msb`` of the reference recoder (co-simulated
exhaustively in the tests).
"""

from dataclasses import dataclass
from typing import List

from repro.circuits.primitives import GateBuilder
from repro.errors import NetlistError


@dataclass
class RecodedDigit:
    """PPGEN controls for one radix-2**k digit."""

    sign: int                 # net: 1 when the digit is negative
    magnitude_onehot: List[int]   # nets: index m active when |digit| == m


def build_recoder(gb, y_bus, radix_log2):
    """Recode a multiplier bus; returns a list of :class:`RecodedDigit`.

    The list has ``len(y_bus)/k + 1`` entries; the last is the transfer
    digit (magnitude 0 or 1, never negative) that creates the 17th
    partial product of Sec. II.
    """
    k = radix_log2
    width = len(y_bus)
    # Widths that are not a multiple of k get zero-padded partial top
    # groups (the 64-bit radix-8 case and the scaled-down test builds).
    groups = (width + k - 1) // k
    half = 1 << (k - 1)
    digits = []
    transfer_in = gb.zero
    for i in range(groups):
        group = [y_bus[k * i + j] if k * i + j < width else gb.zero
                 for j in range(k)]
        msb = group[-1]
        u = _small_increment(gb, group, transfer_in)      # k+1 bits
        onehot = [_equals(gb, u, value) for value in range((1 << k) + 1)]
        mags = []
        for m in range(half + 1):
            terms = []
            if m <= (1 << k):
                terms.append(onehot[m])
            mirror = (1 << k) - m
            if mirror != m and mirror <= (1 << k):
                terms.append(onehot[mirror])
            mags.append(gb.or_tree(terms))
        sign = gb.g_and(msb, gb.g_not(onehot[1 << k]))
        digits.append(RecodedDigit(sign=sign, magnitude_onehot=mags))
        transfer_in = msb
    # Transfer digit: magnitude 1 iff the last group's MSB is set.
    mags = [gb.g_not(transfer_in), transfer_in] + [gb.zero] * (half - 1)
    digits.append(RecodedDigit(sign=gb.zero, magnitude_onehot=mags))
    return digits


def _small_increment(gb, group, t):
    """``group + t`` as a ``len(group)+1``-bit bus (half-adder chain)."""
    out = []
    carry = t
    for bit in group:
        s, carry = gb.ha(bit, carry)
        out.append(s)
    out.append(carry)
    return out


def _equals(gb, bus, value):
    """AND-tree minterm: 1 when ``bus`` spells ``value``."""
    literals = []
    for i, net in enumerate(bus):
        if (value >> i) & 1:
            literals.append(net)
        else:
            literals.append(gb.g_not(net))
    return gb.and_tree(literals)
