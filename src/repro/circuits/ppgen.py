"""Structural partial product generation (Fig. 1 and Fig. 4).

Two generators live here:

* :func:`build_plain_pp_columns` — the single-mode array of the
  standalone radix-4/8/16 multipliers (Sec. II): one-hot mux over the
  multiples, XOR negation row, complemented sign bit at the top of each
  row field, ``+1`` carry bit, and the per-array sign-extension
  correction constant (taken from the *reference* builder so the two
  layers cannot drift apart).

* :func:`build_mf_pp_columns` — the multi-format array of the MFmult
  (Sec. III): the same 17 radix-16 rows, augmented with the mode gating
  that "blanks" lane-crossing bits for dual binary32 operation, moves
  the sign-complement bit to the lane field tops (bits 27/59 of the
  row), relocates the two's complement carry of upper-lane rows, and
  muxes between the int64/binary64 and dual-binary32 correction
  constants.  Gating terms are taken from one ``fp32`` control net.

Both return ``columns`` (a list of per-bit-position net lists) ready for
the compressor tree.
"""

from typing import List, Tuple

from repro.arith.partial_products import build_dual_lane_pp_array, build_pp_array
from repro.circuits.primitives import GateBuilder
from repro.errors import NetlistError


def _mux_bit(gb, digit, multiples, bit):
    """Selected multiple bit for one row (one-hot AND-OR mux)."""
    pairs = []
    for m, bus in multiples.items():
        if m == 0 or bit >= len(bus):
            continue
        pairs.append((digit.magnitude_onehot[m], bus[bit]))
    return gb.one_hot_select(pairs)


def reference_corrections(width, radix_log2, dual=False):
    """Sign-extension correction constants from the reference builder.

    Using :mod:`repro.arith.partial_products` as the single source of
    truth guarantees the circuit and the reference can never disagree on
    the correction.  The constants are data independent, so any operand
    values (zeros here) give the same result.
    """
    if dual:
        array = build_dual_lane_pp_array(0, 0, 0, 0, lane_width=width,
                                         radix_log2=radix_log2)
    else:
        array = build_pp_array(0, 0, width=width, radix_log2=radix_log2,
                               product_width=2 * width)
    return array.corrections


def build_plain_pp_columns(gb, digits, multiples, width, radix_log2,
                           product_width=None):
    """Single-mode PP array; returns ``(columns, row_nets)``.

    ``row_nets`` lists every non-constant net contributed (used for
    pipeline register insertion after PPGEN).
    """
    k = radix_log2
    if product_width is None:
        product_width = 2 * width
    columns: List[List[int]] = [[] for _ in range(product_width)]
    row_nets: List[int] = []

    def place(net, col):
        if gb.const_of(net) == 0:
            return
        if col >= product_width:
            raise NetlistError(f"PP bit at column {col} exceeds the array")
        columns[col].append(net)
        if gb.const_of(net) is None:
            row_nets.append(net)

    field = width + k
    for i, digit in enumerate(digits):
        offset = k * i
        signed = (k * i + k - 1) < width
        sign = digit.sign
        if signed:
            for b in range(field - 1):
                core = gb.g_xor(_mux_bit(gb, digit, multiples, b), sign)
                place(core, offset + b)
            place(gb.g_not(sign), offset + field - 1)
            place(sign, offset)            # two's complement +1
        else:
            # Rows whose group extends past the operand width can never
            # go negative; their digit is bounded by 2**avail, which
            # bounds the row width (a synthesis tool would prove the
            # same bits constant-zero).
            avail = max(0, width - k * i)
            row_bits = width + avail
            for b in range(row_bits):
                place(_mux_bit(gb, digit, multiples, b), offset + b)

    for value, wlo in reference_corrections(width, k):
        b = 0
        v = value
        while v:
            if v & 1:
                place(gb.one, wlo + b)
            v >>= 1
            b += 1
    return columns, row_nets


# ----------------------------------------------------------------------
# Multi-format array (Fig. 4)
# ----------------------------------------------------------------------

#: Row templates of the 17-row multi-format radix-16 array.
LOWER_SIGNED = range(0, 6)
LOWER_TRANSFER = range(6, 8)
UPPER_SIGNED = range(8, 14)
UPPER_TRANSFER = (14,)
TOP_SIGNED = (15,)
TOP_TRANSFER = (16,)

LANE_FIELD_TOP_LOW = 27    # s-bar position of lower-lane rows (in-row)
LANE_FIELD_TOP_HIGH = 59   # s-bar position of upper-lane rows (in-row)
UPPER_LANE_SHIFT = 32      # in-row offset of the upper lane's multiple


#: Quad binary16 lane geometry (extension): lane k's significand sits at
#: word bits [16k, 16k+11); its three PP rows are digit indices 4k+j,
#: j = 0..2, each a 15-bit field at in-row offset 16k.
FP16_LANE_SHIFT = 16
FP16_FIELD_TOP = 14


def build_mf_pp_columns(gb, digits, multiples, fp32, fp16=None):
    """Multi-format PP array; returns ``(columns, row_nets)``.

    ``fp32`` is the control net: 0 for int64/binary64 (full 64x64
    array), 1 for dual binary32 (lane-blanked array of Fig. 4).
    ``fp16`` (extension) adds the quad binary16 arrangement: when that
    net is 1 every row bit is overlaid with the four-lane template.
    Passing ``fp16=None`` (or a constant-0 net) folds the overlay away
    — the classic three-format netlist is unchanged.
    """
    if len(digits) != 17:
        raise NetlistError(f"expected 17 radix-16 digits, got {len(digits)}")
    not_fp32 = gb.g_not(fp32)
    if fp16 is None:
        fp16 = gb.zero
    quad = gb.const_of(fp16) != 0
    product_width = 128
    field = 68
    columns: List[List[int]] = [[] for _ in range(product_width)]
    row_nets: List[int] = []

    def place(net, col):
        if gb.const_of(net) == 0:
            return
        if col >= product_width:
            raise NetlistError(f"PP bit at column {col} exceeds the array")
        columns[col].append(net)
        if gb.const_of(net) is None:
            row_nets.append(net)

    for i, digit in enumerate(digits):
        offset = 4 * i
        sign = digit.sign
        sbar = gb.g_not(sign)
        lane_k, lane_j = divmod(i, 4)

        def core(b):
            return gb.g_xor(_mux_bit(gb, digit, multiples, b), sign)

        def fp16_val(b):
            """The quad-lane overlay value of in-row bit ``b``."""
            if not quad or lane_j == 3 or lane_k > 3:
                return gb.zero
            lo = FP16_LANE_SHIFT * lane_k
            if lo <= b <= lo + FP16_FIELD_TOP - 1:
                return core(b)
            if b == lo + FP16_FIELD_TOP and lane_j <= 1:
                return sbar       # signed lane rows carry the s-bar bit
            return gb.zero

        def put(base_net, b):
            place(gb.g_mux(base_net, fp16_val(b), fp16), offset + b)

        if i in LOWER_SIGNED:
            for b in range(0, LANE_FIELD_TOP_LOW):
                put(core(b), b)
            put(gb.g_mux(core(LANE_FIELD_TOP_LOW), sbar, fp32),
                LANE_FIELD_TOP_LOW)
            for b in range(LANE_FIELD_TOP_LOW + 1, field - 1):
                put(gb.g_and(core(b), not_fp32), b)
            put(gb.g_and(sbar, not_fp32), field - 1)
        elif i in LOWER_TRANSFER:
            for b in range(0, LANE_FIELD_TOP_LOW + 1):
                put(core(b), b)
            for b in range(LANE_FIELD_TOP_LOW + 1, field - 1):
                put(gb.g_and(core(b), not_fp32), b)
            put(gb.g_and(sbar, not_fp32), field - 1)
        elif i in UPPER_SIGNED:
            for b in range(0, UPPER_LANE_SHIFT):
                put(gb.g_and(core(b), not_fp32), b)
            for b in range(UPPER_LANE_SHIFT, LANE_FIELD_TOP_HIGH):
                put(core(b), b)
            put(gb.g_mux(core(LANE_FIELD_TOP_HIGH), sbar, fp32),
                LANE_FIELD_TOP_HIGH)
            for b in range(LANE_FIELD_TOP_HIGH + 1, field - 1):
                put(gb.g_and(core(b), not_fp32), b)
            put(gb.g_and(sbar, not_fp32), field - 1)
        elif i in UPPER_TRANSFER:
            for b in range(0, UPPER_LANE_SHIFT):
                put(gb.g_and(core(b), not_fp32), b)
            for b in range(UPPER_LANE_SHIFT, field - 1):
                put(core(b), b)
            put(gb.g_and(sbar, not_fp32), field - 1)
        elif i in TOP_SIGNED:
            for b in range(0, field - 1):
                put(core(b), b)
            put(gb.g_and(sbar, not_fp32), field - 1)
        else:   # TOP_TRANSFER
            for b in range(0, 64):
                put(_mux_bit(gb, digit, multiples, b), b)

        _place_mf_carries(gb, place, i, offset, sign, fp32, not_fp32,
                          fp16, quad)

    _place_mf_corrections(gb, place, fp32, not_fp32, fp16, quad)
    return columns, row_nets


def _place_mf_carries(gb, place, i, offset, sign, fp32, not_fp32, fp16,
                      quad):
    """Two's complement '+1' carry bits for row ``i``, all modes.

    Positions: row LSB (int64/binary64), in-row bit 32 for the upper
    binary32 lane, in-row bit 16k for binary16 lane k.  Rows whose digit
    is provably non-negative in a mode contribute sign = 0 there, so
    gating is only needed where a *different* mode's sign could leak.
    """
    lane_k, lane_j = divmod(i, 4)
    not_fp16 = gb.g_not(fp16) if quad else gb.one
    fp16_carry_pos = FP16_LANE_SHIFT * lane_k
    fp16_carry_here = quad and lane_j <= 1 and lane_k <= 3

    if i in LOWER_SIGNED or i in LOWER_TRANSFER:
        if fp16_carry_here and fp16_carry_pos == 0:
            # Lane 0: the fp16 carry coincides with the row LSB.
            place(sign, offset)
        else:
            base = sign if not quad else gb.g_and(sign, not_fp16)
            place(base, offset)
            if fp16_carry_here:
                place(gb.g_and(sign, fp16), offset + fp16_carry_pos)
    elif i in UPPER_SIGNED:
        gate_lsb = gb.g_and(sign, not_fp32) if not quad else \
            gb.g_and(gb.g_and(sign, not_fp32), not_fp16)
        place(gate_lsb, offset)
        if fp16_carry_here and fp16_carry_pos == UPPER_LANE_SHIFT:
            # Lane 2: shares the binary32 upper-lane carry position.
            place(gb.g_and(sign, gb.g_or(fp32, fp16)),
                  offset + UPPER_LANE_SHIFT)
        else:
            place(gb.g_and(sign, fp32), offset + UPPER_LANE_SHIFT)
            if fp16_carry_here:
                place(gb.g_and(sign, fp16), offset + fp16_carry_pos)
    elif i in UPPER_TRANSFER or i in TOP_SIGNED:
        # Digits here are non-negative in fp32 and fp16 modes (their
        # group MSBs are formatter zeros), so the plain sign is safe.
        place(sign, offset)
    # TOP_TRANSFER carries nothing.


def _place_mf_corrections(gb, place, fp32, not_fp32, fp16=None, quad=False):
    int_corr = {wlo: v for v, wlo in reference_corrections(64, 4)}
    dual_corr = {wlo: v for v, wlo in reference_corrections(24, 4, dual=True)}
    int_bits = int_corr.get(0, 0)
    dual_bits = dual_corr.get(0, 0) | (dual_corr.get(64, 0) << 64)
    quad_bits = 0
    if quad:
        from repro.arith.partial_products import build_quad_lane_pp_array

        for value, wlo in build_quad_lane_pp_array([0] * 4,
                                                   [0] * 4).corrections:
            quad_bits |= value << wlo
    int_mode = not_fp32 if not quad else gb.g_not(gb.g_or(fp32, fp16))
    n_modes = 3 if quad else 2
    for col in range(128):
        flags = [((int_bits >> col) & 1, int_mode),
                 ((dual_bits >> col) & 1, fp32)]
        if quad:
            flags.append(((quad_bits >> col) & 1, fp16))
        terms = [net for bit, net in flags if bit]
        if len(terms) == n_modes:
            place(gb.one, col)       # set in every mode: a true constant
        elif terms:
            place(gb.or_tree(terms), col)
