"""Constant-folding gate builders.

These wrappers instantiate cells through :meth:`Module.gate` but fold
constants first — ``AND(x, 0)`` becomes the constant-0 net, ``FA(a, b, 1)``
becomes the cheaper XNOR/OR pair, and so on.  Generators can therefore
describe datapaths uniformly (correction constants, padded buses,
blanked lanes) while the resulting netlists stay as lean as what a
synthesis tool would emit; the area and power results refer to the
folded netlists.

A ``Bus`` is just a list of net ids, LSB first.
"""

from typing import List

from repro.errors import NetlistError

Bus = List[int]


class GateBuilder:
    """Folding gate factory bound to one module."""

    def __init__(self, module, cse=True):
        self.m = module
        self.zero = module.const(0)
        self.one = module.const(1)
        self._const = {self.zero: 0, self.one: 1}
        self._cse = {} if cse else None
        #: rough logic depth per net (inputs/constants = 0); used by the
        #: compressor tree to consume early-arriving bits first, the way
        #: delay-aware synthesis orders counter inputs.
        self.depth = {}

    def const_of(self, net):
        """0/1 when ``net`` is a constant, else None."""
        return self._const.get(net)

    def depth_of(self, net):
        return self.depth.get(net, 0)

    def _cell(self, kind, *ins):
        """Instantiate with common-subexpression reuse (synthesis-style)."""
        if self._cse is None:
            net = self.m.gate(kind, *ins)
            self.depth[net] = max((self.depth_of(n) for n in ins),
                                  default=0) + 1
            return net
        if kind in ("AND2", "OR2", "XOR2", "XNOR2", "NAND2", "NOR2",
                    "AND3", "OR3", "XOR3", "MAJ3"):
            key = (kind,) + tuple(sorted(ins))
        else:
            key = (kind,) + tuple(ins)
        net = self._cse.get(key)
        if net is None:
            net = self.m.gate(kind, *ins)
            self._cse[key] = net
            self.depth[net] = max((self.depth_of(n) for n in ins),
                                  default=0) + 1
        return net

    # -- single-output cells ------------------------------------------

    def g_not(self, a):
        ca = self.const_of(a)
        if ca is not None:
            return self.one if ca == 0 else self.zero
        return self._cell("INV", a)

    def g_and(self, a, b):
        ca, cb = self.const_of(a), self.const_of(b)
        if ca == 0 or cb == 0:
            return self.zero
        if ca == 1:
            return b
        if cb == 1:
            return a
        if a == b:
            return a
        return self._cell("AND2", a, b)

    def g_or(self, a, b):
        ca, cb = self.const_of(a), self.const_of(b)
        if ca == 1 or cb == 1:
            return self.one
        if ca == 0:
            return b
        if cb == 0:
            return a
        if a == b:
            return a
        return self._cell("OR2", a, b)

    def g_xor(self, a, b):
        ca, cb = self.const_of(a), self.const_of(b)
        if ca is not None and cb is not None:
            return self.one if ca ^ cb else self.zero
        if ca == 0:
            return b
        if cb == 0:
            return a
        if ca == 1:
            return self.g_not(b)
        if cb == 1:
            return self.g_not(a)
        if a == b:
            return self.zero
        return self._cell("XOR2", a, b)

    def g_xnor(self, a, b):
        ca, cb = self.const_of(a), self.const_of(b)
        if ca is not None or cb is not None or a == b:
            return self.g_not(self.g_xor(a, b))
        return self._cell("XNOR2", a, b)

    def g_mux(self, a, b, sel):
        """``a`` when ``sel = 0``, ``b`` when ``sel = 1``."""
        cs = self.const_of(sel)
        if cs == 0:
            return a
        if cs == 1:
            return b
        if a == b:
            return a
        ca, cb = self.const_of(a), self.const_of(b)
        if ca == 0 and cb == 1:
            return sel
        if ca == 1 and cb == 0:
            return self.g_not(sel)
        if ca == 0:
            return self.g_and(b, sel)
        if cb == 0:
            return self.g_and(a, self.g_not(sel))
        if ca == 1:
            return self.g_or(b, self.g_not(sel))
        if cb == 1:
            return self.g_or(a, sel)
        return self._cell("MUX2", a, b, sel)

    def g_and3(self, a, b, c):
        consts = [self.const_of(n) for n in (a, b, c)]
        if 0 in consts:
            return self.zero
        live = [n for n, cv in zip((a, b, c), consts) if cv is None]
        if not live:
            return self.one
        if len(live) == 1:
            return live[0]
        if len(live) == 2:
            return self.g_and(live[0], live[1])
        return self._cell("AND3", a, b, c)

    def g_or3(self, a, b, c):
        consts = [self.const_of(n) for n in (a, b, c)]
        if 1 in consts:
            return self.one
        live = [n for n, cv in zip((a, b, c), consts) if cv is None]
        if not live:
            return self.zero
        if len(live) == 1:
            return live[0]
        if len(live) == 2:
            return self.g_or(live[0], live[1])
        return self._cell("OR3", a, b, c)

    def g_ao22(self, a, b, c, d):
        """``(a & b) | (c & d)`` with folding to simpler gates."""
        consts = [self.const_of(n) for n in (a, b, c, d)]
        if consts[0] == 0 or consts[1] == 0:
            return self.g_and(c, d)
        if consts[2] == 0 or consts[3] == 0:
            return self.g_and(a, b)
        if any(cv is not None for cv in consts):
            return self.g_or(self.g_and(a, b), self.g_and(c, d))
        return self._cell("AO22", a, b, c, d)

    def one_hot_select(self, pairs):
        """OR of ``select & data`` products (the Fig. 1 PP mux).

        ``pairs`` is ``[(select_net, data_net), ...]`` with one-hot
        selects; packs products two per AO22 cell and ORs the results.
        """
        live = []
        for sel, data in pairs:
            if self.const_of(sel) == 0 or self.const_of(data) == 0:
                continue
            live.append((sel, data))
        terms = []
        i = 0
        while i + 1 < len(live):
            (s1, d1), (s2, d2) = live[i], live[i + 1]
            terms.append(self.g_ao22(s1, d1, s2, d2))
            i += 2
        if i < len(live):
            terms.append(self.g_and(*live[i]))
        return self.or_tree(terms)

    # -- carry-save cells ----------------------------------------------

    def fa(self, a, b, c):
        """Full adder; returns ``(sum, carry)`` with constant folding."""
        for first, second, third in ((a, b, c), (b, c, a), (c, a, b)):
            cv = self.const_of(third)
            if cv == 0:
                return self.ha(first, second)
            if cv == 1:
                s = self.g_xnor(first, second)
                carry = self.g_or(first, second)
                return s, carry
        return (self._cell("XOR3", a, b, c),
                self._cell("MAJ3", a, b, c))

    def ha(self, a, b):
        """Half adder; returns ``(sum, carry)``."""
        ca, cb = self.const_of(a), self.const_of(b)
        if ca == 0:
            return b, self.zero
        if cb == 0:
            return a, self.zero
        if ca == 1:
            return self.g_not(b), b
        if cb == 1:
            return self.g_not(a), a
        return self.g_xor(a, b), self.g_and(a, b)

    # -- bus helpers -----------------------------------------------------

    def bus_const(self, value, width):
        """A bus of constant nets spelling ``value``."""
        return [self.one if (value >> i) & 1 else self.zero
                for i in range(width)]

    def bus_invert(self, bus):
        return [self.g_not(n) for n in bus]

    def bus_and_bit(self, bus, bit):
        return [self.g_and(n, bit) for n in bus]

    def bus_xor_bit(self, bus, bit):
        return [self.g_xor(n, bit) for n in bus]

    def bus_mux(self, bus_a, bus_b, sel):
        if len(bus_a) != len(bus_b):
            raise NetlistError(
                f"bus width mismatch: {len(bus_a)} vs {len(bus_b)}"
            )
        return [self.g_mux(a, b, sel) for a, b in zip(bus_a, bus_b)]

    def bus_shift_left(self, bus, amount, width=None):
        """Left shift by wiring, zero filled, truncated to ``width``."""
        width = width if width is not None else len(bus) + amount
        shifted = [self.zero] * amount + list(bus)
        shifted = shifted[:width]
        while len(shifted) < width:
            shifted.append(self.zero)
        return shifted

    def bus_pad(self, bus, width):
        if len(bus) > width:
            raise NetlistError(f"bus of {len(bus)} nets won't fit {width}")
        return list(bus) + [self.zero] * (width - len(bus))

    def or_tree(self, nets):
        """Balanced OR reduction of any number of nets (0 -> const 0)."""
        nets = [n for n in nets if self.const_of(n) != 0]
        if any(self.const_of(n) == 1 for n in nets):
            return self.one
        if not nets:
            return self.zero
        while len(nets) > 1:
            nxt = []
            i = 0
            while i + 2 < len(nets):
                nxt.append(self.g_or3(nets[i], nets[i + 1], nets[i + 2]))
                i += 3
            if i + 1 < len(nets):
                nxt.append(self.g_or(nets[i], nets[i + 1]))
            elif i < len(nets):
                nxt.append(nets[i])
            nets = nxt
        return nets[0]

    def and_tree(self, nets):
        """Balanced AND reduction."""
        nets = [n for n in nets if self.const_of(n) != 1]
        if any(self.const_of(n) == 0 for n in nets):
            return self.zero
        if not nets:
            return self.one
        while len(nets) > 1:
            nxt = []
            i = 0
            while i + 2 < len(nets):
                nxt.append(self.g_and3(nets[i], nets[i + 1], nets[i + 2]))
                i += 3
            if i + 1 < len(nets):
                nxt.append(self.g_and(nets[i], nets[i + 1]))
            elif i < len(nets):
                nxt.append(nets[i])
            nets = nxt
        return nets[0]


def bus_from_const(module, value, width):
    """Convenience: constant bus without instantiating a GateBuilder."""
    zero = module.const(0)
    one = module.const(1)
    return [one if (value >> i) & 1 else zero for i in range(width)]
