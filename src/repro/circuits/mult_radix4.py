"""The radix-4 (modified Booth) 64x64 baseline of Sec. II-A (Table II).

33 partial products in ``{-2..2}``; no pre-computation (2X is wiring),
at the price of a reduction tree roughly twice as deep and wide as the
radix-16 one — the trade-off the paper quantifies in Tables II and III.
"""

from repro.circuits.mult_common import build_multiplier


def radix4_multiplier(pipeline_cut=None, adder_style="kogge_stone",
                      use_4_2=False, buffer_max_load=8.0):
    """Build the radix-4 Booth 64x64 multiplier."""
    return build_multiplier(2, width=64, pipeline_cut=pipeline_cut,
                            adder_style=adder_style, use_4_2=use_4_2,
                            buffer_max_load=buffer_max_load)
