"""Structural carry-propagate adders.

The paper's datapath needs "fast CPAs" in three places: the odd-multiple
pre-computation (3X/5X/7X), the two speculative rounding adders of
Fig. 3, and the final product CPA.  We provide ripple (baseline),
Kogge-Stone (fast, the default), Brent-Kung and carry-select styles,
all mirroring the reference recurrences in
:mod:`repro.arith.adders_ref`, plus the lane-split wrapper the dual
binary32 mode needs (carry killed at bit 64, Sec. III-B).
"""

from repro.circuits.primitives import GateBuilder
from repro.errors import NetlistError


def ripple_adder(gb, a, b, carry_in=None):
    """Ripple-carry adder; returns ``(sum_bus, carry_out)``."""
    _check(a, b)
    c = carry_in if carry_in is not None else gb.zero
    total = []
    for ai, bi in zip(a, b):
        s1, c1 = gb.ha(ai, bi)
        s2, c2 = gb.ha(s1, c)
        total.append(s2)
        c = gb.g_or(c1, c2)
    return total, c


def kogge_stone_adder(gb, a, b, carry_in=None):
    """Kogge-Stone prefix adder; returns ``(sum_bus, carry_out)``.

    Minimum logic depth (log2 n prefix levels), the style assumed for
    the paper's fast CPAs.
    """
    _check(a, b)
    width = len(a)
    p = [gb.g_xor(ai, bi) for ai, bi in zip(a, b)]
    g = [gb.g_and(ai, bi) for ai, bi in zip(a, b)]
    gp = list(zip(g, p))
    span = 1
    while span < width:
        nxt = list(gp)
        for i in range(span, width):
            gi, pi = gp[i]
            gj, pj = gp[i - span]
            nxt[i] = (gb.g_or(gi, gb.g_and(pi, gj)), gb.g_and(pi, pj))
        gp = nxt
        span <<= 1
    return _finish_prefix(gb, p, gp, carry_in, width)


def brent_kung_adder(gb, a, b, carry_in=None):
    """Brent-Kung prefix adder: sparse tree, ~2 log2 n depth, less area."""
    _check(a, b)
    width = len(a)
    p = [gb.g_xor(ai, bi) for ai, bi in zip(a, b)]
    g = [gb.g_and(ai, bi) for ai, bi in zip(a, b)]
    seg = {(i, i): (g[i], p[i]) for i in range(width)}

    def combine(hi_pair, lo_pair):
        gh, ph = hi_pair
        gl, pl = lo_pair
        return gb.g_or(gh, gb.g_and(ph, gl)), gb.g_and(ph, pl)

    span = 1
    while span < width:
        for i in range(2 * span - 1, width, 2 * span):
            lo = i - 2 * span + 1
            seg[(lo, i)] = combine(seg[(i - span + 1, i)],
                                   seg[(lo, i - span)])
        span <<= 1

    prefixes = {}
    for i in range(width):
        lo = 0
        acc = None
        while lo <= i:
            size = 1
            while lo % (2 * size) == 0 and lo + 2 * size - 1 <= i:
                size *= 2
            piece = seg[(lo, lo + size - 1)]
            acc = piece if acc is None else combine(piece, acc)
            lo += size
        prefixes[i] = acc
    gp = [prefixes[i] for i in range(width)]
    return _finish_prefix(gb, p, gp, carry_in, width)


def carry_select_adder(gb, a, b, carry_in=None, block=8):
    """Carry-select adder with ripple blocks computed for both carries."""
    _check(a, b)
    width = len(a)
    c = carry_in if carry_in is not None else gb.zero
    total = []
    for lo in range(0, width, block):
        hi = min(lo + block, width)
        sa, sb = a[lo:hi], b[lo:hi]
        sum0, c0 = ripple_adder(gb, sa, sb, gb.zero)
        sum1, c1 = ripple_adder(gb, sa, sb, gb.one)
        total.extend(gb.g_mux(s0, s1, c) for s0, s1 in zip(sum0, sum1))
        c = gb.g_mux(c0, c1, c)
    return total, c


_STYLES = {
    "ripple": ripple_adder,
    "kogge_stone": kogge_stone_adder,
    "brent_kung": brent_kung_adder,
    "carry_select": carry_select_adder,
}


def make_adder(style):
    """Look up an adder generator by style name."""
    try:
        return _STYLES[style]
    except KeyError:
        raise NetlistError(
            f"unknown adder style {style!r}; choose from {sorted(_STYLES)}"
        ) from None


def adder_styles():
    return sorted(_STYLES)


def lane_split_adder(gb, a, b, split, boundary=64, style="kogge_stone"):
    """CPA divided into an upper and lower part (Sec. III-B).

    The carry out of ``boundary - 1`` enters the upper half through an
    AND gate with ``NOT split``: a single binary64/int64 addition when
    ``split = 0``, two independent lane additions when ``split = 1``.
    The upper half is computed for both carry-in values in parallel and
    selected (carry-select at the boundary), so the split costs one mux
    delay instead of serializing the two halves.
    Returns ``(sum_bus, carry_out)``.
    """
    _check(a, b)
    if not 0 < boundary < len(a):
        raise NetlistError(f"boundary {boundary} outside bus of {len(a)}")
    adder = make_adder(style)
    lo_sum, lo_cout = adder(gb, a[:boundary], b[:boundary])
    hi_cin = gb.g_and(lo_cout, gb.g_not(split))
    hi0, cout0 = adder(gb, a[boundary:], b[boundary:], carry_in=gb.zero)
    hi1, cout1 = adder(gb, a[boundary:], b[boundary:], carry_in=gb.one)
    hi_sum = gb.bus_mux(hi0, hi1, hi_cin)
    cout = gb.g_mux(cout0, cout1, hi_cin)
    return lo_sum + hi_sum, cout


def multi_lane_split_adder(gb, a, b, kills, style="kogge_stone"):
    """CPA divided at several positions, each with its own kill control.

    ``kills`` is ``[(boundary, kill_net), ...]`` in ascending boundary
    order: the carry out of ``boundary - 1`` enters the next block
    through ``AND(cout, NOT kill)``.  Each block is computed for both
    carry-in values and selected (carry-select), so depth grows by one
    mux per boundary.  Generalizes :func:`lane_split_adder` to the quad
    binary16 mode's three boundaries.  Returns ``(sum_bus, carry_out)``.
    """
    _check(a, b)
    width = len(a)
    positions = [boundary for boundary, __ in kills]
    if positions != sorted(set(positions)) or not all(
            0 < p_ < width for p_ in positions):
        raise NetlistError(f"bad kill boundaries {positions}")
    adder = make_adder(style)
    cuts = [0] + positions + [width]
    total = []
    carry = gb.zero
    for index, (lo, hi) in enumerate(zip(cuts, cuts[1:])):
        if index == 0:
            block_sum, cout = adder(gb, a[lo:hi], b[lo:hi])
        else:
            kill = kills[index - 1][1]
            cin = gb.g_and(carry, gb.g_not(kill))
            s0, c0 = adder(gb, a[lo:hi], b[lo:hi], carry_in=gb.zero)
            s1, c1 = adder(gb, a[lo:hi], b[lo:hi], carry_in=gb.one)
            block_sum = gb.bus_mux(s0, s1, cin)
            cout = gb.g_mux(c0, c1, cin)
        total.extend(block_sum)
        carry = cout
    return total, carry


def _finish_prefix(gb, p, gp, carry_in, width):
    cin = carry_in if carry_in is not None else gb.zero
    carries = [cin]
    for i in range(width):
        gi, pi = gp[i]
        carries.append(gb.g_or(gi, gb.g_and(pi, cin)))
    total = [gb.g_xor(p[i], carries[i]) for i in range(width)]
    return total, carries[width]


def _check(a, b):
    if len(a) != len(b):
        raise NetlistError(f"adder width mismatch: {len(a)} vs {len(b)}")
    if not a:
        raise NetlistError("adder needs at least one bit")
