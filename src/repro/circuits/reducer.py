"""Structural binary64 -> binary32 reducer (Fig. 6, Algorithm 1).

Hardware inventory per the paper:

* a **5-bit CPA** for ``E32 = E64 - 896``: the 7 LSBs of -896 are zero,
  so only the upper 5 exponent bits need an adder (the low 7 pass
  through) — implemented exactly that way;
* a **12-bit CPA** for the ``E64 - 1151 < 0`` bound (-1151 is odd; the
  figure draws 11 bits, see DESIGN.md for the discrepancy note);
* a **29-input OR tree** over the low fraction bits;
* a **2:1 mux** selecting the reduced binary32 (packed in the low 32
  bits of the output) or the original binary64.

The module's outputs: ``out`` (64 bits), ``reduced`` (validity flag),
plus the internal condition bits ``c1``/``c2``/``zero`` for inspection.
"""

from repro.circuits.adders import make_adder
from repro.circuits.ortree import zero_flag
from repro.circuits.primitives import GateBuilder
from repro.core.reduction import BIAS_DELTA, DISCARDED_FRACTION_BITS, UPPER_BOUND
from repro.hdl.module import Module
from repro.hdl.validate import validate


def build_reducer(adder_style="ripple", name="fp64_to_fp32_reducer"):
    """Build the Fig. 6 reducer as a standalone module.

    Inputs: ``d`` (a binary64 encoding).  Outputs: ``out`` (binary32 in
    the low word when reduced, else the original binary64), ``reduced``,
    ``c1``, ``c2``, ``zero``.
    """
    m = Module(name)
    gb = GateBuilder(m)
    d = m.input("d", 64)
    out, reduce_ok, c1, c2, zero_ok = reducer_logic(gb, d, adder_style)
    m.output("out", out)
    m.output("reduced", [reduce_ok])
    m.output("c1", [c1])
    m.output("c2", [c2])
    m.output("zero", [gb.g_not(zero_ok)])
    return validate(m)


def reducer_logic(gb, d, adder_style="ripple"):
    """Instantiate the Fig. 6 datapath on an existing 64-bit bus.

    Returns ``(out_bus, reduced, c1, c2, zero_ok)``.  Exposed separately
    so the multi-format unit can absorb the reducer into its output
    formatter, as Sec. IV suggests ("can be easily included in the
    multi-format multiplier of Fig. 5").
    """
    m = gb.m
    sign = d[63]
    e64 = d[52:63]               # 11 exponent bits
    fraction = d[0:52]
    adder = make_adder(adder_style)

    with m.block("exp_low_check"):
        # E32 = E64 - 896; -896 = 0b10001000000 in 11-bit two's
        # complement: its 7 LSBs are zero, so E32[0:7] = E64[0:7] and a
        # 5-bit adder handles bits 7..11 (with the borrow sign).
        low7 = e64[:7]
        high4 = e64[7:]
        const = (-BIAS_DELTA >> 7) & 0x1F          # -896 / 128 = -7 -> 5 bits
        const_bus = gb.bus_const(const, 5)
        hi_sum, __ = adder(gb, gb.bus_pad(high4, 5), const_bus)
        e32 = low7 + hi_sum[:4]                     # 11 magnitude bits
        e32_sign = hi_sum[4]                        # 1 when E32 < 0
        # c1: E32 > 0  <=>  not negative and not zero.
        e32_nonzero = gb.or_tree(e32)
        c1 = gb.g_and(gb.g_not(e32_sign), e32_nonzero)

    with m.block("exp_high_check"):
        # c2: E64 - 1151 < 0.  -1151 is odd -> full 12-bit CPA.
        const_bus = gb.bus_const((-UPPER_BOUND) & 0xFFF, 12)
        diff, __ = adder(gb, gb.bus_pad(e64, 12), const_bus)
        c2 = diff[11]                               # sign bit: negative

    with m.block("zero_check"):
        zero_ok = zero_flag(gb, fraction[:DISCARDED_FRACTION_BITS])

    with m.block("select"):
        reduce_ok = gb.and_tree([c1, c2, zero_ok])
        # binary32 encoding in the low 32 bits: sign, E32[7:0], fraction>>29.
        packed32 = (list(fraction[DISCARDED_FRACTION_BITS:])  # 23 bits
                    + list(e32[:8])                           # 8 exponent bits
                    + [sign])                                 # sign
        out = [gb.g_mux(d[i], packed32[i] if i < 32 else gb.zero, reduce_ok)
               for i in range(64)]

    return out, reduce_ok, c1, c2, zero_ok
