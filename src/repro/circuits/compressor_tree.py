"""Structural partial-product reduction tree (the TREE of Fig. 2).

The scheduling comes from :func:`repro.arith.trees.reduce_columns` — the
*same* function the reference layer uses — instantiated here with net
ids as items and :class:`GateBuilder` cells as compressors.  Carries
crossing a lane boundary pass through an AND gate with the lane-split
control, implementing the "correct carry-propagation" of Sec. III-B in
the shared multi-format array; carries off the top of the array are
dropped (there is no column there, arithmetic is modulo the width).
"""

from dataclasses import dataclass
from typing import List, Optional

from repro.arith.trees import ReductionSchedule, reduce_columns
from repro.circuits.primitives import GateBuilder
from repro.errors import NetlistError


@dataclass
class TreeResult:
    """Outputs of the compressor tree."""

    sum_bus: List[int]
    carry_bus: List[int]
    schedule: ReductionSchedule


def build_compressor_tree(gb, columns, width, split=None, boundaries=(),
                          use_4_2=False, kill_controls=None):
    """Reduce ``columns`` (lists of nets per bit position) to two buses.

    ``split`` is an optional net: when given, carries crossing any
    position in ``boundaries`` are ANDed with ``NOT split`` (dual-lane
    isolation).  When ``split`` is None, carries crossing ``boundaries``
    are removed outright (mode-fixed arrays).  ``kill_controls`` maps
    boundary position -> control net for designs with *different* kill
    conditions per boundary (the quad binary16 extension); it overrides
    ``split``/``boundaries``.  Carries leaving column ``width - 1`` are
    always dropped.
    """
    if len(columns) != width:
        raise NetlistError(f"expected {width} columns, got {len(columns)}")
    if kill_controls is None:
        kill_controls = {pos: split for pos in boundaries}
    gates = {pos: (None if ctrl is None else gb.g_not(ctrl))
             for pos, ctrl in kill_controls.items()}

    def carry_hook(net, from_col):
        target = from_col + 1
        if target == width:
            return None
        if target in gates:
            not_ctrl = gates[target]
            if not_ctrl is None:
                return None
            return gb.g_and(net, not_ctrl)
        return net

    if use_4_2:
        reduced, schedule = _reduce_4_2(gb, columns, carry_hook)
    else:
        reduced, schedule = reduce_columns(
            columns, fa=gb.fa, ha=gb.ha, carry_hook=carry_hook,
            order_key=gb.depth_of)
    sum_bus = []
    carry_bus = []
    for col in reduced:
        items = [n for n in col if gb.const_of(n) != 0]
        if len(items) > 2:
            raise NetlistError("tree failed to reduce a column to two")
        sum_bus.append(items[0] if items else gb.zero)
        carry_bus.append(items[1] if len(items) > 1 else gb.zero)
    return TreeResult(sum_bus=sum_bus, carry_bus=carry_bus,
                      schedule=schedule)


def _reduce_4_2(gb, columns, carry_hook):
    """4:2-compressor-first reduction (ablation variant).

    While any column holds more than 4 items, a stage of 4:2 compressors
    roughly halves the heights.  Each 4:2 cell is two chained full
    adders: the first FA's carry (``cout``) travels *horizontally* to the
    matching cell of the next column within the same stage (no ripple —
    it is independent of that cell's own ``cin``), the second FA's carry
    goes to the next column's next-stage input.  A final Dadda 3:2 pass
    cleans up to height 2.
    """
    schedule = ReductionSchedule()
    work = [list(c) for c in columns]
    width = len(work)
    schedule.stage_heights.append(max((len(c) for c in work), default=0))
    while max((len(c) for c in work), default=0) > 4:
        out = [[] for _ in range(width + 1)]
        hlanes = [[] for _ in range(width + 1)]   # horizontal cins per column
        for i in range(width):
            items = list(work[i])
            cins = hlanes[i]
            lane = 0
            while len(items) >= 4:
                a, b, c, d = items[:4]
                items = items[4:]
                cin = cins[lane] if lane < len(cins) else gb.zero
                s1, cout = gb.fa(a, b, c)
                s, carry = gb.fa(s1, d, cin)
                schedule.full_adders += 2
                out[i].append(s)
                routed_c = carry_hook(carry, i)
                if routed_c is not None:
                    out[i + 1].append(routed_c)
                else:
                    schedule.killed_carries += 1
                routed_h = carry_hook(cout, i)
                if routed_h is not None:
                    hlanes[i + 1].append(routed_h)
                else:
                    schedule.killed_carries += 1
                lane += 1
            # Unused horizontal carries still carry weight i: keep them.
            items.extend(cins[lane:])
            out[i].extend(items)
        if out[width] or hlanes[width]:
            raise NetlistError("4:2 reduction carry escaped the array")
        work = out[:width]
        schedule.stages += 1
        schedule.stage_heights.append(max(len(c) for c in work))
        if schedule.stages > 64:
            raise NetlistError("4:2 reduction failed to converge")

    final, tail = reduce_columns(work, fa=gb.fa, ha=gb.ha,
                                 carry_hook=carry_hook)
    schedule.stages += tail.stages
    schedule.full_adders += tail.full_adders
    schedule.half_adders += tail.half_adders
    schedule.killed_carries += tail.killed_carries
    schedule.stage_heights.extend(tail.stage_heights[1:])
    return final, schedule
