"""A fixed-width unsigned bit vector.

``BitVector`` is a thin, immutable wrapper around ``(value, width)``.
It exists so that datapath code can slice, concatenate and shift bit
fields without scattering shift/mask arithmetic — and so that width
mismatches fail loudly at the point of the mistake.

Indexing follows hardware convention: ``v[0]`` is the LSB and slices are
inclusive ranges of *bit positions*, e.g. ``v[11:4]`` or ``v[4:11]`` both
select bits 4..11 (8 bits).
"""

from repro.bits.utils import from_twos_complement, mask
from repro.errors import BitWidthError


class BitVector:
    """An immutable unsigned integer with an explicit bit width."""

    __slots__ = ("_value", "_width")

    def __init__(self, value, width):
        if width <= 0:
            raise BitWidthError(f"BitVector width must be positive, got {width}")
        if value < 0 or value > mask(width):
            raise BitWidthError(f"{value:#x} does not fit in {width} bits")
        self._value = value
        self._width = width

    @classmethod
    def signed(cls, value, width):
        """Build a vector from a signed value, two's complement encoded."""
        if width <= 0:
            raise BitWidthError(f"BitVector width must be positive, got {width}")
        lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
        if not lo <= value <= hi:
            raise BitWidthError(f"{value} does not fit in {width}-bit two's complement")
        return cls(value & mask(width), width)

    @classmethod
    def from_bits(cls, bits):
        """Build a vector from an iterable of bits, LSB first."""
        bits = list(bits)
        if not bits:
            raise BitWidthError("from_bits needs at least one bit")
        value = 0
        for i, b in enumerate(bits):
            if b not in (0, 1):
                raise BitWidthError(f"bit {i} is {b!r}, expected 0 or 1")
            value |= b << i
        return cls(value, len(bits))

    @property
    def value(self):
        """The unsigned integer value."""
        return self._value

    @property
    def width(self):
        """The declared width in bits."""
        return self._width

    @property
    def signed_value(self):
        """The value interpreted as two's complement."""
        return from_twos_complement(self._value, self._width)

    def __int__(self):
        return self._value

    def __index__(self):
        return self._value

    def __len__(self):
        return self._width

    def __eq__(self, other):
        if isinstance(other, BitVector):
            return self._value == other._value and self._width == other._width
        if isinstance(other, int):
            return self._value == other
        return NotImplemented

    def __hash__(self):
        return hash((self._value, self._width))

    def __getitem__(self, key):
        if isinstance(key, slice):
            if key.step is not None:
                raise BitWidthError("BitVector slices do not support a step")
            if key.start is None or key.stop is None:
                raise BitWidthError("BitVector slices need explicit bounds")
            lo, hi = sorted((key.start, key.stop))
            if lo < 0 or hi >= self._width:
                raise BitWidthError(
                    f"slice [{key.start}:{key.stop}] out of range for width {self._width}"
                )
            width = hi - lo + 1
            return BitVector((self._value >> lo) & mask(width), width)
        if key < 0 or key >= self._width:
            raise BitWidthError(f"bit {key} out of range for width {self._width}")
        return (self._value >> key) & 1

    def concat(self, *others):
        """Concatenate, ``self`` holding the most significant bits.

        ``a.concat(b, c)`` produces ``{a, b, c}`` in Verilog notation:
        ``c`` is the least significant field.
        """
        value, width = self._value, self._width
        for other in others:
            value = (value << other._width) | other._value
            width += other._width
        return BitVector(value, width)

    def zero_extend(self, width):
        """Return the value widened to ``width`` bits with zero fill."""
        if width < self._width:
            raise BitWidthError(f"cannot zero-extend width {self._width} to {width}")
        return BitVector(self._value, width)

    def sign_extend(self, width):
        """Return the value widened to ``width`` bits, replicating the MSB."""
        if width < self._width:
            raise BitWidthError(f"cannot sign-extend width {self._width} to {width}")
        return BitVector.signed(self.signed_value, width)

    def truncate(self, width):
        """Keep only the ``width`` least significant bits."""
        if width > self._width:
            raise BitWidthError(f"cannot truncate width {self._width} to {width}")
        return BitVector(self._value & mask(width), width)

    def __invert__(self):
        return BitVector(self._value ^ mask(self._width), self._width)

    def __and__(self, other):
        return self._bitwise(other, lambda a, b: a & b)

    def __or__(self, other):
        return self._bitwise(other, lambda a, b: a | b)

    def __xor__(self, other):
        return self._bitwise(other, lambda a, b: a ^ b)

    def _bitwise(self, other, op):
        if isinstance(other, int):
            other = BitVector(other & mask(self._width), self._width)
        if other._width != self._width:
            raise BitWidthError(
                f"width mismatch: {self._width} vs {other._width}"
            )
        return BitVector(op(self._value, other._value), self._width)

    def __lshift__(self, amount):
        """Shift left *within the declared width* (bits fall off the top)."""
        if amount < 0:
            raise BitWidthError("shift amount must be non-negative")
        return BitVector((self._value << amount) & mask(self._width), self._width)

    def __rshift__(self, amount):
        if amount < 0:
            raise BitWidthError("shift amount must be non-negative")
        return BitVector(self._value >> amount, self._width)

    def __add__(self, other):
        """Modular addition within the declared width."""
        if isinstance(other, BitVector):
            if other._width != self._width:
                raise BitWidthError(
                    f"width mismatch: {self._width} vs {other._width}"
                )
            other = other._value
        return BitVector((self._value + other) & mask(self._width), self._width)

    def bits(self):
        """The bits as a list, LSB first."""
        return [(self._value >> i) & 1 for i in range(self._width)]

    def __repr__(self):
        return f"BitVector({self._value:#x}, width={self._width})"

    def __str__(self):
        return format(self._value, f"0{self._width}b")
