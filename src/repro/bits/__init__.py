"""Bit-level utilities: bit vectors, two's complement, IEEE 754 codecs.

This package is the numeric foundation of the reproduction.  Everything
above it (arithmetic algorithms, circuits, the multi-format unit) speaks
in terms of unsigned integers of a declared width; the helpers here make
those manipulations explicit and checked.
"""

from repro.bits.bitvector import BitVector
from repro.bits.ieee754 import (
    BINARY16,
    BINARY32,
    BINARY64,
    BINARY128,
    FloatFormat,
    decode,
    encode,
    format_by_name,
    round_significand,
)
from repro.bits.utils import (
    bit,
    bit_length,
    bits_of,
    from_twos_complement,
    mask,
    ones_count,
    popcount,
    to_twos_complement,
)

__all__ = [
    "BINARY16",
    "BINARY32",
    "BINARY64",
    "BINARY128",
    "BitVector",
    "FloatFormat",
    "bit",
    "bit_length",
    "bits_of",
    "decode",
    "encode",
    "format_by_name",
    "from_twos_complement",
    "mask",
    "ones_count",
    "popcount",
    "round_significand",
    "to_twos_complement",
]
