"""Small, heavily used bit-manipulation helpers.

All functions operate on plain Python ints.  Widths are explicit
everywhere; a value that does not fit its declared width raises
:class:`~repro.errors.BitWidthError` rather than being silently masked,
because silent masking is how datapath bugs hide.
"""

from repro.errors import BitWidthError


def mask(width):
    """Return an all-ones mask of ``width`` bits (``width`` may be 0)."""
    if width < 0:
        raise BitWidthError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def bit(value, position):
    """Return bit ``position`` (0 = LSB) of ``value`` as 0 or 1."""
    if position < 0:
        raise BitWidthError(f"bit position must be non-negative, got {position}")
    return (value >> position) & 1


def bits_of(value, width):
    """Return the ``width`` bits of ``value`` as a list, LSB first."""
    _check_unsigned(value, width)
    return [(value >> i) & 1 for i in range(width)]


def bit_length(value):
    """Like ``int.bit_length`` but defined to be 1 for zero.

    A zero still occupies one bit of storage in a register; this variant
    avoids width-0 special cases in circuit generators.
    """
    if value < 0:
        raise BitWidthError("bit_length is defined for non-negative values")
    return max(1, value.bit_length())


if hasattr(int, "bit_count"):        # Python >= 3.10
    def popcount(value):
        """Population count of a non-negative integer.

        Uses ``int.bit_count()`` where available (Python >= 3.10); the
        simulators call this on multi-thousand-bit packed pattern words,
        where it is ~10x faster than the ``bin(v).count("1")`` fallback.
        """
        if value < 0:
            raise BitWidthError("popcount is defined for non-negative values")
        return value.bit_count()
else:                                # pragma: no cover - Python < 3.10
    def popcount(value):
        """Population count of a non-negative integer (portable fallback)."""
        if value < 0:
            raise BitWidthError("popcount is defined for non-negative values")
        return bin(value).count("1")


def ones_count(value):
    """Population count of a non-negative integer (alias of popcount)."""
    return popcount(value)


def to_twos_complement(value, width):
    """Encode a signed integer into ``width``-bit two's complement.

    Raises :class:`BitWidthError` when ``value`` is outside
    ``[-2**(width-1), 2**(width-1) - 1]``.
    """
    if width <= 0:
        raise BitWidthError(f"width must be positive, got {width}")
    lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
    if not lo <= value <= hi:
        raise BitWidthError(f"{value} does not fit in {width}-bit two's complement")
    return value & mask(width)


def from_twos_complement(encoded, width):
    """Decode a ``width``-bit two's complement pattern into a signed int."""
    _check_unsigned(encoded, width)
    sign_bit = 1 << (width - 1)
    return (encoded ^ sign_bit) - sign_bit


def _check_unsigned(value, width):
    if width < 0:
        raise BitWidthError(f"width must be non-negative, got {width}")
    if value < 0 or value > mask(width):
        raise BitWidthError(f"{value} is not an unsigned {width}-bit value")
