"""IEEE 754-2008 binary interchange formats (paper Table IV).

The :class:`FloatFormat` parameters reproduce Table IV of the paper
exactly: storage width, precision, exponent length, ``Emax`` and bias for
binary16/32/64/128.

Encode/decode here are *reference* codecs: they handle normals,
subnormals, zeros, infinities and NaNs so that tests can compare the
paper's restricted datapath against full IEEE behaviour.  The datapath
itself (``repro.core``) implements the paper's restricted semantics.
"""

import math
from dataclasses import dataclass

from repro.bits.utils import mask
from repro.errors import BitWidthError, FormatError


@dataclass(frozen=True)
class FloatFormat:
    """Parameters of an IEEE 754 binary format (one column of Table IV)."""

    name: str
    storage_bits: int
    precision: int          # p, significand bits including the hidden one
    exponent_bits: int      # w

    @property
    def trailing_significand_bits(self):
        """f in Table IV: stored fraction bits (precision minus hidden bit)."""
        return self.precision - 1

    @property
    def bias(self):
        return (1 << (self.exponent_bits - 1)) - 1

    @property
    def emax(self):
        return self.bias

    @property
    def emin(self):
        return 1 - self.bias

    @property
    def exponent_mask(self):
        return mask(self.exponent_bits)

    @property
    def sign_position(self):
        return self.storage_bits - 1

    def pack(self, sign, biased_exponent, fraction):
        """Assemble a raw encoding from its three fields."""
        if sign not in (0, 1):
            raise FormatError(f"sign must be 0 or 1, got {sign}")
        if not 0 <= biased_exponent <= self.exponent_mask:
            raise FormatError(
                f"biased exponent {biased_exponent} out of range for {self.name}"
            )
        if not 0 <= fraction <= mask(self.trailing_significand_bits):
            raise FormatError(f"fraction {fraction:#x} out of range for {self.name}")
        return (
            (sign << self.sign_position)
            | (biased_exponent << self.trailing_significand_bits)
            | fraction
        )

    def unpack(self, encoding):
        """Split a raw encoding into ``(sign, biased_exponent, fraction)``."""
        if encoding < 0 or encoding > mask(self.storage_bits):
            raise BitWidthError(
                f"{encoding:#x} is not a {self.storage_bits}-bit encoding"
            )
        sign = (encoding >> self.sign_position) & 1
        biased = (encoding >> self.trailing_significand_bits) & self.exponent_mask
        fraction = encoding & mask(self.trailing_significand_bits)
        return sign, biased, fraction

    def is_normal(self, encoding):
        __, biased, __ = self.unpack(encoding)
        return 0 < biased < self.exponent_mask

    def is_subnormal(self, encoding):
        __, biased, fraction = self.unpack(encoding)
        return biased == 0 and fraction != 0

    def is_zero(self, encoding):
        __, biased, fraction = self.unpack(encoding)
        return biased == 0 and fraction == 0

    def is_inf(self, encoding):
        __, biased, fraction = self.unpack(encoding)
        return biased == self.exponent_mask and fraction == 0

    def is_nan(self, encoding):
        __, biased, fraction = self.unpack(encoding)
        return biased == self.exponent_mask and fraction != 0

    def significand(self, encoding):
        """The integer significand (with hidden bit resolved)."""
        __, biased, fraction = self.unpack(encoding)
        if biased == 0:
            return fraction
        return fraction | (1 << self.trailing_significand_bits)


BINARY16 = FloatFormat("binary16", 16, 11, 5)
BINARY32 = FloatFormat("binary32", 32, 24, 8)
BINARY64 = FloatFormat("binary64", 64, 53, 11)
BINARY128 = FloatFormat("binary128", 128, 113, 15)

_BY_NAME = {f.name: f for f in (BINARY16, BINARY32, BINARY64, BINARY128)}


def format_by_name(name):
    """Look up a format by its Table IV name (e.g. ``"binary64"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise FormatError(f"unknown format {name!r}") from None


def decode(encoding, fmt):
    """Decode a raw encoding into a Python float.

    Infinities decode to ``math.inf``; NaNs decode to ``math.nan``.
    """
    sign, biased, fraction = fmt.unpack(encoding)
    sign_factor = -1.0 if sign else 1.0
    if biased == fmt.exponent_mask:
        return sign_factor * math.inf if fraction == 0 else math.nan
    f = fmt.trailing_significand_bits
    if biased == 0:
        return sign_factor * math.ldexp(fraction, fmt.emin - f)
    return sign_factor * math.ldexp(fraction | (1 << f), biased - fmt.bias - f)


def encode(value, fmt):
    """Encode a Python float with round-to-nearest-even.

    This is the reference encoder used to build test vectors; it supports
    the full IEEE value set.
    """
    if math.isnan(value):
        return fmt.pack(0, fmt.exponent_mask, 1 << (fmt.trailing_significand_bits - 1))
    sign = 1 if math.copysign(1.0, value) < 0 else 0
    value = abs(value)
    if math.isinf(value):
        return fmt.pack(sign, fmt.exponent_mask, 0)
    if value == 0.0:
        return fmt.pack(sign, 0, 0)

    frac, exp = math.frexp(value)      # value = frac * 2**exp, frac in [0.5, 1)
    e = exp - 1                        # unbiased exponent of the leading 1
    if e < fmt.emin:                   # subnormal (or underflow to zero)
        shift = fmt.emin - e
        scaled = math.ldexp(frac, fmt.precision - shift)
        sig = _round_half_even(scaled)
        if sig == 0:
            return fmt.pack(sign, 0, 0)
        if sig >> fmt.trailing_significand_bits:
            return fmt.pack(sign, 1, sig & mask(fmt.trailing_significand_bits))
        return fmt.pack(sign, 0, sig)
    scaled = math.ldexp(frac, fmt.precision)   # in [2**(p-1), 2**p)
    sig = _round_half_even(scaled)
    if sig == (1 << fmt.precision):             # rounding overflowed the significand
        sig >>= 1
        e += 1
    if e > fmt.emax:
        return fmt.pack(sign, fmt.exponent_mask, 0)
    return fmt.pack(sign, e + fmt.bias, sig & mask(fmt.trailing_significand_bits))


def _round_half_even(x):
    floor = math.floor(x)
    diff = x - floor
    if diff > 0.5 or (diff == 0.5 and floor % 2 == 1):
        return floor + 1
    return floor


def round_significand(product, keep_bits, mode="injection", sticky_lsbs=None):
    """Round an integer significand product down to ``keep_bits`` bits.

    ``product`` is a non-negative integer whose top ``keep_bits`` bits are
    to be kept.  Let ``d = product.bit_length() - keep_bits`` be the number
    of discarded bits (``d >= 1`` required).

    Modes:

    * ``"injection"`` — the paper's scheme: add 1 at the position just
      below the kept field, then truncate.  Equivalent to
      round-to-nearest with ties always rounding *up* (no sticky bit).
    * ``"rne"`` — full round-to-nearest-even using guard/sticky, the
      extension the paper lists as future work.
    * ``"truncate"`` — drop the discarded bits.

    Returns ``(significand, carry_out)`` where ``carry_out`` is 1 when
    rounding overflowed into bit ``keep_bits`` (significand became
    ``2**keep_bits`` and was renormalized to ``2**(keep_bits-1)``).
    """
    if product <= 0:
        raise FormatError("round_significand needs a positive product")
    d = product.bit_length() - keep_bits
    if d < 1:
        raise FormatError(
            f"product has {product.bit_length()} bits; need more than {keep_bits}"
        )
    if mode == "truncate":
        rounded = product >> d
    elif mode == "injection":
        rounded = (product + (1 << (d - 1))) >> d
    elif mode == "rne":
        guard = (product >> (d - 1)) & 1
        if sticky_lsbs is None:
            sticky = 1 if (product & mask(d - 1)) else 0
        else:
            sticky = 1 if sticky_lsbs else 0
        truncated = product >> d
        if guard and (sticky or (truncated & 1)):
            rounded = truncated + 1
        else:
            rounded = truncated
    else:
        raise FormatError(f"unknown rounding mode {mode!r}")
    if rounded >> keep_bits:
        return rounded >> 1, 1
    return rounded, 0
