"""Per-lane batching queues with flush policy and bounded depth.

A :class:`BatchingQueue` holds transactions waiting for a simulation
word.  It is a pure data structure — the :class:`~repro.serve.server.Server`
drives it under its own lock — which keeps the flush policy independently
testable:

* ``word_patterns`` — the lane's simulation word capacity, a multiple
  of 64: ``W = word_patterns // 64`` limbs per packed net value;
* ``max_batch``  — patterns per word (1..``word_patterns``, default
  the full word); reaching it makes the queue flush-ready with reason
  ``"full"``;
* ``max_wait``   — seconds the *oldest* pending transaction may wait
  before the queue becomes flush-ready with reason ``"timeout"``;
* ``max_depth``  — bound on queued transactions (its minimum is
  ``max_batch``, so it scales with the configured word width);
  :meth:`push` refuses beyond it and the server turns that refusal
  into blocking or :class:`~repro.errors.QueueFullError` backpressure.
"""

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import FormatError
from repro.serve.transactions import WORD_PATTERNS, validate_word_patterns

#: Flush reasons, in the order the server prefers them.
FLUSH_FULL = "full"
FLUSH_TIMEOUT = "timeout"
FLUSH_DRAIN = "drain"


@dataclass
class PendingTx:
    """One queued transaction plus its completion handle."""

    tx: object
    ticket: object
    enqueued_at: float = 0.0
    #: Submit-side trace context and flow-arrow id (tracing only).
    trace_ctx: Optional[dict] = None
    flow_id: Optional[str] = None


@dataclass
class BatchingQueue:
    """FIFO of pending transactions for one lane."""

    lane: str
    max_batch: Optional[int] = None
    max_wait: float = 0.005
    max_depth: Optional[int] = None
    word_patterns: int = WORD_PATTERNS
    _pending: deque = field(default_factory=deque, repr=False)

    def __post_init__(self):
        validate_word_patterns(self.word_patterns)
        if self.max_batch is None:
            self.max_batch = self.word_patterns
        if self.max_depth is None:
            # The default depth bound scales with the word width: a
            # wide-word lane must always be able to queue at least one
            # full superword.
            self.max_depth = max(4096, self.word_patterns)
        if not 1 <= self.max_batch <= self.word_patterns:
            raise FormatError(
                f"max_batch must be in 1..word_patterns="
                f"{self.word_patterns}, got {self.max_batch}")
        if self.max_wait < 0:
            raise FormatError(f"max_wait must be >= 0, got {self.max_wait}")
        if self.max_depth < self.max_batch:
            raise FormatError(
                f"max_depth ({self.max_depth}) must be >= max_batch "
                f"({self.max_batch}) — the depth floor scales with the "
                f"lane's word_patterns={self.word_patterns}")

    @property
    def depth(self):
        return len(self._pending)

    def push(self, pending) -> bool:
        """Enqueue; False when the depth bound refuses (backpressure)."""
        if len(self._pending) >= self.max_depth:
            return False
        self._pending.append(pending)
        return True

    def flush_reason(self, now, draining=False) -> Optional[str]:
        """Why this queue should flush right now, or ``None``."""
        if not self._pending:
            return None
        if len(self._pending) >= self.max_batch:
            return FLUSH_FULL
        if now >= self._pending[0].enqueued_at + self.max_wait:
            return FLUSH_TIMEOUT
        if draining:
            return FLUSH_DRAIN
        return None

    def next_deadline(self) -> Optional[float]:
        """Monotonic time of the pending timeout flush, if any."""
        if not self._pending:
            return None
        return self._pending[0].enqueued_at + self.max_wait

    def take(self):
        """Pop up to ``max_batch`` transactions for one simulation word."""
        n = min(len(self._pending), self.max_batch)
        return [self._pending.popleft() for _ in range(n)]
