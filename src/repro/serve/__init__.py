"""repro.serve — the transaction-batched multiplier-as-a-service layer.

The bit-parallel levelized simulator evaluates up to 64 patterns per
gate word; this package exposes that capacity as a throughput engine: a
long-lived :class:`Server` coalesces independent multiply / reduction
transactions from many callers into full simulation words, dispatches
them through the compiled netlists, and demultiplexes per-transaction
results — the paper's dual-lane "don't waste idle datapath" idea lifted
to the system level.

Entry points:

* :class:`Server` / :class:`Client` — threaded service + sync API;
* :class:`AsyncClient` — asyncio front end for massive in-flight counts;
* :class:`Transaction` / :class:`TxResult` / :class:`TxKind` — the wire
  vocabulary; :func:`reference_result` is the unbatched oracle;
* ``python -m repro.serve.loadgen`` — the seeded mixed-format load
  generator (see ``benchmarks/bench_serve.py`` / ``BENCH_serve.json``).
"""

from repro.errors import QueueFullError
from repro.serve.aio import AsyncClient
from repro.serve.engine import LaneEngine, lane_engine
from repro.serve.queueing import BatchingQueue
from repro.serve.server import Client, Server, Ticket
from repro.serve.transactions import (
    WORD_PATTERNS,
    Transaction,
    TxKind,
    TxResult,
    reference_result,
)

__all__ = [
    "AsyncClient", "BatchingQueue", "Client", "LaneEngine", "QueueFullError",
    "Server", "Ticket", "Transaction", "TxKind", "TxResult",
    "WORD_PATTERNS", "lane_engine", "reference_result",
]
