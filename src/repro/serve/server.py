"""The long-lived multiplier-as-a-service front end.

:class:`Server` coalesces independent transactions into full simulation
words and dispatches them through the compiled levelized kernels — the
paper's "idle capacity is wasted throughput" argument applied to the
bit-parallel simulator, whose per-run cost is dominated by the gate
count, not the pattern count.  Filling every pattern slot of a word
therefore buys ``word_patterns`` transactions for roughly the price of
one; ``word_patterns`` is a multiple of 64 (``W`` 64-pattern limbs per
packed net value, tuned per design by ``python -m repro tune width``),
so a wide-word server amortizes each kernel pass over several base
words.

Architecture::

    Client / AsyncClient              (submit -> Ticket)
         |
    Server.submit  ----->  BatchingQueue per lane  (bounded, backpressure)
                                   |
                           dispatcher thread       (flush on full/timeout)
                                   |
                           LaneEngine.execute      (one levelized run)
                                   |
                           Ticket resolution       (demuxed TxResult)

Batching is an occupancy optimization, never a semantics change: every
result is bit-identical to :func:`repro.serve.transactions.reference_result`
regardless of how transactions land in words.

Observability (``repro.obs``): counters ``serve.requests`` /
``serve.<lane>.requests`` / ``serve.flushes.<reason>``, histograms
``serve.batch.occupancy`` (patterns used per dispatched word),
``serve.batch.limbs`` (64-pattern limbs per dispatched word),
``serve.queue.depth``, ``serve.latency_ms`` / ``serve.<lane>.latency_ms``
and the per-lane stage histograms ``serve.<lane>.stage.enqueue_ms`` /
``.flush_ms`` / ``.demux_ms``, timer ``serve.flush.wall``, and
``serve:flush:<lane>`` / ``serve:run:<lane>`` trace spans.  Submit-side
spans are stitched to the flush span with ``serve:tx:<lane>`` flow
arrows.  ``telemetry_port=`` (or :meth:`Server.enable_telemetry`) opts
into the live HTTP endpoint — ``/metrics``, ``/metrics.json``,
``/series.json``, ``/healthz`` — plus a background sampler recording
per-lane queue depths, in-flight words and mean word occupancy.
"""

import threading
import time

from repro import obs
from repro.errors import FormatError, QueueFullError, SimulationError
from repro.serve.engine import failed_lanes, lane_engine, ready_lanes
from repro.serve.queueing import FLUSH_FULL, BatchingQueue, PendingTx
from repro.serve.transactions import (
    WORD_PATTERNS,
    Transaction,
    TxKind,
    validate_word_patterns,
)

#: /healthz flags a lane as saturated past this fraction of max_depth.
QUEUE_SATURATION_LIMIT = 0.9


class Ticket:
    """Completion handle for one submitted transaction.

    Tickets are allocated on the submit hot path, so they stay lean: the
    wakeup :class:`threading.Event` is created lazily, only when a caller
    actually blocks in :meth:`result` before resolution, and the
    resolve/wait handoff is guarded by one class-level lock (the critical
    sections are a few pointer assignments).
    """

    __slots__ = ("kind", "submitted_at", "completed_at", "_done",
                 "_result", "_error", "_callbacks", "_event")

    _lock = threading.Lock()

    def __init__(self, kind):
        self.kind = kind
        self.submitted_at = time.monotonic()
        self.completed_at = None
        self._done = False
        self._result = None
        self._error = None
        self._callbacks = None
        self._event = None

    def done(self):
        return self._done

    def result(self, timeout=None):
        """Block until resolved; returns the TxResult or raises."""
        if not self._done:
            with Ticket._lock:
                if not self._done and self._event is None:
                    self._event = threading.Event()
                event = self._event
            if event is not None and not event.wait(timeout):
                raise SimulationError(
                    f"transaction did not complete within {timeout}s "
                    "(is the server running? was drain()/flush() called?)")
        if self._error is not None:
            raise self._error
        return self._result

    @property
    def latency_s(self):
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    def add_done_callback(self, fn):
        """Run ``fn(ticket)`` on resolution (immediately if already done).

        Callbacks run on the resolving (dispatcher) thread — keep them
        cheap and thread-safe; the asyncio front end uses this to bridge
        into the event loop.
        """
        with Ticket._lock:
            if not self._done:
                if self._callbacks is None:
                    self._callbacks = []
                self._callbacks.append(fn)
                return
        fn(self)

    def _resolve(self, result=None, error=None):
        with Ticket._lock:
            self._result = result
            self._error = error
            self.completed_at = time.monotonic()
            self._done = True
            event = self._event
            callbacks, self._callbacks = self._callbacks, None
        if event is not None:
            event.set()
        for fn in callbacks or ():
            fn(self)


class Server:
    """Transaction-batching simulation server over the compiled kernels.

    Parameters
    ----------
    word_patterns:
        Pattern capacity of one simulation word — a multiple of 64;
        ``word_patterns // 64`` limbs are packed per net value.  The
        width auto-tuner (``python -m repro tune width``) measures the
        per-design sweet spot.
    max_batch:
        Patterns coalesced per simulation word (1..``word_patterns``,
        default the full word).  ``max_batch=1`` is the
        one-transaction-per-word baseline the benchmarks compare
        against.
    max_wait:
        Seconds a transaction may wait for its word to fill before a
        timeout flush dispatches a partial word (the occupancy/latency
        knob).
    max_depth:
        Per-lane bound on queued transactions; beyond it submits block
        (or raise :class:`~repro.errors.QueueFullError` when
        non-blocking / timed out).
    lanes:
        Iterable of :class:`TxKind` to serve (default: all five).
    autostart:
        Start the dispatcher thread immediately.  ``autostart=False``
        gives a deterministic manual server driven by :meth:`step` /
        :meth:`drain` — what the property tests use.
    telemetry_port:
        When not ``None``, start the HTTP telemetry endpoint on this
        port (0 = ephemeral; read ``server.telemetry.port``) together
        with the background gauge sampler.
    """

    def __init__(self, max_batch=None, max_wait=0.005,
                 max_depth=None, lanes=None, autostart=True,
                 telemetry_port=None, word_patterns=WORD_PATTERNS):
        self.word_patterns = validate_word_patterns(word_patterns)
        kinds = tuple(lanes) if lanes is not None else tuple(TxKind)
        self._queues = {
            kind: BatchingQueue(lane=kind.value, max_batch=max_batch,
                                max_wait=max_wait, max_depth=max_depth,
                                word_patterns=word_patterns)
            for kind in kinds
        }
        self._cond = threading.Condition()
        self._inflight = 0
        self._draining = False
        self._running = False
        self._thread = None
        self._telemetry = None
        obs.registry().annotate("serve.word_capacity", word_patterns)
        if autostart:
            self.start()
        if telemetry_port is not None:
            self.enable_telemetry(telemetry_port)

    # -- lifecycle ------------------------------------------------------

    def start(self):
        with self._cond:
            if self._running:
                return self
            self._running = True
            self._thread = threading.Thread(target=self._dispatch_loop,
                                            name="repro-serve-dispatcher",
                                            daemon=True)
            self._thread.start()
        return self

    def stop(self):
        """Stop the dispatcher; pending transactions stay queued."""
        with self._cond:
            self._running = False
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def close(self):
        """Drain everything in flight, then stop."""
        self.drain()
        self.stop()
        self.disable_telemetry()

    # -- telemetry ------------------------------------------------------

    @property
    def telemetry(self):
        """The :class:`~repro.obs.TelemetryServer`, or ``None``."""
        return self._telemetry

    def enable_telemetry(self, port=0):
        """Start the HTTP telemetry endpoint and the gauge sampler.

        Registers the server's health checks (dispatcher liveness,
        lane-engine readiness, queue saturation) and its time-series
        sources (per-lane queue depth, in-flight words, mean word
        occupancy), then binds ``127.0.0.1:<port>`` (0 = ephemeral).
        """
        if self._telemetry is not None:
            return self._telemetry
        from repro.obs.http import TelemetryServer

        telemetry = TelemetryServer(port=port)
        telemetry.add_health_check("dispatcher", self._dispatcher_health)
        telemetry.add_health_check("lanes", self._lane_health)
        telemetry.add_health_check("queues", self._queue_health)
        sampler = obs.sampler()
        for kind, queue in self._queues.items():
            sampler.add_source(f"serve.queue.depth.{kind.value}",
                               lambda q=queue: q.depth)
        sampler.add_source("serve.inflight.words", lambda: self._inflight)
        sampler.add_source("serve.occupancy.mean", self._mean_occupancy)
        sampler.start()
        self._telemetry = telemetry.start()
        return self._telemetry

    def disable_telemetry(self):
        """Stop the endpoint and unregister this server's sources."""
        if self._telemetry is None:
            return
        sampler = obs.sampler()
        for kind in self._queues:
            sampler.remove_source(f"serve.queue.depth.{kind.value}")
        sampler.remove_source("serve.inflight.words")
        sampler.remove_source("serve.occupancy.mean")
        if not sampler.sources:
            sampler.stop()
        self._telemetry.stop()
        self._telemetry = None

    def _dispatcher_health(self):
        alive = self._thread is not None and self._thread.is_alive()
        return {"ok": bool(self._running and alive),
                "running": self._running, "thread_alive": alive}

    def _lane_health(self):
        failed = failed_lanes()
        lanes = {k.value for k in self._queues}
        return {"ok": not (failed.keys() & lanes),
                "ready": sorted(lanes & ready_lanes()),
                "lanes": sorted(lanes),
                "failed": {k: v for k, v in failed.items() if k in lanes}}

    def _queue_health(self):
        with self._cond:
            depths = {k.value: q.depth for k, q in self._queues.items()}
            worst = max((q.depth / q.max_depth
                         for q in self._queues.values()), default=0.0)
        return {"ok": worst < QUEUE_SATURATION_LIMIT,
                "depths": depths, "saturation": round(worst, 4),
                "limit": QUEUE_SATURATION_LIMIT}

    def _mean_occupancy(self):
        agg = obs.registry().aggregate("serve.batch.occupancy")
        if not agg or not agg["count"]:
            return None
        return agg["total"] / agg["count"]

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.close()

    # -- submission -----------------------------------------------------

    def submit(self, tx, block=True, timeout=None) -> Ticket:
        """Queue one transaction; returns its :class:`Ticket`.

        Backpressure: when the lane is at ``max_depth``, ``block=True``
        waits (up to ``timeout`` seconds) for capacity and ``block=False``
        raises :class:`~repro.errors.QueueFullError` immediately.
        """
        if not isinstance(tx, Transaction):
            raise FormatError("submit takes a repro.serve.Transaction")
        queue = self._queues.get(tx.kind)
        if queue is None:
            raise FormatError(f"this server has no {tx.kind.value} lane")
        ticket = Ticket(tx.kind)
        flow_id = None
        if obs.is_tracing():
            # Arrow tail on the submitting span, head on the flush span.
            flow_id = obs.new_span_id()
            obs.flow_start(f"serve:tx:{tx.kind.value}", flow_id,
                           cat="serve")
        pending = PendingTx(tx=tx, ticket=ticket,
                            enqueued_at=ticket.submitted_at,
                            trace_ctx=tx.trace_ctx or obs.current_context(),
                            flow_id=flow_id)
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with self._cond:
            while not queue.push(pending):
                if not block:
                    obs.registry().inc("serve.rejected")
                    raise QueueFullError(
                        f"lane {tx.kind.value} is at max_depth="
                        f"{queue.max_depth} "
                        f"(word_patterns={queue.word_patterns})")
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    obs.registry().inc("serve.rejected")
                    raise QueueFullError(
                        f"lane {tx.kind.value} still full after "
                        f"{timeout}s "
                        f"(word_patterns={queue.word_patterns})")
                self._cond.wait(remaining)
            pending.enqueued_at = time.monotonic()
            depth = queue.depth
            # Wake the dispatcher only when this push changes what it
            # should do: the first pending transaction establishes a new
            # timeout-flush deadline, and hitting max_batch makes the
            # queue flush-ready.  Intermediate pushes can stay silent —
            # a busy dispatcher re-examines every queue after each word
            # anyway, and waking it per submission is pure GIL churn.
            # (Request counters are batched into the flush path for the
            # same reason.)
            if depth == 1 or depth == queue.max_batch or self._draining:
                self._cond.notify_all()
        return ticket

    # -- dispatch -------------------------------------------------------

    def _pick_ready(self, now, force=False):
        """The next queue to flush: full first, then expired timeouts."""
        full, expired = None, None
        for kind, queue in self._queues.items():
            reason = queue.flush_reason(now, draining=self._draining)
            if reason == FLUSH_FULL:
                if full is None or queue.depth > self._queues[full[0]].depth:
                    full = (kind, reason)
            elif reason is not None:
                deadline = queue.next_deadline()
                if expired is None or deadline < expired[2]:
                    expired = (kind, reason, deadline)
        if full is not None:
            return full
        if expired is not None:
            return expired[0], expired[1]
        if force:
            for kind, queue in self._queues.items():
                if queue.depth:
                    return kind, FLUSH_FULL if queue.depth >= \
                        queue.max_batch else "manual"
        return None

    def _next_deadline(self):
        deadlines = [q.next_deadline() for q in self._queues.values()]
        deadlines = [d for d in deadlines if d is not None]
        return min(deadlines) if deadlines else None

    def _dispatch_loop(self):
        while True:
            with self._cond:
                while True:
                    if not self._running:
                        return
                    choice = self._pick_ready(time.monotonic())
                    if choice is not None:
                        break
                    deadline = self._next_deadline()
                    wait = (None if deadline is None
                            else max(deadline - time.monotonic(), 0.0))
                    self._cond.wait(wait)
                kind, reason = choice
                batch = self._queues[kind].take()
                self._inflight += 1
                self._cond.notify_all()      # queue space freed
            try:
                self._execute(kind, batch, reason)
            finally:
                with self._cond:
                    self._inflight -= 1
                    self._cond.notify_all()

    def _execute(self, kind, batch, reason):
        reg = obs.registry()
        lane = kind.value
        reg.inc("serve.requests", len(batch))
        reg.inc(f"serve.{lane}.requests", len(batch))
        reg.inc(f"serve.flushes.{reason}")
        reg.observe_value("serve.queue.depth", self._queues[kind].depth)
        reg.observe_value("serve.batch.occupancy", len(batch))
        reg.observe_value(f"serve.{lane}.batch.occupancy", len(batch))
        # Limbs = 64-pattern words this batch packs into one kernel
        # pass; occupancy > 64 is only reachable with wide words.
        reg.observe_value("serve.batch.limbs",
                          (len(batch) + WORD_PATTERNS - 1) // WORD_PATTERNS)
        now = time.monotonic()
        reg.observe_values(f"serve.{lane}.stage.enqueue_ms",
                           [(now - p.enqueued_at) * 1e3 for p in batch])
        t0 = time.perf_counter()
        with obs.span(f"serve:flush:{lane}", cat="serve",
                      batch=len(batch), reason=reason):
            # Land the submit->flush arrows inside this slice so every
            # client span connects to the word that served it.
            for p in batch:
                if p.flow_id is not None:
                    obs.flow_finish(f"serve:tx:{lane}", p.flow_id,
                                    cat="serve")
            try:
                results = lane_engine(kind).execute(
                    [p.tx for p in batch])
            except Exception as exc:       # propagate to every caller
                for p in batch:
                    p.ticket._resolve(error=exc)
                return
        t1 = time.perf_counter()
        reg.observe("serve.flush.wall", t1 - t0)
        reg.observe_value(f"serve.{lane}.stage.flush_ms", (t1 - t0) * 1e3)
        latencies_ms = []
        for p, result in zip(batch, results):
            p.ticket._resolve(result=result)
            latency = p.ticket.latency_s
            if latency is not None:
                latencies_ms.append(latency * 1e3)
        # One lock trip per word, not three per transaction: at wide
        # words the per-sample registry cost would otherwise dominate
        # the (width-independent) demux path.
        reg.observe_values("serve.latency_ms", latencies_ms)
        reg.observe_values(f"serve.{lane}.latency_ms", latencies_ms)
        reg.observe_value(f"serve.{lane}.stage.demux_ms",
                          (time.perf_counter() - t1) * 1e3)

    # -- manual / draining control --------------------------------------

    def step(self):
        """Flush at most one pending word inline; returns patterns run.

        The deterministic manual-mode driver: with ``autostart=False``
        the test suite calls :meth:`step`/:meth:`drain` to control
        exactly when words dispatch.
        """
        with self._cond:
            choice = self._pick_ready(time.monotonic(), force=True)
            if choice is None:
                return 0
            kind, reason = choice
            batch = self._queues[kind].take()
            self._inflight += 1
            self._cond.notify_all()
        try:
            self._execute(kind, batch, reason)
        finally:
            with self._cond:
                self._inflight -= 1
                self._cond.notify_all()
        return len(batch)

    def flush(self):
        """Force every queued transaction to dispatch (alias of drain)."""
        self.drain()

    def drain(self, timeout=None):
        """Block until every queued transaction has been executed."""
        if self._thread is None:
            while self.step():
                pass
            return
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with self._cond:
            self._draining = True
            self._cond.notify_all()
            try:
                while (any(q.depth for q in self._queues.values())
                       or self._inflight):
                    remaining = (None if deadline is None
                                 else deadline - time.monotonic())
                    if remaining is not None and remaining <= 0:
                        raise SimulationError(
                            f"drain did not finish within {timeout}s")
                    self._cond.wait(remaining)
            finally:
                self._draining = False

    # -- introspection --------------------------------------------------

    @property
    def lanes(self):
        return tuple(self._queues)

    def queue_depths(self):
        with self._cond:
            return {kind.value: q.depth for kind, q in self._queues.items()}


class Client:
    """Synchronous convenience API over a :class:`Server`.

    The ``mul_*`` helpers mirror :class:`~repro.core.mfmult.MFMult`'s
    float-level conveniences; each one blocks on its ticket (a timeout
    flush or a concurrent full word releases it).
    """

    def __init__(self, server, timeout=30.0):
        self.server = server
        self.timeout = timeout

    def submit(self, tx, block=True, timeout=None):
        return self.server.submit(tx, block=block, timeout=timeout)

    def _call(self, tx):
        return self.submit(tx).result(timeout=self.timeout)

    def mul_int64(self, x, y):
        """64x64 -> 128-bit unsigned product."""
        return self._call(Transaction.int64(x, y)).int128

    def mul_fp64(self, x, y):
        """Multiply two Python floats through the fp64 lane."""
        from repro.bits.ieee754 import BINARY64, decode, encode

        tx = Transaction.fp64(encode(x, BINARY64), encode(y, BINARY64))
        return decode(self._call(tx).fp64_encoding, BINARY64)

    def mul_fp32_pair(self, pair_a, pair_b):
        """Two binary32 products in one dual-lane transaction."""
        from repro.bits.ieee754 import BINARY32, decode, encode

        (x0, x1), (y0, y1) = pair_a, pair_b
        tx = Transaction.fp32_pair(
            encode(x0, BINARY32), encode(y0, BINARY32),
            encode(x1, BINARY32), encode(y1, BINARY32))
        result = self._call(tx)
        return (decode(result.fp32_encoding(0), BINARY32),
                decode(result.fp32_encoding(1), BINARY32))

    def mul_fp16_quad(self, xs, ys):
        """Four binary16 products in one quad-lane transaction."""
        from repro.bits.ieee754 import BINARY16, decode, encode

        tx = Transaction.fp16_quad([encode(v, BINARY16) for v in xs],
                                   [encode(v, BINARY16) for v in ys])
        result = self._call(tx)
        return tuple(decode(result.fp16_encoding(k), BINARY16)
                     for k in range(4))

    def reduce64(self, encoding64):
        """Algorithm 1 probe: returns ``(reduced, encoding)``."""
        result = self._call(Transaction.reduce64(encoding64))
        return result.reduced, result.ph
