"""Seeded mixed-format load generator for the simulation service.

Models a population of independent callers hitting the server with
bursty arrivals: requests come in geometric bursts (back-to-back
submissions) separated by configurable gaps, drawn from a seeded RNG so
every run is reproducible.  The traffic mix spans all five lanes —
int64, fp64, dual fp32, quad fp16 multiplies and fp64->fp32 reduction
probes — with optional IEEE special values sprinkled in to exercise the
software-envelope path.

Every completed transaction is checked bit-for-bit against
:func:`repro.serve.transactions.reference_result` (``--no-verify`` to
skip), so a load run is also a correctness campaign.

CLI::

    python -m repro.serve.loadgen --requests 512 --seed 7 \
        --out run.json --metrics-json metrics.json --trace trace.json

``--baseline`` forces ``max_batch=1`` — the one-transaction-per-word
configuration ``benchmarks/bench_serve.py`` compares against.
``--word-patterns N`` (a multiple of 64, or ``auto`` for the tuner's
cached per-design choice) widens the simulation word to an ``N``-slot
superword; the run record carries a per-width occupancy sketch row so
wide-word sweeps can be compared run to run.
"""

import argparse
import json
import random
import sys
import time

from repro import obs
from repro.obs.quantile import QuantileSketch, diff_bucket_dicts
from repro.bits.ieee754 import BINARY16, BINARY32, BINARY64
from repro.eval.workloads import WorkloadGenerator
from repro.errors import FormatError
from repro.serve.server import Server
from repro.serve.transactions import (
    WORD_PATTERNS,
    Transaction,
    TxKind,
    reference_result,
)

#: Default traffic mix (fractions sum to 1).
DEFAULT_MIX = {
    "int64": 0.15,
    "fp64": 0.30,
    "fp32x2": 0.25,
    "fp16x4": 0.15,
    "reduce64": 0.15,
}


class TrafficGenerator:
    """Seeded transaction stream over a lane mix, with optional specials."""

    def __init__(self, seed=2017, mix=None, specials=0.0,
                 reducible_fraction=0.5):
        self._rng = random.Random(seed)
        self._wl = WorkloadGenerator(seed ^ 0x5EED)
        mix = dict(mix or DEFAULT_MIX)
        total = sum(mix.values())
        if total <= 0:
            raise FormatError("traffic mix must have positive weight")
        self._lanes = sorted(mix)
        self._weights = [mix[lane] / total for lane in self._lanes]
        self.specials = specials
        self.reducible_fraction = reducible_fraction

    def _special_encoding(self, fmt):
        kind = self._rng.choice(("zero", "inf", "nan", "subnormal"))
        sign = self._rng.getrandbits(1)
        if kind == "zero":
            return fmt.pack(sign, 0, 0)
        if kind == "inf":
            return fmt.pack(sign, fmt.exponent_mask, 0)
        if kind == "nan":
            return fmt.pack(sign, fmt.exponent_mask,
                            self._rng.randint(1, 2 ** fmt.trailing_significand_bits - 1))
        return fmt.pack(sign, 0,
                        self._rng.randint(1, 2 ** fmt.trailing_significand_bits - 1))

    def _fp_encoding(self, fmt):
        if self.specials and self._rng.random() < self.specials:
            return self._special_encoding(fmt)
        if fmt is BINARY64:
            return self._wl.normal_binary64()
        if fmt is BINARY32:
            return self._wl.normal_binary32()
        return BINARY16.pack(self._rng.getrandbits(1),
                             self._rng.randint(1, 30),
                             self._rng.getrandbits(10))

    def next_transaction(self):
        lane = self._rng.choices(self._lanes, weights=self._weights)[0]
        if lane == "int64":
            return Transaction.int64(self._wl.uint64(), self._wl.uint64())
        if lane == "fp64":
            return Transaction.fp64(self._fp_encoding(BINARY64),
                                    self._fp_encoding(BINARY64))
        if lane == "fp32x2":
            return Transaction.fp32_pair(
                self._fp_encoding(BINARY32), self._fp_encoding(BINARY32),
                self._fp_encoding(BINARY32), self._fp_encoding(BINARY32))
        if lane == "fp16x4":
            return Transaction.fp16_quad(
                [self._fp_encoding(BINARY16) for _ in range(4)],
                [self._fp_encoding(BINARY16) for _ in range(4)])
        if self._rng.random() < self.reducible_fraction:
            return Transaction.reduce64(self._wl.reducible_binary64())
        return Transaction.reduce64(self._wl.normal_binary64())

    def burst_size(self, mean):
        """Geometric burst length with the given mean (>= 1)."""
        if mean <= 1:
            return 1
        size = 1
        p = 1.0 / mean
        while self._rng.random() > p:
            size += 1
        return size


def _percentile(sorted_values, q):
    if not sorted_values:
        return None
    idx = min(len(sorted_values) - 1,
              max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


def warm_engines(mix=None):
    """Build and compile every lane engine outside the timed window.

    A long-lived server pays netlist construction once per process; the
    load generator models the steady state, so module build/compile cost
    must not be billed to the measured run.
    """
    from repro.serve.engine import lane_engine

    lanes = set(mix or DEFAULT_MIX)
    warmer = TrafficGenerator(seed=0, mix=mix)
    for _ in range(64):
        tx = warmer.next_transaction()
        if tx.lane in lanes:
            lane_engine(tx.kind).execute([tx])
            lanes.discard(tx.lane)
        if not lanes:
            break


def run_load(requests=256, seed=2017, baseline=False, max_batch=None,
             max_wait=0.02, max_depth=None, burst_mean=16, gap_ms=0.0,
             specials=0.02, mix=None, verify=True, warm=True,
             telemetry_port=None, before_stop=None,
             word_patterns=WORD_PATTERNS):
    """Drive one load run; returns the result record (JSON-ready).

    ``baseline=True`` is the one-transaction-per-word configuration:
    every word carries a single pattern, so the requests/sec it sustains
    is the unbatched floor the coalescing server is measured against.
    ``word_patterns`` (a multiple of 64) widens the simulation word;
    ``max_batch=None`` coalesces up to the full word.

    ``telemetry_port`` (0 = ephemeral) starts the server's HTTP
    telemetry endpoint for the run; ``before_stop(server)`` is called
    after the drain while the server — and its endpoint — is still
    live, so callers can scrape ``/metrics`` mid-flight.
    """
    traffic = TrafficGenerator(seed=seed, mix=mix, specials=specials)
    txs = [traffic.next_transaction() for _ in range(requests)]
    if warm:
        warm_engines(mix)

    reg = obs.registry()
    counters_before = dict(reg.snapshot()["counters"])
    # The registry is process-cumulative; diff the latency and
    # occupancy sketches' buckets around the run so the quantiles
    # describe *this* run even when several run_load() calls share a
    # process (bench_serve.py).
    agg_before = reg.aggregate("serve.latency_ms")
    buckets_before = (agg_before or {}).get("buckets", {})
    occ_before = reg.aggregate("serve.batch.occupancy")
    occ_buckets_before = (occ_before or {}).get("buckets", {})

    server = Server(max_batch=1 if baseline else max_batch,
                    max_wait=max_wait, max_depth=max_depth,
                    telemetry_port=telemetry_port,
                    word_patterns=word_patterns)
    tickets = []
    t0 = time.perf_counter()
    i = 0
    while i < len(txs):
        for _ in range(traffic.burst_size(burst_mean)):
            if i >= len(txs):
                break
            tickets.append(server.submit(txs[i]))
            i += 1
        if gap_ms:
            time.sleep(gap_ms / 1000.0)
    server.drain()
    wall_s = time.perf_counter() - t0
    if before_stop is not None:
        before_stop(server)
    server.stop()
    server.disable_telemetry()

    mismatches = 0
    latencies_ms = []
    per_lane = {}
    for tx, ticket in zip(txs, tickets):
        result = ticket.result(timeout=0)
        latencies_ms.append(ticket.latency_s * 1e3)
        per_lane[tx.lane] = per_lane.get(tx.lane, 0) + 1
        if verify and result != reference_result(tx):
            mismatches += 1
    latencies_ms.sort()

    # Run-scoped quantiles from the registry's log-bucket sketch: the
    # same machinery /metrics exposes, so the CLI summary and the HTTP
    # endpoint agree.  Exact min/max from the tickets clamp the bucket
    # midpoints.
    agg_after = reg.aggregate("serve.latency_ms") or {}
    sketch = QuantileSketch.from_dict(
        diff_bucket_dicts(agg_after.get("buckets", {}), buckets_before))
    lat_lo = latencies_ms[0] if latencies_ms else None
    lat_hi = latencies_ms[-1] if latencies_ms else None
    latency_ms = {
        "p50": sketch.quantile(0.50, lo=lat_lo, hi=lat_hi),
        "p95": sketch.quantile(0.95, lo=lat_lo, hi=lat_hi),
        "p99": sketch.quantile(0.99, lo=lat_lo, hi=lat_hi),
        "max": lat_hi,
    }
    if latency_ms["p50"] is None and latencies_ms:
        # Tracing/metrics disabled: fall back to the exact order stats.
        latency_ms = {
            "p50": _percentile(latencies_ms, 0.50),
            "p95": _percentile(latencies_ms, 0.95),
            "p99": _percentile(latencies_ms, 0.99),
            "max": lat_hi,
        }

    snap = reg.snapshot()
    counters = {
        name: value - counters_before.get(name, 0)
        for name, value in snap["counters"].items()
        if name.startswith("serve.")
    }
    flushes = {name.split(".", 2)[2]: value
               for name, value in counters.items()
               if name.startswith("serve.flushes.")}
    n_flushes = sum(flushes.values())

    # Run-scoped occupancy quantiles (patterns per dispatched word),
    # the per-width row the wide-word sweeps compare: occupancy above
    # 64 is only reachable when word_patterns > 64 actually coalesces.
    occ_after = reg.aggregate("serve.batch.occupancy") or {}
    occ_sketch = QuantileSketch.from_dict(
        diff_bucket_dicts(occ_after.get("buckets", {}),
                          occ_buckets_before))
    occupancy_row = {
        "word_patterns": word_patterns,
        "mean": (round(requests / n_flushes, 3) if n_flushes else None),
        "p50": occ_sketch.quantile(0.50, lo=1,
                                   hi=1 if baseline else word_patterns),
        "max": occ_sketch.quantile(1.00, lo=1,
                                   hi=1 if baseline else word_patterns),
    }
    record = {
        "requests": requests,
        "seed": seed,
        "mode": "baseline" if baseline else "coalesced",
        "max_batch": 1 if baseline else (max_batch if max_batch is not None
                                         else word_patterns),
        "max_wait_s": max_wait,
        "burst_mean": burst_mean,
        "gap_ms": gap_ms,
        "specials_fraction": specials,
        "wall_s": round(wall_s, 6),
        "requests_per_s": round(requests / wall_s, 3) if wall_s else None,
        "per_lane_requests": dict(sorted(per_lane.items())),
        "per_lane_requests_per_s": {
            lane: round(n / wall_s, 3) for lane, n in sorted(per_lane.items())
        } if wall_s else {},
        "flushes": dict(sorted(flushes.items())),
        "words_dispatched": n_flushes,
        "mean_occupancy": (round(requests / n_flushes, 3)
                           if n_flushes else None),
        "word_capacity": word_patterns,
        "word_limbs": word_patterns // WORD_PATTERNS,
        "occupancy": occupancy_row,
        "latency_ms": latency_ms,
        "latency_quantile_source": ("sketch" if sketch.count else "exact"),
        "software_lanes": counters.get("serve.software_lanes", 0),
        "verified": bool(verify),
        "mismatches": mismatches if verify else None,
    }
    return record


def _make_scraper(out_dir):
    """A ``before_stop`` hook scraping the live telemetry endpoint.

    Fetches ``/metrics`` (Prometheus text), ``/metrics.json`` and
    ``/healthz`` over real HTTP while the burst's server still owns its
    queues, and writes each body into ``out_dir`` — the artifact the CI
    telemetry-smoke job asserts against.
    """
    import os
    import urllib.error
    import urllib.request

    def scrape(server):
        telemetry = server.telemetry
        if telemetry is None:
            return
        # A short burst can finish inside the sampling interval; force
        # one tick so the queue-depth/occupancy gauges and ring buffers
        # are populated in the artifact.
        obs.sampler().sample_once()
        os.makedirs(out_dir, exist_ok=True)
        for route, fname in (("/metrics", "metrics.txt"),
                             ("/metrics.json", "metrics.json"),
                             ("/series.json", "series.json"),
                             ("/healthz", "healthz.json")):
            try:
                with urllib.request.urlopen(telemetry.url + route,
                                            timeout=10) as resp:
                    body = resp.read()
            except urllib.error.HTTPError as exc:   # 503 still has a body
                body = exc.read()
            with open(os.path.join(out_dir, fname), "wb") as fh:
                fh.write(body)
        print(f"scraped telemetry from {telemetry.url} into {out_dir}",
              file=sys.stderr)

    return scrape


def _resolve_word_patterns(value):
    """Parse ``--word-patterns``: an int, ``"auto"`` or ``None`` (64).

    ``auto`` reads the width the tuner cached for the serving netlist
    (the ``mf`` unit backs every multiply lane) and never measures, so
    cold starts stay fast and deterministic.
    """
    if value is None:
        return WORD_PATTERNS
    if isinstance(value, str) and value.strip().lower() == "auto":
        from repro.eval.tune import tuned_word_patterns

        return tuned_word_patterns("mf", default=WORD_PATTERNS)
    return int(value)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="seeded mixed-format load generator for repro.serve")
    parser.add_argument("--requests", type=int, default=256)
    parser.add_argument("--seed", type=int, default=2017)
    parser.add_argument("--baseline", action="store_true",
                        help="one-transaction-per-word mode (max_batch=1)")
    parser.add_argument("--word-patterns", default=None, metavar="N|auto",
                        help="simulation word capacity, a multiple of 64 "
                             "(default 64); 'auto' reads the per-design "
                             "width cached by 'python -m repro tune width'")
    parser.add_argument("--max-batch", type=int, default=None,
                        help="patterns coalesced per word (default: the "
                             "full word)")
    parser.add_argument("--max-wait", type=float, default=0.02,
                        metavar="SECONDS")
    parser.add_argument("--max-depth", type=int, default=None,
                        help="per-lane queue bound (default: scales with "
                             "--word-patterns, at least 4096)")
    parser.add_argument("--burst", type=int, default=16, metavar="MEAN",
                        help="mean geometric burst size (arrivals)")
    parser.add_argument("--gap-ms", type=float, default=0.0,
                        help="pause between bursts (0 = saturating load)")
    parser.add_argument("--specials", type=float, default=0.02,
                        help="fraction of FP operands drawn from "
                             "zero/subnormal/inf/NaN")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip the per-transaction reference check")
    parser.add_argument("--slo-p99-ms", type=float, default=None,
                        metavar="MS",
                        help="exit nonzero when the sketch p99 latency "
                             "exceeds this budget (latency is always "
                             "per-transaction, so the budget means the "
                             "same thing at any --word-patterns; size it "
                             "vs --max-wait, which bounds the fill time "
                             "of a partial word)")
    parser.add_argument("--telemetry-port", type=int, default=None,
                        metavar="PORT",
                        help="serve /metrics and /healthz during the run "
                             "(0 = ephemeral port)")
    parser.add_argument("--scrape-dir", metavar="DIR", default=None,
                        help="scrape /metrics, /metrics.json and /healthz "
                             "into DIR while the burst's server is still "
                             "live (implies --telemetry-port 0)")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="write the run record as JSON")
    parser.add_argument("--json", action="store_true",
                        help="print the run record as JSON to stdout")
    parser.add_argument("--metrics-json", metavar="PATH", default=None,
                        help="write the repro.obs/1 metrics snapshot")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="record Chrome trace-event spans")
    args = parser.parse_args(argv)

    telemetry_port = args.telemetry_port
    before_stop = None
    if args.scrape_dir is not None:
        if telemetry_port is None:
            telemetry_port = 0
        before_stop = _make_scraper(args.scrape_dir)

    word_patterns = _resolve_word_patterns(args.word_patterns)
    if args.trace:
        obs.start_trace()
    record = run_load(
        requests=args.requests, seed=args.seed, baseline=args.baseline,
        max_batch=args.max_batch, max_wait=args.max_wait,
        max_depth=args.max_depth, burst_mean=args.burst, gap_ms=args.gap_ms,
        specials=args.specials, verify=not args.no_verify,
        telemetry_port=telemetry_port, before_stop=before_stop,
        word_patterns=word_patterns)
    if args.trace:
        obs.write_trace(args.trace)
    if args.metrics_json:
        with open(args.metrics_json, "w") as fh:
            json.dump(obs.registry().snapshot(), fh, indent=2)
            fh.write("\n")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")

    if args.json:
        print(json.dumps(record, indent=2))
    else:
        lat = record["latency_ms"]
        print(f"{record['mode']}: {record['requests']} requests in "
              f"{record['wall_s']:.3f}s -> "
              f"{record['requests_per_s']:.0f} req/s")
        print(f"occupancy {record['mean_occupancy']}/"
              f"{record['word_capacity']} patterns/word over "
              f"{record['words_dispatched']} words "
              f"({record['word_limbs']} limb"
              f"{'s' if record['word_limbs'] != 1 else ''}); flushes "
              f"{record['flushes']}")
        occ = record["occupancy"]
        if occ["p50"] is not None:
            print(f"  W={record['word_limbs']:<3} occupancy sketch: "
                  f"p50={occ['p50']:.0f} max={occ['max']:.0f}")
        for lane, rps in record["per_lane_requests_per_s"].items():
            print(f"  {lane:<9} {record['per_lane_requests'][lane]:>6} req"
                  f"   {rps:>10.1f} req/s")
        print(f"latency ms ({record['latency_quantile_source']}): "
              f"p50={lat['p50']:.2f} p95={lat['p95']:.2f} "
              f"p99={lat['p99']:.2f} max={lat['max']:.2f}")
        if record["verified"]:
            print(f"verified bit-identical vs reference: "
                  f"{record['mismatches']} mismatches")
    status = 0 if (not record["verified"] or record["mismatches"] == 0) else 1
    if args.slo_p99_ms is not None:
        p99 = record["latency_ms"]["p99"]
        if p99 is None or p99 > args.slo_p99_ms:
            print(f"SLO BREACH: p99 {p99 if p99 is None else round(p99, 3)}"
                  f" ms > budget {args.slo_p99_ms} ms", file=sys.stderr)
            status = status or 2
        else:
            print(f"SLO ok: p99 {p99:.3f} ms <= {args.slo_p99_ms} ms",
                  file=sys.stderr)
    return status


if __name__ == "__main__":
    sys.exit(main())
