"""Per-lane execution engines: pack a batch, run the netlist, demux.

One :class:`LaneEngine` per transaction kind owns the compiled module
serving that lane and turns a list of transactions into a list of
:class:`~repro.serve.transactions.TxResult`:

* multiply lanes drive the 3-stage multi-format unit through
  :class:`~repro.core.pipeline_unit.MFMultUnit` (``int64``/``fp64``/
  ``fp32x2`` share the base ``mf`` netlist; ``fp16x4`` uses the quad
  build) — every transaction becomes one pattern of the stimulus word;
* the ``reduce64`` lane drives the standalone Fig. 6 reducer
  (combinational, so no latency padding).

Batch size is unbounded here: the packed net values are Python big
ints, so a batch wider than 64 patterns simply packs into a multi-limb
superword (``ceil(len(txs)/64)`` limbs per net) and runs in the same
single kernel pass — including the per-limb fp16x4 sub-lane split,
which the software-envelope patcher indexes per transaction.  The
*policy* width lives in the server/queue (``word_patterns``).

Modules come from :func:`repro.eval.experiments.cached_module` — the
two-level (in-process + on-disk pickle) module cache — and are then
specialized once by :mod:`repro.hdl.sim.compile`'s levelized codegen,
so a long-lived server pays netlist construction at most once per
process lifetime and usually never.

FP lanes whose operands are special (zero/subnormal/inf/NaN) are
outside the silicon envelope: the engine substitutes 1.0 into those
lanes of the stimulus word (the netlist only ever sees normalized
operands) and splices in the IEEE formatter-wrapper result computed in
software — the same split the functional model performs internally.
"""

import functools
from typing import List

from repro import obs
from repro.bits.utils import mask
from repro.core.pipeline_unit import MFMultUnit
from repro.core.formats import OperandBundle
from repro.errors import FormatError
from repro.hdl.sim.levelized import LevelizedSimulator
from repro.serve.transactions import (
    LANE_GEOMETRY,
    MFFORMAT_OF,
    ONE_ENCODING,
    Transaction,
    TxKind,
    TxResult,
    software_lane_result,
)

#: Module-cache key backing each lane.
MODULE_OF = {
    TxKind.INT64: "mf",
    TxKind.FP64: "mf",
    TxKind.FP32X2: "mf",
    TxKind.FP16X4: "mf_quad",
    TxKind.REDUCE64: "reducer",
}


@functools.lru_cache(maxsize=None)
def _shared_unit(module_key):
    """One batch driver per netlist, shared by every lane and server."""
    from repro.eval.experiments import cached_module

    return MFMultUnit(module=cached_module(module_key))


@functools.lru_cache(maxsize=None)
def _shared_reducer_sim():
    from repro.eval.experiments import cached_module

    module = cached_module("reducer")
    return module, LevelizedSimulator(module)


#: Lanes whose engine finished building in this process, and the repr of
#: the failure for any lane whose build raised — what /healthz reports.
_READY_LANES = set()
_FAILED_LANES = {}


@functools.lru_cache(maxsize=None)
def lane_engine(kind):
    """The process-wide engine for ``kind`` (compile-once, share-everywhere)."""
    try:
        engine = LaneEngine(kind)
    except Exception as exc:
        _FAILED_LANES[kind.value] = repr(exc)
        raise
    _READY_LANES.add(kind.value)
    _FAILED_LANES.pop(kind.value, None)
    return engine


def ready_lanes():
    """Lane names whose engines are built (readiness is lazy: a lane
    becomes ready on its first batch — or via :func:`warm_lanes`)."""
    return frozenset(_READY_LANES)


def failed_lanes():
    """``{lane: error-repr}`` for engines whose build raised."""
    return dict(_FAILED_LANES)


def warm_lanes(kinds):
    """Eagerly build the engines for ``kinds``; returns the ready set."""
    for kind in kinds:
        try:
            lane_engine(kind)
        except Exception:
            pass                   # recorded in failed_lanes()
    return ready_lanes()


class LaneEngine:
    """Executes transaction batches for one lane on its compiled module."""

    def __init__(self, kind):
        self.kind = kind
        if kind is TxKind.REDUCE64:
            self._module, self._sim = _shared_reducer_sim()
            self._unit = None
        else:
            self._unit = _shared_unit(MODULE_OF[kind])
            self._module = self._unit.module

    # -- execution ------------------------------------------------------

    def execute(self, txs) -> List[TxResult]:
        """Run one coalesced batch; returns per-transaction results."""
        if not txs:
            return []
        for tx in txs:
            if tx.kind is not self.kind:
                raise FormatError(
                    f"{tx.kind} transaction routed to the {self.kind} lane")
        with obs.span(f"serve:run:{self.kind.value}", cat="serve",
                      patterns=len(txs), limbs=(len(txs) + 63) // 64,
                      module=self._module.name):
            if self.kind is TxKind.REDUCE64:
                return self._execute_reduce(txs)
            return self._execute_multiply(txs)

    def _execute_reduce(self, txs):
        run = self._sim.run({"d": [tx.x for tx in txs]}, len(txs))
        out_words = run.bus_words(self._module.outputs["out"])
        reduced_words = run.bus_words(self._module.outputs["reduced"])
        return [TxResult(kind=TxKind.REDUCE64, ph=out_words[t],
                         reduced=bool(reduced_words[t]))
                for t in range(len(txs))]

    def _execute_multiply(self, txs):
        fmt = MFFORMAT_OF[self.kind]
        geometry = LANE_GEOMETRY.get(self.kind)
        ops = []
        patches = []                       # (tx index, lane, encoding)
        if geometry is None:               # int64: no special envelope
            int64_bundle = OperandBundle.int64
            ops = [(int64_bundle(tx.x, tx.y), fmt) for tx in txs]
        else:
            # Hot per-transaction loop: the format attributes and the
            # normalized-exponent test are hoisted/inlined — at wide
            # words this demux, not the kernel, bounds throughput.
            ieee, lanes = geometry
            width = 64 // lanes
            one = ONE_ENCODING[ieee]
            tbits = ieee.trailing_significand_bits
            emask = ieee.exponent_mask
            wmask = mask(width)
            shifts = [width * k for k in range(lanes)]
            for i, tx in enumerate(txs):
                xw, yw = tx.x, tx.y
                for sh in shifts:
                    xe = (xw >> sh) & wmask
                    ye = (yw >> sh) & wmask
                    ex = (xe >> tbits) & emask
                    ey = (ye >> tbits) & emask
                    if 0 < ex < emask and 0 < ey < emask:
                        continue
                    patches.append((i, sh,
                                    software_lane_result(self.kind, xe,
                                                         ye)))
                    lane_mask = wmask << sh
                    xw = (xw & ~lane_mask) | (one << sh)
                    yw = (yw & ~lane_mask) | (one << sh)
                ops.append((OperandBundle(xw, yw), fmt))
        if patches:
            obs.registry().inc("serve.software_lanes", len(patches))

        unit_results = self._unit.run_batch(ops)
        ph_words = [r.ph for r in unit_results]
        for i, shift, enc in patches:
            lanes = geometry[1]
            width = 64 // lanes
            lane_mask = mask(width) << shift
            ph_words[i] = (ph_words[i] & ~lane_mask) | (enc << shift)
        if self.kind is TxKind.INT64:
            return [TxResult(kind=self.kind, ph=ph, pl=r.pl)
                    for ph, r in zip(ph_words, unit_results)]
        return [TxResult(kind=self.kind, ph=ph) for ph in ph_words]
