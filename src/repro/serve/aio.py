"""Asyncio front end: thousands of in-flight transactions, one word.

:class:`AsyncClient` bridges the threaded :class:`~repro.serve.server.Server`
into an event loop.  Each ``await submit(...)`` parks an
``asyncio.Future`` that the dispatcher thread resolves through
``Ticket.add_done_callback`` -> ``loop.call_soon_threadsafe`` — no
polling, no thread per request.  Backpressure surfaces as cooperative
waiting: a full lane makes the coroutine ``await`` and retry instead of
blocking the loop, so a load generator can keep tens of thousands of
logical requests in flight over a bounded queue.
"""

import asyncio

from repro.errors import QueueFullError
from repro.serve.transactions import Transaction

#: Initial retry delay when a lane is full (doubles up to the cap).
_BACKOFF_S = 0.001
_BACKOFF_CAP_S = 0.05


class AsyncClient:
    """Awaitable submission API over a running :class:`Server`."""

    def __init__(self, server):
        self.server = server

    async def submit(self, tx):
        """Submit one transaction; returns its TxResult when resolved."""
        loop = asyncio.get_running_loop()
        backoff = _BACKOFF_S
        while True:
            try:
                ticket = self.server.submit(tx, block=False)
                break
            except QueueFullError:
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, _BACKOFF_CAP_S)
        future = loop.create_future()

        def _bridge(t):
            try:
                result = t.result(timeout=0)
            except Exception as exc:        # noqa: BLE001 - forwarded
                loop.call_soon_threadsafe(_set_exception, future, exc)
            else:
                loop.call_soon_threadsafe(_set_result, future, result)

        ticket.add_done_callback(_bridge)
        return await future

    async def mul_int64(self, x, y):
        result = await self.submit(Transaction.int64(x, y))
        return result.int128

    async def mul_fp64(self, x, y):
        from repro.bits.ieee754 import BINARY64, decode, encode

        result = await self.submit(
            Transaction.fp64(encode(x, BINARY64), encode(y, BINARY64)))
        return decode(result.fp64_encoding, BINARY64)

    async def reduce64(self, encoding64):
        result = await self.submit(Transaction.reduce64(encoding64))
        return result.reduced, result.ph

    async def gather(self, txs):
        """Submit many transactions concurrently; results in order."""
        return await asyncio.gather(*(self.submit(tx) for tx in txs))


def _set_result(future, result):
    if not future.cancelled():
        future.set_result(result)


def _set_exception(future, exc):
    if not future.cancelled():
        future.set_exception(exc)
