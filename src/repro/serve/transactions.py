"""Transaction vocabulary of the simulation service.

A *transaction* is one independent operation a client wants from the
multi-format unit: a 64-bit integer multiply, a binary64 multiply, a
dual-binary32 issue, a quad-binary16 issue, or a binary64 -> binary32
reduction probe.  Each transaction occupies exactly **one pattern slot**
of a bit-parallel simulation word (:mod:`repro.hdl.sim.levelized` packs
up to :data:`WORD_PATTERNS` patterns per run), which is what the
batching server coalesces.

Semantics contract (what "bit-identical" means for the service):

* lanes whose FP operands are all **normalized** are computed by the
  gate-level unit, which mirrors ``MFMult(mode="paper")`` bit for bit
  (the silicon envelope — exponents wrap, no special values);
* lanes with a zero / subnormal / infinity / NaN operand are outside
  the silicon envelope and are computed by the IEEE formatter wrapper,
  ``MFMult(mode="full", rounding=INJECTION)`` — exactly the split
  :class:`~repro.core.mfmult.MFMult` itself performs internally;
* reduction transactions follow Algorithm 1 (:func:`reduce_binary64`)
  for *any* input encoding — the Fig. 6 logic is total.

:func:`reference_result` is that contract executed one transaction at a
time through the functional model; the service must (and the property
tests check it does) return the same bits for any batching schedule.
"""

import enum
import functools
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.bits.ieee754 import BINARY16, BINARY32, BINARY64
from repro.bits.utils import mask
from repro.core.formats import MFFormat, OperandBundle, RoundingMode
from repro.core.mfmult import MFMult
from repro.core.reduction import reduce_binary64
from repro.errors import FormatError

#: Pattern capacity of one base simulation word (one 64-bit limb of a
#: packed net value).  Lanes may batch wider **superwords** of
#: ``W * WORD_PATTERNS`` patterns (``W`` limbs per net); every
#: configured width must be a multiple of this base.
WORD_PATTERNS = 64


def validate_word_patterns(n):
    """Validate a superword capacity: a positive multiple of 64.

    Returns ``n`` unchanged.  A width of ``n`` patterns packs
    ``n // WORD_PATTERNS`` 64-bit limbs per net; fractional limbs would
    desynchronize the fp16x4 sub-lane demux, so they are rejected.
    """
    if not isinstance(n, int) or isinstance(n, bool) \
            or n < WORD_PATTERNS or n % WORD_PATTERNS:
        raise FormatError(
            f"word_patterns must be a positive multiple of "
            f"{WORD_PATTERNS}, got {n!r}")
    return n


class TxKind(enum.Enum):
    """The service's lanes: one queue (and netlist path) per kind."""

    INT64 = "int64"
    FP64 = "fp64"
    FP32X2 = "fp32x2"
    FP16X4 = "fp16x4"
    REDUCE64 = "reduce64"


#: Multiply kinds -> the unit's operating format.
MFFORMAT_OF = {
    TxKind.INT64: MFFormat.INT64,
    TxKind.FP64: MFFormat.FP64,
    TxKind.FP32X2: MFFormat.FP32X2,
    TxKind.FP16X4: MFFormat.FP16X4,
}

#: FP multiply kinds -> (IEEE format, lanes per 64-bit word).
LANE_GEOMETRY = {
    TxKind.FP64: (BINARY64, 1),
    TxKind.FP32X2: (BINARY32, 2),
    TxKind.FP16X4: (BINARY16, 4),
}

#: The encoding of 1.0 per IEEE format — the neutral operand substituted
#: into special lanes so the netlist only ever sees normalized values.
ONE_ENCODING = {
    BINARY64: BINARY64.bias << BINARY64.trailing_significand_bits,
    BINARY32: BINARY32.bias << BINARY32.trailing_significand_bits,
    BINARY16: BINARY16.bias << BINARY16.trailing_significand_bits,
}


@dataclass(frozen=True)
class Transaction:
    """One independent operation, packed as the unit's 64-bit words."""

    kind: TxKind
    x: int
    y: int = 0
    #: Optional trace context of the submitting span (``{"trace", "span"}``
    #: from :func:`repro.obs.current_context`) — lets a client on another
    #: thread or process stitch its span to the server's flush span.
    #: Ignored by equality/hashing: the same operation is the same
    #: transaction no matter who asked for it.
    trace_ctx: Optional[dict] = field(default=None, compare=False,
                                      repr=False)

    def with_trace(self, ctx=None):
        """A copy carrying trace context (current span if ``ctx`` is None)."""
        if ctx is None:
            from repro import obs

            ctx = obs.current_context()
        return replace(self, trace_ctx=ctx)

    def __post_init__(self):
        for name, v in (("x", self.x), ("y", self.y)):
            if v < 0 or v > mask(64):
                raise FormatError(
                    f"transaction operand {name}={v:#x} is not a 64-bit word")

    # -- constructors ---------------------------------------------------

    @classmethod
    def int64(cls, x, y):
        return cls(TxKind.INT64, x, y)

    @classmethod
    def fp64(cls, x_encoding, y_encoding):
        return cls(TxKind.FP64, x_encoding, y_encoding)

    @classmethod
    def fp32_pair(cls, x0, y0, x1, y1):
        b = OperandBundle.fp32_pair(x0, y0, x1, y1)
        return cls(TxKind.FP32X2, b.x, b.y)

    @classmethod
    def fp16_quad(cls, xs, ys):
        b = OperandBundle.fp16_quad(list(xs), list(ys))
        return cls(TxKind.FP16X4, b.x, b.y)

    @classmethod
    def reduce64(cls, encoding64):
        return cls(TxKind.REDUCE64, encoding64, 0)

    @property
    def lane(self):
        """The lane (queue) name this transaction is routed to."""
        return self.kind.value


@dataclass(frozen=True)
class TxResult:
    """Demultiplexed result of one transaction.

    ``ph``/``pl`` mirror :class:`~repro.core.formats.ResultBundle`'s
    output ports for multiply kinds.  For ``REDUCE64``, ``ph`` carries
    the binary32 encoding when ``reduced`` (else the original binary64)
    and ``pl`` is 0 — the Fig. 6 module's ``out`` port.
    """

    kind: TxKind
    ph: int
    pl: int = 0
    reduced: Optional[bool] = None

    @property
    def int128(self):
        if self.kind is not TxKind.INT64:
            raise FormatError(f"int128 undefined for {self.kind}")
        return (self.ph << 64) | self.pl

    @property
    def fp64_encoding(self):
        if self.kind is not TxKind.FP64:
            raise FormatError(f"fp64_encoding undefined for {self.kind}")
        return self.ph

    def fp32_encoding(self, lane):
        if self.kind is not TxKind.FP32X2:
            raise FormatError(f"fp32_encoding undefined for {self.kind}")
        return (self.ph >> (32 * lane)) & mask(32)

    def fp16_encoding(self, lane):
        if self.kind is not TxKind.FP16X4:
            raise FormatError(f"fp16_encoding undefined for {self.kind}")
        return (self.ph >> (16 * lane)) & mask(16)


def is_normalized(encoding, fmt):
    """True when ``encoding`` is a normalized value of IEEE ``fmt``."""
    e = (encoding >> fmt.trailing_significand_bits) & fmt.exponent_mask
    return 0 < e < fmt.exponent_mask


def lane_pairs(tx) -> Tuple[Tuple[int, int], ...]:
    """The per-lane operand encoding pairs of an FP multiply transaction."""
    fmt, lanes = LANE_GEOMETRY[tx.kind]
    width = 64 // lanes
    return tuple(((tx.x >> (width * k)) & mask(width),
                  (tx.y >> (width * k)) & mask(width))
                 for k in range(lanes))


def special_lanes(tx):
    """Indices of FP lanes whose operands leave the silicon envelope."""
    if tx.kind not in LANE_GEOMETRY:
        return ()
    fmt, _lanes = LANE_GEOMETRY[tx.kind]
    return tuple(k for k, (xe, ye) in enumerate(lane_pairs(tx))
                 if not (is_normalized(xe, fmt) and is_normalized(ye, fmt)))


@functools.lru_cache(maxsize=1)
def _paper_model():
    return MFMult(mode="paper", rounding=RoundingMode.INJECTION,
                  fidelity="fast")


@functools.lru_cache(maxsize=1)
def _full_model():
    return MFMult(mode="full", rounding=RoundingMode.INJECTION,
                  fidelity="fast")


def software_lane_result(kind, xe, ye):
    """One FP lane computed by the IEEE formatter wrapper (full mode).

    Used for lanes with special operands; the other lanes of the bundle
    are padded with 1.0 so the result is read back from lane 0.
    """
    full = _full_model()
    if kind is TxKind.FP64:
        return full.multiply(OperandBundle.fp64(xe, ye), MFFormat.FP64).ph
    if kind is TxKind.FP32X2:
        one = ONE_ENCODING[BINARY32]
        rb = full.multiply(OperandBundle.fp32_pair(xe, ye, one, one),
                           MFFormat.FP32X2)
        return rb.fp32_encoding(0)
    if kind is TxKind.FP16X4:
        one = ONE_ENCODING[BINARY16]
        rb = full.multiply(
            OperandBundle.fp16_quad([xe, one, one, one],
                                    [ye, one, one, one]),
            MFFormat.FP16X4)
        return rb.fp16_encoding(0)
    raise FormatError(f"no software lane path for {kind}")


def _paper_lane_result(kind, xe, ye):
    """One normalized FP lane through the paper-mode functional model."""
    paper = _paper_model()
    if kind is TxKind.FP64:
        return paper.multiply(OperandBundle.fp64(xe, ye), MFFormat.FP64).ph
    if kind is TxKind.FP32X2:
        one = ONE_ENCODING[BINARY32]
        rb = paper.multiply(OperandBundle.fp32_pair(xe, ye, one, one),
                            MFFormat.FP32X2)
        return rb.fp32_encoding(0)
    one = ONE_ENCODING[BINARY16]
    rb = paper.multiply(OperandBundle.fp16_quad([xe, one, one, one],
                                                [ye, one, one, one]),
                        MFFormat.FP16X4)
    return rb.fp16_encoding(0)


def reference_result(tx):
    """The direct, one-transaction-at-a-time result (no batching).

    This is the service's correctness oracle: paper-mode ``MFMult`` for
    normalized lanes, full-mode ``MFMult`` for special lanes,
    :func:`reduce_binary64` for reductions.
    """
    if tx.kind is TxKind.REDUCE64:
        decision = reduce_binary64(tx.x)
        return TxResult(kind=tx.kind,
                        ph=decision.encoding32 if decision.reduced else tx.x,
                        reduced=decision.reduced)
    if tx.kind is TxKind.INT64:
        rb = _paper_model().multiply(OperandBundle.int64(tx.x, tx.y),
                                     MFFormat.INT64)
        return TxResult(kind=tx.kind, ph=rb.ph, pl=rb.pl)

    fmt, lanes = LANE_GEOMETRY[tx.kind]
    width = 64 // lanes
    specials = set(special_lanes(tx))
    if not specials:
        rb = _paper_model().multiply(OperandBundle(tx.x, tx.y),
                                     MFFORMAT_OF[tx.kind])
        return TxResult(kind=tx.kind, ph=rb.ph)
    ph = 0
    for k, (xe, ye) in enumerate(lane_pairs(tx)):
        if k in specials:
            enc = software_lane_result(tx.kind, xe, ye)
        else:
            enc = _paper_lane_result(tx.kind, xe, ye)
        ph |= enc << (width * k)
    return TxResult(kind=tx.kind, ph=ph)
