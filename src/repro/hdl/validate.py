"""Netlist sanity checks.

Run :func:`validate` on every generated circuit before simulating it;
the generators in :mod:`repro.circuits` are tested to produce clean
netlists, and the checks here catch generator bugs (dangling nets,
combinational cycles, double drivers) at build time instead of as
mysterious simulation results.
"""

from repro.errors import NetlistError
from repro.hdl.sim.toposort import topo_node_order


def validate(module):
    """Raise :class:`NetlistError` on any structural problem.

    Checks: every net driven exactly once; no combinational cycles
    (registers break cycles only in real feedback designs — the units
    here are feed-forward, so we require full acyclicity including the
    d->q pseudo-edges); all output/register nets resolvable.
    """
    _check_single_drivers(module)
    _check_acyclic(module)
    return module


def _check_single_drivers(module):
    driven = {}
    for idx, gate in enumerate(module.gates):
        if gate.output in driven:
            raise NetlistError(
                f"net {gate.output} driven by gates {driven[gate.output]} and {idx}"
            )
        driven[gate.output] = idx
    for reg in module.registers:
        if reg.q in driven:
            raise NetlistError(f"register q net {reg.q} also driven by a gate")
        driven[reg.q] = f"reg:{reg.q}"
    for name, bus in module.inputs.items():
        for net in bus:
            if net in driven:
                raise NetlistError(f"input {name} net {net} also driven")
            driven[net] = f"input:{name}"
    for net in module.constants:
        if net in driven:
            raise NetlistError(f"constant net {net} also driven")
        driven[net] = "const"
    for net in range(module.n_nets):
        if net not in driven:
            raise NetlistError(f"net {net} has no driver")


def _check_acyclic(module):
    # Kahn's algorithm over gate+register nodes (the shared copy).
    topo_node_order(module, error=NetlistError)
