"""Fanout buffering.

The delay model is linear in the driven load, so an unbuffered net with
dozens of consumers (a recoder one-hot line feeding a whole PP row, the
multiples buses of Fig. 1) would show absurd delays that no synthesized
netlist exhibits — real flows insert buffer trees.  :func:`insert_buffers`
does the same: any net whose driven load exceeds ``max_load`` gets a
layer of BUFs, its consumers are distributed across them, and the pass
repeats until every net (including the new buffer nets) is within
budget.  Constant nets never switch and are exempt.

The pass mutates the module in place (gates are rewired, buffers are
appended with the driver's block tag so per-block area/power stay
meaningful) and preserves functionality exactly — co-simulation tests
cover this.
"""

import math

from repro.errors import NetlistError
from repro.hdl.module import Gate


def insert_buffers(module, library, max_load=8.0):
    """Buffer every net whose driven load exceeds ``max_load``.

    Returns the module (for chaining) with the number of buffers added
    available via ``module.stats()``.
    """
    if max_load <= library.register.input_cap:
        raise NetlistError("max_load smaller than a single register pin")
    const_nets = set(module.constants)
    buf_cap = library.spec("BUF").input_cap

    # consumer lists: (kind, index, pin) where kind is "gate" or "reg".
    # Only gate/register pins are splittable: primary-output pad load is
    # fixed at the net (a real flow upsizes the driver for pads).
    changed = True
    passes = 0
    while changed:
        changed = False
        passes += 1
        if passes > 64:
            raise NetlistError("buffer insertion failed to converge")
        consumers = {}
        load = [0.0] * module.n_nets
        for gidx, gate in enumerate(module.gates):
            cap = library.spec(gate.kind).input_cap
            for pin, net in enumerate(gate.inputs):
                load[net] += cap
                consumers.setdefault(net, []).append(("gate", gidx, pin))
        for ridx, reg in enumerate(module.registers):
            load[reg.d] += library.register.input_cap
            consumers.setdefault(reg.d, []).append(("reg", ridx, 0))
        pad = [0.0] * module.n_nets
        for bus in module.outputs.values():
            for net in bus:
                pad[net] += library.output_load

        block_of = module.block_of_net()
        for net in range(module.n_nets):
            total = load[net] + pad[net]
            if net in const_nets or total <= max_load:
                continue
            sinks = consumers.get(net, [])
            if len(sinks) < 2:
                continue       # one huge pin / pad only: nothing to split
            n_groups = max(2, math.ceil(total / (max_load - buf_cap)))
            n_groups = min(n_groups, len(sinks))
            if n_groups * buf_cap >= load[net]:
                continue       # splitting would not reduce the pin load
            changed = True
            groups = [sinks[g::n_groups] for g in range(n_groups)]
            for group in groups:
                if not group:
                    continue
                buf_out = module.gate("BUF", net, block=block_of[net])
                for kind, idx, pin in group:
                    if kind == "gate":
                        gate = module.gates[idx]
                        new_inputs = list(gate.inputs)
                        new_inputs[pin] = buf_out
                        module.gates[idx] = Gate(
                            kind=gate.kind, inputs=tuple(new_inputs),
                            output=gate.output, block=gate.block)
                    else:
                        reg = module.registers[idx]
                        module.registers[idx] = type(reg)(
                            d=buf_out, q=reg.q, stage=reg.stage,
                            block=reg.block)
    return module
