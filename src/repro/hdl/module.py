"""Structural netlists.

A :class:`Module` is a flat net-level description: integer net ids,
single-output gates, optional pipeline registers, named input/output
buses (LSB-first lists of nets) and two constant nets.  Hierarchy is
recorded as a block *tag* per gate (e.g. ``"ppgen/row3"``) — enough for
the per-block timing/area/power breakdowns the paper reports, without
the weight of real hierarchy.

Construction idiom::

    m = Module("mult64")
    x = m.input("x", 64)
    y = m.input("y", 64)
    with m.block("ppgen"):
        n = m.gate("XOR2", x[0], y[0])
    m.output("p", [n])
"""

import contextlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import NetlistError
from repro.hdl.cell import cell_num_inputs


@dataclass(frozen=True)
class Gate:
    """One combinational cell instance."""

    kind: str
    inputs: Tuple[int, ...]
    output: int
    block: str


@dataclass(frozen=True)
class Register:
    """One pipeline flip-flop.

    ``stage`` identifies the pipeline cut the register belongs to
    (1 = between stage 1 and stage 2, matching Fig. 5's numbering).
    """

    d: int
    q: int
    stage: int
    block: str


class Module:
    """A flat structural netlist under construction."""

    def __init__(self, name):
        self.name = name
        self.n_nets = 0
        self.gates: List[Gate] = []
        self.registers: List[Register] = []
        self.inputs: Dict[str, List[int]] = {}
        self.outputs: Dict[str, List[int]] = {}
        self._driver: Dict[int, str] = {}     # net -> "gate"/"input"/...
        self._const_nets: Dict[int, int] = {}  # net -> 0/1
        self._const_cache: Dict[int, int] = {}
        self._block_stack: List[str] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def new_net(self):
        net = self.n_nets
        self.n_nets += 1
        return net

    @property
    def current_block(self):
        return "/".join(self._block_stack)

    @contextlib.contextmanager
    def block(self, tag):
        """Scope subsequent gates under ``tag`` (nestable)."""
        self._block_stack.append(tag)
        try:
            yield
        finally:
            self._block_stack.pop()

    def input(self, name, width):
        """Declare a primary input bus; returns its nets, LSB first."""
        if name in self.inputs:
            raise NetlistError(f"duplicate input {name!r}")
        bus = [self.new_net() for _ in range(width)]
        for net in bus:
            self._driver[net] = "input"
        self.inputs[name] = bus
        return bus

    def output(self, name, nets):
        """Declare a primary output bus over existing nets."""
        if name in self.outputs:
            raise NetlistError(f"duplicate output {name!r}")
        nets = list(nets)
        for net in nets:
            self._require_driven(net)
        self.outputs[name] = nets

    def const(self, value):
        """The shared constant-0 or constant-1 net."""
        if value not in (0, 1):
            raise NetlistError(f"constant must be 0 or 1, got {value!r}")
        if value not in self._const_cache:
            net = self.new_net()
            self._driver[net] = "const"
            self._const_nets[net] = value
            self._const_cache[value] = net
        return self._const_cache[value]

    def gate(self, kind, *inputs, block=None):
        """Instantiate a cell; returns its output net."""
        expected = cell_num_inputs(kind)
        if len(inputs) != expected:
            raise NetlistError(
                f"{kind} takes {expected} inputs, got {len(inputs)}"
            )
        for net in inputs:
            self._require_driven(net)
        out = self.new_net()
        self._driver[out] = "gate"
        self.gates.append(Gate(kind=kind, inputs=tuple(inputs), output=out,
                               block=block if block is not None
                               else self.current_block))
        return out

    def register(self, d, stage, block=None):
        """Insert a pipeline flip-flop on net ``d``; returns the q net."""
        self._require_driven(d)
        q = self.new_net()
        self._driver[q] = "register"
        self.registers.append(Register(d=d, q=q, stage=stage,
                                       block=block if block is not None
                                       else self.current_block))
        return q

    def register_bus(self, bus, stage, block=None):
        """Register every net of a bus; returns the q bus."""
        return [self.register(net, stage, block=block) for net in bus]

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    @property
    def constants(self):
        """Mapping net -> constant value (0/1)."""
        return dict(self._const_nets)

    def driver_kind(self, net):
        """``"input"``, ``"gate"``, ``"register"`` or ``"const"``."""
        try:
            return self._driver[net]
        except KeyError:
            raise NetlistError(f"net {net} has no driver") from None

    def fanout_map(self):
        """net -> list of gate indices reading it (registers excluded)."""
        fanout = {net: [] for net in range(self.n_nets)}
        for idx, gate in enumerate(self.gates):
            for net in gate.inputs:
                fanout[net].append(idx)
        return fanout

    def load_map(self, library):
        """net -> total driven input capacitance (for delay/energy)."""
        load = [0.0] * self.n_nets
        for gate in self.gates:
            cap = library.spec(gate.kind).input_cap
            for net in gate.inputs:
                load[net] += cap
        reg_cap = library.register.input_cap
        for reg in self.registers:
            load[reg.d] += reg_cap
        for bus in self.outputs.values():
            for net in bus:
                load[net] += library.output_load
        return load

    def stage_count(self):
        """Number of pipeline stages (register stages + 1)."""
        if not self.registers:
            return 1
        return max(reg.stage for reg in self.registers) + 1

    def block_of_net(self):
        """net -> block tag of its driver (inputs/consts map to '')."""
        owner = [""] * self.n_nets
        for gate in self.gates:
            owner[gate.output] = gate.block
        for reg in self.registers:
            owner[reg.q] = reg.block
        return owner

    def stats(self):
        """Cheap structural summary used by reports and tests."""
        kinds = {}
        for gate in self.gates:
            kinds[gate.kind] = kinds.get(gate.kind, 0) + 1
        return {
            "nets": self.n_nets,
            "gates": len(self.gates),
            "registers": len(self.registers),
            "inputs": sum(len(b) for b in self.inputs.values()),
            "outputs": sum(len(b) for b in self.outputs.values()),
            "kinds": kinds,
        }

    def _require_driven(self, net):
        if not isinstance(net, int):
            raise NetlistError(f"net ids are ints, got {net!r}")
        if net not in self._driver:
            raise NetlistError(f"net {net} used before being driven")

    def __repr__(self):
        return (f"Module({self.name!r}, nets={self.n_nets}, "
                f"gates={len(self.gates)}, regs={len(self.registers)})")
