"""Cell-area accounting in um^2 and NAND2 equivalents.

Tables I and II report multiplier area both in um^2 and in "K NAND2"
(NAND2-equivalent gate count); :func:`area_report` produces both, per
top-level block and total, straight from the netlist and library.
"""

from dataclasses import dataclass, field
from typing import Dict

from repro.hdl.library import NAND2_AREA_UM2


@dataclass
class AreaReport:
    """Area of a module, total and by top-level block tag."""

    total_um2: float
    register_um2: float
    by_block_um2: Dict[str, float] = field(default_factory=dict)

    @property
    def total_nand2_eq(self):
        return self.total_um2 / NAND2_AREA_UM2

    def block_um2(self, block):
        return self.by_block_um2.get(block, 0.0)

    def block_nand2_eq(self, block):
        return self.block_um2(block) / NAND2_AREA_UM2


def area_report(module, library):
    """Sum cell and register areas; group by top-level block tag."""
    by_block: Dict[str, float] = {}
    total = 0.0
    for gate in module.gates:
        area = library.spec(gate.kind).area_um2
        total += area
        top = gate.block.split("/", 1)[0] if gate.block else "(top)"
        by_block[top] = by_block.get(top, 0.0) + area
    reg_area = 0.0
    for reg in module.registers:
        area = library.register.area_um2
        reg_area += area
        total += area
        top = reg.block.split("/", 1)[0] if reg.block else "(registers)"
        by_block[top] = by_block.get(top, 0.0) + area
    return AreaReport(total_um2=total, register_um2=reg_area,
                      by_block_um2=by_block)
