"""Area accounting."""

from repro.hdl.area.model import AreaReport, area_report

__all__ = ["AreaReport", "area_report"]
