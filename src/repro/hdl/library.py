"""A 45 nm low-power standard-cell library model.

The paper gives two hard anchors for its library (Sec. II):

* the FO4 delay is **64 ps** — our INV is characterized so that an
  inverter driving four copies of itself takes exactly 64 ps;
* the NAND2 area is **1.06 um^2** — all areas are NAND2-equivalents
  times that figure.

Relative cell characteristics (area ratios, logical-effort-style delay
slopes, input capacitances) follow typical low-power 45 nm libraries.
Delay model: ``delay(cell, fanout) = intrinsic + slope * load`` where
``load`` is the sum of the driven input capacitances (in unit INV
loads).  Energy model: each output toggle switches the cell's internal
capacitance (proportional to area) plus the wire/input load it drives;
the single global scale :attr:`CellLibrary.energy_fj_per_unit` converts
that capacitance measure to femtojoules and is the one calibrated
constant of the power flow (see ``repro.eval.calibration``).
"""

from dataclasses import dataclass, replace
from typing import Dict

from repro.errors import NetlistError
from repro.hdl.cell import CELL_KINDS

#: Paper anchor: area of a NAND2 in um^2.
NAND2_AREA_UM2 = 1.06
#: Paper anchor: FO4 delay in ps.
FO4_PS = 64.0


@dataclass(frozen=True)
class CellSpec:
    """Characterization of one combinational cell kind."""

    kind: str
    area_eq: float       # area in NAND2 equivalents
    intrinsic_ps: float  # unloaded delay
    slope_ps: float      # added delay per unit load driven
    input_cap: float     # load presented by ONE input pin (INV = 1.0)

    @property
    def area_um2(self):
        return self.area_eq * NAND2_AREA_UM2

    def delay_ps(self, load):
        """Propagation delay driving ``load`` unit input capacitances."""
        return self.intrinsic_ps + self.slope_ps * load


@dataclass(frozen=True)
class RegisterSpec:
    """Characterization of the pipeline flip-flop."""

    # clk->q + setup = 192 ps = 3 FO4, the paper's stated pipeline
    # overhead ("about 3 FO4", Sec. III-D).
    area_eq: float = 4.5
    clk_to_q_ps: float = 120.0
    setup_ps: float = 72.0
    input_cap: float = 1.2
    #: Relative energy of one clock tick (paid every cycle, toggling or not).
    clock_energy_units: float = 1.2
    #: Relative energy of one output transition.
    q_energy_units: float = 4.0

    @property
    def area_um2(self):
        return self.area_eq * NAND2_AREA_UM2

    @property
    def overhead_ps(self):
        """Pipeline overhead per stage (clk->q + setup), ~3 FO4 (Sec. III-D)."""
        return self.clk_to_q_ps + self.setup_ps


# intrinsic/slope pairs are chosen so that INV FO4 = 12 + 13*4 = 64 ps;
# the other cells' numbers were calibrated once (a single global scale on
# a logical-effort-style initial guess) so the combinational radix-16
# multiplier lands near the paper's 29 FO4 latency, then frozen.
_DEFAULT_CELLS = {
    "INV":   CellSpec("INV",   0.75, 12.0, 13.0, 1.0),
    "BUF":   CellSpec("BUF",   1.00, 19.5,  6.0, 1.0),
    "AND2":  CellSpec("AND2",  1.50, 18.0,  8.5, 1.0),
    "AND3":  CellSpec("AND3",  1.75, 21.5,  9.0, 1.0),
    "OR2":   CellSpec("OR2",   1.50, 19.5,  8.5, 1.0),
    "OR3":   CellSpec("OR3",   1.75, 23.5,  9.0, 1.0),
    "NAND2": CellSpec("NAND2", 1.00, 10.5, 11.0, 1.0),
    "NAND3": CellSpec("NAND3", 1.50, 13.0, 13.5, 1.1),
    "NOR2":  CellSpec("NOR2",  1.00, 11.5, 13.5, 1.1),
    "NOR3":  CellSpec("NOR3",  1.50, 15.5, 16.0, 1.2),
    "XOR2":  CellSpec("XOR2",  2.50, 23.5, 11.5, 2.0),
    "XNOR2": CellSpec("XNOR2", 2.50, 23.5, 11.5, 2.0),
    "XOR3":  CellSpec("XOR3",  4.50, 34.0, 12.5, 2.2),
    "MAJ3":  CellSpec("MAJ3",  3.00, 24.5, 10.5, 1.5),
    "MUX2":  CellSpec("MUX2",  2.25, 19.5, 10.5, 1.5),
    "AOI21": CellSpec("AOI21", 1.50, 13.0, 13.0, 1.1),
    "OAI21": CellSpec("OAI21", 1.50, 13.0, 13.0, 1.1),
    "AO22":  CellSpec("AO22",  1.75, 19.5,  9.0, 1.0),
    "OA22":  CellSpec("OA22",  1.75, 20.5,  9.0, 1.0),
}


@dataclass(frozen=True)
class CellLibrary:
    """A complete characterized library."""

    cells: Dict[str, CellSpec]
    register: RegisterSpec
    #: fJ per unit of switched capacitance-measure; calibrated once so the
    #: pipelined radix-16 multiplier lands near the paper's 7.7 mW at
    #: 100 MHz, then frozen for every experiment.
    energy_fj_per_unit: float = 2.58
    #: Fraction of *extra* (glitch) transitions that actually dissipate.
    #: Pure logic-level event simulation overcounts glitches because it
    #: has no slew/RC pulse filtering; commercial power tools derate
    #: glitch activity the same way.  Calibrated together with the
    #: energy scale, then frozen.
    glitch_retention: float = 0.15
    #: nW of leakage per NAND2-equivalent of area.
    leakage_nw_per_eq: float = 0.9
    #: Default load (wire + sink) assumed for primary outputs.
    output_load: float = 2.0

    def __post_init__(self):
        missing = set(CELL_KINDS) - set(self.cells)
        if missing:
            raise NetlistError(f"library misses cell kinds: {sorted(missing)}")

    def spec(self, kind):
        try:
            return self.cells[kind]
        except KeyError:
            raise NetlistError(f"no spec for cell kind {kind!r}") from None

    def toggle_energy_units(self, kind, load):
        """Capacitance-measure switched by one output toggle."""
        spec = self.spec(kind)
        return spec.area_eq + 0.5 * load

    def scaled(self, energy_fj_per_unit):
        """A copy with a different calibrated energy scale."""
        return replace(self, energy_fj_per_unit=energy_fj_per_unit)

    @property
    def fo4_ps(self):
        inv = self.spec("INV")
        return inv.delay_ps(4 * inv.input_cap)


def default_library():
    """The calibrated 45 nm low-power library used throughout."""
    return CellLibrary(cells=dict(_DEFAULT_CELLS), register=RegisterSpec())
