"""Combinational cell kinds and their boolean semantics.

Every cell has a single output.  The full adder of the reference
algorithms maps to the pair ``XOR3`` (sum) + ``MAJ3`` (carry), the half
adder to ``XOR2`` + ``AND2`` — single-output cells keep the simulators'
data layout flat and fast.

Evaluation functions are written for *bit-parallel* operation: each
operand is a Python int whose bit ``t`` is the net's value in pattern
``t``, and ``m`` is the all-patterns mask (needed to bound inversions).
Scalar evaluation is the special case ``m = 1``.
"""

from repro.errors import NetlistError


def _inv(m, a):
    return m ^ a


def _buf(m, a):
    return a


def _and2(m, a, b):
    return a & b


def _and3(m, a, b, c):
    return a & b & c


def _or2(m, a, b):
    return a | b


def _or3(m, a, b, c):
    return a | b | c


def _nand2(m, a, b):
    return m ^ (a & b)


def _nand3(m, a, b, c):
    return m ^ (a & b & c)


def _nor2(m, a, b):
    return m ^ (a | b)


def _nor3(m, a, b, c):
    return m ^ (a | b | c)


def _xor2(m, a, b):
    return a ^ b


def _xnor2(m, a, b):
    return m ^ a ^ b


def _xor3(m, a, b, c):
    return a ^ b ^ c


def _maj3(m, a, b, c):
    return (a & b) | (a & c) | (b & c)


def _mux2(m, a, b, s):
    """Output ``a`` when ``s = 0``, ``b`` when ``s = 1``."""
    return a ^ ((a ^ b) & s)


def _aoi21(m, a, b, c):
    return m ^ ((a & b) | c)


def _oai21(m, a, b, c):
    return m ^ ((a | b) & c)


def _ao22(m, a, b, c, d):
    """AND-OR cell ``(a & b) | (c & d)`` — the Booth-mux workhorse."""
    return (a & b) | (c & d)


def _oa22(m, a, b, c, d):
    """OR-AND cell ``(a | b) & (c | d)`` — the AO22 dual."""
    return (a | b) & (c | d)


#: kind -> (evaluation function, number of inputs)
CELL_KINDS = {
    "INV": (_inv, 1),
    "BUF": (_buf, 1),
    "AND2": (_and2, 2),
    "AND3": (_and3, 3),
    "OR2": (_or2, 2),
    "OR3": (_or3, 3),
    "NAND2": (_nand2, 2),
    "NAND3": (_nand3, 3),
    "NOR2": (_nor2, 2),
    "NOR3": (_nor3, 3),
    "XOR2": (_xor2, 2),
    "XNOR2": (_xnor2, 2),
    "XOR3": (_xor3, 3),
    "MAJ3": (_maj3, 3),
    "MUX2": (_mux2, 3),
    "AOI21": (_aoi21, 3),
    "OAI21": (_oai21, 3),
    "AO22": (_ao22, 4),
    "OA22": (_oa22, 4),
}


def cell_eval(kind):
    """The bit-parallel evaluation function for a cell kind."""
    try:
        return CELL_KINDS[kind][0]
    except KeyError:
        raise NetlistError(f"unknown cell kind {kind!r}") from None


def cell_num_inputs(kind):
    """The number of input pins of a cell kind."""
    try:
        return CELL_KINDS[kind][1]
    except KeyError:
        raise NetlistError(f"unknown cell kind {kind!r}") from None
