"""Netlist simulators.

* :mod:`repro.hdl.sim.compile` — the netlist compile pass: flattens a
  module once into topo-ordered flat arrays and generates specialized
  straight-line evaluation code (the kernels both simulators run).
* :mod:`repro.hdl.sim.levelized` — zero-delay, **bit-parallel** over
  patterns: functional verification and zero-delay switching activity.
  Registers are modeled as one-cycle time shifts of the pattern axis,
  which is exact for the feed-forward pipelines used here.
* :mod:`repro.hdl.sim.event` — event-driven with per-gate load-dependent
  delays: counts *all* transitions including glitches, the quantity the
  paper's combinational-vs-pipelined power comparison hinges on.  The
  default engine is a bucketed time wheel; the historic heapq engine
  remains as the reference implementation.
* :mod:`repro.hdl.sim.toposort` — the shared Kahn topological ordering
  everything above (and timing/pipelining) builds on.
"""

from repro.hdl.sim.compile import CompiledModule, compile_module, compiled_module
from repro.hdl.sim.event import EventSimulator, TransitionCounts
from repro.hdl.sim.levelized import LevelizedSimulator, SimRun
from repro.hdl.sim.toposort import topo_gate_order, topo_node_order

__all__ = [
    "CompiledModule",
    "EventSimulator",
    "LevelizedSimulator",
    "SimRun",
    "TransitionCounts",
    "compile_module",
    "compiled_module",
    "topo_gate_order",
    "topo_node_order",
]
