"""Netlist simulators.

* :mod:`repro.hdl.sim.levelized` — zero-delay, **bit-parallel** over
  patterns: functional verification and zero-delay switching activity.
  Registers are modeled as one-cycle time shifts of the pattern axis,
  which is exact for the feed-forward pipelines used here.
* :mod:`repro.hdl.sim.event` — event-driven with per-gate load-dependent
  delays: counts *all* transitions including glitches, the quantity the
  paper's combinational-vs-pipelined power comparison hinges on.
"""

from repro.hdl.sim.event import EventSimulator, TransitionCounts
from repro.hdl.sim.levelized import LevelizedSimulator, SimRun

__all__ = [
    "EventSimulator",
    "LevelizedSimulator",
    "SimRun",
    "TransitionCounts",
]
