"""Event-driven timing simulation with glitch propagation.

The paper's central power observation (Table III) is that deep
combinational logic burns energy in *glitches* — spurious transitions
caused by unequal path delays — and that pipelining, by shortening the
paths between registers, removes much of that energy.  A zero-delay
simulator cannot see this at all; this transport-delay event simulator
counts every transition each net actually makes, using the same
load-dependent cell delays as the static timing engine.

Registers are *not* simulated here: the caller (the power estimator)
treats register outputs as stimulus nets whose per-cycle values come
from the exact levelized simulation, which is both faster and exact for
feed-forward pipelines.
"""

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.hdl.cell import cell_eval


@dataclass
class TransitionCounts:
    """Per-net transition counts for one applied input change."""

    toggles: List[int]        # index = net id
    events_processed: int
    settle_time_ps: float

    def total(self):
        return sum(self.toggles)


class EventSimulator:
    """Transport-delay simulator over one module's combinational gates."""

    def __init__(self, module, library):
        self.module = module
        self.library = library
        load = module.load_map(library)
        self._delay = [0.0] * len(module.gates)
        for idx, gate in enumerate(module.gates):
            spec = library.spec(gate.kind)
            self._delay[idx] = spec.delay_ps(load[gate.output])
        fanout = module.fanout_map()
        self._fanout = [fanout[net] for net in range(module.n_nets)]
        self._eval = [cell_eval(g.kind) for g in module.gates]
        self.values: List[int] = [0] * module.n_nets
        self._stimulus_nets = set()
        for bus in module.inputs.values():
            self._stimulus_nets.update(bus)
        for reg in module.registers:
            self._stimulus_nets.add(reg.q)
        self._initialized = False

    # ------------------------------------------------------------------

    def initialize(self, stimulus):
        """Settle the network from scratch on the given stimulus values.

        ``stimulus`` maps net id -> 0/1 for every input and register-q
        net; constants are filled in automatically.
        """
        module = self.module
        values = self.values
        for net in range(module.n_nets):
            values[net] = 0
        for net, cval in module.constants.items():
            values[net] = cval
        for net in self._stimulus_nets:
            if net not in stimulus:
                raise SimulationError(f"no stimulus for net {net}")
        for net, val in stimulus.items():
            values[net] = val & 1
        # Zero-delay settle in topological order.
        for idx in self._topo_gate_order():
            gate = self.module.gates[idx]
            ins = gate.inputs
            fn = self._eval[idx]
            if len(ins) == 1:
                values[gate.output] = fn(1, values[ins[0]]) & 1
            elif len(ins) == 2:
                values[gate.output] = fn(1, values[ins[0]], values[ins[1]]) & 1
            elif len(ins) == 3:
                values[gate.output] = fn(1, values[ins[0]], values[ins[1]],
                                         values[ins[2]]) & 1
            else:
                values[gate.output] = fn(1, *[values[n] for n in ins]) & 1
        self._initialized = True

    def apply(self, stimulus):
        """Apply new stimulus values; simulate transitions to settling.

        Returns a :class:`TransitionCounts` (stimulus-net toggles
        included, so input-driving energy can be attributed to loads).
        """
        if not self._initialized:
            raise SimulationError("call initialize() before apply()")
        values = self.values
        gates = self.module.gates
        fanout = self._fanout
        delay = self._delay
        evals = self._eval
        toggles = [0] * self.module.n_nets
        heap = []
        counter = 0
        events = 0
        # Inertial delay: only the *latest* scheduled evaluation of a net
        # is live; re-evaluating a gate before its pending output event
        # matures cancels that event (pulses narrower than the gate delay
        # are swallowed, as in real cells and in HDL simulators' default
        # inertial mode).
        live_seq = [0] * self.module.n_nets

        def schedule_fanout(net, t):
            nonlocal counter
            for gidx in fanout[net]:
                gate = gates[gidx]
                ins = gate.inputs
                fn = evals[gidx]
                if len(ins) == 1:
                    val = fn(1, values[ins[0]]) & 1
                elif len(ins) == 2:
                    val = fn(1, values[ins[0]], values[ins[1]]) & 1
                elif len(ins) == 3:
                    val = fn(1, values[ins[0]], values[ins[1]],
                             values[ins[2]]) & 1
                else:
                    val = fn(1, *[values[n] for n in ins]) & 1
                counter += 1
                out = gate.output
                live_seq[out] = counter
                heapq.heappush(heap, (t + delay[gidx], counter, out, val))

        # Apply all stimulus changes simultaneously at t = 0.
        changed = []
        for net, val in stimulus.items():
            val &= 1
            if values[net] != val:
                values[net] = val
                toggles[net] += 1
                changed.append(net)
        settle = 0.0
        for net in changed:
            schedule_fanout(net, 0.0)

        while heap:
            t, seq, net, val = heapq.heappop(heap)
            events += 1
            if seq != live_seq[net]:
                continue            # cancelled by a newer evaluation
            if values[net] == val:
                continue
            values[net] = val
            toggles[net] += 1
            settle = t
            schedule_fanout(net, t)
        return TransitionCounts(toggles=toggles, events_processed=events,
                                settle_time_ps=settle)

    # ------------------------------------------------------------------

    def _topo_gate_order(self):
        if hasattr(self, "_topo_cache"):
            return self._topo_cache
        module = self.module
        producers = {}
        for idx, gate in enumerate(module.gates):
            producers[gate.output] = idx
        indegree = [0] * len(module.gates)
        consumers = [[] for _ in range(len(module.gates))]
        for idx, gate in enumerate(module.gates):
            for net in gate.inputs:
                if net in producers:
                    indegree[idx] += 1
                    consumers[producers[net]].append(idx)
        ready = [i for i, d in enumerate(indegree) if d == 0]
        order = []
        while ready:
            idx = ready.pop()
            order.append(idx)
            for consumer in consumers[idx]:
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    ready.append(consumer)
        if len(order) != len(module.gates):
            raise SimulationError("netlist has a combinational cycle")
        self._topo_cache = order
        return order
