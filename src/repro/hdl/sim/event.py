"""Event-driven timing simulation with glitch propagation.

The paper's central power observation (Table III) is that deep
combinational logic burns energy in *glitches* — spurious transitions
caused by unequal path delays — and that pipelining, by shortening the
paths between registers, removes much of that energy.  A zero-delay
simulator cannot see this at all; this transport-delay event simulator
counts every transition each net actually makes, using the same
load-dependent cell delays as the static timing engine.

Registers are *not* simulated here: the caller (the power estimator)
treats register outputs as stimulus nets whose per-cycle values come
from the exact levelized simulation, which is both faster and exact for
feed-forward pipelines.

Two event engines are available:

* ``engine="wheel"`` (default) — a bucketed **time wheel**: pending
  events are grouped by their exact maturity time in a dict of FIFO
  buckets, with a small heap over the *distinct* times only.  Cell
  delays come from a small discrete set, so event times collide
  massively and the heap shrinks from one entry per event to one entry
  per distinct timestamp.  Gate outputs are recomputed through the
  compiled per-gate closures of :mod:`repro.hdl.sim.compile`, and the
  zero-delay settle in :meth:`EventSimulator.initialize` runs the
  compiled kernel.  Stimulus can be a *delta* — just the nets that
  changed — so callers replaying a cycle sequence need not rebuild a
  full per-cycle dict.
* ``engine="heap"`` — the historic implementation: one global ``heapq``
  entry per event, per-gate ``cell_eval`` dispatch.  Kept as the
  independent reference the equivalence tests (and the before/after
  benchmark) run against.

Both engines process events in the identical order — ascending time,
insertion order within a timestamp, with the same inertial cancellation
rule — and therefore produce **bit-identical** ``TransitionCounts``.

For long cycle replays :meth:`EventSimulator.replay` additionally uses
the optional compiled C kernel (:mod:`repro.hdl.sim.ckernel`) when a
system C compiler is available — the same event order and cancellation
rule executed outside the interpreter, again bit-identical.
"""

import heapq
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import obs
from repro.errors import SimulationError
from repro.hdl.cell import cell_eval
from repro.hdl.sim import ckernel
from repro.hdl.sim.compile import compiled_module


@dataclass
class TransitionCounts:
    """Per-net transition counts for one applied input change."""

    toggles: List[int]        # index = net id
    events_processed: int
    settle_time_ps: float
    #: Events swallowed by inertial cancellation (subset of processed).
    cancelled: int = 0
    #: Distinct timestamps the wheel visited (0 for the heap engine).
    wheel_buckets: int = 0
    #: Largest single-timestamp bucket (0 for the heap engine).
    wheel_max_bucket: int = 0

    def total(self):
        return sum(self.toggles)


class EventSimulator:
    """Transport-delay simulator over one module's combinational gates."""

    def __init__(self, module, library, engine="wheel"):
        if engine not in ("wheel", "heap"):
            raise SimulationError(f"unknown event engine {engine!r}")
        self.module = module
        self.library = library
        self.engine = engine
        load = module.load_map(library)
        self._delay = [0.0] * len(module.gates)
        for idx, gate in enumerate(module.gates):
            spec = library.spec(gate.kind)
            self._delay[idx] = spec.delay_ps(load[gate.output])
        fanout = module.fanout_map()
        self._fanout = [fanout[net] for net in range(module.n_nets)]
        self._eval = [cell_eval(g.kind) for g in module.gates]
        self._out = [g.output for g in module.gates]
        self.values: List[int] = [0] * module.n_nets
        #: Canonical stimulus order: input buses LSB-first, register q
        #: nets last — the order every stimulus dict is built in, which
        #: :meth:`replay` reproduces for bit-identical event order.
        self._stim_order = []
        for bus in module.inputs.values():
            self._stim_order.extend(bus)
        for reg in module.registers:
            self._stim_order.append(reg.q)
        self._stimulus_nets = set(self._stim_order)
        self._initialized = False
        self._compiled = compiled_module(module)
        # Per-gate closures recomputing each output bit from self.values
        # (wheel engine only; the heap engine keeps cell_eval dispatch).
        # Built on first use: a replay served entirely by the compiled C
        # kernel never needs them.
        self._gate_val = None
        # Persistent wheel scratch: monotone sequence counters make the
        # arrays reusable across apply() calls without clearing.
        self._live_seq = [0] * module.n_nets
        self._trig_mark = [0] * len(module.gates)
        self._counter = 0
        # Compiled C kernel for replay(), when a compiler is available
        # and the module fits its evaluation model (wheel engine only —
        # the heap engine stays a pure-Python reference).
        self._ck = None
        if engine == "wheel" and ckernel.supports(module):
            lib = ckernel.load_kernel()
            if lib is not None:
                self._ck = ckernel.CKernel(lib, module, self._delay,
                                           self._eval, self._fanout,
                                           self._stim_order)
        #: Cumulative perf counters across every apply()/replay() on
        #: this instance.
        self.stats = {"applies": 0, "events": 0, "cancelled": 0,
                      "wheel_buckets": 0, "wheel_max_bucket": 0}

    @property
    def kernel(self):
        """``"c"`` when :meth:`replay` runs the compiled kernel."""
        return "c" if self._ck is not None else "python"

    # ------------------------------------------------------------------

    def initialize(self, stimulus):
        """Settle the network from scratch on the given stimulus values.

        ``stimulus`` maps net id -> 0/1 for every input and register-q
        net; constants are filled in automatically.
        """
        module = self.module
        values = self.values
        for net in range(module.n_nets):
            values[net] = 0
        for net, cval in module.constants.items():
            values[net] = cval
        for net in self._stimulus_nets:
            if net not in stimulus:
                raise SimulationError(f"no stimulus for net {net}")
        for net, val in stimulus.items():
            values[net] = val & 1
        # Zero-delay settle in topological order.
        if self.engine == "wheel":
            self._compiled.settle(values)
        else:
            self._settle_interpreted(values)
        self._initialized = True

    def apply(self, stimulus, toggles_out=None):
        """Apply new stimulus values; simulate transitions to settling.

        ``stimulus`` is a net -> 0/1 mapping or an iterable of
        ``(net, value)`` pairs; nets already at their given value are
        ignored, so callers may pass either the full stimulus vector or
        only a delta of changed nets.  ``toggles_out``, if given, is a
        per-net counter list that toggles are *accumulated into* (and
        returned as ``TransitionCounts.toggles``) — callers replaying
        long cycle sequences use one accumulator instead of merging a
        fresh 20k-entry list per transition.  Returns a
        :class:`TransitionCounts` (stimulus-net toggles included, so
        input-driving energy can be attributed to loads).
        """
        if not self._initialized:
            raise SimulationError("call initialize() before apply()")
        if self.engine == "wheel":
            return self._apply_wheel(stimulus, toggles_out)
        return self._apply_heap(stimulus, toggles_out)

    # ------------------------------------------------------------------
    # cycle-sequence replay
    # ------------------------------------------------------------------

    def replay(self, packed_values, t_first, t_last, toggles_out=None):
        """Replay cycle transitions ``t_first..t_last`` (inclusive).

        ``packed_values`` are a levelized run's per-net pattern words
        (bit ``t`` = the net's zero-delay value in cycle ``t``), which
        must cover cycle ``t_last``.  The network seeds itself from
        cycle ``t_first - 1`` — for feed-forward logic the event
        simulator's settled state equals the zero-delay state, so no
        settle pass is needed — then steps the stimulus nets through
        each cycle's values in the canonical stimulus order.

        Transitions run on the compiled C kernel when available
        (:attr:`kernel` is ``"c"``) and otherwise on this instance's
        Python engine, one :meth:`apply` delta per transition.  Both
        process events in the identical total order by (maturity time,
        schedule sequence), so the accumulated per-net toggle counts
        are **bit-identical** across all three paths.

        Returns an aggregate :class:`TransitionCounts` over the whole
        window (``settle_time_ps`` is the final transition's).  On
        return the simulator holds cycle ``t_last``'s settled state.
        """
        if t_first < 1 or t_last < t_first:
            raise SimulationError(
                f"bad transition window [{t_first}, {t_last}]")
        n_nets = self.module.n_nets
        if len(packed_values) < n_nets:
            raise SimulationError("packed_values must cover every net")
        toggles = toggles_out if toggles_out is not None else [0] * n_nets
        transitions = t_last - t_first + 1
        events = cancelled = 0
        n_buckets = 0
        max_bucket = 0
        settle = 0.0
        t0 = time.perf_counter()

        if self._ck is not None:
            ck = self._ck
            ck.zero_toggles()
            ck.seed(packed_values, t_first - 1)
            t = t_first
            while t <= t_last:
                span = min(ckernel.WINDOW_TRANSITIONS, t_last - t + 1)
                ev, ca, settle = ck.run(packed_values, t - 1, span)
                events += ev
                cancelled += ca
                t += span
            # Publish the kernel's state: toggle totals, and the settled
            # scalar values (cycle t_last), so apply() can continue.
            ck_toggles = ck.toggles
            for net in range(n_nets):
                count = ck_toggles[net]
                if count:
                    toggles[net] += count
            values = self.values
            ck_values = ck.values
            for net in range(n_nets):
                values[net] = ck_values[net]
            self._initialized = True
            stats = self.stats
            stats["applies"] += transitions
            stats["events"] += events
            stats["cancelled"] += cancelled
        else:
            stim_order = self._stim_order
            self.initialize({net: (packed_values[net] >> (t_first - 1)) & 1
                             for net in stim_order})
            for t in range(t_first, t_last + 1):
                delta = [(net, (packed_values[net] >> t) & 1)
                         for net in stim_order
                         if ((packed_values[net] >> (t - 1))
                             ^ (packed_values[net] >> t)) & 1]
                counts = self.apply(delta, toggles_out=toggles)
                events += counts.events_processed
                cancelled += counts.cancelled
                n_buckets += counts.wheel_buckets
                if counts.wheel_max_bucket > max_bucket:
                    max_bucket = counts.wheel_max_bucket
                settle = counts.settle_time_ps
                # apply() maintains self.stats per transition already.

        reg = obs.registry()
        reg.inc("sim.replay.calls")
        reg.inc("sim.replay.transitions", transitions)
        reg.inc("sim.replay.events", events)
        reg.inc("sim.replay.cancellations", cancelled)
        obs.complete_event(
            "sim:replay", t0, time.perf_counter() - t0, cat="sim",
            module=self.module.name, kernel=self.kernel,
            engine=self.engine, transitions=transitions, events=events)

        return TransitionCounts(toggles=toggles, events_processed=events,
                                settle_time_ps=settle, cancelled=cancelled,
                                wheel_buckets=n_buckets,
                                wheel_max_bucket=max_bucket)

    # ------------------------------------------------------------------
    # wheel engine
    # ------------------------------------------------------------------

    def _apply_wheel(self, stimulus, toggles_out=None):
        # Two provably order-preserving optimizations over the heap
        # engine's schedule-per-trigger discipline:
        #
        # 1. *Deferred evaluation*: of the several evaluations a gate
        #    gets while one timestamp's bucket drains (one per changed
        #    input), only the last can survive inertial cancellation,
        #    and after that last trigger the gate's inputs cannot change
        #    again within the bucket (a change would be a new trigger).
        #    So a trigger only bumps the output's ``live_seq`` (that
        #    must happen immediately — it is what cancels the gate's
        #    pending events, including ones later in the bucket being
        #    drained) and records itself in ``trig_mark``; the gate is
        #    evaluated once, after the bucket drains, in last-trigger
        #    order — the exact value and relative event order the heap
        #    engine produces.
        # 2. *No-op suppression*: when the evaluated output equals the
        #    net's current value, no event is scheduled — bumping
        #    ``live_seq`` already cancelled any pending event for the
        #    net, after which nothing can change it before the skipped
        #    event would have matured, so that event could only have
        #    been a no-op at pop time too.  (This is also why the pop
        #    loop below needs no ``values[out] == val`` re-check.)
        #
        # Both change ``events_processed`` bookkeeping relative to the
        # heap engine but provably not toggles, values or settle time.
        values = self.values
        fanout = self._fanout
        delay = self._delay
        outs = self._out
        gate_val = self._gate_val
        if gate_val is None:
            gate_val = self._gate_val = self._compiled.make_gate_evals(values)
        n_nets = self.module.n_nets
        toggles = toggles_out if toggles_out is not None else [0] * n_nets
        live_seq = self._live_seq
        trig_mark = self._trig_mark
        counter = self._counter
        wheel: Dict[float, list] = {}
        times: List[float] = []
        push = heapq.heappush
        pop = heapq.heappop
        events = 0
        cancelled = 0
        n_buckets = 0
        max_bucket = 0
        settle = 0.0

        items = stimulus.items() if hasattr(stimulus, "items") else stimulus
        trig_list = []
        append_trig = trig_list.append
        for net, val in items:
            val &= 1
            if values[net] != val:
                values[net] = val
                toggles[net] += 1
                for g in fanout[net]:
                    counter += 1
                    trig_mark[g] = counter
                    live_seq[outs[g]] = counter
                    append_trig(g)

        t = 0.0
        while True:
            # Evaluate each gate triggered at time t once, in
            # last-trigger order, scheduling only value-changing events.
            i = counter - len(trig_list)
            for g in trig_list:
                i += 1
                if trig_mark[g] != i:
                    continue            # re-triggered later at this time
                val = gate_val[g]()
                counter += 1
                out = outs[g]
                live_seq[out] = counter
                if values[out] == val:
                    continue
                te = t + delay[g]
                bucket = wheel.get(te)
                if bucket is None:
                    wheel[te] = bucket = []
                    push(times, te)
                bucket.append((out, val, counter))
            if not times:
                break
            t = pop(times)
            bucket = wheel.pop(t)
            n_buckets += 1
            if len(bucket) > max_bucket:
                max_bucket = len(bucket)
            trig_list = []
            append_trig = trig_list.append
            for out, val, seq in bucket:
                events += 1
                if seq != live_seq[out]:
                    cancelled += 1
                    continue            # cancelled by a newer evaluation
                values[out] = val
                toggles[out] += 1
                settle = t
                for g in fanout[out]:
                    counter += 1
                    trig_mark[g] = counter
                    live_seq[outs[g]] = counter
                    append_trig(g)

        self._counter = counter
        stats = self.stats
        stats["applies"] += 1
        stats["events"] += events
        stats["cancelled"] += cancelled
        stats["wheel_buckets"] += n_buckets
        if max_bucket > stats["wheel_max_bucket"]:
            stats["wheel_max_bucket"] = max_bucket
        return TransitionCounts(toggles=toggles, events_processed=events,
                                settle_time_ps=settle, cancelled=cancelled,
                                wheel_buckets=n_buckets,
                                wheel_max_bucket=max_bucket)

    # ------------------------------------------------------------------
    # heap engine (reference implementation)
    # ------------------------------------------------------------------

    def _settle_interpreted(self, values):
        for idx in self._compiled.gate_order:
            gate = self.module.gates[idx]
            ins = gate.inputs
            fn = self._eval[idx]
            if len(ins) == 1:
                values[gate.output] = fn(1, values[ins[0]]) & 1
            elif len(ins) == 2:
                values[gate.output] = fn(1, values[ins[0]], values[ins[1]]) & 1
            elif len(ins) == 3:
                values[gate.output] = fn(1, values[ins[0]], values[ins[1]],
                                         values[ins[2]]) & 1
            else:
                values[gate.output] = fn(1, *[values[n] for n in ins]) & 1

    def _apply_heap(self, stimulus, toggles_out=None):
        values = self.values
        gates = self.module.gates
        fanout = self._fanout
        delay = self._delay
        evals = self._eval
        toggles = (toggles_out if toggles_out is not None
                   else [0] * self.module.n_nets)
        heap = []
        counter = 0
        events = 0
        cancelled = 0
        # Inertial delay: only the *latest* scheduled evaluation of a net
        # is live; re-evaluating a gate before its pending output event
        # matures cancels that event (pulses narrower than the gate delay
        # are swallowed, as in real cells and in HDL simulators' default
        # inertial mode).
        live_seq = [0] * self.module.n_nets

        def schedule_fanout(net, t):
            nonlocal counter
            for gidx in fanout[net]:
                gate = gates[gidx]
                ins = gate.inputs
                fn = evals[gidx]
                if len(ins) == 1:
                    val = fn(1, values[ins[0]]) & 1
                elif len(ins) == 2:
                    val = fn(1, values[ins[0]], values[ins[1]]) & 1
                elif len(ins) == 3:
                    val = fn(1, values[ins[0]], values[ins[1]],
                             values[ins[2]]) & 1
                else:
                    val = fn(1, *[values[n] for n in ins]) & 1
                counter += 1
                out = gate.output
                live_seq[out] = counter
                heapq.heappush(heap, (t + delay[gidx], counter, out, val))

        # Apply all stimulus changes simultaneously at t = 0.
        items = stimulus.items() if hasattr(stimulus, "items") else stimulus
        changed = []
        for net, val in items:
            val &= 1
            if values[net] != val:
                values[net] = val
                toggles[net] += 1
                changed.append(net)
        settle = 0.0
        for net in changed:
            schedule_fanout(net, 0.0)

        while heap:
            t, seq, net, val = heapq.heappop(heap)
            events += 1
            if seq != live_seq[net]:
                cancelled += 1
                continue            # cancelled by a newer evaluation
            if values[net] == val:
                continue
            values[net] = val
            toggles[net] += 1
            settle = t
            schedule_fanout(net, t)
        stats = self.stats
        stats["applies"] += 1
        stats["events"] += events
        stats["cancelled"] += cancelled
        return TransitionCounts(toggles=toggles, events_processed=events,
                                settle_time_ps=settle, cancelled=cancelled)
