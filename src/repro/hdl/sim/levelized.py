"""Bit-parallel levelized (zero-delay) simulation.

Every net value is a Python int whose bit ``t`` is the net's logic value
in pattern/cycle ``t`` — bitwise gate evaluation then simulates **all
patterns at once**, which is what makes exhaustive functional
verification of 30k-gate multipliers practical in pure Python.

Registers become *time shifts*: ``q = d << 1`` moves every pattern one
cycle later, exactly the behaviour of a flip-flop bank in a feed-forward
pipeline (cycle ``t`` sees the previous cycle's ``d``).  Pattern ``t``
of a primary input is therefore the word applied at cycle ``t``, and an
``L``-stage unit's outputs line up with inputs ``L - 1`` cycles earlier.

Two evaluation kernels exist:

* the default **compiled** kernel (see :mod:`repro.hdl.sim.compile`)
  runs straight-line generated code — one statement per gate — and is
  what every hot path uses;
* the historic **interpreted** kernel (``compiled=False``) dispatches
  through ``cell_eval`` per gate; it is kept as the independent
  reference implementation the equivalence tests compare against.

Both produce bit-identical values.
"""

from dataclasses import dataclass
from typing import Dict, List

from repro.bits.utils import mask, popcount
from repro.errors import SimulationError
from repro.hdl.cell import cell_eval
from repro.hdl.sim.compile import compiled_module
from repro.hdl.sim.toposort import topo_node_order


@dataclass
class SimRun:
    """Result of one levelized run."""

    n_patterns: int
    values: List[int]           # per net: packed pattern values

    def net_value(self, net, t):
        return (self.values[net] >> t) & 1

    def bus_word(self, bus, t):
        """Assemble the integer word on ``bus`` (LSB-first) at pattern t."""
        word = 0
        for i, net in enumerate(bus):
            word |= ((self.values[net] >> t) & 1) << i
        return word

    def bus_words(self, bus):
        """All patterns' words on ``bus`` (LSB-first), one per pattern.

        The bulk counterpart of :meth:`bus_word`: one pass over the
        packed per-net pattern words instead of one bit-poke per wire
        per pattern, which is what verification loops over whole runs
        want.  ``bus_words(bus)[t] == bus_word(bus, t)`` always.
        """
        words = [0] * self.n_patterns
        for i, net in enumerate(bus):
            v = self.values[net]
            if not v:
                continue
            bit = 1 << i
            while v:
                low = v & -v
                words[low.bit_length() - 1] |= bit
                v ^= low
        return words

    def toggles_per_net(self):
        """Zero-delay toggle count of every net across consecutive patterns."""
        m = mask(self.n_patterns - 1) if self.n_patterns > 1 else 0
        return [popcount((v ^ (v >> 1)) & m) for v in self.values]


class LevelizedSimulator:
    """Topologically ordered bit-parallel evaluator for one module."""

    def __init__(self, module, compiled=True):
        self.module = module
        self._kernel = compiled_module(module) if compiled else None
        self._order = (self._kernel.order if self._kernel is not None
                       else topo_node_order(module))

    def run(self, stimulus, n_patterns):
        """Simulate ``n_patterns`` patterns.

        ``stimulus`` maps input bus names to lists of integer words, one
        per pattern (missing patterns default to 0; missing buses raise).
        """
        module = self.module
        if n_patterns < 1:
            raise SimulationError("need at least one pattern")
        for name in module.inputs:
            if name not in stimulus:
                raise SimulationError(f"no stimulus for input bus {name!r}")
        m = mask(n_patterns)
        values = [0] * module.n_nets
        for name, bus in module.inputs.items():
            words = stimulus[name]
            for i, net in enumerate(bus):
                packed = 0
                for t, word in enumerate(words[:n_patterns]):
                    packed |= ((word >> i) & 1) << t
                values[net] = packed
        for net, cval in module.constants.items():
            values[net] = m if cval else 0

        if self._kernel is not None:
            self._kernel.run_levelized(values, m)
        else:
            self._run_interpreted(values, m)
        return SimRun(n_patterns=n_patterns, values=values)

    def _run_interpreted(self, values, m):
        """Per-gate ``cell_eval`` dispatch — the reference kernel."""
        gates = self.module.gates
        registers = self.module.registers
        for node in self._order:
            if node >= 0:
                gate = gates[node]
                fn = cell_eval(gate.kind)
                ins = gate.inputs
                if len(ins) == 1:
                    values[gate.output] = fn(m, values[ins[0]]) & m
                elif len(ins) == 2:
                    values[gate.output] = fn(m, values[ins[0]],
                                             values[ins[1]]) & m
                elif len(ins) == 3:
                    values[gate.output] = fn(m, values[ins[0]],
                                             values[ins[1]],
                                             values[ins[2]]) & m
                else:
                    values[gate.output] = fn(
                        m, *[values[n] for n in ins]) & m
            else:
                reg = registers[-node - 1]
                values[reg.q] = (values[reg.d] << 1) & m
