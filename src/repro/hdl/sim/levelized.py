"""Bit-parallel levelized (zero-delay) simulation.

Every net value is a Python int whose bit ``t`` is the net's logic value
in pattern/cycle ``t`` — bitwise gate evaluation then simulates **all
patterns at once**, which is what makes exhaustive functional
verification of 30k-gate multipliers practical in pure Python.

Registers become *time shifts*: ``q = d << 1`` moves every pattern one
cycle later, exactly the behaviour of a flip-flop bank in a feed-forward
pipeline (cycle ``t`` sees the previous cycle's ``d``).  Pattern ``t``
of a primary input is therefore the word applied at cycle ``t``, and an
``L``-stage unit's outputs line up with inputs ``L - 1`` cycles earlier.

Two evaluation kernels exist:

* the default **compiled** kernel (see :mod:`repro.hdl.sim.compile`)
  runs straight-line generated code — one statement per gate — and is
  what every hot path uses;
* the historic **interpreted** kernel (``compiled=False``) dispatches
  through ``cell_eval`` per gate; it is kept as the independent
  reference implementation the equivalence tests compare against.

Both produce bit-identical values.
"""

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.bits.utils import mask, popcount
from repro.errors import SimulationError
from repro.hdl.cell import cell_eval
from repro.hdl.sim.compile import compiled_module
from repro.hdl.sim.toposort import topo_node_order

_M64 = (1 << 64) - 1
_Z8 = bytes(8)


def _delta_swap_masks():
    """(delta, mask) ladder for the in-place 64x64 bit-matrix transpose.

    The matrix lives row-major in one 4096-bit int (row ``r`` at bit
    offset ``64*r``).  At scale ``s`` the upper-right s-by-s sub-block of
    every 2s-by-2s block swaps with its lower-left partner; flat bit
    ``p`` pairs with ``p + 63*s``.  Six rounds (s = 32..1) complete the
    transpose.
    """
    ladder = []
    s = 32
    while s:
        col = sum(1 << c for c in range(64) if (c % (2 * s)) >= s)
        full = sum(col << (64 * r) for r in range(64) if (r % (2 * s)) < s)
        ladder.append((63 * s, full))
        s >>= 1
    return tuple(ladder)


_DELTA_MASKS = _delta_swap_masks()


def bit_transpose(rows, width):
    """Transpose a bit matrix held as a list of ints.

    ``rows[r]`` bit ``c`` becomes bit ``r`` of ``result[c]`` for
    ``c < width``; bits at or beyond ``width`` are ignored.  Works in
    64x64 blocks: each block is packed into one 4096-bit int, transposed
    with six masked delta-swaps, and unpacked straight out of its byte
    image — O(cells/64) word operations instead of one Python-level
    shift/or per bit.

    Both matrix sides are multi-limb: a wide row is converted to its
    byte image **once** and each 64x64 block slices an 8-byte limb out
    of it; output columns spanning several row blocks accumulate into
    per-column byte buffers materialized with one ``int.from_bytes`` at
    the end.  Packing therefore stays linear in the total bit count at
    W×64-pattern superword widths, where the historic per-block big-int
    ``>> cbase`` / ``|= << rbase`` arithmetic went quadratic.
    """
    cols = [0] * width
    n_rows = len(rows)
    if not n_rows or not width:
        return cols
    n_cblocks = (width + 63) >> 6
    span_bytes = n_cblocks << 3
    span_mask = (1 << (n_cblocks << 6)) - 1
    single_rblock = n_rows <= 64
    col_bytes = ((n_rows + 63) >> 6) << 3
    acc = None if single_rblock else [None] * width
    for rbase in range(0, n_rows, 64):
        rchunk = rows[rbase:rbase + 64]
        if n_cblocks == 1:
            blk = bytearray(512)
            for j, r in enumerate(rchunk):
                if r:
                    blk[8 * j:8 * j + 8] = (r & _M64).to_bytes(8, "little")
            blocks = (bytes(blk),)
        else:
            images = [(r & span_mask).to_bytes(span_bytes, "little")
                      if r else None for r in rchunk]
            blocks = []
            for cb in range(n_cblocks):
                off = cb << 3
                blk = bytearray(512)
                for j, img in enumerate(images):
                    if img is not None:
                        blk[8 * j:8 * j + 8] = img[off:off + 8]
                blocks.append(bytes(blk))
        for cb, raw in enumerate(blocks):
            m = int.from_bytes(raw, "little")
            if not m:
                continue
            for delta, mk in _DELTA_MASKS:
                t = ((m >> delta) ^ m) & mk
                m ^= t ^ (t << delta)
            image = m.to_bytes(512, "little")
            cbase = cb << 6
            hi = min(64, width - cbase)
            if single_rblock:
                for i in range(hi):
                    chunk = image[8 * i:8 * i + 8]
                    if chunk != _Z8:
                        cols[cbase + i] = int.from_bytes(chunk, "little")
            else:
                rshift = rbase >> 3
                for i in range(hi):
                    chunk = image[8 * i:8 * i + 8]
                    if chunk != _Z8:
                        buf = acc[cbase + i]
                        if buf is None:
                            buf = acc[cbase + i] = bytearray(col_bytes)
                        buf[rshift:rshift + 8] = chunk
    if not single_rblock:
        for c, buf in enumerate(acc):
            if buf is not None:
                cols[c] = int.from_bytes(buf, "little")
    return cols


@dataclass
class SimRun:
    """Result of one levelized run."""

    n_patterns: int
    values: List[int]           # per net: packed pattern values

    def net_value(self, net, t):
        return (self.values[net] >> t) & 1

    def bus_word(self, bus, t):
        """Assemble the integer word on ``bus`` (LSB-first) at pattern t."""
        word = 0
        for i, net in enumerate(bus):
            word |= ((self.values[net] >> t) & 1) << i
        return word

    def bus_words(self, bus):
        """All patterns' words on ``bus`` (LSB-first), one per pattern.

        The bulk counterpart of :meth:`bus_word`: a block bit-matrix
        transpose of the packed per-net pattern words instead of one
        bit-poke per wire per pattern, which is what verification loops
        over whole runs want.  ``bus_words(bus)[t] == bus_word(bus, t)``
        always.
        """
        return bit_transpose([self.values[net] for net in bus],
                             self.n_patterns)

    def toggles_per_net(self):
        """Zero-delay toggle count of every net across consecutive patterns."""
        m = mask(self.n_patterns - 1) if self.n_patterns > 1 else 0
        return [popcount((v ^ (v >> 1)) & m) for v in self.values]


@dataclass
class SegmentedRun:
    """Result of one superword run over concatenated independent segments.

    ``values`` are ordinary packed pattern words covering every segment
    back to back; ``segments[i]`` is segment ``i``'s ``(offset,
    n_patterns)`` window.  Because the register shifts were masked at
    each segment's first pattern, bits ``offset .. offset+n-1`` of every
    net are **bit-identical** to an independent
    :meth:`LevelizedSimulator.run` over that segment alone — consumers
    may therefore window straight into the shared words (toggle counts,
    glitch-replay seeding) without extracting per-segment copies.
    """

    segments: List[Tuple[int, int]]      # (offset, n_patterns) per segment
    values: List[int]                    # per net: packed pattern words

    @property
    def n_patterns(self):
        """Total patterns across every segment (the superword width)."""
        off, n = self.segments[-1]
        return off + n

    def segment_run(self, i):
        """Segment ``i`` extracted as an independent :class:`SimRun`."""
        off, n = self.segments[i]
        m = mask(n)
        return SimRun(n_patterns=n,
                      values=[(v >> off) & m for v in self.values])

    def toggles_per_net(self, i):
        """Zero-delay toggles of every net *within* segment ``i``.

        Equal to ``segment_run(i).toggles_per_net()`` without the
        extraction: the transition window is just the segment's pattern
        mask shifted to its offset.
        """
        off, n = self.segments[i]
        m = (mask(n - 1) << off) if n > 1 else 0
        return [popcount((v ^ (v >> 1)) & m) for v in self.values]


def segment_plan(lengths):
    """``(segments, total, boundary_bits)`` for concatenated runs.

    ``segments`` are ``(offset, n_patterns)`` pairs, ``boundary_bits``
    has a 1 at each segment's first pattern — the positions whose
    register shift-in must be cleared so every segment starts from a
    zeroed flip-flop bank, exactly like an independent run.
    """
    segments = []
    boundary = 0
    off = 0
    for n in lengths:
        if n < 1:
            raise SimulationError("every segment needs at least one pattern")
        segments.append((off, n))
        boundary |= 1 << off
        off += n
    if not segments:
        raise SimulationError("need at least one segment")
    return segments, off, boundary


class LevelizedSimulator:
    """Topologically ordered bit-parallel evaluator for one module."""

    def __init__(self, module, compiled=True):
        self.module = module
        self._kernel = compiled_module(module) if compiled else None
        self._order = (self._kernel.order if self._kernel is not None
                       else topo_node_order(module))

    def run(self, stimulus, n_patterns):
        """Simulate ``n_patterns`` patterns.

        ``stimulus`` maps input bus names to lists of integer words, one
        per pattern (missing patterns default to 0; missing buses raise).
        """
        module = self.module
        if n_patterns < 1:
            raise SimulationError("need at least one pattern")
        for name in module.inputs:
            if name not in stimulus:
                raise SimulationError(f"no stimulus for input bus {name!r}")
        m = mask(n_patterns)
        values = [0] * module.n_nets
        for name, bus in module.inputs.items():
            packed = bit_transpose(stimulus[name][:n_patterns], len(bus))
            for i, net in enumerate(bus):
                values[net] = packed[i]
        for net, cval in module.constants.items():
            values[net] = m if cval else 0

        if self._kernel is not None:
            self._kernel.run_levelized(values, m)
        else:
            self._run_interpreted(values, m)
        return SimRun(n_patterns=n_patterns, values=values)

    def run_segments(self, jobs):
        """Simulate several independent stimulus sequences in ONE kernel
        invocation — a W×64-pattern superword settle pass.

        ``jobs`` is a sequence of ``(stimulus, n_patterns)`` pairs (each
        exactly as :meth:`run` takes them).  The per-input pattern lists
        are concatenated back to back into one wide word and the
        register time shifts are masked at each segment's first pattern
        (``q = (d << 1) & m & ~boundary``), so segment ``k`` never sees
        segment ``k-1``'s trailing flip-flop state.  The returned
        :class:`SegmentedRun` is therefore **bit-identical**, segment by
        segment, to ``len(jobs)`` separate :meth:`run` calls — while
        paying the per-gate interpreter overhead once.
        """
        module = self.module
        lengths = [n for __, n in jobs]
        segments, total, boundary = segment_plan(lengths)
        for stimulus, __ in jobs:
            for name in module.inputs:
                if name not in stimulus:
                    raise SimulationError(
                        f"no stimulus for input bus {name!r}")
        m = mask(total)
        reg_mask = m & ~boundary
        values = [0] * module.n_nets
        for name, bus in module.inputs.items():
            merged = []
            for (stimulus, n) in jobs:
                words = list(stimulus[name][:n])
                if len(words) < n:
                    words.extend([0] * (n - len(words)))
                merged.extend(words)
            packed = bit_transpose(merged, len(bus))
            for i, net in enumerate(bus):
                values[net] = packed[i]
        for net, cval in module.constants.items():
            values[net] = m if cval else 0

        if self._kernel is not None:
            self._kernel.run_levelized(values, m, reg_mask)
        else:
            self._run_interpreted(values, m, reg_mask)
        return SegmentedRun(segments=segments, values=values)

    def _run_interpreted(self, values, m, reg_mask=None):
        """Per-gate ``cell_eval`` dispatch — the reference kernel."""
        gates = self.module.gates
        registers = self.module.registers
        if reg_mask is None:
            reg_mask = m
        for node in self._order:
            if node >= 0:
                gate = gates[node]
                fn = cell_eval(gate.kind)
                ins = gate.inputs
                if len(ins) == 1:
                    values[gate.output] = fn(m, values[ins[0]]) & m
                elif len(ins) == 2:
                    values[gate.output] = fn(m, values[ins[0]],
                                             values[ins[1]]) & m
                elif len(ins) == 3:
                    values[gate.output] = fn(m, values[ins[0]],
                                             values[ins[1]],
                                             values[ins[2]]) & m
                else:
                    values[gate.output] = fn(
                        m, *[values[n] for n in ins]) & m
            else:
                reg = registers[-node - 1]
                values[reg.q] = (values[reg.d] << 1) & reg_mask
