"""Bit-parallel levelized (zero-delay) simulation.

Every net value is a Python int whose bit ``t`` is the net's logic value
in pattern/cycle ``t`` — bitwise gate evaluation then simulates **all
patterns at once**, which is what makes exhaustive functional
verification of 30k-gate multipliers practical in pure Python.

Registers become *time shifts*: ``q = d << 1`` moves every pattern one
cycle later, exactly the behaviour of a flip-flop bank in a feed-forward
pipeline (cycle ``t`` sees the previous cycle's ``d``).  Pattern ``t``
of a primary input is therefore the word applied at cycle ``t``, and an
``L``-stage unit's outputs line up with inputs ``L - 1`` cycles earlier.

Two evaluation kernels exist:

* the default **compiled** kernel (see :mod:`repro.hdl.sim.compile`)
  runs straight-line generated code — one statement per gate — and is
  what every hot path uses;
* the historic **interpreted** kernel (``compiled=False``) dispatches
  through ``cell_eval`` per gate; it is kept as the independent
  reference implementation the equivalence tests compare against.

Both produce bit-identical values.
"""

from dataclasses import dataclass
from typing import Dict, List

from repro.bits.utils import mask, popcount
from repro.errors import SimulationError
from repro.hdl.cell import cell_eval
from repro.hdl.sim.compile import compiled_module
from repro.hdl.sim.toposort import topo_node_order

_M64 = (1 << 64) - 1


def _delta_swap_masks():
    """(delta, mask) ladder for the in-place 64x64 bit-matrix transpose.

    The matrix lives row-major in one 4096-bit int (row ``r`` at bit
    offset ``64*r``).  At scale ``s`` the upper-right s-by-s sub-block of
    every 2s-by-2s block swaps with its lower-left partner; flat bit
    ``p`` pairs with ``p + 63*s``.  Six rounds (s = 32..1) complete the
    transpose.
    """
    ladder = []
    s = 32
    while s:
        col = sum(1 << c for c in range(64) if (c % (2 * s)) >= s)
        full = sum(col << (64 * r) for r in range(64) if (r % (2 * s)) < s)
        ladder.append((63 * s, full))
        s >>= 1
    return tuple(ladder)


_DELTA_MASKS = _delta_swap_masks()


def bit_transpose(rows, width):
    """Transpose a bit matrix held as a list of ints.

    ``rows[r]`` bit ``c`` becomes bit ``r`` of ``result[c]`` for
    ``c < width``; bits at or beyond ``width`` are ignored.  Works in
    64x64 blocks: each block is packed into one 4096-bit int, transposed
    with six masked delta-swaps, and unpacked straight out of its byte
    image — O(cells/64) word operations instead of one Python-level
    shift/or per bit, which is what makes 64-pattern stimulus packing
    and result demux cheap relative to the gate-evaluation kernel.
    """
    cols = [0] * width
    for rbase in range(0, len(rows), 64):
        rchunk = rows[rbase:rbase + 64]
        for cbase in range(0, width, 64):
            if cbase:
                block = [(r >> cbase) & _M64 for r in rchunk]
            else:
                block = [r & _M64 for r in rchunk]
            m = int.from_bytes(
                b"".join(w.to_bytes(8, "little") for w in block), "little")
            if not m:
                continue
            for delta, mk in _DELTA_MASKS:
                t = ((m >> delta) ^ m) & mk
                m ^= t ^ (t << delta)
            image = m.to_bytes(512, "little")
            hi = min(64, width - cbase)
            if rbase:
                for i in range(hi):
                    w = int.from_bytes(image[8 * i:8 * i + 8], "little")
                    if w:
                        cols[cbase + i] |= w << rbase
            else:
                for i in range(hi):
                    cols[cbase + i] = int.from_bytes(
                        image[8 * i:8 * i + 8], "little")
    return cols


@dataclass
class SimRun:
    """Result of one levelized run."""

    n_patterns: int
    values: List[int]           # per net: packed pattern values

    def net_value(self, net, t):
        return (self.values[net] >> t) & 1

    def bus_word(self, bus, t):
        """Assemble the integer word on ``bus`` (LSB-first) at pattern t."""
        word = 0
        for i, net in enumerate(bus):
            word |= ((self.values[net] >> t) & 1) << i
        return word

    def bus_words(self, bus):
        """All patterns' words on ``bus`` (LSB-first), one per pattern.

        The bulk counterpart of :meth:`bus_word`: a block bit-matrix
        transpose of the packed per-net pattern words instead of one
        bit-poke per wire per pattern, which is what verification loops
        over whole runs want.  ``bus_words(bus)[t] == bus_word(bus, t)``
        always.
        """
        return bit_transpose([self.values[net] for net in bus],
                             self.n_patterns)

    def toggles_per_net(self):
        """Zero-delay toggle count of every net across consecutive patterns."""
        m = mask(self.n_patterns - 1) if self.n_patterns > 1 else 0
        return [popcount((v ^ (v >> 1)) & m) for v in self.values]


class LevelizedSimulator:
    """Topologically ordered bit-parallel evaluator for one module."""

    def __init__(self, module, compiled=True):
        self.module = module
        self._kernel = compiled_module(module) if compiled else None
        self._order = (self._kernel.order if self._kernel is not None
                       else topo_node_order(module))

    def run(self, stimulus, n_patterns):
        """Simulate ``n_patterns`` patterns.

        ``stimulus`` maps input bus names to lists of integer words, one
        per pattern (missing patterns default to 0; missing buses raise).
        """
        module = self.module
        if n_patterns < 1:
            raise SimulationError("need at least one pattern")
        for name in module.inputs:
            if name not in stimulus:
                raise SimulationError(f"no stimulus for input bus {name!r}")
        m = mask(n_patterns)
        values = [0] * module.n_nets
        for name, bus in module.inputs.items():
            packed = bit_transpose(stimulus[name][:n_patterns], len(bus))
            for i, net in enumerate(bus):
                values[net] = packed[i]
        for net, cval in module.constants.items():
            values[net] = m if cval else 0

        if self._kernel is not None:
            self._kernel.run_levelized(values, m)
        else:
            self._run_interpreted(values, m)
        return SimRun(n_patterns=n_patterns, values=values)

    def _run_interpreted(self, values, m):
        """Per-gate ``cell_eval`` dispatch — the reference kernel."""
        gates = self.module.gates
        registers = self.module.registers
        for node in self._order:
            if node >= 0:
                gate = gates[node]
                fn = cell_eval(gate.kind)
                ins = gate.inputs
                if len(ins) == 1:
                    values[gate.output] = fn(m, values[ins[0]]) & m
                elif len(ins) == 2:
                    values[gate.output] = fn(m, values[ins[0]],
                                             values[ins[1]]) & m
                elif len(ins) == 3:
                    values[gate.output] = fn(m, values[ins[0]],
                                             values[ins[1]],
                                             values[ins[2]]) & m
                else:
                    values[gate.output] = fn(
                        m, *[values[n] for n in ins]) & m
            else:
                reg = registers[-node - 1]
                values[reg.q] = (values[reg.d] << 1) & m
