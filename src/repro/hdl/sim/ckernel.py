"""Optional compiled event kernel (C via the system compiler + ctypes).

The Python wheel engine (:mod:`repro.hdl.sim.event`) is limited by
CPython's per-operation cost: a glitch replay of one cycle transition on
the 20k-gate radix-16 multiplier is ~100k interpreter operations no
matter how the loop is written.  This module removes the interpreter
from the inner loop entirely: a ~150-line C translation of the event
algorithm is compiled **once** with the system C compiler (``cc`` /
``gcc``, or ``$CC``), cached as a shared library under the repository's
``.cache/`` directory, and driven through :mod:`ctypes` — no third-party
packages, no build system, and a clean fallback to the pure-Python
engines when no compiler is available (or ``REPRO_NO_CKERNEL=1`` is
set).

Bit-identity with the Python engines is structural, not incidental:

* events are ordered by the total order ``(maturity time, schedule
  sequence number)`` — sequence numbers are unique, so *any* correct
  priority queue pops the identical event sequence as Python's
  ``heapq`` (the kernel uses a plain binary heap);
* maturity times are IEEE-754 double sums of the same per-gate delays
  Python computes with ``float`` — identical values, identical
  coincidences, identical comparisons;
* gate evaluation uses a 16-entry truth table per cell kind, indexed by
  the concatenated input bits — exhaustively equal to ``cell_eval`` by
  construction (and swept by a unit test);
* the inertial-cancellation rule (only the latest scheduled evaluation
  of a net is live) is carried over verbatim, including the
  counts-a-cancellation and skips-a-no-op bookkeeping.

The exported entry point replays a *window* of cycle transitions in one
call: per-stimulus-net value words (bit ``i`` = value in the window's
cycle ``i``) are expanded to per-transition deltas inside the kernel,
so Python overhead is O(stimulus nets) per window rather than per
event.
"""

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

from repro.errors import SimulationError

#: Transitions per kernel call — one bit of the stimulus words each,
#: plus bit 0 for the seed cycle, bounded by the 64-bit word.
WINDOW_TRANSITIONS = 63

_U64 = (1 << 64) - 1

#: Gate arity the truth-table evaluation supports (covers every kind in
#: ``CELL_KINDS``; modules exceeding it simply fall back to Python).
MAX_INPUTS = 4

_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>

/* One pending output event.  Ordered by (t, seq); seq is unique, so the
 * order is total and the pop sequence matches Python's heapq exactly. */
typedef struct {
    double t;
    int64_t seq;
    int32_t net;
    int32_t val;
} Ev;

typedef struct {
    Ev *a;
    int64_t len, cap;
} Heap;

static int ev_less(const Ev *x, const Ev *y)
{
    if (x->t != y->t)
        return x->t < y->t;
    return x->seq < y->seq;
}

static int heap_push(Heap *h, Ev e)
{
    if (h->len == h->cap) {
        int64_t nc = h->cap ? h->cap * 2 : 4096;
        Ev *na = (Ev *)realloc(h->a, (size_t)nc * sizeof(Ev));
        if (!na)
            return -1;
        h->a = na;
        h->cap = nc;
    }
    int64_t i = h->len++;
    while (i > 0) {
        int64_t p = (i - 1) >> 1;
        if (ev_less(&e, &h->a[p])) {
            h->a[i] = h->a[p];
            i = p;
        } else {
            break;
        }
    }
    h->a[i] = e;
    return 0;
}

static Ev heap_pop(Heap *h)
{
    Ev top = h->a[0];
    Ev last = h->a[--h->len];
    int64_t i = 0;
    for (;;) {
        int64_t c = 2 * i + 1;
        if (c >= h->len)
            break;
        if (c + 1 < h->len && ev_less(&h->a[c + 1], &h->a[c]))
            c++;
        if (ev_less(&h->a[c], &last)) {
            h->a[i] = h->a[c];
            i = c;
        } else {
            break;
        }
    }
    h->a[i] = last;
    return top;
}

/* Replay `transitions` cycle transitions.
 *
 * gin:   4 input net ids per gate (unused slots repeat input 0 — the
 *        truth table's output is replicated over the padded bits).
 * ttab:  16-entry truth table per gate, indexed by concatenated input
 *        bits (in0 | in1<<1 | in2<<2 | in3<<3).
 * fo_ptr/fo_dat: CSR fanout (net -> driven gate indices).
 * values/live_seq: persistent simulator state (callee-updated).
 * stim_words: per stimulus net, bit i = the net's value in the window's
 *        cycle i (bit 0 = the already-settled seed cycle).
 * stats: [0] in/out monotone schedule counter, [1] out events
 *        processed, [2] out inertial cancellations.
 * settle_out: settle time (ps) of the final transition.
 *
 * Returns events processed, or -1 on allocation failure.
 */
int64_t sim_replay(
    int32_t n_nets, int32_t n_gates,
    const int32_t *gin, const uint16_t *ttab,
    const int32_t *gout, const double *gdelay,
    const int32_t *fo_ptr, const int32_t *fo_dat,
    uint8_t *values, int64_t *live_seq,
    const int32_t *stim_net, const uint64_t *stim_words, int32_t n_stim,
    int32_t transitions,
    int64_t *toggles, int64_t *stats, double *settle_out)
{
    (void)n_nets;
    (void)n_gates;
    Heap h = { 0, 0, 0 };
    int32_t *changed =
        (int32_t *)malloc(sizeof(int32_t) * (size_t)(n_stim ? n_stim : 1));
    if (!changed)
        return -1;
    int64_t counter = stats[0];
    int64_t events = 0, cancelled = 0;
    double settle = 0.0;
    int fail = 0;

    for (int32_t tr = 1; tr <= transitions && !fail; tr++) {
        /* Stimulus delta: step every stimulus net (canonical order)
         * to its cycle-tr value; count the functional toggles. */
        int32_t nc = 0;
        for (int32_t i = 0; i < n_stim; i++) {
            uint8_t v = (uint8_t)((stim_words[i] >> tr) & 1u);
            int32_t net = stim_net[i];
            if (values[net] != v) {
                values[net] = v;
                toggles[net]++;
                changed[nc++] = net;
            }
        }
        settle = 0.0;

        /* Schedule the fanout of the changed nets at t = 0, then run
         * the event loop to quiescence.  This is the heap engine's
         * algorithm verbatim; see repro/hdl/sim/event.py. */
        for (int32_t j = 0; j < nc && !fail; j++) {
            int32_t net = changed[j];
            for (int32_t k = fo_ptr[net]; k < fo_ptr[net + 1]; k++) {
                int32_t g = fo_dat[k];
                const int32_t *in = gin + 4 * (int64_t)g;
                int idx = values[in[0]] | (values[in[1]] << 1)
                        | (values[in[2]] << 2) | (values[in[3]] << 3);
                int32_t val = (ttab[g] >> idx) & 1;
                counter++;
                int32_t out = gout[g];
                live_seq[out] = counter;
                Ev e = { gdelay[g], counter, out, val };
                if (heap_push(&h, e)) {
                    fail = 1;
                    break;
                }
            }
        }
        while (h.len && !fail) {
            Ev e = heap_pop(&h);
            events++;
            if (e.seq != live_seq[e.net]) {
                cancelled++;    /* cancelled by a newer evaluation */
                continue;
            }
            if (values[e.net] == (uint8_t)e.val)
                continue;
            values[e.net] = (uint8_t)e.val;
            toggles[e.net]++;
            settle = e.t;
            for (int32_t k = fo_ptr[e.net]; k < fo_ptr[e.net + 1]; k++) {
                int32_t g = fo_dat[k];
                const int32_t *in = gin + 4 * (int64_t)g;
                int idx = values[in[0]] | (values[in[1]] << 1)
                        | (values[in[2]] << 2) | (values[in[3]] << 3);
                int32_t val = (ttab[g] >> idx) & 1;
                counter++;
                int32_t out = gout[g];
                live_seq[out] = counter;
                Ev e2 = { e.t + gdelay[g], counter, out, val };
                if (heap_push(&h, e2)) {
                    fail = 1;
                    break;
                }
            }
        }
    }

    free(changed);
    free(h.a);
    if (fail)
        return -1;
    stats[0] = counter;
    stats[1] = events;
    stats[2] = cancelled;
    *settle_out = settle;
    return events;
}
"""

_lib = None
_load_attempted = False


def _cache_dir():
    """Where the compiled shared library lives.

    ``REPRO_CKERNEL_CACHE`` overrides; the default is the repository's
    ``.cache/ckernel/`` (this file is ``<repo>/src/repro/hdl/sim/``),
    with the system temp directory as a last resort for installed
    trees.
    """
    env = os.environ.get("REPRO_CKERNEL_CACHE")
    candidates = []
    if env:
        candidates.append(Path(env))
    candidates.append(
        Path(__file__).resolve().parents[4] / ".cache" / "ckernel")
    candidates.append(Path(tempfile.gettempdir()) / "repro-ckernel")
    for cand in candidates:
        try:
            cand.mkdir(parents=True, exist_ok=True)
            return cand
        except OSError:
            continue
    raise OSError("no writable cache directory for the compiled kernel")


def _build_and_load():
    cache = _cache_dir()
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    so_path = cache / f"eventkernel-{digest}.so"
    if not so_path.exists():
        cc = (os.environ.get("CC") or shutil.which("cc")
              or shutil.which("gcc"))
        if not cc:
            return None
        c_path = cache / f"eventkernel-{digest}.c"
        c_path.write_text(_SOURCE)
        tmp_path = cache / f"eventkernel-{digest}.{os.getpid()}.tmp.so"
        subprocess.run(
            [cc, "-O2", "-std=c99", "-fPIC", "-shared",
             "-o", str(tmp_path), str(c_path)],
            check=True, capture_output=True)
        os.replace(tmp_path, so_path)   # atomic: races just re-link
    lib = ctypes.CDLL(str(so_path))
    fn = lib.sim_replay
    fn.restype = ctypes.c_int64
    fn.argtypes = [
        ctypes.c_int32, ctypes.c_int32,
        ctypes.POINTER(ctypes.c_int32), ctypes.POINTER(ctypes.c_uint16),
        ctypes.POINTER(ctypes.c_int32), ctypes.POINTER(ctypes.c_double),
        ctypes.POINTER(ctypes.c_int32), ctypes.POINTER(ctypes.c_int32),
        ctypes.POINTER(ctypes.c_uint8), ctypes.POINTER(ctypes.c_int64),
        ctypes.POINTER(ctypes.c_int32), ctypes.POINTER(ctypes.c_uint64),
        ctypes.c_int32,
        ctypes.c_int32,
        ctypes.POINTER(ctypes.c_int64), ctypes.POINTER(ctypes.c_int64),
        ctypes.POINTER(ctypes.c_double),
    ]
    return lib


def load_kernel():
    """The loaded kernel library, or ``None`` when unavailable.

    First call compiles (or re-links) the shared library; failures of
    any kind — no compiler, unwritable cache, compile error — disable
    the kernel for the process and the Python engines take over.
    """
    global _lib, _load_attempted
    if _load_attempted:
        return _lib
    _load_attempted = True
    if os.environ.get("REPRO_NO_CKERNEL", ""):
        return None
    try:
        _lib = _build_and_load()
    except Exception:
        _lib = None
    return _lib


def supports(module):
    """Whether the kernel's truth-table evaluation covers this module."""
    return all(len(g.inputs) <= MAX_INPUTS for g in module.gates)


def truth_table(eval_fn, arity):
    """The 16-entry truth table of ``eval_fn`` over ``arity`` inputs.

    Bit ``i`` of the result is the output for input bits
    ``in0 = i&1, in1 = (i>>1)&1, ...``; bits beyond ``arity`` replicate
    the output, so padded input slots never affect it.
    """
    table = 0
    for idx in range(16):
        bits = [(idx >> j) & 1 for j in range(arity)]
        if eval_fn(1, *bits) & 1:
            table |= 1 << idx
    return table


class CKernel:
    """One module + library flattened into the kernel's array layout.

    Holds the persistent simulator state (net values, live sequence
    numbers, accumulated toggles) in ctypes buffers shared with the C
    side; construction is pure preprocessing and involves no C calls.
    """

    def __init__(self, lib, module, delays, evals, fanout, stim_order):
        if not supports(module):
            raise SimulationError(
                "compiled kernel supports gates with at most "
                f"{MAX_INPUTS} inputs")
        self._lib = lib
        self.n_nets = n_nets = module.n_nets
        gates = module.gates
        n_gates = len(gates)
        self._n_gates = n_gates

        gin = (ctypes.c_int32 * (4 * n_gates))()
        ttab = (ctypes.c_uint16 * max(n_gates, 1))()
        gout = (ctypes.c_int32 * max(n_gates, 1))()
        tables = {}
        for idx, gate in enumerate(gates):
            ins = list(gate.inputs)
            table = tables.get(gate.kind)
            if table is None:
                table = truth_table(evals[idx], len(ins))
                tables[gate.kind] = table
            ttab[idx] = table
            gout[idx] = gate.output
            padded = ins + [ins[0]] * (4 - len(ins))
            gin[4 * idx: 4 * idx + 4] = padded
        self._gin = gin
        self._ttab = ttab
        self._gout = gout
        self._gdelay = (ctypes.c_double * max(n_gates, 1))(*delays)

        fo_ptr = (ctypes.c_int32 * (n_nets + 1))()
        total = 0
        for net in range(n_nets):
            fo_ptr[net] = total
            total += len(fanout[net])
        fo_ptr[n_nets] = total
        fo_dat = (ctypes.c_int32 * max(total, 1))()
        pos = 0
        for net in range(n_nets):
            for g in fanout[net]:
                fo_dat[pos] = g
                pos += 1
        self._fo_ptr = fo_ptr
        self._fo_dat = fo_dat

        self._stim_order = list(stim_order)
        n_stim = len(self._stim_order)
        self._stim_net = (ctypes.c_int32 * max(n_stim, 1))(*self._stim_order)
        self._stim_words = (ctypes.c_uint64 * max(n_stim, 1))()

        self.values = (ctypes.c_uint8 * n_nets)()
        self._live_seq = (ctypes.c_int64 * n_nets)()
        self.toggles = (ctypes.c_int64 * n_nets)()
        self._stats = (ctypes.c_int64 * 3)()
        self._settle = (ctypes.c_double * 1)()

    def zero_toggles(self):
        ctypes.memset(self.toggles, 0, ctypes.sizeof(self.toggles))

    def seed(self, packed_values, shift):
        """Load every net's value from bit ``shift`` of its pattern word."""
        values = self.values
        for net in range(self.n_nets):
            values[net] = (packed_values[net] >> shift) & 1

    def run(self, packed_values, shift, transitions):
        """Replay ``transitions`` transitions from the seeded state.

        Stimulus bit ``i`` (``0 <= i <= transitions``) of each net's
        word is its value in cycle ``shift + i``; toggles accumulate
        into :attr:`toggles`.  Returns ``(events, cancelled, settle)``.
        """
        if not 1 <= transitions <= WINDOW_TRANSITIONS:
            raise SimulationError(
                f"kernel window must be 1..{WINDOW_TRANSITIONS} transitions")
        words = self._stim_words
        for i, net in enumerate(self._stim_order):
            words[i] = (packed_values[net] >> shift) & _U64
        rc = self._lib.sim_replay(
            self.n_nets, self._n_gates,
            self._gin, self._ttab, self._gout, self._gdelay,
            self._fo_ptr, self._fo_dat,
            self.values, self._live_seq,
            self._stim_net, words, len(self._stim_order),
            transitions,
            self.toggles, self._stats, self._settle)
        if rc < 0:
            raise SimulationError("compiled event kernel allocation failure")
        return self._stats[1], self._stats[2], self._settle[0]
