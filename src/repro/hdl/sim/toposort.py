"""Shared Kahn topological ordering over netlist nodes.

Every consumer of a :class:`~repro.hdl.module.Module` that needs an
evaluation order — the levelized simulator, the event simulator's
zero-delay settle, static timing, pipeline staging, validation — used to
carry its own copy of Kahn's algorithm.  They all live here now, in two
flavours:

* :func:`topo_gate_order` — combinational gates only; register outputs
  (and primary inputs / constants) are treated as sources.
* :func:`topo_node_order` — gates *and* registers; register nodes are
  encoded as ``-1 - register_index`` so a single signed list carries
  both (the levelized simulator's register-as-time-shift model needs
  registers in the order too).

Ordering is deterministic: ties are broken LIFO exactly as the historic
per-module copies did, so evaluation orders (and therefore any
order-sensitive float accumulation downstream) are unchanged.
"""

from repro.errors import SimulationError


def topo_gate_order(module, error=SimulationError):
    """Indices of ``module.gates`` in dependency order.

    Register q nets are *not* produced by any node here, so feedback
    through registers is allowed; a combinational cycle raises
    ``error``.
    """
    gates = module.gates
    producers = {}
    for idx, gate in enumerate(gates):
        producers[gate.output] = idx
    indegree = [0] * len(gates)
    consumers = [[] for _ in range(len(gates))]
    for idx, gate in enumerate(gates):
        for net in gate.inputs:
            if net in producers:
                indegree[idx] += 1
                consumers[producers[net]].append(idx)
    order = _kahn(indegree, consumers)
    if len(order) != len(gates):
        raise error("netlist has a combinational cycle")
    return order


def topo_node_order(module, error=SimulationError):
    """Gate indices (``>= 0``) and register codes (``-1 - ridx``), ordered.

    Registers participate as nodes with a d -> q edge, so the result is
    an evaluation order for the *fully acyclic* view the feed-forward
    pipelines here require; any cycle (even one through a register)
    raises ``error``.
    """
    producers = {}
    node_inputs = []
    node_ids = []
    for idx, gate in enumerate(module.gates):
        producers[gate.output] = len(node_ids)
        node_inputs.append(gate.inputs)
        node_ids.append(idx)
    for ridx, reg in enumerate(module.registers):
        producers[reg.q] = len(node_ids)
        node_inputs.append((reg.d,))
        node_ids.append(-1 - ridx)

    indegree = [0] * len(node_ids)
    consumers = [[] for _ in range(len(node_ids))]
    for node, nets in enumerate(node_inputs):
        for net in nets:
            if net in producers:
                indegree[node] += 1
                consumers[producers[net]].append(node)
    order = _kahn(indegree, consumers)
    if len(order) != len(node_ids):
        raise error("netlist has a combinational cycle")
    return [node_ids[node] for node in order]


def _kahn(indegree, consumers):
    ready = [node for node, deg in enumerate(indegree) if deg == 0]
    order = []
    while ready:
        node = ready.pop()
        order.append(node)
        for consumer in consumers[node]:
            indegree[consumer] -= 1
            if indegree[consumer] == 0:
                ready.append(consumer)
    return order
