"""Netlist compile pass: flatten once, specialize via source codegen.

The interpreting simulators pay a per-gate dispatch tax on every
evaluation: fetch the ``Gate`` dataclass, look up its ``cell_eval``
function, branch on arity, build an argument list.  On a 20k-gate
multiplier that tax dominates the runtime of both the levelized runs and
the event-driven glitch replay.

This module removes it by *compiling* a :class:`~repro.hdl.module.Module`
exactly once into

* a **levelized kernel** — straight-line Python source, one statement
  per gate/register in topological order, operating bit-parallel on the
  packed pattern words (``v[out] = M ^ (v[a] & v[b])`` …), built with
  ``compile()``/``exec`` and chunked into several functions to keep the
  code objects small;
* a **scalar settle kernel** — the same straight-line code over the
  combinational gates only (mask fixed to 1), used by the event
  simulator to settle the network from scratch;
* **per-gate evaluation closures** — one zero-argument lambda per gate
  that recomputes the gate's scalar output from the simulator's live
  ``values`` list, used in the event simulator's inner scheduling loop.

Generated expressions mirror :data:`repro.hdl.cell.CELL_KINDS` exactly
(a unit test sweeps every kind against ``cell_eval``), and because the
kernels evaluate the same exact integer operations in the same
topological discipline, compiled results are **bit-identical** to the
interpreters' — the compile pass is a pure speedup.

Compilation results are cached per ``Module`` instance (weakly, so
modules remain collectable); mutating a module after first compile is
detected by a cheap shape check and triggers recompilation.
"""

import weakref
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro import obs
from repro.errors import NetlistError
from repro.hdl.cell import CELL_KINDS
from repro.hdl.sim.toposort import topo_gate_order, topo_node_order

#: kind -> expression template.  ``{M}`` is the all-patterns mask
#: (``1`` in scalar mode); positional fields are operand expressions.
#: Semantics must mirror ``CELL_KINDS`` — tested kind-by-kind.
EXPR_TEMPLATES = {
    "INV": "({M} ^ {0})",
    "BUF": "{0}",
    "AND2": "({0} & {1})",
    "AND3": "({0} & {1} & {2})",
    "OR2": "({0} | {1})",
    "OR3": "({0} | {1} | {2})",
    "NAND2": "({M} ^ ({0} & {1}))",
    "NAND3": "({M} ^ ({0} & {1} & {2}))",
    "NOR2": "({M} ^ ({0} | {1}))",
    "NOR3": "({M} ^ ({0} | {1} | {2}))",
    "XOR2": "({0} ^ {1})",
    "XNOR2": "({M} ^ {0} ^ {1})",
    "XOR3": "({0} ^ {1} ^ {2})",
    "MAJ3": "(({0} & {1}) | ({0} & {2}) | ({1} & {2}))",
    "MUX2": "({0} ^ (({0} ^ {1}) & {2}))",
    "AOI21": "({M} ^ (({0} & {1}) | {2}))",
    "OAI21": "({M} ^ (({0} | {1}) & {2}))",
    "AO22": "(({0} & {1}) | ({2} & {3}))",
    "OA22": "(({0} | {1}) & ({2} | {3}))",
}

_missing = set(CELL_KINDS) - set(EXPR_TEMPLATES)
if _missing:  # pragma: no cover - import-time sync guard
    raise NetlistError(f"no codegen template for cell kinds: {sorted(_missing)}")

#: Statements per generated function.  Keeps individual code objects a
#: comfortable size for CPython's compiler without fragmenting the work.
CHUNK_STATEMENTS = 4000


def gate_expr(gate, mask_name="M"):
    """The Python expression recomputing ``gate``'s output from ``v``."""
    try:
        template = EXPR_TEMPLATES[gate.kind]
    except KeyError:
        raise NetlistError(f"unknown cell kind {gate.kind!r}") from None
    return template.format(*[f"v[{net}]" for net in gate.inputs], M=mask_name)


def _compile_chunks(statements, tag):
    """Exec chunks of statements as ``def _k(v, M, R)`` functions.

    ``M`` is the all-patterns mask; ``R`` is the register shift mask
    (``M`` for a plain run, ``M & ~segment_starts`` for a segmented
    superword run — see :meth:`CompiledModule.run_levelized`).
    """
    fns = []
    with obs.span("compile:kernel", cat="compile", tag=tag,
                  statements=len(statements)):
        for start in range(0, len(statements), CHUNK_STATEMENTS):
            body = statements[start:start + CHUNK_STATEMENTS] or ["pass"]
            src = "def _k(v, M, R):\n    " + "\n    ".join(body)
            namespace = {}
            code = compile(src, f"<repro.hdl.sim.compile:{tag}:{start}>",
                           "exec")
            exec(code, namespace)
            fns.append(namespace["_k"])
    obs.registry().inc("compile.kernels")
    return fns


def _compile_eval_factories(gates, tag, mask_name="1"):
    """Exec chunks of ``lambda:`` appends building per-gate closures.

    With the default ``mask_name="1"`` the closures are scalar (the
    event simulator's case).  With ``mask_name="M"`` the generated
    functions take the all-patterns mask as an argument and the closures
    evaluate **bit-parallel** over the packed pattern words — what the
    differential fault engine binds against its overlay value list.
    """
    fns = []
    gates = list(gates)
    args = "v, a" if mask_name == "1" else "v, M, a"
    with obs.span("compile:kernel", cat="compile", tag=tag,
                  statements=len(gates)):
        for start in range(0, len(gates), CHUNK_STATEMENTS):
            body = [f"a(lambda: {gate_expr(g, mask_name=mask_name)})"
                    for g in gates[start:start + CHUNK_STATEMENTS]] or ["pass"]
            src = f"def _k({args}):\n    " + "\n    ".join(body)
            namespace = {}
            code = compile(src, f"<repro.hdl.sim.compile:{tag}:{start}>",
                           "exec")
            exec(code, namespace)
            fns.append(namespace["_k"])
    obs.registry().inc("compile.kernels")
    return fns


@dataclass
class CompiledModule:
    """One module flattened and specialized for fast simulation.

    Statement generation (cheap string work) happens at construction;
    the ``compile()``/``exec`` of each of the three kernels is deferred
    to its first use and cached — a consumer that only runs levelized
    patterns (or hands the event loop to the compiled C kernel) never
    pays for the kernels it doesn't call.
    """

    n_nets: int
    n_gates: int
    n_registers: int
    #: Levelized node order: gate indices >= 0, registers as -1 - ridx.
    order: List[int]
    #: Combinational-only gate order (register q nets act as sources).
    gate_order: List[int]
    _tag: str = "module"
    _level_stmts: List[str] = field(repr=False, default_factory=list)
    _settle_stmts: List[str] = field(repr=False, default_factory=list)
    _gates: List = field(repr=False, default_factory=list)
    _level_fns: Optional[List[Callable]] = field(repr=False, default=None)
    _settle_fns: Optional[List[Callable]] = field(repr=False, default=None)
    _eval_factories: Optional[List[Callable]] = field(repr=False,
                                                      default=None)
    _masked_eval_factories: Optional[List[Callable]] = field(repr=False,
                                                             default=None)

    def run_levelized(self, values, m, reg_mask=None):
        """Evaluate every gate and register time-shift, bit-parallel.

        ``reg_mask`` (default: ``m``) masks the register time shifts —
        a segmented superword run passes ``m & ~segment_start_bits`` so
        each segment's first pattern sees a cleared flip-flop bank,
        which is exactly what makes concatenated independent stimulus
        sequences bit-identical to separate runs.
        """
        fns = self._level_fns
        if fns is None:
            fns = self._level_fns = _compile_chunks(
                self._level_stmts, f"{self._tag}:levelized")
        if reg_mask is None:
            reg_mask = m
        for fn in fns:
            fn(values, m, reg_mask)

    def settle(self, values):
        """Zero-delay scalar settle of the combinational gates."""
        fns = self._settle_fns
        if fns is None:
            fns = self._settle_fns = _compile_chunks(
                self._settle_stmts, f"{self._tag}:settle")
        for fn in fns:
            fn(values, 1, 1)

    def make_gate_evals(self, values):
        """Per-gate re-evaluation closures over ``values``.

        Index ``g`` of the returned list recomputes gate ``g``'s output
        from the current ``values`` — the event simulator's inner loop
        calls these instead of dispatching through ``cell_eval``.
        """
        factories = self._eval_factories
        if factories is None:
            factories = self._eval_factories = _compile_eval_factories(
                self._gates, f"{self._tag}:evals")
        evals = []
        for fn in factories:
            fn(values, evals.append)
        return evals

    def make_masked_gate_evals(self, values, m):
        """Bit-parallel per-gate closures under all-patterns mask ``m``.

        Index ``g`` recomputes gate ``g``'s packed pattern word from the
        current ``values`` — the differential fault engine's inner loop.
        The factories are mask-agnostic and cached; the mask binds per
        call, so engines over different pattern counts share them.
        """
        factories = self._masked_eval_factories
        if factories is None:
            factories = self._masked_eval_factories = \
                _compile_eval_factories(self._gates,
                                        f"{self._tag}:masked-evals",
                                        mask_name="M")
        evals = []
        for fn in factories:
            fn(values, m, evals.append)
        return evals

    @property
    def stats(self):
        compiled = [fns for fns in (self._level_fns, self._settle_fns)
                    if fns is not None]
        return {
            "gates": self.n_gates,
            "registers": self.n_registers,
            "kernel_chunks": sum(len(fns) for fns in compiled),
        }


def compile_module(module):
    """Compile ``module`` into a :class:`CompiledModule` (uncached)."""
    with obs.span("compile:module", cat="compile", module=module.name,
                  gates=len(module.gates)):
        return _compile_module(module)


def _compile_module(module):
    order = topo_node_order(module)
    gate_order = topo_gate_order(module)
    gates = module.gates
    registers = module.registers

    level_stmts = []
    for node in order:
        if node >= 0:
            gate = gates[node]
            level_stmts.append(f"v[{gate.output}] = {gate_expr(gate)}")
        else:
            reg = registers[-node - 1]
            level_stmts.append(f"v[{reg.q}] = (v[{reg.d}] << 1) & R")
    settle_stmts = [f"v[{gates[idx].output}] = {gate_expr(gates[idx])}"
                    for idx in gate_order]

    return CompiledModule(
        n_nets=module.n_nets,
        n_gates=len(gates),
        n_registers=len(registers),
        order=order,
        gate_order=gate_order,
        _tag=module.name or "module",
        _level_stmts=level_stmts,
        _settle_stmts=settle_stmts,
        _gates=list(gates),
    )


_CACHE = weakref.WeakKeyDictionary()


def compiled_module(module):
    """The compile-once cache: one :class:`CompiledModule` per module.

    A module that grew since its first compilation (the builders mutate
    modules only during construction, but nothing enforces it) is
    transparently recompiled.
    """
    cm = _CACHE.get(module)
    if (cm is None or cm.n_nets != module.n_nets
            or cm.n_gates != len(module.gates)
            or cm.n_registers != len(module.registers)):
        cm = compile_module(module)
        _CACHE[module] = cm
    return cm
