"""Differential cone-based fault simulation.

A fault campaign asks the same question hundreds of times: *does this
one-gate mutation change any output word the co-simulation battery
checks?*  The full answer — clone the module, recompile it, re-simulate
every gate over every pattern — costs the whole datapath per mutation.
Classic differential fault simulation exploits that a single-gate
mutation can only disturb nets inside the mutated gate's **transitive
fan-out cone**, and that bit-parallel values make "disturb" a word-level
XOR:

1. Simulate the **golden** (unmutated) module once per campaign and keep
   its per-net packed pattern words.
2. For a mutant, evaluate only the mutated gate's new output word over
   the golden input values.  The XOR against the golden word is the
   mutant's *difference word* — zero means the mutation is invisible
   under this battery and no further work happens.
3. Propagate nonzero differences through the fan-out cone only, popping
   nodes from a min-heap keyed by their levelized (topological)
   position: when a node is popped, every producer that could have
   changed its inputs has already been evaluated, so each node is
   evaluated at most once and each net written at most once.  Nodes
   whose re-evaluated output equals the current overlay value are
   pruned — their consumers are never scheduled.
4. Pipeline registers are difference *time shifts*: a register forwards
   ``(diff_d << 1) & mask``, exactly the ``q = d << 1`` model of the
   levelized simulator, so an ``L``-stage pipeline's latency is handled
   by construction — a stage-1 difference reaches the outputs ``L - 1``
   pattern positions later, where the observation masks expect it.
5. **Early exit:** the moment a changed net carries a difference bit
   inside an :class:`Observation` mask (an output-bus net, restricted to
   the pattern window the battery actually checks), the mutant is
   *detected* and the remaining cone is abandoned.

Gate evaluation reuses the compiled per-gate closures of
:mod:`repro.hdl.sim.compile` (``make_masked_gate_evals``) over a shared
overlay value list, so the inner loop runs the same generated
expressions as the levelized kernel; verdicts are therefore
**bit-identical** to a full re-simulation — asserted by the equivalence
suite and raced in CI.  Netlists are feed-forward (validated acyclic),
which the single-visit heap discipline relies on.
"""

import heapq
from dataclasses import dataclass
from typing import Dict

from repro import obs
from repro.bits.utils import mask
from repro.errors import SimulationError
from repro.hdl.cell import cell_eval
from repro.hdl.sim.compile import compiled_module
from repro.hdl.sim.levelized import LevelizedSimulator
from repro.hdl.sim.toposort import topo_node_order


@dataclass(frozen=True)
class Observation:
    """Which ``(net, pattern)`` bits a battery actually checks.

    ``masks`` maps a net id to the packed pattern positions observed on
    it — for a pipelined multiplier's output bus that is the window
    ``[latency, n_patterns)``, the cycles whose results the checker
    compares.  Registers are deliberately *not* observation points: a
    difference parked in a flip-flop is only a fault if it later
    surfaces inside one of these masks (scan-style observability can be
    modelled by adding register q nets to ``masks`` explicitly).
    """

    masks: Dict[int, int]

    def window(self, nets, pattern_mask):
        """A copy with ``pattern_mask`` added on every net of ``nets``."""
        merged = dict(self.masks)
        for net in nets:
            merged[net] = merged.get(net, 0) | pattern_mask
        return Observation(masks=merged)


def output_observation(module, first_pattern, n_patterns, buses=None):
    """Observe ``module``'s output buses over ``[first_pattern, n)``.

    The standard campaign observation: every net of every named output
    bus (default: all outputs), masked to the pattern window the
    battery checks — the first ``first_pattern`` positions are pipeline
    fill and ignored.
    """
    window = mask(n_patterns) & ~mask(first_pattern)
    masks: Dict[int, int] = {}
    names = module.outputs if buses is None else buses
    for name in names:
        for net in module.outputs[name]:
            masks[net] = masks.get(net, 0) | window
    return Observation(masks=masks)


@dataclass(frozen=True)
class MutantVerdict:
    """One mutant's differential outcome and its cost accounting."""

    detected: bool
    gates_evaluated: int     # gate re-evaluations incl. the mutant itself
    cone_size: int           # static transitive fan-out cone (node count)
    early_exit: bool         # detection abandoned pending cone work


class DifferentialEngine:
    """Golden-run-sharing mutant evaluator for one module + battery.

    Construction simulates the golden module once (bit-parallel over all
    patterns) and precomputes everything every mutant shares: the
    fan-out adjacency over gates *and* registers, levelized node
    positions, and the compiled masked per-gate evaluation closures
    bound to a reusable overlay value list.  :meth:`run_mutant` then
    costs O(cone) per mutation instead of O(module).
    """

    def __init__(self, module, stimulus, n_patterns, observation,
                 compiled=True, golden=None):
        self.module = module
        self.n_patterns = n_patterns
        self.m = mask(n_patterns)
        self.observation = observation
        if golden is None:
            # Golden kernel invocations are the fault-sim cost driver
            # the benchmarks gate on: a campaign that shares one golden
            # run across its chunks (``campaign_engine``) pays this once
            # per (module, battery) instead of once per chunk — the
            # counter is how that reduction is proved.
            obs.registry().inc("fault.golden_runs")
            with obs.span("fault:golden", cat="fault", module=module.name,
                          patterns=n_patterns):
                golden = LevelizedSimulator(module, compiled=compiled).run(
                    stimulus, n_patterns)
        self.golden = golden
        self._golden = self.golden.values
        #: The overlay: golden everywhere except a mutant's changed nets
        #: while :meth:`run_mutant` is in flight (restored before return).
        self._work = list(self._golden)

        gates = module.gates
        registers = module.registers
        self._gates = gates
        self._registers = registers

        # Levelized positions for gates (>= 0) and registers (-1 - ridx).
        self._gate_pos = [0] * len(gates)
        self._reg_pos = [0] * len(registers)
        for pos, node in enumerate(topo_node_order(module)):
            if node >= 0:
                self._gate_pos[node] = pos
            else:
                self._reg_pos[-node - 1] = pos

        # Fan-out adjacency: net -> consuming nodes, registers included.
        consumers = [[] for __ in range(module.n_nets)]
        for idx, gate in enumerate(gates):
            for net in gate.inputs:
                consumers[net].append(idx)
        for ridx, reg in enumerate(registers):
            consumers[reg.d].append(-1 - ridx)
        self._consumers = consumers

        if compiled:
            self._evals = compiled_module(module).make_masked_gate_evals(
                self._work, self.m)
        else:
            self._evals = self._interpreted_evals()
        self._cone_cache: Dict[int, int] = {}

    def _interpreted_evals(self):
        """Reference closures over ``cell_eval`` (equivalence tests)."""
        work = self._work
        m = self.m
        evals = []
        for gate in self._gates:
            fn = cell_eval(gate.kind)
            ins = gate.inputs
            evals.append(lambda fn=fn, ins=ins:
                         fn(m, *[work[n] for n in ins]) & m)
        return evals

    def cone_size(self, gate_index):
        """Static transitive fan-out cone node count (gate included)."""
        size = self._cone_cache.get(gate_index)
        if size is not None:
            return size
        seen = set()
        frontier = [self._gates[gate_index].output]
        visited_nets = {frontier[0]}
        while frontier:
            net = frontier.pop()
            for node in self._consumers[net]:
                if node in seen:
                    continue
                seen.add(node)
                out = (self._gates[node].output if node >= 0
                       else self._registers[-node - 1].q)
                if out not in visited_nets:
                    visited_nets.add(out)
                    frontier.append(out)
        size = len(seen) + 1
        self._cone_cache[gate_index] = size
        return size

    def run_mutant(self, gate_index, mutant):
        """Judge one mutant: ``mutant`` virtually replaces gate ``gate_index``.

        The mutant gate must drive the same output net as the original
        (rekinds and pin swaps do); its new word is evaluated over the
        golden input values and the XOR difference propagates through
        the fan-out cone only.  Returns a :class:`MutantVerdict` whose
        ``detected`` matches what a full re-simulation plus battery
        comparison would conclude, provided the golden run itself passes
        the battery (the campaign driver asserts that once).
        """
        original = self._gates[gate_index]
        if mutant.output != original.output:
            raise SimulationError(
                "differential mutants must keep the gate's output net")
        golden = self._golden
        work = self._work
        m = self.m
        obs_masks = self.observation.masks
        consumers = self._consumers
        gates = self._gates
        registers = self._registers
        gate_pos = self._gate_pos
        reg_pos = self._reg_pos
        evals = self._evals

        heap = []
        queued = set()
        touched = []
        detected = False
        gates_evaluated = 1

        def flush(net, value):
            """Commit a changed net; True when an observed bit diverges."""
            work[net] = value
            touched.append(net)
            for node in consumers[net]:
                if node not in queued:
                    queued.add(node)
                    pos = gate_pos[node] if node >= 0 else reg_pos[-node - 1]
                    heapq.heappush(heap, (pos, node))
            om = obs_masks.get(net)
            return om is not None and bool((value ^ golden[net]) & om)

        value = cell_eval(mutant.kind)(
            m, *[golden[net] for net in mutant.inputs]) & m
        if value != golden[original.output]:
            detected = flush(original.output, value)

        while heap and not detected:
            __, node = heapq.heappop(heap)
            if node >= 0:
                value = evals[node]()
                gates_evaluated += 1
                out = gates[node].output
            else:
                reg = registers[-node - 1]
                value = (work[reg.d] << 1) & m
                out = reg.q
            if value != work[out]:
                detected = flush(out, value)

        early = detected and bool(heap)
        for net in touched:
            work[net] = golden[net]
        return MutantVerdict(detected=detected,
                             gates_evaluated=gates_evaluated,
                             cone_size=self.cone_size(gate_index),
                             early_exit=early)
