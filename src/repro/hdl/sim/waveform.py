"""VCD waveform export from levelized simulation runs.

Dumps selected buses of a :class:`~repro.hdl.sim.levelized.SimRun` as a
Value Change Dump file viewable in GTKWave & co.  One VCD time unit per
simulated pattern/cycle.
"""

import datetime
from typing import Dict, List, Optional

from repro.errors import SimulationError

_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _vcd_id(index):
    """Short printable VCD identifier for signal ``index``."""
    out = []
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        out.append(_ID_CHARS[rem])
    return "".join(out)


def dump_vcd(module, run, path, buses=None, timescale="1ns",
             module_name=None):
    """Write a VCD file for ``run``.

    ``buses`` maps signal names to net lists (LSB first); it defaults to
    every input and output bus of ``module``.  Returns ``path``.
    """
    if buses is None:
        buses = {}
        for name, nets in module.inputs.items():
            buses[name] = list(nets)
        for name, nets in module.outputs.items():
            buses[name] = list(nets)
    if not buses:
        raise SimulationError("nothing to dump: no buses selected")
    for name, nets in buses.items():
        for net in nets:
            if not 0 <= net < module.n_nets:
                raise SimulationError(f"bus {name!r} references net {net}")

    ids = {name: _vcd_id(i) for i, name in enumerate(sorted(buses))}
    lines = []
    lines.append(f"$date {datetime.date.today().isoformat()} $end")
    lines.append("$version repro.hdl.sim.waveform $end")
    lines.append(f"$timescale {timescale} $end")
    lines.append(f"$scope module {module_name or module.name} $end")
    for name in sorted(buses):
        width = len(buses[name])
        lines.append(f"$var wire {width} {ids[name]} {name} "
                     f"[{width - 1}:0] $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")

    previous: Dict[str, Optional[int]] = {name: None for name in buses}
    for t in range(run.n_patterns):
        changes = []
        for name in sorted(buses):
            word = run.bus_word(buses[name], t)
            if word != previous[name]:
                previous[name] = word
                width = len(buses[name])
                changes.append(f"b{word:0{width}b} {ids[name]}")
        if changes or t == 0:
            lines.append(f"#{t}")
            lines.extend(changes)
    lines.append(f"#{run.n_patterns}")

    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")
    return path
