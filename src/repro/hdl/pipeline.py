"""Pipeline structure analysis.

Registers are inserted by the circuit generators at explicit cut points
(the paper places them by hand too — Sec. III-D discusses the tried
placements).  This module derives which stage every gate ends up in and
checks the placement is *consistent*: a gate must combine values of a
single stage, i.e. every input must have crossed the same number of
register banks.
"""

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import PipelineError
from repro.hdl.sim.toposort import topo_node_order


@dataclass
class PipelineReport:
    """Gates and area-relevant counts per pipeline stage."""

    n_stages: int
    gates_per_stage: Dict[int, int]
    registers_per_cut: Dict[int, int]

    def stage_share(self, stage):
        total = sum(self.gates_per_stage.values())
        if total == 0:
            return 0.0
        return self.gates_per_stage.get(stage, 0) / total


def stage_map(module, strict=True):
    """Assign every gate to a pipeline stage.

    Returns ``(gate_stages, net_stages)``.  ``strict`` raises on gates
    whose inputs come from different stages (an unbalanced pipeline cut
    that real hardware would need synchronizing registers for).
    Constants are stage-agnostic.
    """
    net_stage = [0] * module.n_nets      # 0 = undetermined/constant
    for bus in module.inputs.values():
        for net in bus:
            net_stage[net] = 1
    reg_stage_of_q = {}
    for reg in module.registers:
        reg_stage_of_q[reg.q] = reg.stage + 1

    order = topo_node_order(module, error=PipelineError)
    gate_stages = [0] * len(module.gates)
    for node in order:
        if node >= 0:
            gate = module.gates[node]
            stages = set()
            for net in gate.inputs:
                if net_stage[net]:
                    stages.add(net_stage[net])
            if not stages:
                stage = 1            # constant-only cone
            elif len(stages) == 1:
                stage = stages.pop()
            elif strict:
                raise PipelineError(
                    f"gate {node} ({gate.kind} in {gate.block!r}) mixes "
                    f"stages {sorted(stages)}"
                )
            else:
                stage = max(stages)
            gate_stages[node] = stage
            net_stage[gate.output] = stage
        else:
            reg = module.registers[-node - 1]
            d_stage = net_stage[reg.d] or reg.stage
            if strict and d_stage != reg.stage:
                raise PipelineError(
                    f"register at stage {reg.stage} latches a stage-{d_stage} net"
                )
            net_stage[reg.q] = reg.stage + 1
    return gate_stages, net_stage


def pipeline_report(module, strict=True):
    """Summarize the pipeline structure of a module."""
    gate_stages, __ = stage_map(module, strict=strict)
    gates_per_stage: Dict[int, int] = {}
    for stage in gate_stages:
        gates_per_stage[stage] = gates_per_stage.get(stage, 0) + 1
    regs_per_cut: Dict[int, int] = {}
    for reg in module.registers:
        regs_per_cut[reg.stage] = regs_per_cut.get(reg.stage, 0) + 1
    return PipelineReport(
        n_stages=module.stage_count(),
        gates_per_stage=gates_per_stage,
        registers_per_cut=regs_per_cut,
    )


