"""Post-construction netlist optimization.

Two synthesis-style cleanups that operate on finished modules:

* :func:`propagate_constants` — evaluates every cell whose inputs are
  all constant nets, re-expresses cells with *some* constant inputs as
  simpler cells (``AND(x, 1) -> BUF``, ``FA(a, b, 0) -> HA`` style
  simplifications happen at build time in ``GateBuilder``; this pass
  catches constants that only become known after composition, e.g. a
  mode net tied off for a single-format build);
* :func:`eliminate_dead_cells` — removes cells (and buffers) whose
  outputs reach no primary output and no register.

Both preserve observable behaviour exactly (property-tested) and report
what they removed — used by the specialization ablation, which asks how
much area a *single-format* variant of the multi-format unit would save
(an upper bound on the cost of multi-format flexibility).
"""

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import NetlistError
from repro.hdl.cell import cell_eval
from repro.hdl.module import Gate, Module, Register


@dataclass
class OptimizeStats:
    """What the passes changed."""

    constants_folded: int = 0
    cells_simplified: int = 0
    dead_cells_removed: int = 0
    dead_registers_removed: int = 0


def tie_input(module, bus_name, value):
    """Replace an input bus with constant drivers (mode specialization).

    Returns the module (mutated): the bus's nets become constants and
    the input port disappears.  Run the optimizer afterwards to reap the
    logic the tie-off killed.
    """
    if bus_name not in module.inputs:
        raise NetlistError(f"no input bus {bus_name!r}")
    bus = module.inputs.pop(bus_name)
    for i, net in enumerate(bus):
        bit = (value >> i) & 1
        module._driver[net] = "const"
        module._const_nets[net] = bit
    return module


def propagate_constants(module, stats=None):
    """Fold cells whose value is decidable from constant inputs."""
    stats = stats if stats is not None else OptimizeStats()
    const: Dict[int, int] = dict(module.constants)
    replacement: Dict[int, int] = {}
    new_gates = []
    for gate in module.gates:
        ins = tuple(replacement.get(n, n) for n in gate.inputs)
        values = [const.get(n) for n in ins]
        if all(v is not None for v in values):
            out_value = cell_eval(gate.kind)(1, *values) & 1
            const[gate.output] = out_value
            module._const_nets[gate.output] = out_value
            module._driver[gate.output] = "const"
            stats.constants_folded += 1
            continue
        simplified = _simplify(gate.kind, ins, values)
        if simplified is None:
            new_gates.append(Gate(gate.kind, ins, gate.output, gate.block))
            continue
        kind, new_ins = simplified
        if kind == "WIRE":
            replacement[gate.output] = new_ins[0]
            module._driver[gate.output] = "const" \
                if new_ins[0] in const else module._driver[new_ins[0]]
            if new_ins[0] in const:
                const[gate.output] = const[new_ins[0]]
                module._const_nets[gate.output] = const[new_ins[0]]
            stats.cells_simplified += 1
            continue
        if kind == "CONST":
            const[gate.output] = new_ins
            module._const_nets[gate.output] = new_ins
            module._driver[gate.output] = "const"
            stats.constants_folded += 1
            continue
        stats.cells_simplified += 1
        new_gates.append(Gate(kind, new_ins, gate.output, gate.block))
    module.gates = new_gates
    # Re-point registers and outputs through wire replacements.
    module.registers = [
        Register(replacement.get(r.d, r.d), r.q, r.stage, r.block)
        for r in module.registers
    ]
    for name, bus in module.outputs.items():
        module.outputs[name] = [replacement.get(n, n) for n in bus]
    # Wire replacements may leave replaced nets dangling; that is fine —
    # dead-cell elimination reaps them.
    return stats


_AND_LIKE = {"AND2": ("AND2", False), "NAND2": ("NAND2", True)}
_OR_LIKE = {"OR2": ("OR2", False), "NOR2": ("NOR2", True)}


def _simplify(kind, ins, values):
    """Partial-constant simplification; None = keep as is.

    Returns ("WIRE", (net,)) to alias, ("CONST", value), or a new
    ``(kind, inputs)``.
    """
    if kind in ("AND2", "OR2", "XOR2", "NAND2", "NOR2", "XNOR2"):
        for pin in (0, 1):
            v = values[pin]
            if v is None:
                continue
            other = ins[1 - pin]
            if kind == "AND2":
                return ("WIRE", (other,)) if v else ("CONST", 0)
            if kind == "OR2":
                return ("CONST", 1) if v else ("WIRE", (other,))
            if kind == "NAND2":
                return ("INV", (other,)) if v else ("CONST", 1)
            if kind == "NOR2":
                return ("CONST", 0) if v else ("INV", (other,))
            if kind == "XOR2":
                return ("INV", (other,)) if v else ("WIRE", (other,))
            if kind == "XNOR2":
                return ("WIRE", (other,)) if v else ("INV", (other,))
    if kind == "MUX2" and values[2] is not None:
        return ("WIRE", (ins[2 if False else (1 if values[2] else 0)],))
    if kind == "MUX2" and ins[0] == ins[1]:
        return ("WIRE", (ins[0],))
    if kind == "AO22":
        a, b, c, d = ins
        va, vb, vc, vd = values
        if va == 0 or vb == 0:
            return ("AND2", (c, d))
        if vc == 0 or vd == 0:
            return ("AND2", (a, b))
    if kind in ("AND3", "OR3"):
        zero_dominates = kind == "AND3"
        dom = 0 if zero_dominates else 1
        if dom in values:
            return ("CONST", dom)
        live = [n for n, v in zip(ins, values) if v is None]
        if len(live) == 2:
            return (kind[:-1] + "2", tuple(live))
        if len(live) == 1:
            return ("WIRE", (live[0],))
    if kind == "XOR3":
        known = [v for v in values if v is not None]
        live = [n for n, v in zip(ins, values) if v is None]
        if len(live) == 2:
            parity = sum(known) & 1
            return ("XNOR2", tuple(live)) if parity else ("XOR2",
                                                          tuple(live))
        if len(live) == 1:
            parity = sum(known) & 1
            return ("INV", (live[0],)) if parity else ("WIRE", (live[0],))
    if kind == "MAJ3":
        for pin, v in enumerate(values):
            if v is None:
                continue
            others = tuple(n for i, n in enumerate(ins) if i != pin)
            return ("OR2", others) if v else ("AND2", others)
    return None


def eliminate_dead_cells(module, stats=None):
    """Remove cells and registers that cannot reach any output."""
    stats = stats if stats is not None else OptimizeStats()
    live = set()
    for bus in module.outputs.values():
        live.update(bus)
    producer_gate = {g.output: g for g in module.gates}
    producer_reg = {r.q: r for r in module.registers}
    stack = list(live)
    while stack:
        net = stack.pop()
        gate = producer_gate.get(net)
        if gate is not None:
            for n in gate.inputs:
                if n not in live:
                    live.add(n)
                    stack.append(n)
        reg = producer_reg.get(net)
        if reg is not None and reg.d not in live:
            live.add(reg.d)
            stack.append(reg.d)

    kept_gates = [g for g in module.gates if g.output in live]
    kept_regs = [r for r in module.registers if r.q in live]
    stats.dead_cells_removed += len(module.gates) - len(kept_gates)
    stats.dead_registers_removed += len(module.registers) - len(kept_regs)
    module.gates = kept_gates
    module.registers = kept_regs
    return stats


def optimize(module, max_passes=8):
    """Run constant propagation + dead-cell elimination to fixpoint."""
    stats = OptimizeStats()
    for __ in range(max_passes):
        before = (stats.constants_folded, stats.cells_simplified,
                  stats.dead_cells_removed)
        propagate_constants(module, stats)
        eliminate_dead_cells(module, stats)
        after = (stats.constants_folded, stats.cells_simplified,
                 stats.dead_cells_removed)
        if before == after:
            break
    _compact(module)
    return stats


def _compact(module):
    """Drop dangling nets' driver records (keeps validate() happy)."""
    live = set()
    for bus in module.inputs.values():
        live.update(bus)
    for bus in module.outputs.values():
        live.update(bus)
    for gate in module.gates:
        live.add(gate.output)
        live.update(gate.inputs)
    for reg in module.registers:
        live.add(reg.d)
        live.add(reg.q)
    live.update(module._const_nets)
    # Renumber nets densely.
    mapping = {old: new for new, old in enumerate(sorted(live))}
    module.gates = [Gate(g.kind, tuple(mapping[n] for n in g.inputs),
                         mapping[g.output], g.block) for g in module.gates]
    module.registers = [Register(mapping[r.d], mapping[r.q], r.stage,
                                 r.block) for r in module.registers]
    for name, bus in module.inputs.items():
        module.inputs[name] = [mapping[n] for n in bus]
    for name, bus in module.outputs.items():
        module.outputs[name] = [mapping[n] for n in bus]
    module._const_nets = {mapping[n]: v
                          for n, v in module._const_nets.items()
                          if n in mapping}
    module._driver = {mapping[n]: k for n, k in module._driver.items()
                      if n in mapping}
    module._const_cache = {v: n for n, v in module._const_nets.items()}
    module.n_nets = len(live)
