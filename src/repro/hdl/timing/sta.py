"""Static timing analysis.

Computes per-net arrival times with the library's load-dependent cell
delays, extracts the critical path, and produces the per-block breakdown
the paper reports in Tables I and II (pre-computation / PPGEN / TREE /
CPA segments of the critical path).

Timing starts (arrival 0) are primary inputs and register outputs;
timing ends are primary outputs and register inputs.  For pipelined
modules each register *stage* yields its own :class:`StageTiming`, and
the achievable clock period is the worst stage delay plus the register
overhead (clk->q + setup), matching the paper's "about 3 FO4 of pipeline
overhead" accounting (Sec. III-D).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.hdl.library import FO4_PS
from repro.hdl.sim.toposort import topo_gate_order


@dataclass(frozen=True)
class PathSegment:
    """A contiguous run of the critical path inside one block."""

    block: str
    delay_ps: float
    gates: int


@dataclass
class StageTiming:
    """Timing of one pipeline stage (or the whole combinational module)."""

    stage: int
    delay_ps: float
    endpoint: int                         # net id of the worst endpoint
    path_gates: List[int] = field(default_factory=list)  # gate indices

    @property
    def delay_fo4(self):
        return self.delay_ps / FO4_PS


@dataclass
class TimingReport:
    """Full timing picture of a module."""

    stages: List[StageTiming]
    register_overhead_ps: float

    @property
    def critical_stage(self):
        return max(self.stages, key=lambda s: s.delay_ps)

    @property
    def combinational_delay_ps(self):
        """Sum of stage delays = latency of the unpipelined computation."""
        return sum(s.delay_ps for s in self.stages)

    @property
    def clock_period_ps(self):
        """Achievable clock period for the pipelined implementation."""
        overhead = self.register_overhead_ps if len(self.stages) > 1 else 0.0
        return self.critical_stage.delay_ps + overhead

    @property
    def latency_ps(self):
        if len(self.stages) == 1:
            return self.stages[0].delay_ps
        return self.clock_period_ps * len(self.stages)

    @property
    def latency_fo4(self):
        return self.latency_ps / FO4_PS


def analyze(module, library):
    """Run STA on ``module``; returns a :class:`TimingReport`."""
    load = module.load_map(library)
    arrival = [0.0] * module.n_nets
    from_gate: List[Optional[int]] = [None] * module.n_nets

    order = topo_gate_order(module)
    gates = module.gates
    for idx in order:
        gate = gates[idx]
        delay = library.spec(gate.kind).delay_ps(load[gate.output])
        best_arr = 0.0
        for net in gate.inputs:
            if arrival[net] > best_arr:
                best_arr = arrival[net]
        arrival[gate.output] = best_arr + delay
        from_gate[gate.output] = idx

    # Group endpoints per stage: register d-pins belong to their stage,
    # primary outputs to the last stage.
    n_stages = module.stage_count()
    endpoints: Dict[int, List[int]] = {s: [] for s in range(1, n_stages + 1)}
    for reg in module.registers:
        endpoints[reg.stage].append(reg.d)
    for bus in module.outputs.values():
        endpoints[n_stages].extend(bus)

    stages = []
    for stage in sorted(endpoints):
        nets = endpoints[stage]
        if not nets:
            continue
        worst = max(nets, key=lambda n: arrival[n])
        stages.append(StageTiming(
            stage=stage,
            delay_ps=arrival[worst],
            endpoint=worst,
            path_gates=_trace_path(module, arrival, from_gate, worst),
        ))
    if not stages:
        raise SimulationError("module has no timing endpoints")
    return TimingReport(stages=stages,
                        register_overhead_ps=library.register.overhead_ps)


def _trace_path(module, arrival, from_gate, endpoint):
    """Walk the worst path backwards from an endpoint; gate indices in order."""
    path = []
    net = endpoint
    while from_gate[net] is not None:
        gidx = from_gate[net]
        path.append(gidx)
        gate = module.gates[gidx]
        net = max(gate.inputs, key=lambda n: arrival[n])
    path.reverse()
    return path


def critical_path_breakdown(module, library, stage=None, blocks=None):
    """Per-block delay contributions along a critical path.

    ``blocks`` optionally gives the top-level block tags in reporting
    order (e.g. ``["precomp", "ppgen", "tree", "cpa"]``); unlisted tags
    are appended.  Returns a list of :class:`PathSegment`.
    """
    report = analyze(module, library)
    if stage is None:
        timing = report.critical_stage
    else:
        matches = [s for s in report.stages if s.stage == stage]
        if not matches:
            raise SimulationError(f"no stage {stage} in module")
        timing = matches[0]

    load = module.load_map(library)
    contrib: Dict[str, Tuple[float, int]] = {}
    for gidx in timing.path_gates:
        gate = module.gates[gidx]
        delay = library.spec(gate.kind).delay_ps(load[gate.output])
        top = gate.block.split("/", 1)[0] if gate.block else "(top)"
        d, n = contrib.get(top, (0.0, 0))
        contrib[top] = (d + delay, n + 1)

    ordered = list(blocks) if blocks else []
    for tag in contrib:
        if tag not in ordered:
            ordered.append(tag)
    return [PathSegment(block=tag, delay_ps=contrib[tag][0],
                        gates=contrib[tag][1])
            for tag in ordered if tag in contrib]
