"""Static timing analysis over structural netlists."""

from repro.hdl.timing.sta import (
    PathSegment,
    StageTiming,
    TimingReport,
    analyze,
    critical_path_breakdown,
)

__all__ = [
    "PathSegment",
    "StageTiming",
    "TimingReport",
    "analyze",
    "critical_path_breakdown",
]
