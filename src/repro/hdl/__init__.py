"""Gate-level hardware substrate.

This package replaces the paper's 45 nm standard-cell flow: netlists are
built with :class:`~repro.hdl.module.Module`, characterized by the cell
library in :mod:`repro.hdl.library` (calibrated to the paper's anchors:
FO4 = 64 ps, NAND2 = 1.06 um^2), and analyzed by the simulators
(:mod:`repro.hdl.sim`), static timing (:mod:`repro.hdl.timing`), area
(:mod:`repro.hdl.area`) and power (:mod:`repro.hdl.power`) engines.
"""

from repro.hdl.cell import CELL_KINDS, cell_eval, cell_num_inputs
from repro.hdl.library import CellLibrary, CellSpec, default_library
from repro.hdl.module import Gate, Module, Register

__all__ = [
    "CELL_KINDS",
    "CellLibrary",
    "CellSpec",
    "Gate",
    "Module",
    "Register",
    "cell_eval",
    "cell_num_inputs",
    "default_library",
]
