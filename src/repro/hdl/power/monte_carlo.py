"""Monte Carlo power estimation (the paper's methodology, Sec. III-E).

"We perform a Monte Carlo simulation by generating pseudo-random input
patterns and estimate the power at a reference frequency 100 MHz" — this
module does exactly that against our netlists:

1.  an exact levelized run computes every net's value in every cycle
    (this also supplies the register outputs cycle by cycle);
2.  the event-driven simulator replays each cycle transition with real
    cell delays, counting glitches;
3.  toggle counts weighted by per-net switching energies, plus register
    clock energy and leakage, yield the :class:`PowerReport`.

``glitch=False`` skips step 2 and charges only the zero-delay activity —
the comparison between the two is the paper's combinational-vs-pipelined
glitch argument made explicit.

Performance machinery (all bit-identical to the straightforward serial
replay):

* the event simulator is **reused** across calls on the same
  module/library pair (:func:`shared_event_simulator`) — its load map,
  fanout lists, delays and compiled evaluation closures are built once;
* the glitch replay (:meth:`EventSimulator.replay`) feeds the event
  engine *delta* stimulus straight from the levelized run's packed
  pattern words, and runs on the compiled C event kernel
  (:mod:`repro.hdl.sim.ckernel`) whenever a system C compiler is
  available;
* ``workers=N`` shards the cycle sequence into contiguous windows
  replayed by worker processes.  Each window seeds from the exact
  levelized values at its first cycle — the event simulator's settled
  state equals the zero-delay state, so windows are independent and the
  per-net toggle counts merge deterministically by integer summation.
"""

import os
import time
import weakref
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.errors import SimulationError
from repro.hdl.power.attribution import attribute_power
from repro.hdl.power.model import (
    PowerReport,
    clock_energy_fj_per_cycle,
    leakage_mw,
    net_toggle_energies,
    toggles_to_power_mw,
)
from repro.hdl.sim.event import EventSimulator
from repro.hdl.sim.levelized import LevelizedSimulator

#: Retained (library, simulator) pairs per module — bounded so sweeps
#: over many scaled libraries don't pin arbitrarily many simulators.
_SIM_CACHE_PER_MODULE = 4

_SIM_CACHE = weakref.WeakKeyDictionary()   # Module -> [(library, esim)]


def shared_event_simulator(module, library):
    """One :class:`EventSimulator` per (module, equal library), reused.

    Constructing an event simulator recomputes the load map, fanout
    lists and per-gate delays — pure functions of module + library — so
    repeated ``estimate_power`` calls share one instance.  Matching is
    by library *equality* (libraries are frozen dataclasses), so the
    idiomatic ``default_library()``-per-call still hits the cache.
    """
    entries = _SIM_CACHE.setdefault(module, [])
    for lib, esim in entries:
        if lib == library:
            return esim
    esim = EventSimulator(module, library)
    entries.append((library, esim))
    if len(entries) > _SIM_CACHE_PER_MODULE:
        entries.pop(0)
    return esim


def estimate_power(module, library, stimulus, n_cycles, frequency_mhz=100.0,
                   glitch=True, workers=None, attribution=False):
    """Estimate average power over a stimulus sequence.

    ``stimulus`` maps input bus names to per-cycle word lists (as for
    :class:`LevelizedSimulator`).  At least two cycles are needed to
    observe a transition.  ``workers=N`` (opt-in; default serial, or
    the ``REPRO_POWER_WORKERS`` environment variable) shards the glitch
    replay over N processes with a deterministic merge — results are
    identical to the serial run.  ``attribution=True`` additionally
    keeps the per-net toggle vectors and attaches a
    :class:`~repro.hdl.power.attribution.PowerAttribution` (glitch vs
    functional split by sub-block / cell / pipeline stage) to the
    report — a pure observer, the power numbers do not change.
    """
    if n_cycles < 2:
        raise SimulationError("need at least two cycles to measure power")
    if workers is None:
        env = os.environ.get("REPRO_POWER_WORKERS", "0") or "0"
        try:
            workers = int(env)
        except ValueError:
            raise SimulationError(
                f"REPRO_POWER_WORKERS must be an integer, got {env!r}"
            ) from None
    t_level = time.perf_counter()
    with obs.span("power:levelized", cat="power", module=module.name,
                  cycles=n_cycles):
        sim = LevelizedSimulator(module)
        run = sim.run(stimulus, n_cycles)
    t_level = time.perf_counter() - t_level

    energies = net_toggle_energies(module, library)
    owner = module.block_of_net()

    zero_toggles = run.toggles_per_net()
    zero_energy = sum(t * e for t, e in zip(zero_toggles, energies))

    if glitch:
        with obs.span("power:glitch_replay", cat="power",
                      module=module.name, workers=workers or 1):
            event_toggles, sim_stats = _event_toggles(module, library, run,
                                                      n_cycles, workers)
    else:
        event_toggles = zero_toggles
        sim_stats = {"engine": "zero-delay", "kernel": "none",
                     "transitions": n_cycles - 1, "workers": 1,
                     "elapsed_s": t_level}

    return _assemble_report(module, library, n_cycles, zero_toggles,
                            event_toggles, sim_stats, energies, owner,
                            zero_energy, t_level, frequency_mhz, glitch,
                            attribution)


def estimate_power_batch(module, library, jobs, frequency_mhz=100.0,
                         glitch=True, attribution=False):
    """Estimate power for several independent stimulus sequences on one
    module in a single superword settle pass.

    ``jobs`` is a sequence of ``(stimulus, n_cycles)`` pairs.  The
    levelized simulation — whose per-gate interpreter overhead dominates
    a Monte Carlo point — runs **once** over the concatenated segments
    (:meth:`~repro.hdl.sim.levelized.LevelizedSimulator.run_segments`);
    per-job zero-delay toggles are windowed popcounts over the shared
    words and the glitch replay seeds each job's cycle window straight
    from them.  Returns one :class:`PowerReport` per job, each
    **bit-identical** to a serial :func:`estimate_power` call over the
    same stimulus (property-tested).
    """
    jobs = list(jobs)
    for __, n_cycles in jobs:
        if n_cycles < 2:
            raise SimulationError(
                "need at least two cycles to measure power")
    t_level = time.perf_counter()
    with obs.span("power:levelized", cat="power", module=module.name,
                  cycles=sum(n for __, n in jobs), segments=len(jobs)):
        sim = LevelizedSimulator(module)
        seg = sim.run_segments(jobs)
    t_level = time.perf_counter() - t_level

    energies = net_toggle_energies(module, library)
    owner = module.block_of_net()
    esim = shared_event_simulator(module, library) if glitch else None

    reports = []
    for i, (__, n_cycles) in enumerate(jobs):
        zero_toggles = seg.toggles_per_net(i)
        zero_energy = sum(t * e for t, e in zip(zero_toggles, energies))
        offset = seg.segments[i][0]
        if glitch:
            with obs.span("power:glitch_replay", cat="power",
                          module=module.name, workers=1):
                t0 = time.perf_counter()
                event_toggles, sim_stats = _replay(
                    esim, seg.values, offset + 1, offset + n_cycles - 1)
                sim_stats["workers"] = 1
                sim_stats["elapsed_s"] = time.perf_counter() - t0
        else:
            event_toggles = zero_toggles
            sim_stats = {"engine": "zero-delay", "kernel": "none",
                         "transitions": n_cycles - 1, "workers": 1,
                         "elapsed_s": t_level}
        reports.append(_assemble_report(
            module, library, n_cycles, zero_toggles, event_toggles,
            sim_stats, energies, owner, zero_energy, t_level,
            frequency_mhz, glitch, attribution))
    return reports


def _assemble_report(module, library, n_cycles, zero_toggles,
                     event_toggles, sim_stats, energies, owner,
                     zero_energy, t_level, frequency_mhz, glitch,
                     attribution):
    """Fold toggle counts into the :class:`PowerReport`.

    Shared tail of :func:`estimate_power` and
    :func:`power_report_from_shards`, so a report assembled from
    independently-executed shard leaves is arithmetic-identical to the
    monolithic run (the toggle counts themselves merge by integer
    summation).
    """
    sim_stats = obs.normalize_sim_stats(sim_stats)

    # Effective switched energy: the functional transitions plus the
    # derated share of the extra (glitch) transitions (see
    # CellLibrary.glitch_retention).
    retention = library.glitch_retention if glitch else 0.0
    dynamic_energy = 0.0
    by_block_energy: Dict[str, float] = {}
    for net, zcount in enumerate(zero_toggles):
        extra = max(event_toggles[net] - zcount, 0)
        count = zcount + retention * extra
        if not count:
            continue
        e = count * energies[net]
        dynamic_energy += e
        top = owner[net].split("/", 1)[0] if owner[net] else "(io)"
        by_block_energy[top] = by_block_energy.get(top, 0.0) + e
    toggles = event_toggles

    transitions = n_cycles - 1
    dynamic_mw = toggles_to_power_mw(dynamic_energy, transitions,
                                     frequency_mhz)
    zero_mw = toggles_to_power_mw(zero_energy, transitions, frequency_mhz)
    register_mw = toggles_to_power_mw(
        clock_energy_fj_per_cycle(module, library) * transitions,
        transitions, frequency_mhz)

    attribution_report = None
    if attribution:
        with obs.span("power:attribution", cat="power", module=module.name):
            attribution_report = attribute_power(
                module, library, energies, zero_toggles, event_toggles,
                transitions, frequency_mhz, glitch=glitch)

    reg = obs.registry()
    reg.inc("power.estimates")
    reg.record("power.estimates",
               {"module": module.name, "glitch": glitch,
                "cycles": n_cycles, "levelized_s": round(t_level, 6),
                **sim_stats})
    return PowerReport(
        frequency_mhz=frequency_mhz,
        cycles=transitions,
        dynamic_mw=dynamic_mw,
        register_mw=register_mw,
        leakage_mw=leakage_mw(module, library),
        zero_delay_dynamic_mw=zero_mw,
        by_block_mw={k: toggles_to_power_mw(v, transitions, frequency_mhz)
                     for k, v in by_block_energy.items()},
        total_toggles=sum(toggles),
        sim_stats=sim_stats,
        attribution=attribution_report,
    )


# ----------------------------------------------------------------------
# glitch replay
# ----------------------------------------------------------------------

def _replay(esim, packed_values, t_first, t_last):
    """Replay transitions ``t_first..t_last`` (inclusive).

    ``packed_values`` are the levelized run's per-net pattern words
    (bit ``t`` = value in cycle ``t``).  Returns per-net toggle totals
    and the replay's perf counters.
    """
    totals = [0] * esim.module.n_nets
    counts = esim.replay(packed_values, t_first, t_last,
                         toggles_out=totals)
    stats = {"engine": esim.engine, "kernel": esim.kernel,
             "transitions": t_last - t_first + 1,
             "events_processed": counts.events_processed,
             "cancellations": counts.cancelled,
             "wheel_buckets": counts.wheel_buckets,
             "wheel_max_bucket": counts.wheel_max_bucket}
    return totals, stats


def _event_toggles(module, library, run, n_cycles, workers=0):
    """Glitch-aware toggle counts accumulated over all cycle transitions."""
    transitions = n_cycles - 1
    if workers and workers > 1 and transitions > 1:
        return _event_toggles_sharded(module, library, run.values,
                                      n_cycles, workers)
    esim = shared_event_simulator(module, library)
    t0 = time.perf_counter()
    totals, stats = _replay(esim, run.values, 1, transitions)
    stats["workers"] = 1
    stats["elapsed_s"] = time.perf_counter() - t0
    return totals, stats


def transition_windows(n_cycles, shards):
    """Split transitions ``1 .. n_cycles-1`` into contiguous windows.

    Returns ``[(t_first, t_last)]`` pairs covering every transition
    exactly once, balanced to within one transition.  ``shards`` is
    clamped to the transition count.
    """
    transitions = n_cycles - 1
    if transitions < 1:
        raise SimulationError("need at least two cycles to measure power")
    shards = max(1, min(shards, transitions))
    base, extra = divmod(transitions, shards)
    windows = []
    t = 1
    for w in range(shards):
        size = base + (1 if w < extra else 0)
        windows.append((t, t + size - 1))
        t += size
    return windows


def power_shard_plan(n_cycles, max_transitions=16):
    """Windows for fine-grained stealable replay leaves.

    Sizes each window to at most ``max_transitions`` transitions so a
    Monte Carlo power point decomposes into many small, independently
    stealable leaves rather than one long pole.
    """
    transitions = max(n_cycles - 1, 1)
    shards = -(-transitions // max(1, int(max_transitions)))
    return transition_windows(n_cycles, shards)


def power_replay_shard(module, library, stimulus, n_cycles, t_first,
                       t_last):
    """One stealable glitch-replay leaf: transitions ``t_first..t_last``.

    Re-runs the (cheap, deterministic) levelized simulation to recover
    the per-net pattern words, then replays only the window.  Returns
    ``(totals, stats)`` exactly as the in-process shard runner does, so
    :func:`power_report_from_shards` merges either source identically.
    """
    if n_cycles < 2:
        raise SimulationError("need at least two cycles to measure power")
    sim = LevelizedSimulator(module)
    run = sim.run(stimulus, n_cycles)
    esim = shared_event_simulator(module, library)
    with obs.span("power:shard", cat="power", t_first=t_first,
                  t_last=t_last):
        totals, stats = _replay(esim, run.values, t_first, t_last)
    obs.registry().record(
        "power.shards",
        {"t_first": t_first, "t_last": t_last,
         **obs.normalize_sim_stats(dict(stats))})
    return totals, stats


def merge_shard_results(n_nets, results):
    """Deterministically merge per-window ``(totals, stats)`` pairs.

    Toggle counts sum element-wise (integer arithmetic — order
    independent); perf counters sum, ``wheel_max_bucket`` takes the
    max, ``kernel`` last-wins.  Identical rules to the in-process
    sharded replay, so any partitioning of the transition sequence
    yields the same merged result.
    """
    totals = [0] * n_nets
    merged = {"engine": "wheel", "kernel": "python", "transitions": 0,
              "events_processed": 0, "cancellations": 0,
              "wheel_buckets": 0, "wheel_max_bucket": 0}
    for window_totals, stats in results:
        merged["kernel"] = stats["kernel"]
        for net, c in enumerate(window_totals):
            if c:
                totals[net] += c
        for key in ("transitions", "events_processed", "cancellations",
                    "wheel_buckets"):
            merged[key] += stats[key]
        if stats["wheel_max_bucket"] > merged["wheel_max_bucket"]:
            merged["wheel_max_bucket"] = stats["wheel_max_bucket"]
    return totals, merged


def power_report_from_shards(module, library, stimulus, n_cycles,
                             shard_outputs, frequency_mhz=100.0,
                             attribution=False):
    """Assemble a :class:`PowerReport` from shard-leaf outputs.

    ``shard_outputs`` are the ``(totals, stats)`` pairs produced by
    :func:`power_replay_shard` over a full :func:`power_shard_plan`
    partition.  The zero-delay baseline is recomputed locally (it is a
    single cheap levelized pass), the glitch toggles come from the
    merged shards — numerically identical to a monolithic
    :func:`estimate_power` run over the same stimulus.
    """
    if n_cycles < 2:
        raise SimulationError("need at least two cycles to measure power")
    if not shard_outputs:
        raise SimulationError("power_report_from_shards needs >=1 shard")
    t_level = time.perf_counter()
    with obs.span("power:levelized", cat="power", module=module.name,
                  cycles=n_cycles):
        sim = LevelizedSimulator(module)
        run = sim.run(stimulus, n_cycles)
    t_level = time.perf_counter() - t_level

    energies = net_toggle_energies(module, library)
    owner = module.block_of_net()
    zero_toggles = run.toggles_per_net()
    zero_energy = sum(t * e for t, e in zip(zero_toggles, energies))

    event_toggles, sim_stats = merge_shard_results(module.n_nets,
                                                   shard_outputs)
    sim_stats["workers"] = len(shard_outputs)
    sim_stats["elapsed_s"] = t_level
    return _assemble_report(module, library, n_cycles, zero_toggles,
                            event_toggles, sim_stats, energies, owner,
                            zero_energy, t_level, frequency_mhz, True,
                            attribution)


def _event_toggles_sharded(module, library, packed_values, n_cycles,
                           workers):
    """Shard the transition sequence over worker processes.

    Windows overlap by one cycle: a worker seeds every net from the
    levelized values of the cycle before its first transition and
    replays its window, so concatenating the windows reproduces the
    serial replay transition for transition.
    """
    import concurrent.futures
    import multiprocessing

    transitions = n_cycles - 1
    workers = min(workers, transitions)
    windows = transition_windows(n_cycles, workers)
    workers = len(windows)
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:                        # pragma: no cover - non-POSIX
        ctx = multiprocessing.get_context()
    t0 = time.perf_counter()
    with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=ctx,
            initializer=_shard_init,
            initargs=(module, library, packed_values)) as pool:
        results = list(pool.map(_shard_run, windows))
    elapsed = time.perf_counter() - t0

    for _totals, _stats, obs_payload in results:
        obs.task_merge(obs_payload)
    totals, merged = merge_shard_results(
        module.n_nets, [(t, s) for t, s, _ in results])
    merged["workers"] = workers
    merged["elapsed_s"] = elapsed
    return totals, merged


_SHARD_STATE: Dict[str, object] = {}


def _shard_init(module, library, packed_values):
    _SHARD_STATE["esim"] = EventSimulator(module, library)
    _SHARD_STATE["packed_values"] = packed_values


def _shard_run(window):
    obs.task_begin()
    t_first, t_last = window
    t0 = time.perf_counter()
    with obs.span("power:shard", cat="power", t_first=t_first,
                  t_last=t_last):
        totals, stats = _replay(_SHARD_STATE["esim"],
                                _SHARD_STATE["packed_values"],
                                t_first, t_last)
    stats["workers"] = 1
    stats["elapsed_s"] = time.perf_counter() - t0
    obs.registry().record(
        "power.shards",
        {"t_first": t_first, "t_last": t_last,
         **obs.normalize_sim_stats(stats)})
    # Parent merges stats itself; strip the per-shard-only keys so the
    # deterministic merge sees exactly what the serial path produces.
    stats = {k: v for k, v in stats.items()
             if k not in ("workers", "elapsed_s")}
    return totals, stats, obs.task_collect()


# ----------------------------------------------------------------------
# reference implementation (seed algorithm)
# ----------------------------------------------------------------------

def _event_toggles_legacy(module, library, run, stimulus, n_cycles):
    """The seed's replay: fresh heapq simulator, full per-cycle dicts.

    Kept verbatim as the independent reference for the equivalence
    tests and the before/after engine benchmark; not used by
    :func:`estimate_power`.
    """
    esim = EventSimulator(module, library, engine="heap")
    totals = [0] * module.n_nets

    def cycle_stimulus(t):
        values = {}
        for name, bus in module.inputs.items():
            word = stimulus[name][t] if t < len(stimulus[name]) else 0
            for i, net in enumerate(bus):
                values[net] = (word >> i) & 1
        for reg in module.registers:
            values[reg.q] = run.net_value(reg.q, t)
        return values

    esim.initialize(cycle_stimulus(0))
    for t in range(1, n_cycles):
        counts = esim.apply(cycle_stimulus(t))
        for net, c in enumerate(counts.toggles):
            if c:
                totals[net] += c
    return totals
