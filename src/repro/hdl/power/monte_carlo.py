"""Monte Carlo power estimation (the paper's methodology, Sec. III-E).

"We perform a Monte Carlo simulation by generating pseudo-random input
patterns and estimate the power at a reference frequency 100 MHz" — this
module does exactly that against our netlists:

1.  an exact levelized run computes every net's value in every cycle
    (this also supplies the register outputs cycle by cycle);
2.  the event-driven simulator replays each cycle transition with real
    cell delays, counting glitches;
3.  toggle counts weighted by per-net switching energies, plus register
    clock energy and leakage, yield the :class:`PowerReport`.

``glitch=False`` skips step 2 and charges only the zero-delay activity —
the comparison between the two is the paper's combinational-vs-pipelined
glitch argument made explicit.
"""

from typing import Dict, Optional

from repro.errors import SimulationError
from repro.hdl.power.model import (
    PowerReport,
    clock_energy_fj_per_cycle,
    leakage_mw,
    net_toggle_energies,
    toggles_to_power_mw,
)
from repro.hdl.sim.event import EventSimulator
from repro.hdl.sim.levelized import LevelizedSimulator


def estimate_power(module, library, stimulus, n_cycles, frequency_mhz=100.0,
                   glitch=True):
    """Estimate average power over a stimulus sequence.

    ``stimulus`` maps input bus names to per-cycle word lists (as for
    :class:`LevelizedSimulator`).  At least two cycles are needed to
    observe a transition.
    """
    if n_cycles < 2:
        raise SimulationError("need at least two cycles to measure power")
    sim = LevelizedSimulator(module)
    run = sim.run(stimulus, n_cycles)

    energies = net_toggle_energies(module, library)
    owner = module.block_of_net()

    zero_toggles = run.toggles_per_net()
    zero_energy = sum(t * e for t, e in zip(zero_toggles, energies))

    if glitch:
        event_toggles = _event_toggles(module, library, run, stimulus,
                                       n_cycles)
    else:
        event_toggles = zero_toggles

    # Effective switched energy: the functional transitions plus the
    # derated share of the extra (glitch) transitions (see
    # CellLibrary.glitch_retention).
    retention = library.glitch_retention if glitch else 0.0
    dynamic_energy = 0.0
    by_block_energy: Dict[str, float] = {}
    for net, zcount in enumerate(zero_toggles):
        extra = max(event_toggles[net] - zcount, 0)
        count = zcount + retention * extra
        if not count:
            continue
        e = count * energies[net]
        dynamic_energy += e
        top = owner[net].split("/", 1)[0] if owner[net] else "(io)"
        by_block_energy[top] = by_block_energy.get(top, 0.0) + e
    toggles = event_toggles

    transitions = n_cycles - 1
    dynamic_mw = toggles_to_power_mw(dynamic_energy, transitions,
                                     frequency_mhz)
    zero_mw = toggles_to_power_mw(zero_energy, transitions, frequency_mhz)
    register_mw = toggles_to_power_mw(
        clock_energy_fj_per_cycle(module, library) * transitions,
        transitions, frequency_mhz)
    return PowerReport(
        frequency_mhz=frequency_mhz,
        cycles=transitions,
        dynamic_mw=dynamic_mw,
        register_mw=register_mw,
        leakage_mw=leakage_mw(module, library),
        zero_delay_dynamic_mw=zero_mw,
        by_block_mw={k: toggles_to_power_mw(v, transitions, frequency_mhz)
                     for k, v in by_block_energy.items()},
        total_toggles=sum(toggles),
    )


def _event_toggles(module, library, run, stimulus, n_cycles):
    """Glitch-aware toggle counts accumulated over all cycle transitions."""
    esim = EventSimulator(module, library)
    totals = [0] * module.n_nets

    def cycle_stimulus(t):
        values = {}
        for name, bus in module.inputs.items():
            word = stimulus[name][t] if t < len(stimulus[name]) else 0
            for i, net in enumerate(bus):
                values[net] = (word >> i) & 1
        for reg in module.registers:
            values[reg.q] = run.net_value(reg.q, t)
        return values

    esim.initialize(cycle_stimulus(0))
    for t in range(1, n_cycles):
        counts = esim.apply(cycle_stimulus(t))
        for net, c in enumerate(counts.toggles):
            if c:
                totals[net] += c
    return totals
