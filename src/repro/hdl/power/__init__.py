"""Activity-based power estimation."""

from repro.hdl.power.model import PowerReport, net_toggle_energies
from repro.hdl.power.monte_carlo import estimate_power

__all__ = ["PowerReport", "estimate_power", "net_toggle_energies"]
