"""Energy bookkeeping: toggles -> femtojoules -> milliwatts.

The model follows the standard CMOS dynamic power decomposition the
paper's tooling uses:

* **dynamic** energy: every net transition switches the driving cell's
  internal capacitance plus the loads it drives —
  ``E = scale * (area_eq(driver) + 0.5 * load)`` femtojoules per toggle;
* **register/clock** energy: each flip-flop pays a clock-tick energy
  every cycle (toggling or not) and output-transition energy when its
  q flips (the q-net toggles are counted by the simulators like any
  other net);
* **leakage**: proportional to total area.

``scale`` (``CellLibrary.energy_fj_per_unit``) is the single calibrated
constant — see DESIGN.md and ``repro.eval.calibration``.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class PowerReport:
    """Power estimate at a given clock frequency."""

    frequency_mhz: float
    cycles: int
    dynamic_mw: float
    register_mw: float
    leakage_mw: float
    #: Dynamic power that a zero-delay (glitch-free) simulation would
    #: predict; ``dynamic_mw - zero_delay_dynamic_mw`` is glitch power.
    zero_delay_dynamic_mw: Optional[float] = None
    by_block_mw: Dict[str, float] = field(default_factory=dict)
    total_toggles: int = 0
    #: Simulator perf counters from the Monte Carlo run that produced
    #: this report (events processed, inertial cancellations, time-wheel
    #: occupancy, worker count) — diagnostics only, no power semantics.
    #: Always matches ``repro.obs.schema.SIM_STATS_KEYS``.
    sim_stats: Optional[Dict[str, object]] = None
    #: Per-net power attribution (``estimate_power(attribution=True)``):
    #: glitch/functional split by named sub-block, cell type and
    #: pipeline stage — a pure observer over the same toggle vectors,
    #: so the headline numbers above are identical with it on or off.
    attribution: Optional[object] = None

    @property
    def total_mw(self):
        return self.dynamic_mw + self.register_mw + self.leakage_mw

    @property
    def glitch_mw(self):
        if self.zero_delay_dynamic_mw is None:
            return None
        return self.dynamic_mw - self.zero_delay_dynamic_mw

    def scaled_to(self, frequency_mhz):
        """The same activity numbers re-expressed at another clock.

        Dynamic and register power scale linearly with frequency;
        leakage does not (the paper scales its 100 MHz numbers the same
        way for the 880 MHz column of Table V).
        """
        ratio = frequency_mhz / self.frequency_mhz
        return PowerReport(
            frequency_mhz=frequency_mhz,
            cycles=self.cycles,
            dynamic_mw=self.dynamic_mw * ratio,
            register_mw=self.register_mw * ratio,
            leakage_mw=self.leakage_mw,
            zero_delay_dynamic_mw=(None if self.zero_delay_dynamic_mw is None
                                   else self.zero_delay_dynamic_mw * ratio),
            by_block_mw={k: v * ratio for k, v in self.by_block_mw.items()},
            total_toggles=self.total_toggles,
            sim_stats=self.sim_stats,
            attribution=(None if self.attribution is None
                         else self.attribution.scaled_to(frequency_mhz)),
        )


def net_toggle_energies(module, library):
    """Per-net energy (fJ) of one transition, from driver and fanout load.

    Input nets carry load energy only (their driver lives outside the
    module); register q nets use the flip-flop's output energy.
    """
    load = module.load_map(library)
    scale = library.energy_fj_per_unit
    energy = [0.0] * module.n_nets
    for net in range(module.n_nets):
        energy[net] = scale * 0.5 * load[net]
    for gate in module.gates:
        spec = library.spec(gate.kind)
        energy[gate.output] += scale * spec.area_eq
    qunits = library.register.q_energy_units
    for reg in module.registers:
        energy[reg.q] += scale * qunits
    return energy


def leakage_mw(module, library):
    """Static power of the whole module in mW."""
    area_eq = 0.0
    for gate in module.gates:
        area_eq += library.spec(gate.kind).area_eq
    area_eq += library.register.area_eq * len(module.registers)
    return area_eq * library.leakage_nw_per_eq * 1e-6


def clock_energy_fj_per_cycle(module, library):
    """Clock-tree energy paid by the registers every cycle."""
    return (len(module.registers) * library.register.clock_energy_units
            * library.energy_fj_per_unit)


def toggles_to_power_mw(total_energy_fj, cycles, frequency_mhz):
    """Convert accumulated switching energy to average power.

    ``cycles`` transitions happen in ``cycles / f`` seconds:
    ``P[mW] = E[fJ] * 1e-15 / (cycles / (f[MHz] * 1e6)) * 1e3``.
    """
    if cycles <= 0:
        return 0.0
    seconds = cycles / (frequency_mhz * 1e6)
    return total_energy_fj * 1e-15 / seconds * 1e3
