"""Per-net power attribution: who burns the energy, and why.

The Monte Carlo estimator already *computes* per-net toggle counts for
both the zero-delay run (functional activity) and the glitch-aware
event replay — it just collapses them to one total before anybody can
ask questions.  This module keeps the per-net vectors long enough to
answer the paper's own questions (Tables III–V, Fig. 2): which named
sub-block (ppgen, compressor tree, CPA, normalize/round), which cell
type and which pipeline stage the dynamic power lands in, and how much
of each is *glitch* (event-replay transitions beyond the zero-delay
count, derated by ``CellLibrary.glitch_retention``) versus
*functional* switching.

Attribution is a pure observer: it re-reads the same toggle vectors
and per-net energies :func:`repro.hdl.power.monte_carlo.estimate_power`
uses, so enabling it cannot change a single reported milliwatt.  The
sum of the per-block totals equals ``PowerReport.total_mw`` (up to
float re-association across groups — asserted to 1e-9 relative in the
tests), because every energy contribution — switching, register clock,
leakage — is attributed to exactly one block.
"""

from dataclasses import dataclass, field
from typing import Dict, List

from repro.hdl.power.model import toggles_to_power_mw

#: Rollup entry keys, in rendering order.
COMPONENTS = ("functional_mw", "glitch_mw", "register_mw", "leakage_mw")


def _top_block(tag):
    return tag.split("/", 1)[0] if tag else "(io)"


def net_stages(module):
    """Pipeline stage of every net, 1-based.

    Primary inputs and constants are stage 1; a register with cut
    ``stage`` launches stage ``stage + 1``; a gate output inherits the
    maximum stage of its inputs.  ``module.gates`` is topologically
    ordered by construction (``Module.gate`` requires driven inputs),
    so one forward pass suffices.
    """
    stage = [1] * module.n_nets
    for reg in module.registers:
        stage[reg.q] = reg.stage + 1
    for gate in module.gates:
        s = 1
        for net in gate.inputs:
            if stage[net] > s:
                s = stage[net]
        stage[gate.output] = s
    return stage


def net_cells(module):
    """Driving cell kind of every net (``DFF`` for register outputs)."""
    cell = ["(input)"] * module.n_nets
    for net in module.constants:
        cell[net] = "(const)"
    for gate in module.gates:
        cell[gate.output] = gate.kind
    for reg in module.registers:
        cell[reg.q] = "DFF"
    return cell


@dataclass
class PowerAttribution:
    """Dynamic/glitch/register/leakage power rolled up three ways.

    ``by_block`` keys are top-level block tags (the named sub-blocks of
    the netlists: ``precomp``, ``ppgen``, ``tree``, ``cpa``,
    ``normround``, …, with primary I/O nets under ``(io)``);
    ``by_cell`` keys are cell kinds (plus ``DFF``/``(input)``);
    ``by_stage`` keys are 1-based pipeline stages.  Every entry maps
    :data:`COMPONENTS` plus ``total_mw``, ``toggles`` and
    ``glitch_toggles``.  ``hot_nets`` lists the top dynamic-power nets
    with their full block path, cell, stage and toggle counts.
    """

    frequency_mhz: float
    transitions: int
    glitch_retention: float
    by_block: Dict[str, Dict[str, float]] = field(default_factory=dict)
    by_cell: Dict[str, Dict[str, float]] = field(default_factory=dict)
    by_stage: Dict[int, Dict[str, float]] = field(default_factory=dict)
    hot_nets: List[dict] = field(default_factory=list)

    def total_mw(self):
        """Sum of the per-block totals (== ``PowerReport.total_mw``)."""
        return sum(e["total_mw"] for e in self.by_block.values())

    def glitch_mw(self):
        return sum(e["glitch_mw"] for e in self.by_block.values())

    def functional_mw(self):
        return sum(e["functional_mw"] for e in self.by_block.values())

    def scaled_to(self, frequency_mhz):
        """Re-express at another clock (leakage does not scale)."""
        ratio = frequency_mhz / self.frequency_mhz

        def scale_entry(entry):
            out = dict(entry)
            for key in ("functional_mw", "glitch_mw", "register_mw"):
                out[key] = entry[key] * ratio
            out["total_mw"] = (out["functional_mw"] + out["glitch_mw"]
                               + out["register_mw"] + out["leakage_mw"])
            return out

        return PowerAttribution(
            frequency_mhz=frequency_mhz,
            transitions=self.transitions,
            glitch_retention=self.glitch_retention,
            by_block={k: scale_entry(v) for k, v in self.by_block.items()},
            by_cell={k: scale_entry(v) for k, v in self.by_cell.items()},
            by_stage={k: scale_entry(v) for k, v in self.by_stage.items()},
            hot_nets=[dict(n, mw=n["mw"] * ratio) for n in self.hot_nets],
        )

    def render(self, top=10):
        """Human-readable breakdown (what the CLI prints)."""
        lines = [f"power attribution @ {self.frequency_mhz:g} MHz, "
                 f"{self.transitions} transitions "
                 f"(glitch retention {self.glitch_retention:g})"]

        def table(title, entries, key_header):
            lines.append("")
            lines.append(f"-- {title} --")
            header = (f"{key_header:<12} {'functional':>11} {'glitch':>9} "
                      f"{'register':>9} {'leakage':>9} {'total':>9} "
                      f"{'glitch%':>8}")
            lines.append(header)
            ordered = sorted(entries.items(),
                             key=lambda kv: -kv[1]["total_mw"])
            for key, e in ordered:
                dyn = e["functional_mw"] + e["glitch_mw"]
                share = e["glitch_mw"] / dyn if dyn else 0.0
                lines.append(
                    f"{str(key):<12} {e['functional_mw']:>11.4f} "
                    f"{e['glitch_mw']:>9.4f} {e['register_mw']:>9.4f} "
                    f"{e['leakage_mw']:>9.4f} {e['total_mw']:>9.4f} "
                    f"{share:>8.1%}")
            total = {c: sum(e[c] for e in entries.values())
                     for c in COMPONENTS}
            lines.append(
                f"{'(sum)':<12} {total['functional_mw']:>11.4f} "
                f"{total['glitch_mw']:>9.4f} {total['register_mw']:>9.4f} "
                f"{total['leakage_mw']:>9.4f} "
                f"{sum(total.values()):>9.4f}")

        table("by named sub-block", self.by_block, "block")
        table("by cell type", self.by_cell, "cell")
        table("by pipeline stage",
              {f"stage {k}": v for k, v in self.by_stage.items()}, "stage")

        if self.hot_nets:
            lines.append("")
            lines.append(f"-- top {min(top, len(self.hot_nets))} hot nets "
                         f"(dynamic power) --")
            lines.append(f"{'net':>6} {'mW':>9} {'toggles':>8} "
                         f"{'glitch':>7}  block/cell/stage")
            for n in self.hot_nets[:top]:
                lines.append(
                    f"{n['net']:>6} {n['mw']:>9.5f} {n['toggles']:>8} "
                    f"{n['glitch_toggles']:>7}  "
                    f"{n['block'] or '(io)'} / {n['cell']} / S{n['stage']}")
        return "\n".join(lines)


def _zero_entry():
    return {"functional_mw": 0.0, "glitch_mw": 0.0, "register_mw": 0.0,
            "leakage_mw": 0.0, "total_mw": 0.0, "toggles": 0,
            "glitch_toggles": 0}


def attribute_power(module, library, energies, zero_toggles, event_toggles,
                    transitions, frequency_mhz, glitch=True, top_n=20):
    """Build a :class:`PowerAttribution` from the estimator's raw vectors.

    ``energies`` are the per-net fJ/toggle of
    :func:`repro.hdl.power.model.net_toggle_energies`; ``zero_toggles``
    and ``event_toggles`` the per-net counts of the zero-delay run and
    the event replay (equal when ``glitch=False``).  The glitch share
    of each net is derated by ``library.glitch_retention`` exactly as
    :func:`~repro.hdl.power.monte_carlo.estimate_power` charges it.
    """
    owner = module.block_of_net()
    cells = net_cells(module)
    stages = net_stages(module)
    retention = library.glitch_retention if glitch else 0.0

    # Switching energy per net, split functional vs (derated) glitch.
    by_block: Dict[str, dict] = {}
    by_cell: Dict[str, dict] = {}
    by_stage: Dict[int, dict] = {}
    per_net_energy = []

    def groups(net):
        top = _top_block(owner[net])
        for store, key in ((by_block, top), (by_cell, cells[net]),
                           (by_stage, stages[net])):
            entry = store.get(key)
            if entry is None:
                entry = store[key] = _zero_entry()
            yield entry

    for net in range(module.n_nets):
        zc = zero_toggles[net]
        extra = event_toggles[net] - zc
        if extra < 0:
            extra = 0
        if not zc and not extra:
            continue
        f_energy = zc * energies[net]
        g_energy = retention * extra * energies[net]
        per_net_energy.append((f_energy + g_energy, net, zc, extra))
        f_mw = toggles_to_power_mw(f_energy, transitions, frequency_mhz)
        g_mw = toggles_to_power_mw(g_energy, transitions, frequency_mhz)
        for entry in groups(net):
            entry["functional_mw"] += f_mw
            entry["glitch_mw"] += g_mw
            entry["toggles"] += event_toggles[net]
            entry["glitch_toggles"] += extra

    # Register clock energy: paid per cycle by every flip-flop.
    scale = library.energy_fj_per_unit
    clock_fj = library.register.clock_energy_units * scale
    for reg in module.registers:
        mw = toggles_to_power_mw(clock_fj * transitions, transitions,
                                 frequency_mhz)
        for entry in groups(reg.q):
            entry["register_mw"] += mw

    # Leakage: proportional to cell area, attributed to the output net.
    leak_per_eq = library.leakage_nw_per_eq * 1e-6
    for gate in module.gates:
        mw = library.spec(gate.kind).area_eq * leak_per_eq
        for entry in groups(gate.output):
            entry["leakage_mw"] += mw
    reg_leak = library.register.area_eq * leak_per_eq
    for reg in module.registers:
        for entry in groups(reg.q):
            entry["leakage_mw"] += reg_leak

    for store in (by_block, by_cell, by_stage):
        for entry in store.values():
            entry["total_mw"] = (entry["functional_mw"] + entry["glitch_mw"]
                                 + entry["register_mw"]
                                 + entry["leakage_mw"])

    per_net_energy.sort(key=lambda item: (-item[0], item[1]))
    hot = []
    for energy, net, zc, extra in per_net_energy[:top_n]:
        hot.append({
            "net": net,
            "mw": toggles_to_power_mw(energy, transitions, frequency_mhz),
            "toggles": event_toggles[net],
            "glitch_toggles": extra,
            "block": owner[net],
            "cell": cells[net],
            "stage": stages[net],
        })

    return PowerAttribution(
        frequency_mhz=frequency_mhz,
        transitions=transitions,
        glitch_retention=retention,
        by_block=dict(sorted(by_block.items())),
        by_cell=dict(sorted(by_cell.items())),
        by_stage=dict(sorted(by_stage.items())),
        hot_nets=hot,
    )
