"""Parallel experiment orchestration with a persistent result cache.

The evaluation surface of this repository — every ``experiment_*``
table/figure, the ``sweep_*`` ablations, the Sec. III-E activity
decomposition and the fault-injection campaigns — used to be a strictly
serial walk over ~19 entry points that each rebuilt stimulus and reran
Monte Carlo from scratch.  This module turns that walk into a
**dependency-aware job graph**:

* **leaf jobs** are module-level functions addressed as
  ``"module.path:function"`` with keyword params — picklable, so they
  fan out over a ``ProcessPoolExecutor`` (fork context, sharing the
  parent's warm module caches);
* **merge jobs** run in the parent as soon as their dependencies
  complete and assemble leaf values into the exact result objects the
  serial entry points return — same seeds, bit-identical tables.

This module is the **scheduler core**: graph checking, cache probes,
deterministic merges, and the pump loop that feeds cache-missing leaves
to a pluggable **execution backend** (:mod:`repro.eval.sched`):

* ``inline`` — zero-overhead serial execution, auto-selected whenever
  the request cannot actually run in parallel (``workers <= 1``, or an
  oversubscribed request — more workers than cores — which is counted
  as ``orchestrator.backend.downgraded`` instead of paying fork-pool
  overhead for time slicing);
* ``fork`` — the classic fork-context ``ProcessPoolExecutor``;
* ``workers`` — long-lived worker processes under deque-based work
  stealing, speaking the ``repro.sched/1`` wire protocol with live
  result streaming and crash recovery.

Results stay byte-identical to a serial run on every backend at any
worker count and steal schedule, because merges are keyed by job name
and run in the parent.

Finished leaves persist in the **content-addressed result store** of
:mod:`repro.eval.cache` — ``sha256(key)``-named entries keyed by
``(source fingerprint, job name, params, seed, cycles)``, the same
fingerprint that keys the module pickle cache of
:mod:`repro.eval.experiments`, so one source edit invalidates both
coherently.  Corrupt entries tick ``orchestrator.cache.corrupt`` and
recompute; ``repro cache export``/``import`` moves warm stores between
machines (``REPRO_RESULT_CACHE`` overrides the directory; ``0``
disables).

Entry points:

* :func:`run_experiment` — one experiment through the graph (what the
  benchmark drivers call, so repeated benchmark processes share warm
  caches instead of private ones);
* :func:`run_experiments` — a batch with a shared backend and cache
  (what the full-report CLI of :mod:`repro.eval.report` drives);
* :func:`run_graph` — the raw scheduler, for custom graphs.
"""

import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple, Union

from repro import obs
from repro.errors import SimulationError
from repro.eval.cache import ResultCache, job_key, key_digest, resolve_cache
from repro.eval.sched import (
    LeafTask,
    call_leaf,
    make_backend,
    raise_leaf_failure,
    resolve_fn,
)

__all__ = [
    "Job", "JobOutcome", "ResultCache", "build_jobs",
    "experiment_names", "job", "resolve_cache", "run_experiment",
    "run_experiments", "run_graph",
]

# ----------------------------------------------------------------------
# job model
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Job:
    """One node of the experiment graph.

    ``fn`` is a ``"module.path:function"`` string for leaf jobs (must be
    importable in a worker process) or a direct callable for merge jobs
    (which only ever run in the parent).  Leaves are called as
    ``fn(**params)``; merges as ``fn(deps_dict, **params)`` where
    ``deps_dict`` maps dependency job names to their results.
    """

    name: str
    fn: Union[str, Callable]
    params: Tuple[Tuple[str, object], ...] = ()
    deps: Tuple[str, ...] = ()
    weight: float = 1.0          # scheduling hint: heavier jobs first
    cacheable: bool = True


def job(name, fn, deps=(), weight=1.0, cacheable=True, **params):
    """Convenience :class:`Job` constructor with sorted params."""
    return Job(name=name, fn=fn,
               params=tuple(sorted(params.items())),
               deps=tuple(deps), weight=weight, cacheable=cacheable)


@dataclass
class JobOutcome:
    """One executed (or cache-served) job's result and metrics."""

    name: str
    value: object
    seconds: float
    cached: bool
    mode: str                   # "cache" | "inline" | "worker"


# ----------------------------------------------------------------------
# the scheduler core
# ----------------------------------------------------------------------

# Back-compat aliases: graph builders and external callers used these
# names when execution lived in this module.
_resolve_fn = resolve_fn
_execute_leaf = call_leaf


def _note_outcome(outcome):
    """Fold one finished job into the metrics registry + trace."""
    reg = obs.registry()
    reg.inc("orchestrator.jobs")
    reg.inc(f"orchestrator.jobs.{outcome.mode}")
    if outcome.cached:
        reg.inc("orchestrator.jobs.cached")
    reg.record("orchestrator.jobs",
               {"name": outcome.name, "mode": outcome.mode,
                "cached": outcome.cached,
                "seconds": round(outcome.seconds, 6)})


def _check_graph(jobs):
    by_name: Dict[str, Job] = {}
    for jb in jobs:
        seen = by_name.get(jb.name)
        if seen is None:
            by_name[jb.name] = jb
        elif seen != jb:
            raise SimulationError(
                f"job graph defines {jb.name!r} twice with different specs")
    for jb in by_name.values():
        for dep in jb.deps:
            if dep not in by_name:
                raise SimulationError(
                    f"job {jb.name!r} depends on unknown job {dep!r}")
    # Kahn over the dep edges: detects cycles, yields a stable order.
    order, ready = [], []
    waiting = {name: len(jb.deps) for name, jb in by_name.items()}
    dependents: Dict[str, List[str]] = {name: [] for name in by_name}
    for name, jb in by_name.items():
        for dep in jb.deps:
            dependents[dep].append(name)
    ready = [name for name, n in waiting.items() if n == 0]
    while ready:
        name = ready.pop(0)
        order.append(name)
        for dependent in dependents[name]:
            waiting[dependent] -= 1
            if waiting[dependent] == 0:
                ready.append(dependent)
    if len(order) != len(by_name):
        raise SimulationError("job graph has a dependency cycle")
    return by_name, order, dependents


def _finish(jb, results, cache):
    """Run one job in the parent (cache-served, merge, or inline leaf)."""
    t0 = time.perf_counter()
    outcome = _finish_inner(jb, results, cache, t0)
    obs.complete_event(f"job:{jb.name}", t0, outcome.seconds,
                       cat="orchestrator", mode=outcome.mode,
                       cached=outcome.cached)
    _note_outcome(outcome)
    return outcome


def _finish_inner(jb, results, cache, t0):
    if jb.cacheable and cache is not None and not jb.deps:
        hit, value = cache.load(jb)
        if hit:
            return JobOutcome(jb.name, value, time.perf_counter() - t0,
                              cached=True, mode="cache")
    if jb.deps:
        deps = {dep: results[dep] for dep in jb.deps}
        value = _resolve_fn(jb.fn)(deps, **dict(jb.params))
    else:
        value = _execute_leaf(jb.fn, jb.params)
        if jb.cacheable and cache is not None:
            cache.store(jb, value)
    return JobOutcome(jb.name, value, time.perf_counter() - t0,
                      cached=False, mode="inline")


def _resolve_backend_choice(backend, workers):
    """Map a ``(backend, workers)`` request to what actually runs.

    ``auto`` policy: serial requests (``workers <= 1``) run inline;
    parallel requests run on ``fork`` — unless they are oversubscribed
    (``workers > os.cpu_count()``), in which case any "parallelism"
    would be GIL-free time slicing plus fork overhead, so the request
    **downgrades to inline** and ``orchestrator.backend.downgraded``
    ticks (the 0.858×-of-serial regression class, made structurally
    impossible).  An explicitly named backend is always honoured —
    that is what lets parity tests race real worker processes on a
    one-core box — with oversubscription still counted honestly.
    """
    from repro.eval.sched import BACKEND_CHOICES

    if backend not in BACKEND_CHOICES:
        raise SimulationError(
            f"unknown scheduler backend {backend!r}; choose from "
            f"{', '.join(BACKEND_CHOICES)}")
    workers = 0 if workers is None else int(workers)
    if backend == "remote":
        # Remote capacity is the daemons' cores, not this box's: the
        # oversubscription downgrade does not apply, and the worker
        # count is advisory (each daemon announces its own pool size).
        return "remote", max(1, workers)
    if backend == "inline" or (backend == "auto" and workers <= 1):
        return "inline", 1

    cpus = os.cpu_count() or 1
    reg = obs.registry()
    reg.gauge("orchestrator.workers.requested", workers)
    reg.gauge("orchestrator.workers.cpu_count", cpus)
    if workers > cpus:
        reg.inc("orchestrator.workers.oversubscribed")
        if backend == "auto":
            reg.inc("orchestrator.backend.downgraded")
            reg.record("orchestrator.backend.downgraded",
                       {"requested": workers, "cpu_count": cpus,
                        "to": "inline", "reason": "oversubscribed"})
            return "inline", 1
    if backend == "auto":
        return "fork", workers
    return backend, max(1, workers)


def run_graph(jobs, workers=0, cache=None, backend="auto", progress=None,
              hosts=None):
    """Execute a job graph; returns ``{name: JobOutcome}``.

    ``backend`` picks the execution backend (``auto``/``inline``/
    ``fork``/``workers``/``remote``; see :func:`_resolve_backend_choice`
    for the ``auto`` policy).  ``hosts`` names the worker daemons of the
    ``remote`` backend (``HOST:PORT,...``; default
    ``REPRO_SCHED_HOSTS``).  The inline path runs everything in deterministic
    topological order with zero scheduling overhead; parallel backends
    fan cache-missing leaf jobs out heaviest-first and stream results
    back as each leaf finishes.  Merge jobs always run in the parent,
    as soon as their dependencies complete, so the merged tables are
    identical to a serial run regardless of backend, worker count or
    steal schedule.  Cache lookups and stores happen only in the
    parent — worker processes never touch the cache directory.

    ``progress``, when given, is called after every finished job with a
    dict ``{"name", "mode", "cached", "seconds", "done", "total",
    "outstanding"}`` — what the report CLI's ``--live`` view renders.
    It runs on the scheduler thread; keep it cheap and never raise.
    """
    by_name, order, dependents = _check_graph(jobs)
    chosen, eff_workers = _resolve_backend_choice(backend, workers)
    results: Dict[str, object] = {}
    outcomes: Dict[str, JobOutcome] = {}
    total = len(by_name)

    def notify(outcome, outstanding=0):
        if progress is None:
            return
        progress({"name": outcome.name, "mode": outcome.mode,
                  "cached": outcome.cached,
                  "seconds": outcome.seconds,
                  "done": len(outcomes), "total": total,
                  "outstanding": outstanding})

    if chosen == "inline":
        with obs.span("graph:run", cat="orchestrator", jobs=total,
                      backend=chosen):
            for name in order:
                outcome = _finish(by_name[name], results, cache)
                outcomes[name] = outcome
                results[name] = outcome.value
                notify(outcome)
        return outcomes

    waiting = {name: len(by_name[name].deps) for name in by_name}
    ready = [name for name in order if waiting[name] == 0]
    ready.sort(key=lambda n: -by_name[n].weight)

    def settle(name, outcome):
        outcomes[name] = outcome
        results[name] = outcome.value
        unblocked = []
        for dependent in dependents[name]:
            waiting[dependent] -= 1
            if waiting[dependent] == 0:
                unblocked.append(dependent)
        return unblocked

    reg = obs.registry()
    with make_backend(chosen, eff_workers, hosts=hosts) as pool, \
            obs.span("graph:run", cat="orchestrator", jobs=total,
                     backend=chosen, workers=eff_workers):

        def launch(name):
            jb = by_name[name]
            if jb.deps:
                # Merge: deps are complete by construction when queued.
                outcome = _finish(jb, results, cache)
                unblocked = settle(name, outcome)
                notify(outcome, pool.outstanding)
                for nxt in unblocked:
                    launch(nxt)
                return
            if jb.cacheable and cache is not None:
                t0 = time.perf_counter()
                hit, value = cache.load(jb)
                if hit:
                    outcome = JobOutcome(name, value,
                                         time.perf_counter() - t0,
                                         cached=True, mode="cache")
                    obs.complete_event(f"job:{name}", t0, outcome.seconds,
                                       cat="orchestrator", mode="cache",
                                       cached=True)
                    _note_outcome(outcome)
                    unblocked = settle(name, outcome)
                    notify(outcome, pool.outstanding)
                    for nxt in unblocked:
                        launch(nxt)
                    return
            fingerprint = key_digest(job_key(
                cache.fingerprint if cache is not None else "", jb))
            trace_ctx = None
            if obs.is_tracing():
                # One flow arrow per submitted leaf: tail here (inside
                # the graph span), head inside the worker's leaf span.
                trace_ctx = dict(obs.current_context() or {},
                                 flow=obs.new_span_id())
                obs.flow_start(f"sched:{name}", trace_ctx["flow"],
                               cat="orchestrator")
            pool.submit(LeafTask(name=name, fn=jb.fn, params=jb.params,
                                 weight=jb.weight,
                                 fingerprint=fingerprint,
                                 trace_ctx=trace_ctx))
            reg.gauge("orchestrator.leaves.inflight", pool.outstanding)

        for name in ready:
            launch(name)
        while pool.outstanding:
            res = pool.next_result()
            reg.gauge("orchestrator.leaves.inflight", pool.outstanding)
            if not res.ok:
                raise_leaf_failure(res)
            # Stream the worker's spans/metrics in the moment the leaf
            # lands, not at pool join.
            if res.obs_payload:
                obs.task_merge(res.obs_payload)
            jb = by_name[res.name]
            if jb.cacheable and cache is not None:
                cache.store(jb, res.value)
            outcome = JobOutcome(res.name, res.value, res.seconds,
                                 cached=False, mode=pool.mode)
            obs.complete_event(f"job:{res.name}",
                               time.perf_counter() - res.seconds,
                               outcome.seconds, cat="orchestrator",
                               mode=pool.mode, cached=False,
                               worker=res.worker)
            _note_outcome(outcome)
            unblocked = settle(res.name, outcome)
            notify(outcome, pool.outstanding)
            for nxt in unblocked:
                launch(nxt)
        reg.gauge("orchestrator.leaves.inflight", 0)
    return outcomes


# ----------------------------------------------------------------------
# the experiment registry (graph builders)
# ----------------------------------------------------------------------

def _merge_keyed(deps, _build=None, _keys=(), _prefix=""):
    """Generic merge: collect ``{prefix}/{key}`` deps, hand to a builder."""
    values = {key: deps[f"{_prefix}/{key}"] for key in _keys}
    return _resolve_fn(_build)(values)


def _build_table3(values):
    from repro.eval import experiments as ex

    return ex.Table3Result(power_mw=values, paper=ex.PAPER["table3"])


def _build_table5(values):
    from repro.eval import experiments as ex

    measured = {fmt: values[fmt] for fmt in ex.TABLE5_FLOPS}
    return ex.Table5Result(measured=measured, paper=ex.PAPER["table5"],
                           max_freq_mhz=values["max_freq"])


def _build_activity(values):
    from repro.eval.activity import breakdown_from_points

    return breakdown_from_points(values)


def _merge_sweep(deps, _title="", _order=()):
    from repro.eval.sweep import SweepResult

    return SweepResult(title=_title, points=[deps[name] for name in _order])


def _merge_fault(deps, _order=(), **params):
    from repro.eval.fault_injection import merge_coverage

    return merge_coverage([deps[name] for name in _order])


def _single(fn, weight=1.0):
    """Builder for an experiment that is one leaf job."""
    def build(name, params):
        return [job(name, fn, weight=weight, **params)]
    return build


#: Target glitch-replay transitions per stealable Monte Carlo leaf.
MC_SHARD_TRANSITIONS = 16


def _merge_mc_shards(deps, _finish=None, _order=(), **params):
    """Per-point merge: ordered shard outputs into a finish function."""
    shards = [deps[name] for name in _order]
    return _resolve_fn(_finish)(shards=shards, **params)


def _mc_point_jobs(point_name, leaf_fn, shard_fn, finish_fn, weight,
                   point_params):
    """Jobs for one Monte Carlo power point.

    When the shard plan has more than one cycle window the point
    decomposes into per-window stealable leaves plus a deterministic
    parent-side merge (named ``point_name``, so downstream deps are
    unchanged).  A single-window plan keeps the classic monolithic leaf
    — same name, same cache key, no merge overhead.
    """
    from repro.hdl.power.monte_carlo import power_shard_plan

    n_cycles = point_params.get("n_cycles", 64)
    windows = power_shard_plan(n_cycles, MC_SHARD_TRANSITIONS)
    if len(windows) <= 1:
        return [job(point_name, leaf_fn, weight=weight, **point_params)]
    shard_weight = max(weight / len(windows), 0.5)
    leaves = [job(f"{point_name}/t{a}-{b}", shard_fn, weight=shard_weight,
                  t_first=a, t_last=b, **point_params)
              for a, b in windows]
    return leaves + [job(point_name, _merge_mc_shards,
                         deps=[leaf.name for leaf in leaves],
                         cacheable=False, _finish=finish_fn,
                         _order=tuple(leaf.name for leaf in leaves),
                         **point_params)]


def _table3_jobs(name, params):
    from repro.eval.experiments import TABLE3_CONFIGS

    jobs = []
    for key, __ in TABLE3_CONFIGS:
        jobs.extend(_mc_point_jobs(
            f"{name}/{key}",
            "repro.eval.experiments:table3_power_point",
            "repro.eval.experiments:table3_power_shard",
            "repro.eval.experiments:table3_point_from_shards",
            4.0, dict(params, key=key)))
    return jobs + [job(name, _merge_keyed,
                       deps=[f"{name}/{key}"
                             for key, __ in TABLE3_CONFIGS],
                       cacheable=False,
                       _build="repro.eval.orchestrator:_build_table3",
                       _keys=tuple(key for key, __ in TABLE3_CONFIGS),
                       _prefix=name)]


def _table5_jobs(name, params):
    from repro.eval.experiments import TABLE5_FLOPS

    jobs = []
    for fmt in TABLE5_FLOPS:
        jobs.extend(_mc_point_jobs(
            f"{name}/{fmt}",
            "repro.eval.experiments:table5_format_point",
            "repro.eval.experiments:table5_power_shard",
            "repro.eval.experiments:table5_point_from_shards",
            3.0, dict(params, fmt=fmt)))
    jobs.append(job(f"{name}/max_freq",
                    "repro.eval.experiments:mf_max_freq_mhz", weight=0.5))
    keys = tuple(TABLE5_FLOPS) + ("max_freq",)
    return jobs + [job(name, _merge_keyed,
                       deps=[f"{name}/{key}" for key in keys],
                       cacheable=False,
                       _build="repro.eval.orchestrator:_build_table5",
                       _keys=keys, _prefix=name)]


def _activity_jobs(name, params):
    from repro.eval.activity import ACTIVITY_FORMATS

    leaves = [job(f"{name}/{fmt}", "repro.eval.activity:activity_point",
                  fmt=fmt, weight=2.0, **params)
              for fmt in ACTIVITY_FORMATS]
    return leaves + [job(name, _merge_keyed,
                         deps=[leaf.name for leaf in leaves],
                         cacheable=False,
                         _build="repro.eval.orchestrator:_build_activity",
                         _keys=ACTIVITY_FORMATS, _prefix=name)]


def _sweep_jobs_factory(title, leaf_fn, configs):
    """Builder for a sweep: one leaf per design point + ordered merge.

    ``configs`` is a sequence of ``(suffix, leaf_params)`` pairs in
    rendering order.
    """
    def build(name, params):
        leaves = [job(f"{name}/{suffix}", leaf_fn, weight=1.5,
                      **{**leaf_params, **params})
                  for suffix, leaf_params in configs]
        return leaves + [job(name, _merge_sweep,
                             deps=[leaf.name for leaf in leaves],
                             cacheable=False, _title=title,
                             _order=tuple(leaf.name for leaf in leaves))]
    return build


def _fault_jobs_factory(which, default_mutations, default_seed):
    def build(name, params):
        from repro.eval.fault_injection import chunk_plan

        p = {"n_mutations": default_mutations, "seed": default_seed,
             "chunks": None, "mode": "differential",
             "battery_patterns": None, **params}
        plan = chunk_plan(p["n_mutations"], p["seed"], p["chunks"])
        leaves = [job(f"{name}/chunk{i}",
                      "repro.eval.fault_injection:coverage_chunk",
                      which=which, n_mutations=size, seed=chunk_seed,
                      mode=p["mode"],
                      battery_patterns=p["battery_patterns"], weight=5.0)
                  for i, (chunk_seed, size) in enumerate(plan)]
        return leaves + [job(name, _merge_fault,
                             deps=[leaf.name for leaf in leaves],
                             cacheable=False,
                             _order=tuple(leaf.name for leaf in leaves))]
    return build


def _sweep_configs():
    from repro.eval import sweep as sw

    radix = [(f"r{1 << k}", {"radix_log2": k}) for k, __ in sw.RADIX_POINTS]
    cpa = [(style, {"style": style}) for style in sw.CPA_STYLES]
    cut = [(str(c).lower(), {"cut": c}) for c in sw.PIPELINE_CUTS]
    tree = [(f"r{1 << k}_{'42' if use42 else '32'}",
             {"radix_log2": k, "use_4_2": use42})
            for k, __, use42 in sw.TREE_POINTS]
    spec = [(label, {"label": label}) for label in sw.SPECIALIZATION_LABELS]
    return radix, cpa, cut, tree, spec


def _registry():
    radix, cpa, cut, tree, spec = _sweep_configs()
    return {
        "table1": _single("repro.eval.experiments:experiment_table1",
                          weight=2.0),
        "table2": _single("repro.eval.experiments:experiment_table2",
                          weight=2.0),
        "table3": _table3_jobs,
        "table4": _single("repro.eval.experiments:experiment_table4",
                          weight=0.1),
        "table5": _table5_jobs,
        "fig1": _single("repro.eval.experiments:experiment_fig1_ppgen",
                        weight=0.5),
        "fig2": _single("repro.eval.experiments:experiment_fig2_multiplier",
                        weight=0.5),
        "fig3": _single("repro.eval.experiments:experiment_fig3_normround",
                        weight=0.5),
        "fig4": _single("repro.eval.experiments:experiment_fig4_dual_lane",
                        weight=0.5),
        "fig5": _single("repro.eval.experiments:experiment_fig5_pipeline",
                        weight=1.0),
        "fig6": _single("repro.eval.experiments:experiment_fig6_reduction",
                        weight=0.5),
        "section4": _single(
            "repro.eval.experiments:experiment_section4_savings", weight=0.5),
        "activity": _activity_jobs,
        "sweep_radix": _sweep_jobs_factory(
            "Ablation: radix", "repro.eval.sweep:radix_point", radix),
        "sweep_cpa": _sweep_jobs_factory(
            "Ablation: CPA style", "repro.eval.sweep:cpa_point", cpa),
        "sweep_pipeline_cut": _sweep_jobs_factory(
            "Ablation: pipeline cut", "repro.eval.sweep:cut_point", cut),
        "sweep_tree": _sweep_jobs_factory(
            "Ablation: tree style", "repro.eval.sweep:tree_point", tree),
        "sweep_specialization": _sweep_jobs_factory(
            "Ablation: format specialization",
            "repro.eval.sweep:specialization_point", spec),
        "fault_r16": _fault_jobs_factory("r16", 40, 7),
        "fault_mf": _fault_jobs_factory("mf", 40, 8),
    }


def experiment_names():
    """Every orchestratable experiment entry point, in canonical order."""
    return tuple(_registry())


def build_jobs(name, params=None):
    """The job graph for one experiment; its final job is named ``name``."""
    registry = _registry()
    if name not in registry:
        raise SimulationError(
            f"unknown experiment {name!r}; choose from "
            f"{', '.join(registry)}")
    return registry[name](name, dict(params or {}))


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------

def run_experiment(name, workers=0, cache=True, backend="auto",
                   hosts=None, **params):
    """Run one experiment through the orchestrator; returns its result.

    This is what the benchmark drivers call: repeated benchmark
    *processes* then share the warm on-disk module and result caches
    instead of rebuilding private state.  ``cache`` accepts ``True``
    (default on-disk cache), ``False`` (no caching) or a
    :class:`ResultCache` instance; ``backend`` one of ``auto``/
    ``inline``/``fork``/``workers``/``remote`` (``hosts`` names the
    remote backend's worker daemons).
    """
    outcomes = run_graph(build_jobs(name, params), workers=workers,
                         cache=resolve_cache(cache), backend=backend,
                         hosts=hosts)
    return outcomes[name].value


def run_experiments(requests, workers=0, cache=True, backend="auto",
                    progress=None, hosts=None):
    """Run several experiments as one shared graph.

    ``requests`` is a sequence of ``(name, params)`` pairs; returns
    ``({name: result}, [JobOutcome ...])`` with outcomes in
    deterministic job order.  All experiments share one backend and one
    cache for the whole batch.  ``progress`` is forwarded to
    :func:`run_graph` (the ``--live`` per-job callback).
    """
    jobs: List[Job] = []
    finals = []
    for name, params in requests:
        jobs.extend(build_jobs(name, params))
        finals.append(name)
    outcomes = run_graph(jobs, workers=workers,
                         cache=resolve_cache(cache), backend=backend,
                         progress=progress, hosts=hosts)
    results = {name: outcomes[name].value for name in finals}
    ordered = [outcomes[jb.name] for jb in jobs]
    return results, ordered
