"""Content-addressed persistent result cache (+ its CLI).

Every finished leaf job of the experiment scheduler lands here as one
object file named by the **sha256 of its full cache key** — source
fingerprint, job name, function spec, params, seed, Monte Carlo depth —
so the store is content-addressed: equal work maps to equal names on
any machine, which is what makes warm caches *portable*.  Layout::

    <root>/
      index.json                 # repro.cache/1: per-entry name/size/atime
      objects/<sha256-hex>.pkl   # {"schema", "key", "value"} pickle

Properties:

* **atomic writes** — objects and the index are written to a temp file
  and ``os.replace``d; readers never observe a torn entry;
* **self-verifying** — an object must contain the exact key whose
  digest names it; a mismatch, torn pickle or unreadable file degrades
  to a miss and ticks ``orchestrator.cache.corrupt`` (never silent, the
  caller recomputes and overwrites);
* **size-capped** — ``max_mb`` (or ``REPRO_RESULT_CACHE_MB``) enforces
  an LRU budget at store time; :meth:`ResultCache.gc` does the same on
  demand, evicting least-recently-*used* entries (hits refresh atime);
* **portable** — :meth:`ResultCache.export` packs the store into one
  ``tar.gz`` artifact and :meth:`ResultCache.import_archive` unpacks it
  into another root, re-verifying every digest on the way in.  A CI
  runner that imports a warm artifact replays the whole report with
  zero leaf executions.

CLI (also reachable as ``python -m repro cache ...``)::

    python -m repro.eval.cache stats  [--root PATH] [--json]
    python -m repro.eval.cache gc     --max-mb N [--root PATH]
    python -m repro.eval.cache export ARCHIVE [--root PATH]
    python -m repro.eval.cache import ARCHIVE [--root PATH]

``REPRO_RESULT_CACHE`` still overrides the root (``0`` disables
caching entirely), exactly as before the store became content-
addressed.
"""

import argparse
import hashlib
import json
import os
import pickle
import sys
import tarfile
import tempfile
import time
from pathlib import Path

from repro import obs

#: Store schema; bump on incompatible layout changes.
SCHEMA = "repro.cache/1"

_OBJECTS = "objects"
_INDEX = "index.json"


def _default_cache_root():
    env = os.environ.get("REPRO_RESULT_CACHE")
    if env == "0":
        return None
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / ".cache" / "results"


def _default_max_bytes():
    env = os.environ.get("REPRO_RESULT_CACHE_MB", "").strip()
    if not env:
        return None
    try:
        return int(float(env) * 1024 * 1024)
    except ValueError:
        return None


def job_key(fingerprint, jb):
    """The full, collision-safe cache key string of one job."""
    params = dict(jb.params)
    return repr((fingerprint, jb.name, str(jb.fn), jb.params,
                 params.get("seed"), params.get("n_cycles")))


def key_digest(key):
    """The content address of a key: its full sha256 hex digest."""
    return hashlib.sha256(key.encode()).hexdigest()


class ResultCache:
    """On-disk content-addressed cache of finished experiment results."""

    def __init__(self, root=None, fingerprint=None, max_mb=None):
        if root is None:
            root = _default_cache_root()
        self.root = Path(root) if root is not None else None
        if fingerprint is None:
            from repro.eval.experiments import source_fingerprint

            fingerprint = source_fingerprint()
        self.fingerprint = fingerprint
        self.max_bytes = (int(max_mb * 1024 * 1024)
                          if max_mb is not None else _default_max_bytes())
        self.hits = 0
        self.misses = 0
        self._index = None        # lazy {digest: {...}}

    # ------------------------------------------------------------------
    # layout helpers
    # ------------------------------------------------------------------

    def _object_path(self, digest):
        return self.root / _OBJECTS / f"{digest}.pkl"

    def _entry(self, jb):
        key = job_key(self.fingerprint, jb)
        digest = key_digest(key)
        return self._object_path(digest), key, digest

    # ------------------------------------------------------------------
    # the index (names, sizes, access order)
    # ------------------------------------------------------------------

    def _load_index(self):
        if self._index is not None:
            return self._index
        entries = {}
        try:
            with open(self.root / _INDEX) as fh:
                doc = json.load(fh)
            if doc.get("schema") == SCHEMA:
                entries = doc.get("entries", {})
        except Exception:
            pass
        # Recover entries the index lost (torn write, manual copy): the
        # objects directory is the ground truth, the index is derived.
        obj_dir = self.root / _OBJECTS
        if obj_dir.is_dir():
            for path in obj_dir.iterdir():
                digest = path.name[:-4]
                if not path.name.endswith(".pkl") or digest in entries:
                    continue
                try:
                    stat = path.stat()
                    entries[digest] = {"name": "?", "bytes": stat.st_size,
                                       "atime": stat.st_mtime}
                except OSError:
                    continue
        self._index = entries
        return entries

    def _flush_index(self):
        if self._index is None:
            return
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            with os.fdopen(fd, "w") as fh:
                json.dump({"schema": SCHEMA, "entries": self._index},
                          fh, sort_keys=True)
            os.replace(tmp, self.root / _INDEX)
        except Exception:
            pass

    # ------------------------------------------------------------------
    # load / store
    # ------------------------------------------------------------------

    def load(self, jb):
        """Return ``(hit, value)``; any failure is a miss, never an error."""
        if self.root is None:
            return False, None
        path, key, digest = self._entry(jb)
        with obs.span(f"cache:probe:{jb.name}", cat="cache") as note:
            try:
                with open(path, "rb") as fh:
                    entry = pickle.load(fh)
            except FileNotFoundError:
                entry = None
            except Exception:
                entry = False                # present but unreadable
            if entry is not None and not isinstance(entry, dict):
                entry = False
            # Two self-verifying entry forms share the store: keyed
            # entries written locally ({"key": <full key>}) and digest
            # entries synced from a remote daemon ({"digest": <hex>} —
            # the daemon only ever saw the content address).  Either
            # proof ties the object to the name that found it.
            if entry in (None, False) or not (
                    entry.get("key") == key
                    or entry.get("digest") == digest):
                if entry is not None:
                    # Torn pickle or digest/key mismatch: corrupt, not
                    # merely cold.  Count it and clear the way for the
                    # recompute's overwrite.
                    obs.registry().inc("orchestrator.cache.corrupt")
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
                self.misses += 1
                note["hit"] = False
                obs.registry().inc("orchestrator.cache.misses")
                return False, None
            self.hits += 1
            note["hit"] = True
            obs.registry().inc("orchestrator.cache.hits")
        entries = self._load_index()
        if digest in entries:
            entries[digest]["atime"] = time.time()
            self._flush_index()
        return True, entry["value"]

    def store(self, jb, value):
        """Best-effort atomic write; enforces the LRU size budget."""
        if self.root is None:
            return
        path, key, digest = self._entry(jb)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "wb") as fh:
                pickle.dump({"schema": SCHEMA, "key": key, "value": value},
                            fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except Exception:
            return
        entries = self._load_index()
        entries[digest] = {"name": jb.name,
                           "bytes": path.stat().st_size,
                           "atime": time.time()}
        if self.max_bytes is not None:
            self._evict_locked(self.max_bytes, keep=digest)
        self._flush_index()

    # ------------------------------------------------------------------
    # digest-addressed access (remote cache sync)
    # ------------------------------------------------------------------

    def has_object(self, digest):
        """Whether the store holds an object under ``digest``."""
        return self.root is not None and self._object_path(digest).is_file()

    def load_object(self, digest):
        """``(hit, value)`` straight by content address.

        The remote coordinator pulls warm results this way — it knows
        the digest from the leaf fingerprint, not the daemon's key.
        Verification matches :meth:`load`: the entry must carry either
        a key hashing to ``digest`` or the digest itself.
        """
        if self.root is None:
            return False, None
        path = self._object_path(digest)
        try:
            with open(path, "rb") as fh:
                entry = pickle.load(fh)
        except FileNotFoundError:
            return False, None
        except Exception:
            entry = None
        if not isinstance(entry, dict) or not (
                (isinstance(entry.get("key"), str)
                 and key_digest(entry["key"]) == digest)
                or entry.get("digest") == digest):
            obs.registry().inc("orchestrator.cache.corrupt")
            try:
                os.unlink(path)
            except OSError:
                pass
            return False, None
        entries = self._load_index()
        if digest in entries:
            entries[digest]["atime"] = time.time()
            self._flush_index()
        return True, entry["value"]

    def store_object(self, digest, value, name="?"):
        """Best-effort store of one object under a bare content address.

        The daemon-side half of cache sync: a worker daemon never sees
        the full cache key (the wire carries only the fingerprint), so
        its entries record the digest as their self-verification proof.
        """
        if self.root is None:
            return
        path = self._object_path(digest)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "wb") as fh:
                pickle.dump({"schema": SCHEMA, "digest": digest,
                             "value": value},
                            fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except Exception:
            return
        entries = self._load_index()
        entries[digest] = {"name": name,
                           "bytes": path.stat().st_size,
                           "atime": time.time()}
        if self.max_bytes is not None:
            self._evict_locked(self.max_bytes, keep=digest)
        self._flush_index()

    # ------------------------------------------------------------------
    # maintenance: stats / gc
    # ------------------------------------------------------------------

    def stats(self):
        """Entry count, total bytes and the store location."""
        if self.root is None:
            return {"root": None, "entries": 0, "bytes": 0}
        entries = self._load_index()
        return {"root": str(self.root), "entries": len(entries),
                "bytes": sum(e["bytes"] for e in entries.values()),
                "max_bytes": self.max_bytes}

    def _evict_locked(self, max_bytes, keep=None):
        entries = self._load_index()
        total = sum(e["bytes"] for e in entries.values())
        evicted = []
        for digest in sorted(entries, key=lambda d: entries[d]["atime"]):
            if total <= max_bytes:
                break
            if digest == keep:
                continue
            info = entries.pop(digest)
            total -= info["bytes"]
            evicted.append(info)
            try:
                os.unlink(self._object_path(digest))
            except OSError:
                pass
            obs.registry().inc("orchestrator.cache.evicted")
        return evicted

    def gc(self, max_mb):
        """Evict least-recently-used entries down to ``max_mb``."""
        if self.root is None:
            return []
        evicted = self._evict_locked(int(max_mb * 1024 * 1024))
        self._flush_index()
        return evicted

    # ------------------------------------------------------------------
    # portability: export / import
    # ------------------------------------------------------------------

    def export(self, archive_path):
        """Pack the whole store into one ``tar.gz`` artifact."""
        if self.root is None:
            raise ValueError("result cache is disabled; nothing to export")
        entries = self._load_index()
        self._flush_index()
        archive_path = Path(archive_path)
        archive_path.parent.mkdir(parents=True, exist_ok=True)
        with tarfile.open(archive_path, "w:gz") as tar:
            tar.add(self.root / _INDEX, arcname=_INDEX)
            for digest in sorted(entries):
                path = self._object_path(digest)
                if path.is_file():
                    tar.add(path, arcname=f"{_OBJECTS}/{digest}.pkl")
        return {"archive": str(archive_path), "entries": len(entries)}

    def import_archive(self, archive_path):
        """Unpack an exported store, re-verifying every content address.

        Objects whose stored key does not hash to their file name are
        rejected (and counted under ``orchestrator.cache.corrupt``);
        already-present digests are skipped.
        """
        if self.root is None:
            raise ValueError("result cache is disabled; nowhere to import")
        entries = self._load_index()
        imported = skipped = corrupt = 0
        with tarfile.open(archive_path, "r:gz") as tar:
            for member in tar.getmembers():
                if not member.isfile() \
                        or not member.name.startswith(f"{_OBJECTS}/") \
                        or not member.name.endswith(".pkl"):
                    continue
                digest = member.name[len(_OBJECTS) + 1:-4]
                if len(digest) != 64 or not all(
                        c in "0123456789abcdef" for c in digest):
                    corrupt += 1
                    continue
                if digest in entries \
                        and self._object_path(digest).is_file():
                    skipped += 1
                    continue
                blob = tar.extractfile(member).read()
                try:
                    entry = pickle.loads(blob)
                    assert entry.get("schema") == SCHEMA
                    if "key" in entry:
                        assert key_digest(entry["key"]) == digest
                    else:
                        assert entry["digest"] == digest
                except Exception:
                    corrupt += 1
                    obs.registry().inc("orchestrator.cache.corrupt")
                    continue
                path = self._object_path(digest)
                path.parent.mkdir(parents=True, exist_ok=True)
                fd, tmp = tempfile.mkstemp(dir=path.parent,
                                           suffix=".tmp")
                with os.fdopen(fd, "wb") as fh:
                    fh.write(blob)
                os.replace(tmp, path)
                entries[digest] = {"name": "?", "bytes": len(blob),
                                   "atime": time.time()}
                imported += 1
        # Adopt names from the archive's index where ours says "?".
        try:
            with tarfile.open(archive_path, "r:gz") as tar:
                doc = json.load(tar.extractfile(_INDEX))
            if doc.get("schema") == SCHEMA:
                for digest, info in doc.get("entries", {}).items():
                    if digest in entries \
                            and entries[digest].get("name") == "?":
                        entries[digest]["name"] = info.get("name", "?")
        except Exception:
            pass
        self._flush_index()
        return {"imported": imported, "skipped": skipped,
                "corrupt": corrupt}


def resolve_cache(cache):
    """Normalize the ``cache`` argument of the scheduler entry points.

    ``True`` -> the default on-disk cache (or ``None`` when disabled by
    ``REPRO_RESULT_CACHE=0``), ``False``/``None`` -> no caching, a
    :class:`ResultCache` instance -> itself.
    """
    if cache is True:
        return ResultCache() if _default_cache_root() is not None else None
    if cache in (False, None):
        return None
    return cache


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval.cache",
        description="Inspect, bound and ship the content-addressed "
                    "experiment result cache.")
    parser.add_argument("--root", default=None,
                        help="cache directory (default: the scheduler's "
                             "store, honouring REPRO_RESULT_CACHE)")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("stats", help="entry count and size") \
        .add_argument("--json", action="store_true")
    gc_p = sub.add_parser("gc", help="evict LRU entries over a budget")
    gc_p.add_argument("--max-mb", type=float, required=True,
                      help="size budget to shrink the store to")
    exp_p = sub.add_parser("export",
                           help="pack the store into a tar.gz artifact")
    exp_p.add_argument("archive", help="output archive path")
    imp_p = sub.add_parser("import",
                           help="unpack an exported store (digest-"
                                "verified; existing entries skipped)")
    imp_p.add_argument("archive", help="input archive path")
    args = parser.parse_args(argv)

    root = args.root or _default_cache_root()
    if root is None:
        print("result cache is disabled (REPRO_RESULT_CACHE=0)",
              file=sys.stderr)
        return 2
    # Maintenance commands never need the source fingerprint (which
    # would import the whole experiment stack): pass a placeholder.
    cache = ResultCache(root=root, fingerprint="(cli)")

    if args.command == "stats":
        stats = cache.stats()
        if args.json:
            print(json.dumps(stats, indent=2, sort_keys=True))
        else:
            print(f"{stats['root']}: {stats['entries']} entries, "
                  f"{stats['bytes'] / 1e6:.2f} MB"
                  + (f" (budget {stats['max_bytes'] / 1e6:.0f} MB)"
                     if stats.get("max_bytes") else ""))
        return 0
    if args.command == "gc":
        evicted = cache.gc(args.max_mb)
        freed = sum(e["bytes"] for e in evicted)
        print(f"evicted {len(evicted)} entries, freed "
              f"{freed / 1e6:.2f} MB")
        return 0
    if args.command == "export":
        info = cache.export(args.archive)
        print(f"exported {info['entries']} entries to {info['archive']}")
        return 0
    if args.command == "import":
        info = cache.import_archive(args.archive)
        print(f"imported {info['imported']} entries "
              f"({info['skipped']} already present, "
              f"{info['corrupt']} rejected)")
        return 0
    return 2                                 # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
