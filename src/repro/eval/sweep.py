"""Design-space sweeps (the ablation studies).

The paper makes several design choices it argues for but does not
sweep; we do:

* **radix** — 4 vs 8 vs 16 (Sec. II-A argues radix-8 is dominated);
* **final CPA style** — ripple / Brent-Kung / Kogge-Stone / carry-select;
* **pipeline cut** — after the pre-computation vs after PPGEN;
* **tree style** — Dadda 3:2 vs 4:2-compressor-first.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.circuits.mult_common import build_multiplier
from repro.eval.tables import render_table
from repro.eval.workloads import WorkloadGenerator
from repro.hdl.area.model import area_report
from repro.hdl.library import default_library
from repro.hdl.power.monte_carlo import estimate_power
from repro.hdl.sim.levelized import LevelizedSimulator
from repro.hdl.timing.sta import analyze


@dataclass
class DesignPoint:
    """One multiplier configuration's measurements."""

    label: str
    gates: int
    registers: int
    latency_ps: float
    clock_ps: float
    area_knand2: float
    power_mw: Optional[float] = None

    def as_row(self):
        return (self.label, self.gates, self.registers,
                round(self.latency_ps), round(self.clock_ps),
                round(self.area_knand2, 1),
                "-" if self.power_mw is None else round(self.power_mw, 2))


@dataclass
class SweepResult:
    title: str
    points: List[DesignPoint]

    def render(self):
        return render_table(
            ("config", "gates", "regs", "latency[ps]", "clock[ps]",
             "area[K]", "power[mW]"),
            [p.as_row() for p in self.points], title=self.title)


def measure_design_point(label, module, power_cycles=0, seed=2017,
                         verify_patterns=16):
    """STA + area (+ optional power) for one built multiplier module.

    The stimulus is generated **once** for the longest pass and sliced:
    the verify pass reads the first ``verify_patterns`` words of the
    same stream the power pass replays (the simulators only consume the
    first ``n_patterns`` entries of each bus list), instead of paying
    ``WorkloadGenerator`` twice per design point.
    """
    lib = default_library()
    n_patterns = max(verify_patterns, power_cycles)
    stim = (WorkloadGenerator(seed).multiplier_stimulus(n_patterns)
            if n_patterns else None)
    if verify_patterns:
        run = LevelizedSimulator(module).run(stim, verify_patterns)
        latency = module.stage_count() - 1
        words = run.bus_words(module.outputs["p"])
        for t in range(verify_patterns - latency):
            expect = stim["x"][t] * stim["y"][t]
            assert words[t + latency] == expect, \
                f"{label}: wrong product at pattern {t}"
    timing = analyze(module, lib)
    area = area_report(module, lib)
    power = None
    if power_cycles:
        power = estimate_power(module, lib, stim, power_cycles).total_mw
    return DesignPoint(
        label=label,
        gates=len(module.gates),
        registers=len(module.registers),
        latency_ps=timing.latency_ps,
        clock_ps=timing.clock_period_ps,
        area_knand2=area.total_nand2_eq / 1000.0,
        power_mw=power,
    )


#: The swept configurations, in rendering order.  Each sweep's leaf
#: function below measures exactly one of these — module-level and
#: keyword-addressable so the orchestrator can fan the points out over
#: worker processes and merge them back deterministically.
RADIX_POINTS = ((2, "radix-4"), (3, "radix-8"), (4, "radix-16"))
CPA_STYLES = ("ripple", "brent_kung", "kogge_stone", "carry_select")
PIPELINE_CUTS = (None, "after_precomp", "after_ppgen")
TREE_POINTS = ((2, "radix-4", False), (2, "radix-4", True),
               (4, "radix-16", False), (4, "radix-16", True))
SPECIALIZATION_LABELS = ("multi-format", "int64-only", "fp64-only",
                         "fp32x2-only")


def radix_point(radix_log2, power_cycles=0):
    """One radix-sweep design point (leaf job)."""
    label = dict((k, lbl) for k, lbl in RADIX_POINTS)[radix_log2]
    return measure_design_point(label, build_multiplier(radix_log2),
                                power_cycles=power_cycles)


def cpa_point(style, radix_log2=4, power_cycles=0):
    """One CPA-style design point (leaf job)."""
    module = build_multiplier(radix_log2, adder_style=style)
    return measure_design_point(f"cpa={style}", module,
                                power_cycles=power_cycles)


def cut_point(cut, radix_log2=4, power_cycles=0):
    """One pipeline-cut design point (leaf job)."""
    module = build_multiplier(radix_log2, pipeline_cut=cut)
    return measure_design_point(f"cut={cut}", module,
                                power_cycles=power_cycles)


def tree_point(radix_log2, use_4_2, power_cycles=0):
    """One tree-style design point (leaf job)."""
    module = build_multiplier(radix_log2, use_4_2=use_4_2)
    label = dict((k, lbl) for k, lbl, __ in TREE_POINTS)[radix_log2]
    tag = "4:2" if use_4_2 else "3:2"
    return measure_design_point(f"{label} {tag}", module,
                                power_cycles=power_cycles)


def specialization_point(label):
    """One format-specialization design point (leaf job).

    ``"multi-format"`` measures the full unit; the ``*-only`` labels tie
    ``frmt`` and let the optimizer reap the other formats' logic.
    """
    from repro.core.pipeline_unit import (
        FRMT_FP32X2,
        FRMT_FP64,
        FRMT_INT64,
        build_mf_multiplier,
    )
    from repro.hdl.buffering import insert_buffers
    from repro.hdl.optimize import optimize, tie_input

    lib = default_library()
    if label == "multi-format":
        module = build_mf_multiplier()
    else:
        code = {"int64-only": FRMT_INT64, "fp64-only": FRMT_FP64,
                "fp32x2-only": FRMT_FP32X2}[label]
        module = build_mf_multiplier(buffer_max_load=None)
        tie_input(module, "frmt", code)
        optimize(module)
        insert_buffers(module, lib)
    timing = analyze(module, lib)
    area = area_report(module, lib)
    return DesignPoint(
        label=label, gates=len(module.gates),
        registers=len(module.registers),
        latency_ps=timing.latency_ps,
        clock_ps=timing.clock_period_ps,
        area_knand2=area.total_nand2_eq / 1000.0)


def sweep_radix(power_cycles=0):
    """Radix 4 / 8 / 16, combinational (the Sec. II-A trade-off)."""
    return SweepResult(
        title="Ablation: radix",
        points=[radix_point(k, power_cycles=power_cycles)
                for k, __ in RADIX_POINTS])


def sweep_cpa_style(radix_log2=4, power_cycles=0):
    """Final CPA style on the radix-16 multiplier."""
    return SweepResult(
        title="Ablation: CPA style",
        points=[cpa_point(style, radix_log2=radix_log2,
                          power_cycles=power_cycles)
                for style in CPA_STYLES])


def sweep_pipeline_cut(radix_log2=4, power_cycles=0):
    """Register placement for the 2-stage multiplier (Sec. III-D theme)."""
    return SweepResult(
        title="Ablation: pipeline cut",
        points=[cut_point(cut, radix_log2=radix_log2,
                          power_cycles=power_cycles)
                for cut in PIPELINE_CUTS])


def sweep_specialization():
    """The cost of multi-format flexibility.

    Ties the MF unit's ``frmt`` input to each single format and lets the
    optimizer reap the other formats' logic; the cell-count delta vs the
    full unit bounds what the paper's flexibility costs.
    """
    return SweepResult(
        title="Ablation: format specialization",
        points=[specialization_point(label)
                for label in SPECIALIZATION_LABELS])


def sweep_tree_style(power_cycles=0):
    """Dadda 3:2 vs 4:2-first reduction, radix-4 and radix-16."""
    return SweepResult(
        title="Ablation: tree style",
        points=[tree_point(k, use42, power_cycles=power_cycles)
                for k, __, use42 in TREE_POINTS])
