"""Design-space sweeps (the ablation studies).

The paper makes several design choices it argues for but does not
sweep; we do:

* **radix** — 4 vs 8 vs 16 (Sec. II-A argues radix-8 is dominated);
* **final CPA style** — ripple / Brent-Kung / Kogge-Stone / carry-select;
* **pipeline cut** — after the pre-computation vs after PPGEN;
* **tree style** — Dadda 3:2 vs 4:2-compressor-first.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.circuits.mult_common import build_multiplier
from repro.eval.tables import render_table
from repro.eval.workloads import WorkloadGenerator
from repro.hdl.area.model import area_report
from repro.hdl.library import default_library
from repro.hdl.power.monte_carlo import estimate_power
from repro.hdl.sim.levelized import LevelizedSimulator
from repro.hdl.timing.sta import analyze


@dataclass
class DesignPoint:
    """One multiplier configuration's measurements."""

    label: str
    gates: int
    registers: int
    latency_ps: float
    clock_ps: float
    area_knand2: float
    power_mw: Optional[float] = None

    def as_row(self):
        return (self.label, self.gates, self.registers,
                round(self.latency_ps), round(self.clock_ps),
                round(self.area_knand2, 1),
                "-" if self.power_mw is None else round(self.power_mw, 2))


@dataclass
class SweepResult:
    title: str
    points: List[DesignPoint]

    def render(self):
        return render_table(
            ("config", "gates", "regs", "latency[ps]", "clock[ps]",
             "area[K]", "power[mW]"),
            [p.as_row() for p in self.points], title=self.title)


def measure_design_point(label, module, power_cycles=0, seed=2017,
                         verify_patterns=16):
    """STA + area (+ optional power) for one built multiplier module."""
    lib = default_library()
    if verify_patterns:
        gen = WorkloadGenerator(seed)
        stim = gen.multiplier_stimulus(verify_patterns)
        run = LevelizedSimulator(module).run(stim, verify_patterns)
        latency = module.stage_count() - 1
        for t in range(verify_patterns - latency):
            expect = stim["x"][t] * stim["y"][t]
            got = run.bus_word(module.outputs["p"], t + latency)
            assert got == expect, f"{label}: wrong product at pattern {t}"
    timing = analyze(module, lib)
    area = area_report(module, lib)
    power = None
    if power_cycles:
        gen = WorkloadGenerator(seed)
        stim = gen.multiplier_stimulus(power_cycles)
        power = estimate_power(module, lib, stim, power_cycles).total_mw
    return DesignPoint(
        label=label,
        gates=len(module.gates),
        registers=len(module.registers),
        latency_ps=timing.latency_ps,
        clock_ps=timing.clock_period_ps,
        area_knand2=area.total_nand2_eq / 1000.0,
        power_mw=power,
    )


def sweep_radix(power_cycles=0):
    """Radix 4 / 8 / 16, combinational (the Sec. II-A trade-off)."""
    points = []
    for k, label in ((2, "radix-4"), (3, "radix-8"), (4, "radix-16")):
        module = build_multiplier(k)
        points.append(measure_design_point(label, module,
                                           power_cycles=power_cycles))
    return SweepResult(title="Ablation: radix", points=points)


def sweep_cpa_style(radix_log2=4, power_cycles=0):
    """Final CPA style on the radix-16 multiplier."""
    points = []
    for style in ("ripple", "brent_kung", "kogge_stone", "carry_select"):
        module = build_multiplier(radix_log2, adder_style=style)
        points.append(measure_design_point(f"cpa={style}", module,
                                           power_cycles=power_cycles))
    return SweepResult(title="Ablation: CPA style", points=points)


def sweep_pipeline_cut(radix_log2=4, power_cycles=0):
    """Register placement for the 2-stage multiplier (Sec. III-D theme)."""
    points = []
    for cut in (None, "after_precomp", "after_ppgen"):
        module = build_multiplier(radix_log2, pipeline_cut=cut)
        points.append(measure_design_point(f"cut={cut}", module,
                                           power_cycles=power_cycles))
    return SweepResult(title="Ablation: pipeline cut", points=points)


def sweep_specialization():
    """The cost of multi-format flexibility.

    Ties the MF unit's ``frmt`` input to each single format and lets the
    optimizer reap the other formats' logic; the cell-count delta vs the
    full unit bounds what the paper's flexibility costs.
    """
    from repro.core.pipeline_unit import (
        FRMT_FP32X2,
        FRMT_FP64,
        FRMT_INT64,
        build_mf_multiplier,
    )
    from repro.hdl.optimize import optimize, tie_input

    from repro.hdl.buffering import insert_buffers

    lib = default_library()
    points = []
    full = build_mf_multiplier()
    area = area_report(full, lib)
    points.append(DesignPoint(
        label="multi-format", gates=len(full.gates),
        registers=len(full.registers),
        latency_ps=analyze(full, lib).latency_ps,
        clock_ps=analyze(full, lib).clock_period_ps,
        area_knand2=area.total_nand2_eq / 1000.0))
    for label, code in (("int64-only", FRMT_INT64),
                        ("fp64-only", FRMT_FP64),
                        ("fp32x2-only", FRMT_FP32X2)):
        module = build_mf_multiplier(buffer_max_load=None)
        tie_input(module, "frmt", code)
        optimize(module)
        insert_buffers(module, lib)
        timing = analyze(module, lib)
        area = area_report(module, lib)
        points.append(DesignPoint(
            label=label, gates=len(module.gates),
            registers=len(module.registers),
            latency_ps=timing.latency_ps,
            clock_ps=timing.clock_period_ps,
            area_knand2=area.total_nand2_eq / 1000.0))
    return SweepResult(title="Ablation: format specialization", points=points)


def sweep_tree_style(power_cycles=0):
    """Dadda 3:2 vs 4:2-first reduction, radix-4 and radix-16."""
    points = []
    for k, label in ((2, "radix-4"), (4, "radix-16")):
        for use42 in (False, True):
            module = build_multiplier(k, use_4_2=use42)
            tag = "4:2" if use42 else "3:2"
            points.append(measure_design_point(f"{label} {tag}", module,
                                               power_cycles=power_cycles))
    return SweepResult(title="Ablation: tree style", points=points)
