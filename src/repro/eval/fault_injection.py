"""Fault injection: how strong is the co-simulation as a checker?

A reproduction whose gate-level model is verified only by construction
could hide systematic errors.  This harness *mutates* netlists —
replacing one cell's function with a different same-arity function, or
swapping two input pins — and measures how often a modest co-simulation
battery catches the mutation.  High mutation coverage is evidence the
equivalence tests in this repository actually constrain the netlists.

Campaigns run in one of two modes, bit-identical by construction and
raced against each other in CI:

* ``mode="full"`` — the historic path: clone the module, apply the
  mutation, re-simulate everything, compare against the battery's
  expected words.  O(module) per mutation; kept as the reference.
* ``mode="differential"`` (default) — simulate the golden module once
  per campaign and judge each mutant by propagating its XOR difference
  word through the mutated gate's fan-out cone only, early-exiting the
  moment a difference reaches an observed output bit (see
  :mod:`repro.hdl.sim.differential`).  O(cone) per mutation — the
  speedup ``benchmarks/bench_fault_injection.py`` records in
  ``BENCH_fault_sim.json``.

The battery itself is data now (:class:`Battery`: stimulus + expected
output words per pattern), so both modes derive their verdicts from the
same comparisons; the legacy callable checkers remain as thin wrappers.
"""

import random
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro import obs
from repro.errors import SimulationError
from repro.hdl.cell import cell_num_inputs
from repro.hdl.module import Gate, Module, Register

#: Same-arity replacement pools (a mutation picks a *different* kind).
_MUTATION_POOLS = {
    1: ["INV", "BUF"],
    2: ["AND2", "OR2", "NAND2", "NOR2", "XOR2", "XNOR2"],
    3: ["AND3", "OR3", "NAND3", "NOR3", "XOR3", "MAJ3", "AOI21", "OAI21"],
    4: ["AO22", "OA22"],
}


@dataclass
class Mutation:
    """One injected fault."""

    gate_index: int
    description: str


@dataclass
class CoverageResult:
    """Outcome of a mutation-coverage campaign."""

    attempted: int
    detected: int
    survivors: List[Mutation] = field(default_factory=list)

    @property
    def coverage(self):
        if not self.attempted:
            return 0.0
        return self.detected / self.attempted

    def render(self):
        lines = [
            "Mutation coverage of the co-simulation battery",
            f"mutations injected : {self.attempted}",
            f"detected           : {self.detected} "
            f"({self.coverage:.1%})",
        ]
        for mutation in self.survivors[:10]:
            lines.append(f"  survivor: {mutation.description}")
        hidden = len(self.survivors) - 10
        if hidden > 0:
            lines.append(f"  … and {hidden} more survivors")
        return "\n".join(lines)


def clone_module(module):
    """Structural copy (mutations must not touch the original)."""
    twin = Module(module.name)
    twin.n_nets = module.n_nets
    twin.gates = list(module.gates)
    twin.registers = list(module.registers)
    twin.inputs = {k: list(v) for k, v in module.inputs.items()}
    twin.outputs = {k: list(v) for k, v in module.outputs.items()}
    twin._driver = dict(module._driver)
    twin._const_nets = dict(module._const_nets)
    twin._const_cache = dict(module._const_cache)
    return twin


#: Pin swaps that actually change the boolean function (commutative
#: swaps would be equivalent mutants and poison the coverage metric).
_MEANINGFUL_SWAPS = {
    "MUX2": [(0, 1), (0, 2), (1, 2)],
    "AOI21": [(0, 2), (1, 2)],
    "OAI21": [(0, 2), (1, 2)],
    "AO22": [(0, 2), (0, 3), (1, 2), (1, 3)],
    "OA22": [(0, 2), (0, 3), (1, 2), (1, 3)],
}


def propose_mutation(module, rng, arities=None):
    """Draw one random functional mutation without applying it.

    Returns ``(gate_index, mutant_gate, Mutation)``.  ``arities`` is the
    optional precomputed per-gate input count list — campaigns compute
    it once and share it across every mutation (and both modes), instead
    of re-deriving cell arities per attempt.  The rng draw sequence is
    the historic ``inject_mutation`` one, so seeds reproduce.
    """
    for __ in range(100):
        idx = rng.randrange(len(module.gates))
        gate = module.gates[idx]
        arity = arities[idx] if arities is not None \
            else cell_num_inputs(gate.kind)
        choices = [k for k in _MUTATION_POOLS.get(arity, [])
                   if k != gate.kind]
        swaps = [(i, j) for i, j in _MEANINGFUL_SWAPS.get(gate.kind, [])
                 if gate.inputs[i] != gate.inputs[j]]
        moves = []
        if choices:
            moves.append("rekind")
        if swaps:
            moves.append("swap")
        if not moves:
            continue
        move = rng.choice(moves)
        if move == "rekind":
            new_kind = rng.choice(choices)
            mutant = Gate(new_kind, gate.inputs, gate.output, gate.block)
            return idx, mutant, Mutation(
                idx, f"gate {idx}: {gate.kind} -> {new_kind} "
                     f"in {gate.block!r}")
        i, j = rng.choice(swaps)
        ins = list(gate.inputs)
        ins[i], ins[j] = ins[j], ins[i]
        mutant = Gate(gate.kind, tuple(ins), gate.output, gate.block)
        return idx, mutant, Mutation(
            idx, f"gate {idx}: swapped pins {i}/{j} of "
                 f"{gate.kind} in {gate.block!r}")
    raise SimulationError("could not find a mutable gate")


def inject_mutation(module, rng):
    """Apply one random functional mutation in place; returns Mutation.

    Mutations: change a cell kind within its arity pool, or swap two
    input pins where the cell is not commutative in them.
    """
    idx, mutant, mutation = propose_mutation(module, rng)
    module.gates[idx] = mutant
    return mutation


# ----------------------------------------------------------------------
# the battery as data
# ----------------------------------------------------------------------

@dataclass
class Battery:
    """A co-simulation battery in data form.

    ``stimulus`` maps input bus names to per-pattern words;
    ``expected`` maps output bus names to per-pattern expected words,
    with ``None`` marking unchecked positions (pipeline fill cycles).
    Both campaign modes judge mutants against exactly these
    comparisons, which is what makes them bit-identical.
    """

    stimulus: Dict[str, List[int]]
    n_patterns: int
    expected: Dict[str, List[Optional[int]]]

    def check_run(self, module, run):
        """True when ``run`` meets every checked expectation."""
        for name, words in self.expected.items():
            got = run.bus_words(module.outputs[name])
            for t, want in enumerate(words):
                if want is not None and got[t] != want:
                    return False
        return True

    def checker(self):
        """A full-mode callable: simulate the module, compare words."""
        from repro.hdl.sim.levelized import LevelizedSimulator

        def check(module):
            run = LevelizedSimulator(module).run(self.stimulus,
                                                 self.n_patterns)
            return self.check_run(module, run)

        return check

    def observation(self, module):
        """The net-level :class:`Observation` of the checked positions."""
        from repro.hdl.sim.differential import Observation

        masks: Dict[int, int] = {}
        for name, words in self.expected.items():
            window = 0
            for t, want in enumerate(words):
                if want is not None:
                    window |= 1 << t
            if not window:
                continue
            for net in module.outputs[name]:
                masks[net] = masks.get(net, 0) | window
        return Observation(masks=masks)


def multiplier_battery(module, cases):
    """The 64x64 multiplier battery: ``p`` must equal ``x * y``.

    An ``L``-stage pipeline answers ``cases[t]`` at pattern
    ``t + L - 1``; the fill positions are unchecked.
    """
    latency = module.stage_count() - 1
    expected: List[Optional[int]] = [None] * len(cases)
    for t in range(len(cases) - latency):
        x, y = cases[t]
        expected[t + latency] = x * y
    return Battery(stimulus={"x": [c[0] for c in cases],
                             "y": [c[1] for c in cases]},
                   n_patterns=len(cases),
                   expected={"p": expected})


def mf_battery(operations):
    """The MF-unit battery: ``ph``/``pl`` vs the functional model.

    Mirrors :meth:`repro.core.pipeline_unit.MFMultUnit.run_batch`'s
    stimulus (pipeline flush cycles padded with the last operation) and
    checks exactly the words the legacy checker compared.
    """
    from repro.core.mfmult import MFMult
    from repro.core.pipeline_unit import FRMT_OF, LATENCY

    mf = MFMult(fidelity="fast")
    n = len(operations) + LATENCY
    xs = [bundle.x for bundle, __ in operations]
    ys = [bundle.y for bundle, __ in operations]
    fs = [FRMT_OF[fmt] for __, fmt in operations]
    xs += [xs[-1]] * LATENCY
    ys += [ys[-1]] * LATENCY
    fs += [fs[-1]] * LATENCY
    exp_ph: List[Optional[int]] = [None] * n
    exp_pl: List[Optional[int]] = [None] * n
    for t, (bundle, fmt) in enumerate(operations):
        res = mf.multiply(bundle, fmt)
        exp_ph[t + LATENCY] = res.ph
        exp_pl[t + LATENCY] = res.pl
    return Battery(stimulus={"x": xs, "y": ys, "frmt": fs},
                   n_patterns=n,
                   expected={"ph": exp_ph, "pl": exp_pl})


# ----------------------------------------------------------------------
# campaigns
# ----------------------------------------------------------------------

def mutation_coverage(module, checker=None, n_mutations=40, seed=2017,
                      mode="full", battery=None, engine=None):
    """Run a campaign: mutate, check, count detections.

    ``mode="full"`` clones and fully re-simulates per mutation;
    ``checker(module) -> bool`` returns True when the (possibly broken)
    module still passes the battery — i.e. the mutation *survived*.
    When a :class:`Battery` is given instead of a checker, the full-mode
    checker derives from it.

    ``mode="differential"`` (requires ``battery``) shares one golden
    simulation across all mutations and re-evaluates fan-out cones only
    — same :class:`CoverageResult`, measured fraction of the work.  In
    the degenerate case where the golden module itself fails its
    battery, the campaign silently falls back to full mode (where every
    mutant fails too), so the modes never diverge.

    A prebuilt ``engine`` (see :func:`campaign_engine`) skips the
    golden run entirely: campaigns chunked over the same module and
    battery then pay **one** golden kernel invocation total instead of
    one per chunk — the engine is a pure cache of golden state, so
    verdicts are unchanged.  The caller must have verified the golden
    run against the battery (``campaign_engine`` does).
    """
    if mode not in ("full", "differential"):
        raise SimulationError(f"unknown campaign mode {mode!r}")
    rng = random.Random(seed)
    arities = [cell_num_inputs(gate.kind) for gate in module.gates]
    reg = obs.registry()

    if mode != "differential":
        engine = None
    elif engine is None:
        if battery is None:
            raise SimulationError("differential mode needs a battery")
        from repro.hdl.sim.differential import DifferentialEngine

        engine = DifferentialEngine(module, battery.stimulus,
                                    battery.n_patterns,
                                    battery.observation(module))
        if not battery.check_run(module, engine.golden):
            reg.inc("fault.golden_mismatch")
            mode = "full"
            engine = None
    if mode == "full" and checker is None:
        if battery is None:
            raise SimulationError("full mode needs a checker or battery")
        checker = battery.checker()

    result = CoverageResult(attempted=0, detected=0)
    with obs.span("fault:campaign", cat="fault", module=module.name,
                  mode=mode, mutations=n_mutations):
        for __ in range(n_mutations):
            idx, mutant, mutation = propose_mutation(module, rng, arities)
            result.attempted += 1
            reg.inc("fault.mutations")
            if engine is not None:
                verdict = engine.run_mutant(idx, mutant)
                reg.inc("fault.gates_evaluated", verdict.gates_evaluated)
                reg.observe_value("fault.cone_size", verdict.cone_size)
                if verdict.early_exit:
                    reg.inc("fault.early_exits")
                survived = not verdict.detected
            else:
                twin = clone_module(module)
                twin.gates[idx] = mutant
                survived = checker(twin)
            if survived:
                result.survivors.append(mutation)
            else:
                result.detected += 1
                reg.inc("fault.detected")
    return result


def multiplier_checker(cases):
    """A checker comparing a 64x64 multiplier module against ``*``."""
    from repro.hdl.sim.levelized import LevelizedSimulator

    def check(module):
        stim = {"x": [c[0] for c in cases], "y": [c[1] for c in cases]}
        run = LevelizedSimulator(module).run(stim, len(cases))
        latency = module.stage_count() - 1
        words = run.bus_words(module.outputs["p"])
        for t in range(len(cases) - latency):
            x, y = cases[t]
            if words[t + latency] != x * y:
                return False
        return True

    return check


def r16_cases(n=16, case_seed=1):
    """The standard random co-simulation battery for the r16 campaigns."""
    rng = random.Random(case_seed)
    return [(rng.getrandbits(64), rng.getrandbits(64)) for __ in range(n)]


def mf_operations(n=12, case_seed=2):
    """A mixed-format co-simulation battery for the MF-unit campaigns."""
    from repro.bits.ieee754 import BINARY32, BINARY64
    from repro.core.formats import MFFormat, OperandBundle

    rng = random.Random(case_seed)
    ops = []
    for i in range(n):
        pick = i % 3
        if pick == 0:
            ops.append((OperandBundle.int64(rng.getrandbits(64),
                                            rng.getrandbits(64)),
                        MFFormat.INT64))
        elif pick == 1:
            ops.append((OperandBundle.fp64(
                BINARY64.pack(0, rng.randint(1, 2046), rng.getrandbits(52)),
                BINARY64.pack(0, rng.randint(1, 2046),
                              rng.getrandbits(52))), MFFormat.FP64))
        else:
            ops.append((OperandBundle.fp32_pair(
                *[BINARY32.pack(0, rng.randint(1, 254),
                                rng.getrandbits(23)) for __ in range(4)]),
                MFFormat.FP32X2))
    return ops


def campaign_battery(which, module, patterns=None):
    """The standard seeded battery for campaign target ``which``.

    ``patterns`` widens the battery beyond its historic default (16
    cases for ``r16``, 12 operations for ``mf``): the whole battery
    still packs into **one** superword, so a wider battery costs one
    golden kernel invocation regardless of width.  ``None`` keeps the
    historic seeds and sizes bit-for-bit.
    """
    if which == "r16":
        cases = r16_cases() if patterns is None else r16_cases(n=patterns)
        return multiplier_battery(module, cases)
    if which == "mf":
        ops = mf_operations() if patterns is None \
            else mf_operations(n=patterns)
        return mf_battery(ops)
    raise ValueError(f"unknown campaign target {which!r}")


def _campaign_module(which):
    from repro.eval.experiments import cached_module

    if which not in ("r16", "mf"):
        raise ValueError(f"unknown campaign target {which!r}")
    return cached_module(which)


#: Shared golden state per (target, battery width): the golden run is
#: read-only once simulated, so every chunk of a campaign reuses it —
#: one golden kernel invocation per campaign instead of one per chunk.
#: Engines are additionally keyed by thread because ``run_mutant``
#: scribbles on a private overlay list.
_CAMPAIGN_LOCK = threading.Lock()
_CAMPAIGN_GOLDEN: Dict[tuple, tuple] = {}
_CAMPAIGN_ENGINES: Dict[tuple, object] = {}


def clear_campaign_cache():
    """Drop shared golden runs/engines (benchmark cost accounting)."""
    with _CAMPAIGN_LOCK:
        _CAMPAIGN_GOLDEN.clear()
        _CAMPAIGN_ENGINES.clear()


def campaign_engine(which, battery_patterns=None):
    """Shared differential state for one ``(target, battery width)``.

    Returns ``(module, battery, engine)``; ``engine`` is ``None`` when
    the golden run fails its own battery (callers fall back to full
    mode, where every mutant fails too — the modes never diverge).  The
    golden bit-parallel run is simulated once per key and cached; the
    per-thread :class:`~repro.hdl.sim.differential.DifferentialEngine`
    wrappers around it cost only the fan-out precomputation.
    """
    from repro.hdl.sim.differential import DifferentialEngine

    module = _campaign_module(which)
    key = (which, battery_patterns)
    with _CAMPAIGN_LOCK:
        entry = _CAMPAIGN_GOLDEN.get(key)
        if entry is None:
            battery = campaign_battery(which, module,
                                       patterns=battery_patterns)
            engine = DifferentialEngine(module, battery.stimulus,
                                        battery.n_patterns,
                                        battery.observation(module))
            if battery.check_run(module, engine.golden):
                entry = (battery, engine.golden)
                _CAMPAIGN_ENGINES[(key, threading.get_ident())] = engine
            else:
                obs.registry().inc("fault.golden_mismatch")
                entry = (battery, None)
            _CAMPAIGN_GOLDEN[key] = entry
        battery, golden = entry
        if golden is None:
            return module, battery, None
        tkey = (key, threading.get_ident())
        engine = _CAMPAIGN_ENGINES.get(tkey)
        if engine is None:
            engine = DifferentialEngine(module, battery.stimulus,
                                        battery.n_patterns,
                                        battery.observation(module),
                                        golden=golden)
            _CAMPAIGN_ENGINES[tkey] = engine
    return module, battery, engine


def coverage_chunk(which="r16", n_mutations=10, seed=7,
                   mode="differential", battery_patterns=None):
    """One campaign shard — a parallelizable leaf job.

    Builds the target module and its co-simulation battery from fixed
    case seeds, then runs ``n_mutations`` mutations drawn from ``seed``
    in the requested ``mode``.  Differential chunks share one cached
    golden run per ``(which, battery_patterns)`` via
    :func:`campaign_engine`, so a whole campaign pays a single golden
    kernel invocation however it is chunked; ``battery_patterns``
    widens the battery superword (default: historic sizes).
    """
    if mode == "differential":
        module, battery, engine = campaign_engine(which, battery_patterns)
        if engine is None:
            mode = "full"
        return mutation_coverage(module, n_mutations=n_mutations,
                                 seed=seed, mode=mode, battery=battery,
                                 engine=engine)
    module = _campaign_module(which)
    battery = campaign_battery(which, module, patterns=battery_patterns)
    return mutation_coverage(module, n_mutations=n_mutations, seed=seed,
                             mode=mode, battery=battery)


#: Auto-chunking aims at this many mutations per stealable leaf.
CHUNK_TARGET_MUTATIONS = 10


def chunk_plan(n_mutations, seed, chunks=None):
    """Deterministic ``(chunk_seed, chunk_size)`` split of a campaign.

    Both the serial entry point and the orchestrator's sharded graph
    use this plan, so their merged results are identical.
    ``chunks=None`` auto-sizes toward :data:`CHUNK_TARGET_MUTATIONS`
    mutations per chunk, floored at the historic 4 chunks — campaigns
    of up to 40 mutations keep their exact historic shard seeds, while
    larger ones refine into more stealable leaves.
    """
    if chunks is None:
        target = -(-n_mutations // CHUNK_TARGET_MUTATIONS)
        chunks = max(min(4, n_mutations), target)
    chunks = max(1, min(chunks, n_mutations))
    base, extra = divmod(n_mutations, chunks)
    return [(seed * 1000003 + i, base + (1 if i < extra else 0))
            for i in range(chunks)]


def merge_coverage(results):
    """Deterministic merge of per-chunk :class:`CoverageResult` values."""
    merged = CoverageResult(attempted=0, detected=0)
    for chunk in results:
        merged.attempted += chunk.attempted
        merged.detected += chunk.detected
        merged.survivors.extend(chunk.survivors)
    return merged


def experiment_fault_coverage(which="r16", n_mutations=40, seed=7,
                              chunks=None, mode="differential",
                              battery_patterns=None):
    """Mutation coverage of the co-simulation battery for ``which``.

    The campaign is split into independently seeded shards (see
    :func:`chunk_plan`; ``chunks=None`` auto-sizes them); running them
    serially here or in parallel through the orchestrator yields the
    same merged result, as does either campaign ``mode``.  All shards
    share one golden run (one kernel invocation per campaign);
    ``battery_patterns`` runs the campaign over a wider battery
    superword.
    """
    return merge_coverage(
        [coverage_chunk(which=which, n_mutations=size, seed=chunk_seed,
                        mode=mode, battery_patterns=battery_patterns)
         for chunk_seed, size in chunk_plan(n_mutations, seed, chunks)])


def mf_unit_checker(operations):
    """A checker comparing the MF unit against the functional model."""
    from repro.core.mfmult import MFMult
    from repro.core.pipeline_unit import MFMultUnit

    mf = MFMult(fidelity="fast")
    expected = [mf.multiply(bundle, fmt) for bundle, fmt in operations]

    def check(module):
        unit = MFMultUnit(module=module)
        try:
            results = unit.run_batch(operations)
        except Exception:
            return False
        for res, exp in zip(results, expected):
            if (res.ph, res.pl) != (exp.ph, exp.pl):
                return False
        return True

    return check
