"""Fault injection: how strong is the co-simulation as a checker?

A reproduction whose gate-level model is verified only by construction
could hide systematic errors.  This harness *mutates* netlists —
replacing one cell's function with a different same-arity function, or
swapping two input pins — and measures how often a modest co-simulation
battery catches the mutation.  High mutation coverage is evidence the
equivalence tests in this repository actually constrain the netlists.
"""

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import SimulationError
from repro.hdl.cell import cell_num_inputs
from repro.hdl.module import Gate, Module, Register

#: Same-arity replacement pools (a mutation picks a *different* kind).
_MUTATION_POOLS = {
    1: ["INV", "BUF"],
    2: ["AND2", "OR2", "NAND2", "NOR2", "XOR2", "XNOR2"],
    3: ["AND3", "OR3", "NAND3", "NOR3", "XOR3", "MAJ3", "AOI21", "OAI21"],
    4: ["AO22"],
}


@dataclass
class Mutation:
    """One injected fault."""

    gate_index: int
    description: str


@dataclass
class CoverageResult:
    """Outcome of a mutation-coverage campaign."""

    attempted: int
    detected: int
    survivors: List[Mutation] = field(default_factory=list)

    @property
    def coverage(self):
        if not self.attempted:
            return 0.0
        return self.detected / self.attempted

    def render(self):
        lines = [
            "Mutation coverage of the co-simulation battery",
            f"mutations injected : {self.attempted}",
            f"detected           : {self.detected} "
            f"({self.coverage:.1%})",
        ]
        for mutation in self.survivors[:10]:
            lines.append(f"  survivor: {mutation.description}")
        return "\n".join(lines)


def clone_module(module):
    """Structural copy (mutations must not touch the original)."""
    twin = Module(module.name)
    twin.n_nets = module.n_nets
    twin.gates = list(module.gates)
    twin.registers = list(module.registers)
    twin.inputs = {k: list(v) for k, v in module.inputs.items()}
    twin.outputs = {k: list(v) for k, v in module.outputs.items()}
    twin._driver = dict(module._driver)
    twin._const_nets = dict(module._const_nets)
    twin._const_cache = dict(module._const_cache)
    return twin


#: Pin swaps that actually change the boolean function (commutative
#: swaps would be equivalent mutants and poison the coverage metric).
_MEANINGFUL_SWAPS = {
    "MUX2": [(0, 1), (0, 2), (1, 2)],
    "AOI21": [(0, 2), (1, 2)],
    "OAI21": [(0, 2), (1, 2)],
    "AO22": [(0, 2), (0, 3), (1, 2), (1, 3)],
}


def inject_mutation(module, rng):
    """Apply one random functional mutation in place; returns Mutation.

    Mutations: change a cell kind within its arity pool, or swap two
    input pins where the cell is not commutative in them.
    """
    for __ in range(100):
        idx = rng.randrange(len(module.gates))
        gate = module.gates[idx]
        arity = cell_num_inputs(gate.kind)
        choices = [k for k in _MUTATION_POOLS.get(arity, [])
                   if k != gate.kind]
        swaps = [(i, j) for i, j in _MEANINGFUL_SWAPS.get(gate.kind, [])
                 if gate.inputs[i] != gate.inputs[j]]
        moves = []
        if choices:
            moves.append("rekind")
        if swaps:
            moves.append("swap")
        if not moves:
            continue
        move = rng.choice(moves)
        if move == "rekind":
            new_kind = rng.choice(choices)
            module.gates[idx] = Gate(new_kind, gate.inputs, gate.output,
                                     gate.block)
            return Mutation(idx, f"gate {idx}: {gate.kind} -> {new_kind} "
                                 f"in {gate.block!r}")
        i, j = rng.choice(swaps)
        ins = list(gate.inputs)
        ins[i], ins[j] = ins[j], ins[i]
        module.gates[idx] = Gate(gate.kind, tuple(ins), gate.output,
                                 gate.block)
        return Mutation(idx, f"gate {idx}: swapped pins {i}/{j} of "
                             f"{gate.kind} in {gate.block!r}")
    raise SimulationError("could not find a mutable gate")


def mutation_coverage(module, checker, n_mutations=40, seed=2017):
    """Run a campaign: mutate, check, count detections.

    ``checker(module) -> bool`` returns True when the (possibly broken)
    module still passes the battery — i.e. the mutation *survived*.
    """
    rng = random.Random(seed)
    result = CoverageResult(attempted=0, detected=0)
    for __ in range(n_mutations):
        twin = clone_module(module)
        mutation = inject_mutation(twin, rng)
        result.attempted += 1
        if checker(twin):
            result.survivors.append(mutation)
        else:
            result.detected += 1
    return result


def multiplier_checker(cases):
    """A checker comparing a 64x64 multiplier module against ``*``."""
    from repro.hdl.sim.levelized import LevelizedSimulator

    def check(module):
        stim = {"x": [c[0] for c in cases], "y": [c[1] for c in cases]}
        run = LevelizedSimulator(module).run(stim, len(cases))
        latency = module.stage_count() - 1
        for t in range(len(cases) - latency):
            x, y = cases[t]
            if run.bus_word(module.outputs["p"], t + latency) != x * y:
                return False
        return True

    return check


def mf_unit_checker(operations):
    """A checker comparing the MF unit against the functional model."""
    from repro.core.mfmult import MFMult
    from repro.core.pipeline_unit import MFMultUnit

    mf = MFMult(fidelity="fast")
    expected = [mf.multiply(bundle, fmt) for bundle, fmt in operations]

    def check(module):
        unit = MFMultUnit(module=module)
        try:
            results = unit.run_batch(operations)
        except Exception:
            return False
        for res, exp in zip(results, expected):
            if (res.ph, res.pl) != (exp.ph, exp.pl):
                return False
        return True

    return check
