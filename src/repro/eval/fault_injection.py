"""Fault injection: how strong is the co-simulation as a checker?

A reproduction whose gate-level model is verified only by construction
could hide systematic errors.  This harness *mutates* netlists —
replacing one cell's function with a different same-arity function, or
swapping two input pins — and measures how often a modest co-simulation
battery catches the mutation.  High mutation coverage is evidence the
equivalence tests in this repository actually constrain the netlists.
"""

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import SimulationError
from repro.hdl.cell import cell_num_inputs
from repro.hdl.module import Gate, Module, Register

#: Same-arity replacement pools (a mutation picks a *different* kind).
_MUTATION_POOLS = {
    1: ["INV", "BUF"],
    2: ["AND2", "OR2", "NAND2", "NOR2", "XOR2", "XNOR2"],
    3: ["AND3", "OR3", "NAND3", "NOR3", "XOR3", "MAJ3", "AOI21", "OAI21"],
    4: ["AO22"],
}


@dataclass
class Mutation:
    """One injected fault."""

    gate_index: int
    description: str


@dataclass
class CoverageResult:
    """Outcome of a mutation-coverage campaign."""

    attempted: int
    detected: int
    survivors: List[Mutation] = field(default_factory=list)

    @property
    def coverage(self):
        if not self.attempted:
            return 0.0
        return self.detected / self.attempted

    def render(self):
        lines = [
            "Mutation coverage of the co-simulation battery",
            f"mutations injected : {self.attempted}",
            f"detected           : {self.detected} "
            f"({self.coverage:.1%})",
        ]
        for mutation in self.survivors[:10]:
            lines.append(f"  survivor: {mutation.description}")
        return "\n".join(lines)


def clone_module(module):
    """Structural copy (mutations must not touch the original)."""
    twin = Module(module.name)
    twin.n_nets = module.n_nets
    twin.gates = list(module.gates)
    twin.registers = list(module.registers)
    twin.inputs = {k: list(v) for k, v in module.inputs.items()}
    twin.outputs = {k: list(v) for k, v in module.outputs.items()}
    twin._driver = dict(module._driver)
    twin._const_nets = dict(module._const_nets)
    twin._const_cache = dict(module._const_cache)
    return twin


#: Pin swaps that actually change the boolean function (commutative
#: swaps would be equivalent mutants and poison the coverage metric).
_MEANINGFUL_SWAPS = {
    "MUX2": [(0, 1), (0, 2), (1, 2)],
    "AOI21": [(0, 2), (1, 2)],
    "OAI21": [(0, 2), (1, 2)],
    "AO22": [(0, 2), (0, 3), (1, 2), (1, 3)],
}


def inject_mutation(module, rng):
    """Apply one random functional mutation in place; returns Mutation.

    Mutations: change a cell kind within its arity pool, or swap two
    input pins where the cell is not commutative in them.
    """
    for __ in range(100):
        idx = rng.randrange(len(module.gates))
        gate = module.gates[idx]
        arity = cell_num_inputs(gate.kind)
        choices = [k for k in _MUTATION_POOLS.get(arity, [])
                   if k != gate.kind]
        swaps = [(i, j) for i, j in _MEANINGFUL_SWAPS.get(gate.kind, [])
                 if gate.inputs[i] != gate.inputs[j]]
        moves = []
        if choices:
            moves.append("rekind")
        if swaps:
            moves.append("swap")
        if not moves:
            continue
        move = rng.choice(moves)
        if move == "rekind":
            new_kind = rng.choice(choices)
            module.gates[idx] = Gate(new_kind, gate.inputs, gate.output,
                                     gate.block)
            return Mutation(idx, f"gate {idx}: {gate.kind} -> {new_kind} "
                                 f"in {gate.block!r}")
        i, j = rng.choice(swaps)
        ins = list(gate.inputs)
        ins[i], ins[j] = ins[j], ins[i]
        module.gates[idx] = Gate(gate.kind, tuple(ins), gate.output,
                                 gate.block)
        return Mutation(idx, f"gate {idx}: swapped pins {i}/{j} of "
                             f"{gate.kind} in {gate.block!r}")
    raise SimulationError("could not find a mutable gate")


def mutation_coverage(module, checker, n_mutations=40, seed=2017):
    """Run a campaign: mutate, check, count detections.

    ``checker(module) -> bool`` returns True when the (possibly broken)
    module still passes the battery — i.e. the mutation *survived*.
    """
    rng = random.Random(seed)
    result = CoverageResult(attempted=0, detected=0)
    for __ in range(n_mutations):
        twin = clone_module(module)
        mutation = inject_mutation(twin, rng)
        result.attempted += 1
        if checker(twin):
            result.survivors.append(mutation)
        else:
            result.detected += 1
    return result


def multiplier_checker(cases):
    """A checker comparing a 64x64 multiplier module against ``*``."""
    from repro.hdl.sim.levelized import LevelizedSimulator

    def check(module):
        stim = {"x": [c[0] for c in cases], "y": [c[1] for c in cases]}
        run = LevelizedSimulator(module).run(stim, len(cases))
        latency = module.stage_count() - 1
        words = run.bus_words(module.outputs["p"])
        for t in range(len(cases) - latency):
            x, y = cases[t]
            if words[t + latency] != x * y:
                return False
        return True

    return check


def r16_cases(n=16, case_seed=1):
    """The standard random co-simulation battery for the r16 campaigns."""
    rng = random.Random(case_seed)
    return [(rng.getrandbits(64), rng.getrandbits(64)) for __ in range(n)]


def mf_operations(n=12, case_seed=2):
    """A mixed-format co-simulation battery for the MF-unit campaigns."""
    from repro.bits.ieee754 import BINARY32, BINARY64
    from repro.core.formats import MFFormat, OperandBundle

    rng = random.Random(case_seed)
    ops = []
    for i in range(n):
        pick = i % 3
        if pick == 0:
            ops.append((OperandBundle.int64(rng.getrandbits(64),
                                            rng.getrandbits(64)),
                        MFFormat.INT64))
        elif pick == 1:
            ops.append((OperandBundle.fp64(
                BINARY64.pack(0, rng.randint(1, 2046), rng.getrandbits(52)),
                BINARY64.pack(0, rng.randint(1, 2046),
                              rng.getrandbits(52))), MFFormat.FP64))
        else:
            ops.append((OperandBundle.fp32_pair(
                *[BINARY32.pack(0, rng.randint(1, 254),
                                rng.getrandbits(23)) for __ in range(4)]),
                MFFormat.FP32X2))
    return ops


def coverage_chunk(which="r16", n_mutations=10, seed=7):
    """One campaign shard — a parallelizable leaf job.

    Builds the target module and its co-simulation battery from fixed
    case seeds, then runs ``n_mutations`` mutations drawn from ``seed``.
    """
    from repro.eval.experiments import cached_module

    if which == "r16":
        module = cached_module("r16")
        checker = multiplier_checker(r16_cases())
    elif which == "mf":
        module = cached_module("mf")
        checker = mf_unit_checker(mf_operations())
    else:
        raise ValueError(f"unknown campaign target {which!r}")
    return mutation_coverage(module, checker, n_mutations=n_mutations,
                             seed=seed)


def chunk_plan(n_mutations, seed, chunks):
    """Deterministic ``(chunk_seed, chunk_size)`` split of a campaign.

    Both the serial entry point and the orchestrator's sharded graph
    use this plan, so their merged results are identical.
    """
    chunks = max(1, min(chunks, n_mutations))
    base, extra = divmod(n_mutations, chunks)
    return [(seed * 1000003 + i, base + (1 if i < extra else 0))
            for i in range(chunks)]


def merge_coverage(results):
    """Deterministic merge of per-chunk :class:`CoverageResult` values."""
    merged = CoverageResult(attempted=0, detected=0)
    for chunk in results:
        merged.attempted += chunk.attempted
        merged.detected += chunk.detected
        merged.survivors.extend(chunk.survivors)
    return merged


def experiment_fault_coverage(which="r16", n_mutations=40, seed=7,
                              chunks=4):
    """Mutation coverage of the co-simulation battery for ``which``.

    The campaign is split into ``chunks`` independently seeded shards
    (see :func:`chunk_plan`); running them serially here or in parallel
    through the orchestrator yields the same merged result.
    """
    return merge_coverage(
        [coverage_chunk(which=which, n_mutations=size, seed=chunk_seed)
         for chunk_seed, size in chunk_plan(n_mutations, seed, chunks)])


def mf_unit_checker(operations):
    """A checker comparing the MF unit against the functional model."""
    from repro.core.mfmult import MFMult
    from repro.core.pipeline_unit import MFMultUnit

    mf = MFMult(fidelity="fast")
    expected = [mf.multiply(bundle, fmt) for bundle, fmt in operations]

    def check(module):
        unit = MFMultUnit(module=module)
        try:
            results = unit.run_batch(operations)
        except Exception:
            return False
        for res, exp in zip(results, expected):
            if (res.ph, res.pl) != (exp.ph, exp.pl):
                return False
        return True

    return check
