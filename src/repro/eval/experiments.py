"""The per-table / per-figure experiment harness.

Every public ``experiment_*`` function regenerates one table or figure
of the paper and returns a result object with the measured values, the
paper's published values, and a ``render()`` method producing the
paper-vs-measured report.  DESIGN.md's experiment index maps each to its
benchmark entry point.

Modules are built once and cached — netlist construction is a second or
two each, and the benchmarks call these functions repeatedly.  The
cache has two levels: an in-process ``lru_cache`` and an on-disk pickle
cache under the repository's ``.cache/modules/`` keyed by the builder
name and a fingerprint of the generator sources plus the cell library,
so repeated benchmark *processes* skip netlist construction as well
(``REPRO_MODULE_CACHE`` overrides the directory; ``0`` disables).
"""

import functools
import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.arith.partial_products import (
    build_dual_lane_pp_array,
    build_pp_array,
    occupancy_grid,
)
from repro.bits.ieee754 import BINARY16, BINARY32, BINARY64, BINARY128
from repro.circuits.mult_radix4 import radix4_multiplier
from repro.circuits.mult_radix8 import radix8_multiplier
from repro.circuits.mult_radix16 import radix16_multiplier
from repro.circuits.reducer import build_reducer
from repro.core.pipeline_unit import build_mf_multiplier
from repro.core.reduction import reduce_binary64, widen_binary32
from repro.core.vector_unit import FormatPowerTable, VectorMultiplier
from repro.eval.tables import paper_vs_measured, render_table
from repro.eval.workloads import WorkloadGenerator
from repro.hdl.area.model import area_report
from repro.hdl.library import FO4_PS, default_library
from repro.hdl.power.monte_carlo import (
    estimate_power,
    estimate_power_batch,
    power_replay_shard,
    power_report_from_shards,
)
from repro.hdl.timing.sta import analyze, critical_path_breakdown

#: Published values (the paper's Tables I, II, III and V).
PAPER = {
    "table1": {"precomp": 578, "ppgen": 258, "tree": 571, "cpa": 445,
               "latency_ps": 1852, "fo4": 29, "area_um2": 50562,
               "knand2": 47.8},
    "table2": {"ppgen": 313, "tree": 739, "cpa": 454,
               "latency_ps": 1506, "fo4": 23, "area_um2": 60204,
               "knand2": 56.9},
    "table3": {"comb_r4": 12.3, "comb_r16": 11.5, "comb_ratio": 0.94,
               "pipe_r4": 8.7, "pipe_r16": 7.7, "pipe_ratio": 0.89},
    "table5": {"int64": (8.90, 0.88, 11.24),
               "fp64": (7.20, 0.88, 13.89),
               "fp32_dual": (5.17, 1.76, 38.68),
               "fp32_single": (3.77, 0.88, 26.53)},
    # The paper's 880 MHz power column of Table V.
    "table5_880mhz": {"int64": 78.32, "fp64": 63.36,
                      "fp32_dual": 45.50, "fp32_single": 33.18},
    "fig5": {"clock_ps": 1120, "clock_fo4": 17.5, "critical_stage": 2,
             "max_freq_mhz": 880},
}


@functools.lru_cache(maxsize=1)
def _source_fingerprint():
    """Hash of every ``repro`` source file (and the default library).

    Any source change invalidates the on-disk module cache — coarse,
    but netlist construction depends on a wide slice of the package
    and correctness beats cache hits.
    """
    digest = hashlib.sha256()
    pkg_root = Path(__file__).resolve().parents[1]
    for path in sorted(pkg_root.rglob("*.py")):
        digest.update(str(path.relative_to(pkg_root)).encode())
        digest.update(path.read_bytes())
    digest.update(repr(default_library()).encode())
    return digest.hexdigest()[:16]


def source_fingerprint():
    """Public alias: the fingerprint keying every on-disk cache layer.

    Shared by the module pickle cache here and the orchestrator's
    result cache (:mod:`repro.eval.orchestrator`), so one source edit
    invalidates both coherently.
    """
    return _source_fingerprint()


def _module_cache_dir():
    """The on-disk module cache directory, or ``None`` when disabled."""
    env = os.environ.get("REPRO_MODULE_CACHE")
    if env == "0":
        return None
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / ".cache" / "modules"


@functools.lru_cache(maxsize=None)
def cached_module(which):
    """Build-once cache for the experiment netlists.

    Backed by the on-disk pickle cache described in the module
    docstring; a corrupt or stale cache entry silently rebuilds.
    """
    builders = {
        "r16": lambda: radix16_multiplier(),
        "r16_pipe": lambda: radix16_multiplier(pipeline_cut="after_ppgen"),
        "r4": lambda: radix4_multiplier(),
        "r4_pipe": lambda: radix4_multiplier(pipeline_cut="after_ppgen"),
        "r8": lambda: radix8_multiplier(),
        "mf": lambda: build_mf_multiplier(),
        "mf_quad": lambda: build_mf_multiplier(quad_fp16=True),
        "reducer": lambda: build_reducer(),
    }
    builder = builders[which]
    cache_dir = _module_cache_dir()
    reg = obs.registry()
    if cache_dir is None:
        reg.inc("module_cache.misses")
        with obs.span(f"module:build:{which}", cat="module"):
            return builder()
    path = cache_dir / f"{which}-{_source_fingerprint()}.pkl"
    try:
        with obs.span(f"module:load:{which}", cat="module"):
            with open(path, "rb") as fh:
                module = pickle.load(fh)
        reg.inc("module_cache.hits")
        return module
    except Exception:
        pass
    reg.inc("module_cache.misses")
    with obs.span(f"module:build:{which}", cat="module"):
        module = builder()
    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=cache_dir, suffix=".tmp")
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(module, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    except Exception:
        pass                    # caching is best-effort
    return module


# ----------------------------------------------------------------------
# Table I / Table II — latency, area, critical path
# ----------------------------------------------------------------------

@dataclass
class TimingAreaResult:
    """Measured latency/area of one multiplier vs the paper."""

    name: str
    segments_ps: Dict[str, float]
    latency_ps: float
    latency_fo4: float
    area_um2: float
    knand2: float
    paper: Dict[str, float]

    def render(self):
        rows = []
        for seg in ("precomp", "ppgen", "tree", "cpa"):
            if seg in self.paper:
                rows.append((f"{seg} [ps]", self.paper[seg],
                             round(self.segments_ps.get(seg, 0.0))))
        rows += [
            ("latency [ps]", self.paper["latency_ps"], round(self.latency_ps)),
            ("latency [FO4]", self.paper["fo4"], round(self.latency_fo4, 1)),
            ("area [um2]", self.paper["area_um2"], round(self.area_um2)),
            ("area [K NAND2]", self.paper["knand2"], round(self.knand2, 1)),
        ]
        return paper_vs_measured(rows, title=f"{self.name} (64x64)")


def _timing_area(which, name, paper_key):
    module = cached_module(which)
    lib = default_library()
    report = analyze(module, lib)
    segments = critical_path_breakdown(
        module, lib, blocks=["precomp", "recoder", "ppgen", "tree", "cpa"])
    seg_map = {}
    for seg in segments:
        key = "ppgen" if seg.block == "recoder" else seg.block
        seg_map[key] = seg_map.get(key, 0.0) + seg.delay_ps
    area = area_report(module, lib)
    return TimingAreaResult(
        name=name,
        segments_ps=seg_map,
        latency_ps=report.latency_ps,
        latency_fo4=report.latency_fo4,
        area_um2=area.total_um2,
        knand2=area.total_nand2_eq / 1000.0,
        paper=PAPER[paper_key],
    )


def experiment_table1():
    """Table I: the radix-16 64x64 multiplier."""
    return _timing_area("r16", "Table I: radix-16", "table1")


def experiment_table2():
    """Table II: the radix-4 Booth baseline."""
    return _timing_area("r4", "Table II: radix-4", "table2")


# ----------------------------------------------------------------------
# Table III — power, combinational vs pipelined
# ----------------------------------------------------------------------

@dataclass
class Table3Result:
    power_mw: Dict[str, float]          # comb_r4, comb_r16, pipe_r4, pipe_r16
    paper: Dict[str, float]

    @property
    def comb_ratio(self):
        return self.power_mw["comb_r16"] / self.power_mw["comb_r4"]

    @property
    def pipe_ratio(self):
        return self.power_mw["pipe_r16"] / self.power_mw["pipe_r4"]

    def render(self):
        rows = [
            ("combinational radix-4 [mW]", self.paper["comb_r4"],
             round(self.power_mw["comb_r4"], 2)),
            ("combinational radix-16 [mW]", self.paper["comb_r16"],
             round(self.power_mw["comb_r16"], 2)),
            ("combinational ratio r16/r4", self.paper["comb_ratio"],
             round(self.comb_ratio, 2)),
            ("pipelined radix-4 [mW]", self.paper["pipe_r4"],
             round(self.power_mw["pipe_r4"], 2)),
            ("pipelined radix-16 [mW]", self.paper["pipe_r16"],
             round(self.power_mw["pipe_r16"], 2)),
            ("pipelined ratio r16/r4", self.paper["pipe_ratio"],
             round(self.pipe_ratio, 2)),
        ]
        return paper_vs_measured(rows, title="Table III: power at 100 MHz")


#: Table III configurations: result key -> cached_module builder name.
TABLE3_CONFIGS = (("comb_r4", "r4"), ("comb_r16", "r16"),
                  ("pipe_r4", "r4_pipe"), ("pipe_r16", "r16_pipe"))


def table3_power_point(key, n_cycles=64, seed=2017):
    """One Table III Monte Carlo power run — a parallelizable leaf job."""
    which = dict(TABLE3_CONFIGS)[key]
    gen = WorkloadGenerator(seed)
    stim = gen.multiplier_stimulus(n_cycles)
    return estimate_power(cached_module(which), default_library(), stim,
                          n_cycles).total_mw


def table3_power_shard(key, t_first, t_last, n_cycles=64, seed=2017):
    """One stealable cycle-window of a Table III power point.

    Replays glitch transitions ``t_first..t_last`` only; the window set
    comes from :func:`repro.hdl.power.monte_carlo.power_shard_plan` and
    :func:`table3_point_from_shards` merges the pieces back into the
    exact monolithic :func:`table3_power_point` value.
    """
    which = dict(TABLE3_CONFIGS)[key]
    gen = WorkloadGenerator(seed)
    stim = gen.multiplier_stimulus(n_cycles)
    return power_replay_shard(cached_module(which), default_library(),
                              stim, n_cycles, t_first, t_last)


def table3_point_from_shards(key, shards, n_cycles=64, seed=2017):
    """Deterministic merge of :func:`table3_power_shard` outputs."""
    which = dict(TABLE3_CONFIGS)[key]
    gen = WorkloadGenerator(seed)
    stim = gen.multiplier_stimulus(n_cycles)
    return power_report_from_shards(cached_module(which),
                                    default_library(), stim, n_cycles,
                                    shards).total_mw


def experiment_table3(n_cycles=64, seed=2017, superword=True):
    """Table III: Monte Carlo power of both multipliers, both styles.

    ``superword=True`` (default) evaluates each configuration's whole
    stimulus battery through the batched superword API — one settle
    pass per netlist (the four configurations are four *distinct*
    netlists, so they cannot share a word the way Table V's formats
    do).  Bit-identical to the per-point path (property-tested).
    """
    if superword:
        lib = default_library()
        results = {}
        for key, which in TABLE3_CONFIGS:
            gen = WorkloadGenerator(seed)
            stim = gen.multiplier_stimulus(n_cycles)
            rep = estimate_power_batch(cached_module(which), lib,
                                       [(stim, n_cycles)])[0]
            results[key] = rep.total_mw
    else:
        results = {key: table3_power_point(key, n_cycles=n_cycles,
                                           seed=seed)
                   for key, __ in TABLE3_CONFIGS}
    return Table3Result(power_mw=results, paper=PAPER["table3"])


# ----------------------------------------------------------------------
# Table IV — IEEE 754 binary format parameters
# ----------------------------------------------------------------------

@dataclass
class Table4Result:
    rows: List[Tuple]

    def render(self):
        return render_table(
            ("parameter", "binary16", "binary32", "binary64", "binary128"),
            self.rows, title="Table IV: IEEE 754-2008 binary formats")


def experiment_table4():
    """Table IV: format parameters straight from the codec layer."""
    fmts = (BINARY16, BINARY32, BINARY64, BINARY128)
    rows = [
        ("storage (bits)",) + tuple(f.storage_bits for f in fmts),
        ("precision p (bits)",) + tuple(f.precision for f in fmts),
        ("exponent length (bits)",) + tuple(f.exponent_bits for f in fmts),
        ("Emax",) + tuple(f.emax for f in fmts),
        ("bias",) + tuple(f.bias for f in fmts),
        ("trailing significand f",) + tuple(f.trailing_significand_bits
                                            for f in fmts),
    ]
    return Table4Result(rows=rows)


# ----------------------------------------------------------------------
# Table V — per-format power and power efficiency
# ----------------------------------------------------------------------

@dataclass
class Table5Result:
    measured: Dict[str, Tuple[float, float, float]]  # mW, GFLOPS, GFLOPS/W
    paper: Dict[str, Tuple[float, float, float]]
    max_freq_mhz: float

    def power_table(self):
        """A FormatPowerTable built from the measured numbers."""
        return FormatPowerTable(
            int64=self.measured["int64"][0],
            fp64=self.measured["fp64"][0],
            fp32_dual=self.measured["fp32_dual"][0],
            fp32_single=self.measured["fp32_single"][0],
        )

    def render(self):
        paper_880 = PAPER["table5_880mhz"]
        rows = []
        for key in ("int64", "fp64", "fp32_dual", "fp32_single"):
            p_mw, p_thr, p_eff = self.paper[key]
            m_mw, m_thr, m_eff = self.measured[key]
            rows.append((f"{key} power [mW @100MHz]", p_mw, round(m_mw, 2)))
            rows.append((f"{key} power [mW @880MHz]", paper_880[key],
                         round(m_mw * 8.8, 2)))
            rows.append((f"{key} throughput [GFLOPS]", p_thr,
                         round(m_thr, 2)))
            rows.append((f"{key} efficiency [GFLOPS/W]", p_eff,
                         round(m_eff, 2)))
        return paper_vs_measured(
            rows, title="Table V: multi-format power and efficiency")


#: Table V formats and their operations per issued cycle.
TABLE5_FLOPS = {"int64": 1, "fp64": 1, "fp32_dual": 2, "fp32_single": 1}


def table5_format_point(fmt, n_cycles=64, seed=2017, issue_mhz=880.0):
    """One Table V per-format power run — a parallelizable leaf job.

    Returns the ``(mW @100MHz, GFLOPS, GFLOPS/W)`` triple for ``fmt``.
    """
    lib = default_library()
    module = cached_module("mf")
    gen = WorkloadGenerator(seed)
    stim = gen.mf_stimulus(fmt, n_cycles)
    rep = estimate_power(module, lib, stim, n_cycles)
    gflops = TABLE5_FLOPS[fmt] * issue_mhz / 1000.0
    watts = rep.scaled_to(issue_mhz).total_mw / 1000.0
    return (rep.total_mw, gflops, gflops / watts)


def table5_power_shard(fmt, t_first, t_last, n_cycles=64, seed=2017,
                       issue_mhz=880.0):
    """One stealable cycle-window of a Table V format power point.

    ``issue_mhz`` is accepted (and ignored — scaling happens in the
    merge) so the whole point family shares one parameter set.
    """
    del issue_mhz
    gen = WorkloadGenerator(seed)
    stim = gen.mf_stimulus(fmt, n_cycles)
    return power_replay_shard(cached_module("mf"), default_library(),
                              stim, n_cycles, t_first, t_last)


def table5_point_from_shards(fmt, shards, n_cycles=64, seed=2017,
                             issue_mhz=880.0):
    """Deterministic merge of :func:`table5_power_shard` outputs.

    Returns the same ``(mW @100MHz, GFLOPS, GFLOPS/W)`` triple as
    :func:`table5_format_point`.
    """
    gen = WorkloadGenerator(seed)
    stim = gen.mf_stimulus(fmt, n_cycles)
    rep = power_report_from_shards(cached_module("mf"), default_library(),
                                   stim, n_cycles, shards)
    gflops = TABLE5_FLOPS[fmt] * issue_mhz / 1000.0
    watts = rep.scaled_to(issue_mhz).total_mw / 1000.0
    return (rep.total_mw, gflops, gflops / watts)


def mf_max_freq_mhz():
    """STA-derived maximum clock of the multi-format unit (a leaf job)."""
    timing = analyze(cached_module("mf"), default_library())
    return 1e6 / timing.clock_period_ps


def experiment_table5(n_cycles=64, seed=2017, issue_mhz=880.0,
                      superword=True):
    """Table V: power per format on the pipelined multi-format unit.

    Throughput follows the paper: one operation per cycle (two for the
    dual binary32 mode) at the unit's maximum clock (the paper uses its
    880 MHz; we use ours, reported alongside).

    ``superword=True`` (default) evaluates all four formats' stimulus
    sweeps in **one** W×64-pattern superword settle pass — they share
    the ``mf`` netlist, so the per-format sequences concatenate into
    segments of a single levelized run (registers masked at segment
    boundaries) instead of four separate kernel invocations.
    Bit-identical to the per-point path (property-tested).
    """
    if superword:
        lib = default_library()
        module = cached_module("mf")
        jobs = []
        for fmt in TABLE5_FLOPS:
            gen = WorkloadGenerator(seed)
            jobs.append((gen.mf_stimulus(fmt, n_cycles), n_cycles))
        reports = estimate_power_batch(module, lib, jobs)
        measured = {}
        for fmt, rep in zip(TABLE5_FLOPS, reports):
            gflops = TABLE5_FLOPS[fmt] * issue_mhz / 1000.0
            watts = rep.scaled_to(issue_mhz).total_mw / 1000.0
            measured[fmt] = (rep.total_mw, gflops, gflops / watts)
    else:
        measured = {fmt: table5_format_point(fmt, n_cycles=n_cycles,
                                             seed=seed,
                                             issue_mhz=issue_mhz)
                    for fmt in TABLE5_FLOPS}
    return Table5Result(measured=measured, paper=PAPER["table5"],
                        max_freq_mhz=mf_max_freq_mhz())


# ----------------------------------------------------------------------
# Figures
# ----------------------------------------------------------------------

@dataclass
class InventoryResult:
    """Structural inventory for the block-diagram figures (1, 2, 3)."""

    title: str
    rows: List[Tuple[str, object]]

    def render(self):
        return render_table(("item", "value"), self.rows, title=self.title)


def experiment_fig1_ppgen():
    """Fig. 1: PPGEN structure — recoder, odd-multiple CPAs, mux, XOR row."""
    module = cached_module("r16")
    kinds: Dict[str, int] = {}
    blocks: Dict[str, int] = {}
    for gate in module.gates:
        top = gate.block.split("/", 1)[0] if gate.block else "(top)"
        blocks[top] = blocks.get(top, 0) + 1
        if top == "ppgen":
            kinds[gate.kind] = kinds.get(gate.kind, 0) + 1
    rows = [
        ("partial products (rows)", 17),
        ("recoded digit set", "{-8..8} (minimally redundant radix-16)"),
        ("odd multiples precomputed", "3X, 5X, 7X (one CPA each)"),
        ("precomp gates", blocks.get("precomp", 0)),
        ("recoder gates", blocks.get("recoder", 0)),
        ("ppgen gates", blocks.get("ppgen", 0)),
        ("ppgen mux cells (AO22)", kinds.get("AO22", 0)),
        ("ppgen negation XORs", kinds.get("XOR2", 0)),
    ]
    return InventoryResult(title="Fig. 1: partial product generation", rows=rows)


def experiment_fig2_multiplier():
    """Fig. 2: the radix-16 multiplier's block structure and size."""
    module = cached_module("r16")
    lib = default_library()
    area = area_report(module, lib)
    blocks = sorted(area.by_block_um2)
    rows = [("blocks", ", ".join(blocks)),
            ("total gates", len(module.gates)),
            ("total area [um2]", round(area.total_um2))]
    for b in blocks:
        rows.append((f"area[{b}] [um2]", round(area.by_block_um2[b])))
    return InventoryResult(title="Fig. 2: radix-16 multiplier", rows=rows)


def experiment_fig3_normround(samples=2000, seed=2017):
    """Fig. 3: validate the speculative normalize/round datapath.

    Sweeps random and boundary significand products through the
    reference Fig. 3 flow and checks against exact rounding, counting
    how often each path (P1 / shifted P0) is selected — including the
    renormalization window where low-path rounding overflows.
    """
    import random as _random

    from repro.arith.rounding import FP64_LANE, normalize_round_lane
    from repro.bits.ieee754 import round_significand

    rng = _random.Random(seed)
    p1_selected = 0
    p0_selected = 0
    renorm_window = 0
    checked = 0

    def check(mx, my):
        nonlocal p1_selected, p0_selected, renorm_window, checked
        product = mx * my
        p1 = product + (1 << FP64_LANE.r1_position)
        p0 = product + (1 << FP64_LANE.r0_position)
        lane = normalize_round_lane(p1, p0, FP64_LANE)
        expect, carry = round_significand(product, 53, mode="injection")
        high = (product >> 105) & 1
        assert lane.significand == expect, (hex(mx), hex(my))
        assert lane.exponent_increment == (high | carry)
        if lane.used_high_path:
            p1_selected += 1
            if not high:
                renorm_window += 1
        else:
            p0_selected += 1
        checked += 1

    top = (1 << 53) - 1
    for __ in range(samples):
        check(rng.randint(1 << 52, top), rng.randint(1 << 52, top))
    # Boundary: mantissas near all-ones (the renormalization window).
    for mx in (top, top - 1, top - 2):
        for my in (top, top - 1, 1 << 52, (1 << 52) + 1):
            check(mx, my)
    rows = [
        ("cases checked", checked),
        ("high path (P1) selected", p1_selected),
        ("low path (P0 << 1) selected", p0_selected),
        ("renormalized by rounding overflow", renorm_window),
        ("mismatches vs exact rounding", 0),
    ]
    return InventoryResult(
        title="Fig. 3: speculative normalization/rounding", rows=rows)


@dataclass
class Fig4Result:
    """The dual-binary32 array arrangement of Fig. 4."""

    grid_int: List[str]
    grid_dual: List[str]
    max_height_int: int
    max_height_dual: int

    def render(self):
        lines = ["Fig. 4: PP array arrangement (# field bit, c carry slot,"
                 " 1 correction constant)"]
        lines.append("-- int64/binary64 mode (17 rows) --")
        lines.extend(self.grid_int)
        lines.append("-- dual binary32 mode (two isolated lanes) --")
        lines.extend(self.grid_dual)
        lines.append(f"max column height: int64 {self.max_height_int}, "
                     f"dual {self.max_height_dual}")
        return "\n".join(lines)


def experiment_fig4_dual_lane():
    """Fig. 4: render the two array arrangements from the reference layer."""
    full = build_pp_array((1 << 64) - 1, (1 << 64) - 1, width=64,
                          radix_log2=4, product_width=128)
    dual = build_dual_lane_pp_array((1 << 24) - 1, (1 << 24) - 1,
                                    (1 << 24) - 1, (1 << 24) - 1)
    return Fig4Result(
        grid_int=occupancy_grid(full),
        grid_dual=occupancy_grid(dual),
        max_height_int=full.max_height(),
        max_height_dual=dual.max_height(),
    )


@dataclass
class Fig5Result:
    stage_delays_ps: List[float]
    clock_ps: float
    max_freq_mhz: float
    registers: Dict[int, int]
    critical_stage: int
    paper: Dict[str, float]

    def render(self):
        rows = [
            ("clock period [ps]", self.paper["clock_ps"],
             round(self.clock_ps)),
            ("clock period [FO4]", self.paper["clock_fo4"],
             round(self.clock_ps / FO4_PS, 1)),
            ("critical stage", self.paper["critical_stage"],
             self.critical_stage),
            ("max frequency [MHz]", self.paper["max_freq_mhz"],
             round(self.max_freq_mhz)),
        ]
        out = [paper_vs_measured(rows, title="Fig. 5: 3-stage pipeline")]
        out.append("stage delays [ps]: "
                   + ", ".join(f"S{i + 1}={d:.0f}"
                               for i, d in enumerate(self.stage_delays_ps)))
        out.append("pipeline registers per cut: "
                   + ", ".join(f"cut{k}={v}"
                               for k, v in sorted(self.registers.items())))
        return "\n".join(out)


def experiment_fig5_pipeline():
    """Fig. 5: stage timing and register placement of the MF unit."""
    lib = default_library()
    module = cached_module("mf")
    report = analyze(module, lib)
    regs: Dict[int, int] = {}
    for reg in module.registers:
        regs[reg.stage] = regs.get(reg.stage, 0) + 1
    critical = max(report.stages, key=lambda s: s.delay_ps)
    return Fig5Result(
        stage_delays_ps=[s.delay_ps for s in report.stages],
        clock_ps=report.clock_period_ps,
        max_freq_mhz=1e6 / report.clock_period_ps,
        registers=regs,
        critical_stage=critical.stage,
        paper=PAPER["fig5"],
    )


@dataclass
class Fig6Result:
    gates: int
    area_um2: float
    reducible_rate_random: float
    exhaustive_checked: int

    def render(self):
        return "\n".join([
            "Fig. 6 / Algorithm 1: binary64 -> binary32 reducer",
            f"gates: {self.gates}, area: {self.area_um2:.0f} um2",
            f"random binary64 operands reducible: "
            f"{100 * self.reducible_rate_random:.2f}% (exponent window * "
            f"zero-tail probability makes this tiny by construction)",
            f"boundary cases checked exhaustively: {self.exhaustive_checked}",
        ])


def experiment_fig6_reduction(n_random=20000, seed=2017):
    """Fig. 6: reducer statistics and boundary verification."""
    lib = default_library()
    module = cached_module("reducer")
    area = area_report(module, lib)
    gen = WorkloadGenerator(seed)
    reducible = 0
    for __ in range(n_random):
        if reduce_binary64(gen.normal_binary64()).reduced:
            reducible += 1
    checked = 0
    for e64 in (0, 1, 895, 896, 897, 1150, 1151, 1152, 2046, 2047):
        for tail in (0, 1, (1 << 29) - 1, 1 << 29):
            encoding = (e64 << 52) | tail
            decision = reduce_binary64(encoding)
            expected = (896 < e64 < 1151) and (tail & ((1 << 29) - 1)) == 0
            assert decision.reduced == expected, (e64, tail)
            if decision.reduced:
                assert widen_binary32(decision.encoding32) == encoding
            checked += 1
    return Fig6Result(
        gates=len(module.gates),
        area_um2=area.total_um2,
        reducible_rate_random=reducible / n_random,
        exhaustive_checked=checked,
    )


# ----------------------------------------------------------------------
# Section IV — savings from demoting reducible operands
# ----------------------------------------------------------------------

@dataclass
class Section4Result:
    rows: List[Tuple[float, float, float, float]]  # fraction, cycles ratio, energy ratio, savings %
    power_table: FormatPowerTable

    def render(self):
        table_rows = [(f"{frac:.0%}", f"{cyc:.2f}", f"{en:.2f}",
                       f"{sav * 100:.1f}%")
                      for frac, cyc, en, sav in self.rows]
        return render_table(
            ("reducible share", "cycles vs fp64", "energy vs fp64",
             "energy saved"),
            table_rows,
            title="Sec. IV: demoting reducible binary64 operands "
                  "(measured per-format power)")


def experiment_section4_savings(n_ops=400, seed=2017, power_table=None,
                                fractions=(0.0, 0.25, 0.5, 0.75, 1.0)):
    """Sec. IV: energy saved by the reducer + dual-lane issue, per mix."""
    if power_table is None:
        power_table = FormatPowerTable()   # the paper's Table V numbers
    rows = []
    for frac in fractions:
        gen = WorkloadGenerator(seed)
        pairs = gen.mixed_binary64_stream(n_ops, frac)
        machine = VectorMultiplier(use_reduction=True)
        result = machine.run(pairs)
        stats = result.stats
        cycles_ratio = stats.total_cycles / max(stats.total_operations, 1)
        energy_ratio = (stats.energy_pj(power_table)
                        / stats.baseline_energy_pj(power_table))
        rows.append((frac, cycles_ratio, energy_ratio,
                     stats.savings_fraction(power_table)))
    return Section4Result(rows=rows, power_table=power_table)
