"""Plain-text table rendering for the experiment reports."""

from typing import List, Optional, Sequence


def render_table(headers, rows, title=None):
    """Render a simple aligned text table."""
    cols = len(headers)
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(str(h)) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(cols)))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def paper_vs_measured(rows, title=None,
                      headers=("quantity", "paper", "measured", "ratio")):
    """Render paper-vs-measured rows ``(name, paper_value, measured)``.

    The ratio column shows measured/paper when both are numeric.
    """
    table_rows = []
    for name, paper, measured in rows:
        ratio = ""
        if _is_number(paper) and _is_number(measured) and paper:
            ratio = f"{measured / paper:.2f}"
        table_rows.append((name, paper, measured, ratio))
    return render_table(headers, table_rows, title=title)


def _fmt(value):
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)
