"""Experiment harness: regenerates every table and figure of the paper.

Each ``experiment_*`` function in :mod:`repro.eval.experiments` returns a
structured result object and can render itself as text in the paper's
own format; the benchmarks call these and print paper-vs-measured rows.
"""

from repro.eval.activity import experiment_activity
from repro.eval.fault_injection import mutation_coverage
from repro.eval.traces import TRACES, generate_trace, reducibility
from repro.eval.experiments import (
    experiment_fig1_ppgen,
    experiment_fig2_multiplier,
    experiment_fig3_normround,
    experiment_fig4_dual_lane,
    experiment_fig5_pipeline,
    experiment_fig6_reduction,
    experiment_section4_savings,
    experiment_table1,
    experiment_table2,
    experiment_table3,
    experiment_table4,
    experiment_table5,
)
from repro.eval.workloads import WorkloadGenerator


def __getattr__(name):
    # Lazy: ``python -m repro.eval.report`` runs report as __main__, and
    # an eager import here would double-load it (runpy RuntimeWarning).
    if name == "generate_report":
        from repro.eval.report import generate_report

        return generate_report
    raise AttributeError(name)


__all__ = [
    "WorkloadGenerator",
    "experiment_activity",
    "experiment_fig1_ppgen",
    "experiment_fig2_multiplier",
    "experiment_fig3_normround",
    "experiment_fig4_dual_lane",
    "experiment_fig5_pipeline",
    "experiment_fig6_reduction",
    "experiment_section4_savings",
    "experiment_table1",
    "experiment_table2",
    "experiment_table3",
    "experiment_table4",
    "experiment_table5",
    "generate_report",
    "generate_trace",
    "mutation_coverage",
    "reducibility",
    "TRACES",
]
