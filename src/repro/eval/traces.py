"""Named synthetic application traces for the Sec. IV experiments.

The paper motivates demotion with applications whose data are "small
integers or small fractions".  Instead of only sweeping an abstract
reducible fraction, these generators synthesize operand streams with
the *value distributions* of recognizable workload families, and report
each family's measured reducibility — turning Sec. IV's claim into a
per-workload statement.

All traces are seeded and return binary64 encoding pairs ready for
:class:`repro.core.vector_unit.VectorMultiplier`.
"""

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.bits.ieee754 import BINARY64, encode
from repro.core.reduction import reduce_binary64
from repro.errors import FormatError


@dataclass(frozen=True)
class TraceInfo:
    """A named workload family."""

    name: str
    description: str
    generator: Callable[[random.Random, int], List[Tuple[int, int]]]


def _enc(v):
    return encode(v, BINARY64)


def _dsp_fir(rng, n):
    """FIR filtering: quantized coefficients times sensor samples.

    Coefficients come from a designed filter quantized to 16 fractional
    bits (exactly representable in binary32); samples are 12-bit ADC
    readings scaled to [-1, 1) — dyadic, also exact.
    """
    taps = [math.sin(0.1 * (i + 1)) / (i + 1) for i in range(16)]
    coeffs = [round(t * (1 << 16)) / (1 << 16) for t in taps]
    pairs = []
    for i in range(n):
        c = coeffs[i % len(coeffs)] or 1.0 / (1 << 16)
        sample = rng.randint(-2048, 2047) / 2048.0
        if sample == 0.0:
            sample = 1.0 / 2048.0
        if rng.random() < 0.2:
            # Calibrated channels carry a full-precision gain factor.
            sample *= 1.0 + rng.uniform(-1e-3, 1e-3)
        pairs.append((_enc(c), _enc(sample)))
    return pairs


def _graphics_transform(rng, n):
    """Vertex transforms: rotation-matrix entries times coordinates.

    Matrix entries are trigonometric values (irrational, full mantissas);
    coordinates are snapped to a millimeter grid (dyadic within range).
    Half of each pair is typically non-reducible.
    """
    pairs = []
    for __ in range(n):
        if rng.random() < 0.55:
            # Axis-aligned / snapped transforms: exact dyadic entries.
            entry = rng.choice([1.0, -1.0, 0.5, -0.5, 0.25, 2.0])
        else:
            entry = math.cos(rng.uniform(0, 2 * math.pi)) or 0.5
        coord = rng.randint(-(1 << 20), (1 << 20)) / 1024.0
        if coord == 0.0:
            coord = 1.0 / 1024.0
        pairs.append((_enc(entry), _enc(coord)))
    return pairs


def _ml_inference(rng, n):
    """Quantization-aware inference: int8-quantized weights times
    activations that came through a binary32 pipeline."""
    pairs = []
    scale = 1.0 / 128.0
    for __ in range(n):
        w = rng.randint(-127, 127) or 1
        weight = w * scale                       # exactly representable
        if rng.random() < 0.3:
            # Activations accumulated in binary64 (softmax outputs etc.)
            # keep full mantissas.
            activation = rng.uniform(1e-4, 1e2)
        else:
            a_bits = rng.getrandbits(23)
            activation = (1 + a_bits / (1 << 23)) \
                * 2.0 ** rng.randint(-8, 8)
        pairs.append((_enc(weight), _enc(activation)))
    return pairs


def _scientific(rng, n):
    """Scientific kernels: full-precision state times full-precision
    state — essentially nothing reduces (the paper's fallback case)."""
    pairs = []
    for __ in range(n):
        a = rng.uniform(-1e6, 1e6) or 1.0
        b = rng.gauss(0, 1e3) or 1.0
        pairs.append((_enc(a), _enc(b)))
    return pairs


def _monte_carlo_finance(rng, n):
    """Monte Carlo pricing: cents-denominated cash flows times
    full-precision discount factors."""
    pairs = []
    for __ in range(n):
        cash = rng.randint(1, 10_000_000) / 100.0   # cents: NOT dyadic
        if rng.random() < 0.5:
            cash = float(rng.randint(1, 100_000))   # whole-dollar flows
        if rng.random() < 0.5:
            # Precomputed rate tables quantized to 2^-16.
            discount = round(math.exp(-rng.uniform(0.0, 0.2)) * (1 << 16)) \
                / (1 << 16)
        else:
            discount = math.exp(-rng.uniform(0.0, 0.2))
        pairs.append((_enc(cash), _enc(discount)))
    return pairs


TRACES: Dict[str, TraceInfo] = {
    t.name: t for t in (
        TraceInfo("dsp_fir", "quantized FIR coefficients x ADC samples",
                  _dsp_fir),
        TraceInfo("graphics", "rotation matrices x millimeter-grid "
                              "coordinates", _graphics_transform),
        TraceInfo("ml_inference", "int8-quantized weights x binary32 "
                                  "activations", _ml_inference),
        TraceInfo("scientific", "full-precision state x state",
                  _scientific),
        TraceInfo("finance", "cash flows x discount factors",
                  _monte_carlo_finance),
    )
}


def generate_trace(name, n, seed=2017):
    """Generate ``n`` operand pairs of the named workload family."""
    try:
        info = TRACES[name]
    except KeyError:
        raise FormatError(
            f"unknown trace {name!r}; choose from {sorted(TRACES)}"
        ) from None
    return info.generator(random.Random(seed), n)


def reducibility(pairs):
    """Fraction of operations whose *both* operands pass Algorithm 1."""
    if not pairs:
        return 0.0
    hits = sum(1 for x, y in pairs
               if reduce_binary64(x).reduced and reduce_binary64(y).reduced)
    return hits / len(pairs)
