"""Calibration provenance for the power and timing models.

The substrate has exactly **three** calibrated constants, fixed once and
frozen (no per-table tuning):

1.  cell delays — a single global scale applied to an initial
    logical-effort-style characterization so the combinational radix-16
    multiplier lands near the paper's 29 FO4 (Table I).  The INV is
    pinned independently by the paper's FO4 = 64 ps anchor.
2.  ``CellLibrary.energy_fj_per_unit`` — chosen so the two-stage
    pipelined radix-16 multiplier dissipates ~7.7 mW at 100 MHz
    (Table III's radix-16 pipelined entry).
3.  ``CellLibrary.glitch_retention`` — the share of event-simulation
    glitch transitions charged as real energy (logic-level event
    simulation overcounts glitches absent slew filtering); chosen
    jointly with (2) so the *radix-4* pipelined entry lands near its
    8.7 mW as well.

Everything else in every table — ratios, orderings, per-format
differences, crossovers — follows from netlist structure and simulated
activity.  :func:`check_calibration` re-derives the anchors so the test
suite can detect drift.
"""

from dataclasses import dataclass

from repro.eval.workloads import WorkloadGenerator
from repro.hdl.library import FO4_PS, NAND2_AREA_UM2, default_library
from repro.hdl.power.monte_carlo import estimate_power
from repro.hdl.timing.sta import analyze


@dataclass
class CalibrationStatus:
    fo4_ps: float
    nand2_area_um2: float
    r16_pipe_power_mw: float
    r4_pipe_power_mw: float
    r16_latency_fo4: float

    @property
    def anchors_ok(self):
        return (abs(self.fo4_ps - FO4_PS) < 1e-9
                and abs(self.nand2_area_um2 - NAND2_AREA_UM2) < 1e-9)


def check_calibration(n_cycles=12, seed=2017):
    """Re-measure the calibration anchors (used by tests/benchmarks)."""
    from repro.eval.experiments import cached_module

    lib = default_library()
    gen = WorkloadGenerator(seed)
    stim = gen.multiplier_stimulus(n_cycles)
    r16_pipe = estimate_power(cached_module("r16_pipe"), lib, stim, n_cycles)
    gen = WorkloadGenerator(seed)
    stim = gen.multiplier_stimulus(n_cycles)
    r4_pipe = estimate_power(cached_module("r4_pipe"), lib, stim, n_cycles)
    timing = analyze(cached_module("r16"), lib)
    return CalibrationStatus(
        fo4_ps=lib.fo4_ps,
        nand2_area_um2=lib.spec("NAND2").area_um2,
        r16_pipe_power_mw=r16_pipe.total_mw,
        r4_pipe_power_mw=r4_pipe.total_mw,
        r16_latency_fo4=timing.latency_fo4,
    )
