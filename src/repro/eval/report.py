"""One-command reproduction report.

``generate_report`` regenerates the paper's complete evidence — every
table and figure, the ablation sweeps, the Sec. III-E activity
decomposition and the fault-injection campaigns — and assembles a
single markdown document (paper vs measured throughout), the artifact
to attach to a reproduction claim.

The heavy lifting routes through :mod:`repro.eval.orchestrator`: each
section is an experiment job graph, fanned out over worker processes
(``workers=N``) and memoized in the persistent result cache, with the
sections rendered in fixed order so the document is byte-identical
across serial, parallel and cache-served runs.

Exposed on the CLI as ``python -m repro.eval.report`` (see ``--help``)
and, in short form, as ``python -m repro report``.
"""

import argparse
import io
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Tuple

from repro import obs

#: Default location of the assembled report.
DEFAULT_OUTPUT = (Path(__file__).resolve().parents[3]
                  / "benchmarks" / "results" / "full_report.txt")


def report_sections(n_cycles=12, include_sweeps=True,
                    include_verification=True, mutations=12,
                    fault_mode="differential"):
    """The ordered ``(title, experiment, params)`` section list."""
    sections: List[Tuple[str, str, Dict]] = [
        ("Table I — radix-16 multiplier", "table1", {}),
        ("Table II — radix-4 baseline", "table2", {}),
        ("Table III — power, combinational vs pipelined", "table3",
         {"n_cycles": n_cycles}),
        ("Table IV — IEEE 754 formats", "table4", {}),
        ("Table V — multi-format power/efficiency", "table5",
         {"n_cycles": n_cycles}),
        ("Fig. 1 — PPGEN", "fig1", {}),
        ("Fig. 2 — multiplier structure", "fig2", {}),
        ("Fig. 3 — speculative rounding", "fig3", {"samples": 1000}),
        ("Fig. 4 — dual-lane array", "fig4", {}),
        ("Fig. 5 — 3-stage pipeline", "fig5", {}),
        ("Fig. 6 — binary64 -> binary32 reducer", "fig6",
         {"n_random": 5000}),
        ("Sec. IV — demotion savings", "section4", {"n_ops": 200}),
        ("Sec. III-E — activity decomposition", "activity",
         {"n_cycles": n_cycles}),
    ]
    if include_sweeps:
        sections += [
            ("Ablation — radix", "sweep_radix", {}),
            ("Ablation — CPA style", "sweep_cpa", {}),
            ("Ablation — pipeline cut", "sweep_pipeline_cut", {}),
            ("Ablation — tree style", "sweep_tree", {}),
            ("Ablation — format specialization", "sweep_specialization", {}),
        ]
    if include_verification:
        sections += [
            ("Verification — mutation coverage (radix-16)", "fault_r16",
             {"n_mutations": mutations, "mode": fault_mode}),
            ("Verification — mutation coverage (MF unit)", "fault_mf",
             {"n_mutations": mutations, "mode": fault_mode}),
        ]
    return sections


def generate_report(n_cycles=12, out_path=None, include_sweeps=False,
                    include_verification=False, mutations=12,
                    fault_mode="differential", workers=0,
                    cache=True, filters=None, metrics=None,
                    backend="auto", progress=None, hosts=None):
    """Run all experiments; returns the report text (and writes it).

    ``n_cycles`` controls Monte Carlo depth (power experiments);
    ``include_sweeps`` adds the ablation tables and
    ``include_verification`` the mutation-coverage campaigns.
    ``workers`` fans the job graph out over that many processes
    (``<= 1`` runs serially — same bytes either way) and ``backend``
    picks the execution backend (``auto``/``inline``/``fork``/
    ``workers``/``remote`` — the latter running leaves on the worker
    daemons named by ``hosts``; see :mod:`repro.eval.sched`); ``cache`` is
    ``True``/``False`` or a :class:`repro.eval.orchestrator.ResultCache`.
    ``filters`` (substrings matched against experiment names) narrows
    the section list.  ``metrics``, when a dict, is filled with the
    metrics-registry snapshot of the run (the ``repro.obs/1`` schema
    that ``--json`` and ``--metrics-json`` emit).  ``progress`` is the
    per-finished-job callback :func:`repro.eval.orchestrator.run_graph`
    documents — the CLI's ``--live`` view.
    """
    from repro.eval.orchestrator import run_experiments

    reg = obs.registry()
    reg.reset()             # scope the snapshot to exactly this report

    sections = report_sections(n_cycles=n_cycles,
                               include_sweeps=include_sweeps,
                               include_verification=include_verification,
                               mutations=mutations,
                               fault_mode=fault_mode)
    if filters:
        sections = [s for s in sections
                    if any(f in s[1] or f in s[0] for f in filters)]

    reg.gauge("report.workers", workers)
    reg.annotate("report.backend", backend)
    if hosts:
        reg.annotate("report.hosts",
                     hosts if isinstance(hosts, str) else list(hosts))
    t0 = time.perf_counter()
    with obs.span("report:experiments", cat="report",
                  sections=len(sections), workers=workers,
                  backend=backend):
        results, outcomes = run_experiments(
            [(name, params) for __, name, params in sections],
            workers=workers, cache=cache, backend=backend,
            progress=progress, hosts=hosts)
    wall_s = time.perf_counter() - t0

    with obs.span("report:render", cat="report"):
        buf = io.StringIO()
        w = buf.write
        w("# Reproduction report\n\n")
        w("Nannarelli, *A Multi-Format Floating-Point Multiplier for "
          "Power-Efficient Operations*, SOCC 2017.\n\n")
        w("Generated by `python -m repro.eval.report`; see EXPERIMENTS.md "
          "for the committed reference numbers and deviation notes.\n\n")
        for title, name, __ in sections:
            w(f"## {title}\n\n```\n")
            w(results[name].render())
            w("\n```\n\n")
        text = buf.getvalue()

    if out_path is not None:
        out_path = Path(out_path)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(text)

    # Per-job rows in deterministic job order (the orchestrator's own
    # ``orchestrator.jobs`` records arrive in completion order).
    for o in outcomes:
        reg.inc("report.jobs")
        if o.cached:
            reg.inc("report.cache_hits")
        reg.record("report.jobs",
                   {"name": o.name, "seconds": round(o.seconds, 4),
                    "cached": o.cached, "mode": o.mode})
    reg.observe("report.wall", wall_s)
    reg.annotate("report.sections", [name for __, name, ___ in sections])
    reg.annotate("report.output",
                 str(out_path) if out_path is not None else None)

    if metrics is not None:
        metrics.update(reg.snapshot())
    return text


def _live_printer(stream=None):
    """The ``--live`` progress renderer: one status line per finished job.

    Writes to stderr so piped/stdout consumers (``--json``, the report
    text) stay clean; on a TTY the line updates in place.
    """
    stream = stream if stream is not None else sys.stderr
    t0 = time.perf_counter()
    is_tty = getattr(stream, "isatty", lambda: False)()

    def show(info):
        mode = "cache" if info["cached"] else info["mode"]
        line = (f"[{info['done']:>3}/{info['total']}] "
                f"{info['name'][:46]:<46} {mode:<7}"
                f"{info['seconds']:7.2f}s  "
                f"in-flight {info['outstanding']:<3} "
                f"elapsed {time.perf_counter() - t0:6.1f}s")
        print(line, file=stream, end="\r" if is_tty else "\n", flush=True)

    show.finish = lambda: is_tty and print(file=stream)
    return show


def _cache_hit_rate():
    reg = obs.registry()
    jobs = reg.counter_value("orchestrator.jobs")
    if not jobs:
        return None
    return reg.counter_value("orchestrator.jobs.cached") / jobs


def _start_report_telemetry(port):
    """The orchestrator's opt-in telemetry: endpoint + sampled series."""
    from repro.obs.http import TelemetryServer

    sampler = obs.sampler()
    reg = obs.registry()
    sampler.add_source(
        "orchestrator.leaves.inflight",
        lambda: reg.gauge_value("orchestrator.leaves.inflight", 0))
    sampler.add_source("orchestrator.cache.hit_rate", _cache_hit_rate)
    sampler.start()
    return TelemetryServer(port=port).start()


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval.report",
        description="Regenerate the complete paper-vs-measured report "
                    "in one command: all tables and figures, the "
                    "ablation sweeps, the activity decomposition and "
                    "the mutation-coverage campaigns, orchestrated "
                    "over worker processes with a persistent result "
                    "cache.")
    parser.add_argument("--workers", type=int,
                        default=int(os.environ.get("REPRO_REPORT_WORKERS",
                                                   "1") or "1"),
                        help="worker processes for the job graph "
                             "(default 1 = serial; same output bytes "
                             "either way)")
    from repro.eval.sched import BACKEND_CHOICES

    parser.add_argument("--backend", default="auto",
                        choices=BACKEND_CHOICES,
                        help="execution backend for the job graph: "
                             "auto (inline when serial or "
                             "oversubscribed, else fork), inline, "
                             "fork, the work-stealing 'workers' "
                             "pool, or 'remote' worker daemons "
                             "(default auto)")
    parser.add_argument("--hosts", default=os.environ.get(
                            "REPRO_SCHED_HOSTS") or None,
                        metavar="HOST:PORT,...",
                        help="worker daemons for --backend remote "
                             "(default: REPRO_SCHED_HOSTS)")
    parser.add_argument("--filter", action="append", default=None,
                        metavar="SUBSTR",
                        help="only sections whose experiment name or "
                             "title contains SUBSTR (repeatable)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not update the persistent "
                             "result cache")
    parser.add_argument("--json", action="store_true",
                        help="print the metrics-registry snapshot "
                             "(repro.obs/1 schema) instead of the "
                             "human-readable summary")
    parser.add_argument("--metrics-json", metavar="PATH", default=None,
                        help="additionally write the metrics snapshot "
                             "(same repro.obs/1 schema as --json) to "
                             "PATH")
    parser.add_argument("--live", action="store_true",
                        help="stream per-job progress lines to stderr "
                             "as leaves finish (fed by the backends' "
                             "streamed results)")
    parser.add_argument("--telemetry-port", type=int, default=None,
                        metavar="PORT",
                        help="serve live /metrics, /metrics.json, "
                             "/series.json and /healthz on "
                             "127.0.0.1:PORT for the duration of the "
                             "run (0 = ephemeral port, printed to "
                             "stderr)")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="record Chrome trace-event spans (jobs, "
                             "cache probes, module builds, compiles, "
                             "replays) and write them to PATH — load in "
                             "https://ui.perfetto.dev")
    parser.add_argument("--cycles", type=int, default=12,
                        help="Monte Carlo cycles for the power "
                             "experiments (default 12)")
    parser.add_argument("--mutations", type=int, default=12,
                        help="mutations per fault-injection campaign "
                             "(default 12)")
    parser.add_argument("--fault-mode", default="differential",
                        choices=("differential", "full"),
                        help="fault-campaign engine: shared-golden "
                             "cone propagation (default) or full "
                             "re-simulation per mutant — coverage "
                             "results are bit-identical")
    parser.add_argument("--no-sweeps", action="store_true",
                        help="skip the ablation sweep sections")
    parser.add_argument("--no-verification", action="store_true",
                        help="skip the mutation-coverage sections")
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT),
                        help=f"report path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    if args.trace:
        obs.start_trace()
    telemetry = None
    if args.telemetry_port is not None:
        telemetry = _start_report_telemetry(args.telemetry_port)
        print(f"telemetry: {telemetry.url}", file=sys.stderr)
    progress = _live_printer() if args.live else None
    metrics: Dict = {}
    try:
        generate_report(
            n_cycles=args.cycles,
            out_path=args.output,
            include_sweeps=not args.no_sweeps,
            include_verification=not args.no_verification,
            mutations=args.mutations,
            fault_mode=args.fault_mode,
            workers=args.workers,
            cache=not args.no_cache,
            filters=args.filter,
            metrics=metrics,
            backend=args.backend,
            progress=progress,
            hosts=args.hosts,
        )
    finally:
        if progress is not None:
            progress.finish()
        if telemetry is not None:
            telemetry.stop()
    n_trace = None
    if args.trace:
        n_trace = obs.write_trace(args.trace)
    if args.metrics_json:
        with open(args.metrics_json, "w") as fh:
            json.dump(metrics, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.json:
        print(json.dumps(metrics, indent=2, sort_keys=True))
        return 0

    # The human summary is a rendering of the same snapshot --json and
    # --metrics-json emit — one source of truth.
    counters = metrics["counters"]
    print(f"{'job':<42} {'mode':<8} {'seconds':>8}")
    for entry in metrics["records"].get("report.jobs", ()):
        print(f"{entry['name']:<42} {entry['mode']:<8} "
              f"{entry['seconds']:>8.3f}")
    wall = metrics["timers"].get("report.wall", {}).get("total", 0.0)
    workers = metrics["gauges"].get("report.workers", args.workers)
    print(f"\n{counters.get('report.jobs', 0)} jobs, "
          f"{counters.get('report.cache_hits', 0)} served from cache, "
          f"{wall:.2f}s wall with {workers:g} worker(s)")
    print(f"wrote {metrics['meta'].get('report.output', args.output)}")
    if n_trace is not None:
        print(f"wrote {args.trace} ({n_trace} trace events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
