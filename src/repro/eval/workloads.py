"""Workload generation for the Monte Carlo experiments.

The paper estimates power "by generating pseudo-random input patterns"
(Sec. III-E).  :class:`WorkloadGenerator` produces the same kind of
stimulus — seeded and reproducible — for every operating format, plus
the structured streams used by the Sec. IV experiments (mixed
binary64 workloads with a controlled fraction of reducible operands).
"""

import random
from typing import Dict, List

from repro.bits.ieee754 import BINARY32, BINARY64
from repro.core.pipeline_unit import FRMT_FP32X2, FRMT_FP64, FRMT_INT64
from repro.core.reduction import DISCARDED_FRACTION_BITS, reduce_binary64
from repro.errors import FormatError


class WorkloadGenerator:
    """Seeded generator of operand streams and netlist stimulus."""

    def __init__(self, seed=2017):
        self._rng = random.Random(seed)

    # -- raw operands ---------------------------------------------------

    def uint64(self):
        return self._rng.getrandbits(64)

    def normal_binary64(self, min_biased=1, max_biased=2046):
        """A uniformly random *normalized* binary64 encoding."""
        return BINARY64.pack(self._rng.getrandbits(1),
                             self._rng.randint(min_biased, max_biased),
                             self._rng.getrandbits(52))

    def normal_binary32(self, min_biased=1, max_biased=254):
        return BINARY32.pack(self._rng.getrandbits(1),
                             self._rng.randint(min_biased, max_biased),
                             self._rng.getrandbits(23))

    def reducible_binary64(self, min_biased=959, max_biased=1087):
        """A binary64 that passes Algorithm 1 (single-precision payload).

        The default exponent window (unbiased roughly +/-64) models the
        paper's motivating data — "small integers or small fractions" —
        so that products of two reducible operands also stay inside the
        binary32 range and the scheduler can actually demote them.
        """
        encoding = BINARY64.pack(
            self._rng.getrandbits(1),
            self._rng.randint(min_biased, max_biased),
            self._rng.getrandbits(23) << DISCARDED_FRACTION_BITS,
        )
        decision = reduce_binary64(encoding)
        if not decision.reduced:
            raise FormatError("generator invariant broken")  # pragma: no cover
        return encoding

    def mixed_binary64_stream(self, n, reducible_fraction):
        """``n`` binary64 operand pairs, a share of them demotable.

        This is the Sec. IV workload: applications whose values are
        "small integers or small fractions" are modeled by drawing that
        share of operands from the reducible set.  Non-reducible draws
        use a central exponent window so products stay within the
        paper-mode unit's range (it has no overflow handling).
        """
        if not 0.0 <= reducible_fraction <= 1.0:
            raise FormatError("reducible_fraction must be in [0, 1]")
        pairs = []
        for __ in range(n):
            if self._rng.random() < reducible_fraction:
                pairs.append((self.reducible_binary64(),
                              self.reducible_binary64()))
            else:
                pairs.append((self.normal_binary64(523, 1523),
                              self.normal_binary64(523, 1523)))
        return pairs

    # -- netlist stimulus -----------------------------------------------

    def multiplier_stimulus(self, n_cycles):
        """Random 64-bit pattern pairs for the standalone multipliers."""
        return {
            "x": [self.uint64() for __ in range(n_cycles)],
            "y": [self.uint64() for __ in range(n_cycles)],
        }

    def mf_stimulus(self, fmt, n_cycles):
        """Stimulus for the multi-format unit in one operating format.

        ``fmt``: ``"int64"``, ``"fp64"``, ``"fp32_dual"`` or
        ``"fp32_single"`` (single holds the upper lane's operands
        constant, modeling an idle lane — Table V's last row).
        """
        if fmt == "int64":
            xs = [self.uint64() for __ in range(n_cycles)]
            ys = [self.uint64() for __ in range(n_cycles)]
            code = FRMT_INT64
        elif fmt == "fp64":
            xs = [self.normal_binary64() for __ in range(n_cycles)]
            ys = [self.normal_binary64() for __ in range(n_cycles)]
            code = FRMT_FP64
        elif fmt == "fp32_dual":
            xs = [self.normal_binary32() | (self.normal_binary32() << 32)
                  for __ in range(n_cycles)]
            ys = [self.normal_binary32() | (self.normal_binary32() << 32)
                  for __ in range(n_cycles)]
            code = FRMT_FP32X2
        elif fmt == "fp32_single":
            hold_x = self.normal_binary32() << 32
            hold_y = self.normal_binary32() << 32
            xs = [self.normal_binary32() | hold_x for __ in range(n_cycles)]
            ys = [self.normal_binary32() | hold_y for __ in range(n_cycles)]
            code = FRMT_FP32X2
        else:
            raise FormatError(f"unknown mf workload format {fmt!r}")
        return {"x": xs, "y": ys, "frmt": [code] * n_cycles}
