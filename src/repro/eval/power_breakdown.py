"""CLI: per-net power attribution for one module / stimulus format.

``python -m repro.eval.power_breakdown --format fp32x2`` runs the
multi-format unit's Monte Carlo power estimate with attribution enabled
and prints the glitch-vs-functional split by named sub-block, cell type
and pipeline stage, plus the top-N hot nets.  ``--module r16`` (or any
other :func:`repro.eval.experiments.cached_module` key) breaks down the
standalone multipliers under the Table III random stimulus instead.

Attribution is a pure observer: the headline ``PowerReport`` numbers
are bit-identical with it on or off, and the per-block totals sum to
``PowerReport.total_mw`` — the CLI checks both and says so.
"""

import argparse
import json
import sys

from repro.eval.experiments import cached_module
from repro.eval.workloads import WorkloadGenerator
from repro.hdl.library import default_library
from repro.hdl.power.monte_carlo import estimate_power

#: Accepted ``--format`` spellings; the paper writes the dual-lane
#: binary32 mode "fp32x2", the workload generator calls it "fp32_dual".
FORMAT_ALIASES = {
    "int64": "int64",
    "fp64": "fp64",
    "fp32_dual": "fp32_dual",
    "fp32x2": "fp32_dual",
    "fp32_single": "fp32_single",
    "fp32x1": "fp32_single",
}


def run_breakdown(module_name="mf", fmt="fp32_dual", n_cycles=64,
                  seed=2017, frequency_mhz=100.0, glitch=True):
    """Estimate power with attribution and return ``(report, module)``."""
    module = cached_module(module_name)
    lib = default_library()
    gen = WorkloadGenerator(seed)
    if module_name == "mf":
        stim = gen.mf_stimulus(fmt, n_cycles)
    else:
        stim = gen.multiplier_stimulus(n_cycles)
    report = estimate_power(module, lib, stim, n_cycles,
                            frequency_mhz=frequency_mhz, glitch=glitch,
                            attribution=True)
    return report, module


def breakdown_json(report, module_name, fmt):
    """The ``--json`` payload: report headline plus full attribution."""
    att = report.attribution
    return {
        "schema": "repro.power_breakdown/1",
        "module": module_name,
        "format": fmt,
        "frequency_mhz": report.frequency_mhz,
        "total_mw": report.total_mw,
        "dynamic_mw": report.dynamic_mw,
        "register_mw": report.register_mw,
        "leakage_mw": report.leakage_mw,
        "glitch_mw": report.glitch_mw,
        "sim_stats": report.sim_stats,
        "attribution": {
            "glitch_retention": att.glitch_retention,
            "functional_mw": att.functional_mw(),
            "glitch_mw": att.glitch_mw(),
            "by_block": att.by_block,
            "by_cell": att.by_cell,
            "by_stage": {str(k): v for k, v in att.by_stage.items()},
            "hot_nets": att.hot_nets,
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval.power_breakdown",
        description="Per-net power attribution (glitch vs functional, "
                    "by sub-block / cell / pipeline stage).")
    parser.add_argument("--module", default="mf",
                        help="netlist to break down: mf (default), r4, "
                             "r8, r16, r4_pipe, r16_pipe, reducer")
    parser.add_argument("--format", default="fp32_dual",
                        choices=sorted(FORMAT_ALIASES),
                        help="multi-format stimulus mode (mf module only; "
                             "fp32x2 == fp32_dual)")
    parser.add_argument("--cycles", type=int, default=64,
                        help="Monte Carlo cycles (default 64)")
    parser.add_argument("--seed", type=int, default=2017)
    parser.add_argument("--frequency-mhz", type=float, default=100.0)
    parser.add_argument("--no-glitch", action="store_true",
                        help="zero-delay activity only")
    parser.add_argument("--top", type=int, default=10,
                        help="hot nets to list (default 10)")
    parser.add_argument("--json", action="store_true",
                        help="emit the full breakdown as JSON")
    args = parser.parse_args(argv)

    fmt = FORMAT_ALIASES[args.format]
    report, module = run_breakdown(
        module_name=args.module, fmt=fmt, n_cycles=args.cycles,
        seed=args.seed, frequency_mhz=args.frequency_mhz,
        glitch=not args.no_glitch)
    att = report.attribution

    if args.json:
        print(json.dumps(breakdown_json(report, args.module, fmt),
                         indent=2, sort_keys=True))
        return 0

    label = args.module if args.module != "mf" else f"mf [{fmt}]"
    print(f"{label}: {module.name} — {args.cycles} cycles, "
          f"seed {args.seed}")
    print(att.render(top=args.top))
    print()
    block_sum = att.total_mw()
    print(f"report total: {report.total_mw:.6f} mW  "
          f"(dynamic {report.dynamic_mw:.6f}, register "
          f"{report.register_mw:.6f}, leakage {report.leakage_mw:.6f})")
    print(f"block sum:    {block_sum:.6f} mW")
    err = abs(block_sum - report.total_mw) / max(report.total_mw, 1e-12)
    status = "OK" if err < 1e-9 else "MISMATCH"
    print(f"attribution check: {status} "
          f"(relative error {err:.2e}, tolerance 1e-09)")
    return 0 if err < 1e-9 else 1


if __name__ == "__main__":
    sys.exit(main())
