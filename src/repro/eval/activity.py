"""Activity analysis: the paper's Sec. III-E power-ratio argument.

The paper explains Table V's numbers structurally:

    "when a binary64 multiplication is executed only 53x53/64x64 = 68%
    of the bits in the significand datapath are meaningful.  The power
    dissipation ratio binary64/int64 in Table V is about 80%.  There is
    clearly some 10% overhead due to the activity in the S&EH that is
    inactive for int64 operations."

This module reproduces that decomposition from our per-block power
breakdown: the significand datapath (pre-computation, recoder, PPGEN,
TREE, normalize/round CPAs) vs the sign-and-exponent handling and
formatters, per operating format.
"""

from dataclasses import dataclass
from typing import Dict

from repro.eval.tables import render_table
from repro.eval.workloads import WorkloadGenerator
from repro.hdl.library import default_library
from repro.hdl.power.monte_carlo import estimate_power

#: Blocks forming the 64x64 significand datapath of Fig. 5.
SIGNIFICAND_BLOCKS = frozenset(
    {"precomp", "recoder", "ppgen", "tree", "normround", "pipe1", "pipe2"})
#: Blocks forming sign/exponent handling and the format glue.
SEH_BLOCKS = frozenset({"seh", "exp3", "informat", "outformat", "sticky",
                        "reducer"})


@dataclass
class ActivityBreakdown:
    """Per-format split of dynamic power into datapath vs S&EH."""

    total_mw: Dict[str, float]
    significand_mw: Dict[str, float]
    seh_mw: Dict[str, float]

    @property
    def fp64_over_int64_total(self):
        return self.total_mw["fp64"] / self.total_mw["int64"]

    @property
    def fp64_over_int64_significand(self):
        return self.significand_mw["fp64"] / self.significand_mw["int64"]

    def seh_share(self, fmt):
        if self.total_mw[fmt] == 0:
            return 0.0
        return self.seh_mw[fmt] / self.total_mw[fmt]

    def render(self):
        rows = []
        for fmt in sorted(self.total_mw):
            rows.append((fmt, round(self.total_mw[fmt], 2),
                         round(self.significand_mw[fmt], 2),
                         round(self.seh_mw[fmt], 2),
                         f"{self.seh_share(fmt):.1%}"))
        table = render_table(
            ("format", "total mW", "significand mW", "S&EH mW",
             "S&EH share"), rows,
            title="Sec. III-E activity decomposition")
        notes = [
            table,
            "",
            f"binary64/int64 total power ratio: "
            f"{self.fp64_over_int64_total:.2f} (paper: ~0.80)",
            f"binary64/int64 significand-datapath ratio: "
            f"{self.fp64_over_int64_significand:.2f} "
            f"(paper's bit-count bound: 0.68)",
        ]
        return "\n".join(notes)


#: Formats the decomposition measures (Table V minus the idle-lane row).
ACTIVITY_FORMATS = ("int64", "fp64", "fp32_dual")


def activity_point(fmt, n_cycles=16, seed=2017):
    """One per-format power decomposition — a parallelizable leaf job.

    Returns the ``(total mW, significand mW, S&EH mW)`` triple.
    """
    from repro.eval.experiments import cached_module

    lib = default_library()
    module = cached_module("mf")
    gen = WorkloadGenerator(seed)
    stim = gen.mf_stimulus(fmt, n_cycles)
    report = estimate_power(module, lib, stim, n_cycles)
    sig = sum(v for k, v in report.by_block_mw.items()
              if k in SIGNIFICAND_BLOCKS)
    sande = sum(v for k, v in report.by_block_mw.items()
                if k in SEH_BLOCKS)
    return (report.total_mw, sig, sande)


def breakdown_from_points(points):
    """Deterministic merge of :func:`activity_point` results per format."""
    totals, significand, seh = {}, {}, {}
    for fmt in ACTIVITY_FORMATS:
        totals[fmt], significand[fmt], seh[fmt] = points[fmt]
    return ActivityBreakdown(total_mw=totals, significand_mw=significand,
                             seh_mw=seh)


def experiment_activity(n_cycles=16, seed=2017):
    """Measure the per-block decomposition on the multi-format unit."""
    return breakdown_from_points(
        {fmt: activity_point(fmt, n_cycles=n_cycles, seed=seed)
         for fmt in ACTIVITY_FORMATS})
