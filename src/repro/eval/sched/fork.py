"""The ``fork`` backend: the classic process pool, kept as-is.

A fork-context :class:`concurrent.futures.ProcessPoolExecutor` — the
workhorse the orchestrator has always used.  Workers inherit the
parent's warm module caches via fork; tasks are picked up by whichever
process is free.  Still the right tool for homogeneous leaf sets on a
box with spare cores; the ``workers`` backend supersedes it when leaf
sizes are skewed (stealing) or when results must stream with per-worker
accounting.

The pool starts lazily on first :meth:`submit`, so cache-served graphs
cost nothing.
"""

import concurrent.futures
import multiprocessing
import time

from repro.eval.sched.base import Backend, execute_task


class ForkBackend(Backend):
    name = "fork"

    def __init__(self, workers):
        self.workers = max(1, int(workers))
        self._pool = None
        self._futures = {}

    def _ensure_pool(self):
        if self._pool is None:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:               # pragma: no cover - non-POSIX
                ctx = multiprocessing.get_context()
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers, mp_context=ctx)
        return self._pool

    def submit(self, task):
        pool = self._ensure_pool()
        self._futures[pool.submit(execute_task, task)] = \
            (task, time.perf_counter())

    def next_result(self):
        done, __ = concurrent.futures.wait(
            self._futures, return_when=concurrent.futures.FIRST_COMPLETED)
        future = next(iter(done))
        task, submitted = self._futures.pop(future)
        result = future.result()
        # Report queue-wait plus execution, as the pool path always has.
        result.seconds = time.perf_counter() - submitted
        return result

    @property
    def outstanding(self):
        return len(self._futures)

    def close(self):
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        self._futures.clear()
