"""The ``repro.sched/1`` wire protocol of the process and socket backends.

One schema for every hop between the scheduler and a long-lived worker,
designed so the same envelopes work across machines, not just across a
fork:

* the envelope itself is a plain dict of JSON-safe scalars — job names,
  ``"module:function"`` specs, fingerprints, counters;
* anything richer (param values, result objects, obs payloads) travels
  as an explicit ``pickle.dumps`` *bytes field* inside the envelope, so
  every transport only needs length-prefixed frames, never shared
  memory;
* every frame carries ``schema: "repro.sched/1"`` and is validated on
  receipt — a version skew fails loudly instead of unpickling garbage.

Framing
    :func:`pack_frame` / :func:`unpack_frame` are the one shared
    framing layer: a 4-byte big-endian length prefix, one format byte
    (``P`` pickle / ``J`` JSON) and the body, with a
    :data:`MAX_FRAME_BYTES` guard.  The pipe transport of the
    ``workers`` backend ships packed frames over
    ``Connection.send_bytes``; the socket transport wraps a TCP socket
    in :class:`FrameStream`.  Truncated, oversized or garbage buffers
    raise :class:`WireError` instead of an opaque unpickling error —
    ``WireError.fatal`` says whether the byte stream can still be
    trusted (framing intact, payload bad) or must be torn down
    (length/truncation damage).

Authentication
    Frames carry pickles, so a socket peer must prove knowledge of the
    shared secret (``REPRO_SCHED_TOKEN``) **before** either side
    unpickles anything: :func:`server_handshake` /
    :func:`client_handshake` run a mutual HMAC-SHA256 challenge —
    response over JSON-only frames (``challenge`` → ``auth`` →
    ``welcome``/``reject``); :meth:`FrameStream.recv` refuses pickle
    frames until the handshake is done.

Frame kinds (post-handshake):

``job``
    coordinator -> worker: one :class:`~repro.eval.sched.base.LeafTask`
    (name, fn spec, pickled params, cache fingerprint).
``result`` / ``error``
    worker -> coordinator: pickled value (or formatted traceback) + the
    worker's ``repro.obs/1`` metrics/trace payload + its execution
    seconds — sent the moment the leaf finishes, which is what lets the
    coordinator stream spans live.  A worker that receives a malformed
    frame replies with an ``error`` frame named ``"?"`` instead of
    dying silently.
``cache_offer`` / ``cache_hits``
    coordinator offers the sha256 digests of pending leaves; the daemon
    answers with the subset its content-addressed store holds.
``cache_pull`` / ``cache_object`` / ``cache_miss``
    coordinator pulls a warm result object by digest instead of
    re-executing the leaf.
``cache_push``
    coordinator seeds a daemon's store with one digest-named object.
``ping`` / ``pong``
    heartbeat; ``pong`` carries the daemon's load stats.
``shutdown``
    coordinator -> worker/daemon: drain and end the session.
"""

import hashlib
import hmac
import json
import os
import pickle
import secrets
import struct
import threading

SCHEMA = "repro.sched/1"

#: Hard ceiling on one frame's payload (length prefix included in the
#: check); a corrupted length prefix fails here instead of triggering a
#: multi-gigabyte allocation.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_HEADER = struct.Struct(">I")

#: Payload format bytes: pickled envelope vs JSON-only (handshake).
FORMAT_PICKLE = b"P"
FORMAT_JSON = b"J"


class WireError(RuntimeError):
    """A malformed or version-skewed frame.

    ``fatal`` distinguishes damage to the framing itself (truncated or
    oversized buffers — the byte stream is desynchronized and must be
    closed) from a well-framed but undecodable/invalid payload (the
    stream stays usable; the receiver can answer with an ``error``
    frame and keep its loop alive).
    """

    def __init__(self, message, fatal=False):
        super().__init__(message)
        self.fatal = fatal


def default_token():
    """The shared secret both ends HMAC with (``REPRO_SCHED_TOKEN``).

    An empty token still authenticates structurally (it prevents
    accidental cross-talk between deployments) but offers no security;
    any real multi-host deployment must export a random secret.
    """
    return os.environ.get("REPRO_SCHED_TOKEN", "")


# ----------------------------------------------------------------------
# framing: length-prefixed bytes shared by pipe and socket transports
# ----------------------------------------------------------------------

def pack_frame(envelope, fmt=FORMAT_PICKLE):
    """One envelope as length-prefixed bytes (header + format + body)."""
    if fmt == FORMAT_JSON:
        body = json.dumps(envelope, sort_keys=True).encode("utf-8")
    else:
        body = pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
    payload = fmt + body
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte guard", fatal=True)
    return _HEADER.pack(len(payload)) + payload


def _decode_payload(payload, allow_pickle=True):
    """Validate and decode one frame payload into its envelope."""
    if not payload:
        raise WireError("empty frame payload", fatal=True)
    fmt, body = payload[:1], payload[1:]
    if fmt == FORMAT_PICKLE:
        if not allow_pickle:
            raise WireError(
                "pickle frame before the handshake completed")
        try:
            envelope = pickle.loads(body)
        except Exception as exc:
            raise WireError(f"garbage pickle frame: {exc!r}") from None
    elif fmt == FORMAT_JSON:
        try:
            envelope = json.loads(body.decode("utf-8"))
        except Exception as exc:
            raise WireError(f"garbage JSON frame: {exc!r}") from None
    else:
        raise WireError(f"unknown frame format byte {fmt!r}")
    if not isinstance(envelope, dict) \
            or envelope.get("schema") != SCHEMA:
        raise WireError(
            f"bad frame: expected schema {SCHEMA!r}, got "
            f"{envelope.get('schema') if isinstance(envelope, dict) else type(envelope).__name__!r}")
    return envelope


def unpack_frame(data, allow_pickle=True):
    """Decode one complete frame buffer (header included).

    Raises :class:`WireError` on truncation, an oversized or lying
    length prefix, an unknown format byte, undecodable bodies, or a
    schema mismatch — never an opaque unpickling error.
    """
    if len(data) < _HEADER.size:
        raise WireError(
            f"truncated frame: {len(data)} bytes is shorter than the "
            f"{_HEADER.size}-byte header", fatal=True)
    (size,) = _HEADER.unpack(data[:_HEADER.size])
    if size > MAX_FRAME_BYTES:
        raise WireError(
            f"oversized frame: header declares {size} bytes "
            f"(guard {MAX_FRAME_BYTES})", fatal=True)
    payload = data[_HEADER.size:]
    if len(payload) != size:
        raise WireError(
            f"truncated frame: header declares {size} bytes, "
            f"buffer holds {len(payload)}", fatal=True)
    return _decode_payload(payload, allow_pickle)


# ----------------------------------------------------------------------
# transports
# ----------------------------------------------------------------------

def send_frame(conn, envelope):
    """Ship one envelope over a ``multiprocessing`` connection."""
    conn.send_bytes(pack_frame(envelope))


def recv_frame(conn):
    """Receive and validate one envelope (raises EOFError on hangup)."""
    return unpack_frame(conn.recv_bytes())


class FrameStream:
    """Length-prefixed frames over one TCP socket.

    ``send`` is locked (result-streaming and cache-reply threads share
    a daemon session's socket); ``recv`` is single-reader.  A clean
    peer close at a frame boundary raises ``EOFError`` (mirroring the
    pipe transport); a close mid-frame raises a fatal
    :class:`WireError`.  ``bytes_sent``/``bytes_recv`` feed the
    ``sched.remote.bytes.*`` counters.
    """

    def __init__(self, sock):
        self.sock = sock
        self.bytes_sent = 0
        self.bytes_recv = 0
        self._send_lock = threading.Lock()

    def fileno(self):
        return self.sock.fileno()

    def send(self, envelope, fmt=FORMAT_PICKLE):
        data = pack_frame(envelope, fmt)
        with self._send_lock:
            self.sock.sendall(data)
            self.bytes_sent += len(data)

    def _read_exact(self, n, at_boundary):
        buf = bytearray()
        while len(buf) < n:
            chunk = self.sock.recv(n - len(buf))
            if not chunk:
                if at_boundary and not buf:
                    raise EOFError("peer closed the connection")
                raise WireError("truncated frame: peer closed mid-frame",
                                fatal=True)
            buf += chunk
        self.bytes_recv += n
        return bytes(buf)

    def recv(self, allow_pickle=True):
        header = self._read_exact(_HEADER.size, at_boundary=True)
        (size,) = _HEADER.unpack(header)
        if size > MAX_FRAME_BYTES:
            raise WireError(
                f"oversized frame: header declares {size} bytes "
                f"(guard {MAX_FRAME_BYTES})", fatal=True)
        payload = self._read_exact(size, at_boundary=False)
        return _decode_payload(payload, allow_pickle)

    def close(self):
        try:
            self.sock.shutdown(2)            # SHUT_RDWR
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:                      # pragma: no cover
            pass


# ----------------------------------------------------------------------
# the HMAC handshake (JSON-only frames; no pickles before auth)
# ----------------------------------------------------------------------

def _mac(token, nonce):
    return hmac.new(token.encode("utf-8"), nonce.encode("utf-8"),
                    hashlib.sha256).hexdigest()


def server_handshake(stream, token, info=None):
    """Daemon side: challenge the peer, verify, answer its nonce.

    Sends ``challenge``, expects ``auth`` carrying
    ``HMAC(token, nonce)``, replies ``welcome`` (merged with ``info``
    — worker count, host label) proving *our* knowledge of the token
    against the client's nonce.  A failed proof gets a ``reject`` frame
    and a :class:`WireError`; nothing was unpickled either way.
    """
    nonce = secrets.token_hex(16)
    stream.send({"schema": SCHEMA, "kind": "challenge", "nonce": nonce},
                fmt=FORMAT_JSON)
    reply = stream.recv(allow_pickle=False)
    mac = reply.get("mac")
    if reply.get("kind") != "auth" or not isinstance(mac, str) \
            or not hmac.compare_digest(mac, _mac(token, nonce)):
        try:
            stream.send({"schema": SCHEMA, "kind": "reject",
                         "reason": "bad token"}, fmt=FORMAT_JSON)
        except OSError:                      # pragma: no cover
            pass
        raise WireError("handshake rejected: coordinator failed the "
                        "REPRO_SCHED_TOKEN proof")
    welcome = {"schema": SCHEMA, "kind": "welcome",
               "mac": _mac(token, str(reply.get("nonce", "")))}
    welcome.update(info or {})
    stream.send(welcome, fmt=FORMAT_JSON)
    return reply


def client_handshake(stream, token):
    """Coordinator side: answer the challenge, verify the daemon back.

    Returns the ``welcome`` envelope (worker count, host label).
    Raises :class:`WireError` when rejected or when the daemon fails
    the mutual proof.
    """
    challenge = stream.recv(allow_pickle=False)
    if challenge.get("kind") != "challenge":
        raise WireError(
            f"expected a challenge frame, got {challenge.get('kind')!r}")
    nonce = secrets.token_hex(16)
    stream.send({"schema": SCHEMA, "kind": "auth",
                 "mac": _mac(token, str(challenge.get("nonce", ""))),
                 "nonce": nonce}, fmt=FORMAT_JSON)
    welcome = stream.recv(allow_pickle=False)
    if welcome.get("kind") == "reject":
        raise WireError(
            f"handshake rejected: {welcome.get('reason', 'unknown')}")
    if welcome.get("kind") != "welcome" \
            or not isinstance(welcome.get("mac"), str) \
            or not hmac.compare_digest(welcome["mac"],
                                       _mac(token, nonce)):
        raise WireError("daemon failed mutual authentication")
    return welcome


# ----------------------------------------------------------------------
# envelope builders
# ----------------------------------------------------------------------

def job_envelope(task):
    """``job`` frame for one :class:`~repro.eval.sched.base.LeafTask`."""
    env = {"schema": SCHEMA, "kind": "job", "name": task.name,
           "fingerprint": task.fingerprint,
           "params": pickle.dumps(task.params,
                                  protocol=pickle.HIGHEST_PROTOCOL)}
    if task.trace_ctx:
        # JSON-safe scalars only: {"trace", "span", "flow"} strings.
        env["trace"] = dict(task.trace_ctx)
    if isinstance(task.fn, str):
        env["fn"] = task.fn
    else:
        # Local-transport convenience: callables still work over a
        # fork; the remote backend rejects them before dispatch.
        env["fn_pickle"] = pickle.dumps(task.fn,
                                        protocol=pickle.HIGHEST_PROTOCOL)
    return env


def task_from_envelope(env):
    """Rebuild the :class:`LeafTask` a ``job`` frame describes."""
    from repro.eval.sched.base import LeafTask

    fn = env["fn"] if "fn" in env else pickle.loads(env["fn_pickle"])
    return LeafTask(name=env["name"], fn=fn,
                    params=pickle.loads(env["params"]),
                    fingerprint=env.get("fingerprint", ""),
                    trace_ctx=env.get("trace"))


def result_envelope(result, worker):
    """``result``/``error`` frame for one finished leaf."""
    env = {"schema": SCHEMA, "name": result.name, "worker": worker,
           "seconds": result.seconds, "obs": result.obs_payload}
    if result.ok:
        env["kind"] = "result"
        env["payload"] = pickle.dumps(result.value,
                                      protocol=pickle.HIGHEST_PROTOCOL)
    else:
        env["kind"] = "error"
        env["error"] = result.error
        try:
            env["exception"] = pickle.dumps(
                result.exception, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            env["exception"] = None
    return env


def result_from_envelope(env):
    """Rebuild the :class:`LeafResult` a ``result``/``error`` frame holds."""
    from repro.eval.sched.base import LeafResult

    result = LeafResult(name=env["name"], worker=env.get("worker"),
                        seconds=env.get("seconds", 0.0),
                        obs_payload=env.get("obs"))
    if env["kind"] == "result":
        result.value = pickle.loads(env["payload"])
    else:
        result.error = env.get("error") or "worker error"
        blob = env.get("exception")
        if blob is not None:
            try:
                result.exception = pickle.loads(blob)
            except Exception:
                result.exception = None
    return result


def error_envelope(name, message, worker=None):
    """A structured ``error`` frame not tied to a finished leaf.

    What a worker loop answers when it receives a malformed frame
    (``name`` is ``"?"`` then): the peer learns *why* instead of
    watching the worker die silently, and the loop stays alive.
    """
    return {"schema": SCHEMA, "kind": "error", "name": name,
            "worker": worker, "seconds": 0.0, "obs": None,
            "error": message, "exception": None}


def shutdown_envelope():
    return {"schema": SCHEMA, "kind": "shutdown"}


def ping_envelope(seq):
    return {"schema": SCHEMA, "kind": "ping", "seq": seq}


def pong_envelope(seq, stats=None):
    return {"schema": SCHEMA, "kind": "pong", "seq": seq,
            "stats": dict(stats or {})}


def cache_offer_envelope(offer, digests):
    """Coordinator -> daemon: do you hold any of these digests?"""
    return {"schema": SCHEMA, "kind": "cache_offer", "offer": offer,
            "digests": list(digests)}


def cache_hits_envelope(offer, digests):
    """Daemon -> coordinator: the offered digests my store holds."""
    return {"schema": SCHEMA, "kind": "cache_hits", "offer": offer,
            "digests": list(digests)}


def cache_pull_envelope(digest):
    return {"schema": SCHEMA, "kind": "cache_pull", "digest": digest}


def cache_object_envelope(digest, value):
    return {"schema": SCHEMA, "kind": "cache_object", "digest": digest,
            "payload": pickle.dumps(value,
                                    protocol=pickle.HIGHEST_PROTOCOL)}


def cache_miss_envelope(digest):
    return {"schema": SCHEMA, "kind": "cache_miss", "digest": digest}


def cache_push_envelope(digest, value):
    return {"schema": SCHEMA, "kind": "cache_push", "digest": digest,
            "payload": pickle.dumps(value,
                                    protocol=pickle.HIGHEST_PROTOCOL)}
