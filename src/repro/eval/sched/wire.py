"""The ``repro.sched/1`` wire protocol of the ``workers`` backend.

One schema for every hop between the scheduler and a long-lived worker,
designed so the same envelopes work across machines, not just across a
fork:

* the envelope itself is a plain dict of JSON-safe scalars — job names,
  ``"module:function"`` specs, fingerprints, counters;
* anything richer (param values, result objects, obs payloads) travels
  as an explicit ``pickle.dumps`` *bytes field* inside the envelope, so
  a future socket transport only needs length-prefixed frames, never
  shared memory;
* every frame carries ``schema: "repro.sched/1"`` and is validated on
  receipt — a version skew fails loudly instead of unpickling garbage.

Frame kinds:

``job``
    parent -> worker: one :class:`~repro.eval.sched.base.LeafTask`
    (name, fn spec, pickled params, cache fingerprint).
``result``
    worker -> parent: pickled value + the worker's ``repro.obs/1``
    metrics/trace payload + its execution seconds — sent the moment the
    leaf finishes, which is what lets the parent stream spans live.
``error``
    worker -> parent: formatted traceback (and the pickled exception
    when it survives pickling) for a failing leaf.
``shutdown``
    parent -> worker: drain and exit the worker loop.

Transport here is a :class:`multiprocessing.connection.Connection`
(pipe or UNIX socket); :func:`send_frame`/:func:`recv_frame` are the
only two functions that touch it.
"""

import pickle

SCHEMA = "repro.sched/1"


class WireError(RuntimeError):
    """A malformed or version-skewed frame."""


def send_frame(conn, envelope):
    """Ship one envelope over a connection."""
    conn.send(envelope)


def recv_frame(conn):
    """Receive and validate one envelope (raises EOFError on hangup)."""
    envelope = conn.recv()
    if not isinstance(envelope, dict) \
            or envelope.get("schema") != SCHEMA:
        raise WireError(
            f"bad frame: expected schema {SCHEMA!r}, got "
            f"{envelope.get('schema') if isinstance(envelope, dict) else type(envelope).__name__!r}")
    return envelope


def job_envelope(task):
    """``job`` frame for one :class:`~repro.eval.sched.base.LeafTask`."""
    env = {"schema": SCHEMA, "kind": "job", "name": task.name,
           "fingerprint": task.fingerprint,
           "params": pickle.dumps(task.params,
                                  protocol=pickle.HIGHEST_PROTOCOL)}
    if task.trace_ctx:
        # JSON-safe scalars only: {"trace", "span", "flow"} strings.
        env["trace"] = dict(task.trace_ctx)
    if isinstance(task.fn, str):
        env["fn"] = task.fn
    else:
        # Local-transport convenience: callables still work over a
        # fork; a multi-host executor would reject them here.
        env["fn_pickle"] = pickle.dumps(task.fn,
                                        protocol=pickle.HIGHEST_PROTOCOL)
    return env


def task_from_envelope(env):
    """Rebuild the :class:`LeafTask` a ``job`` frame describes."""
    from repro.eval.sched.base import LeafTask

    fn = env["fn"] if "fn" in env else pickle.loads(env["fn_pickle"])
    return LeafTask(name=env["name"], fn=fn,
                    params=pickle.loads(env["params"]),
                    fingerprint=env.get("fingerprint", ""),
                    trace_ctx=env.get("trace"))


def result_envelope(result, worker):
    """``result``/``error`` frame for one finished leaf."""
    env = {"schema": SCHEMA, "name": result.name, "worker": worker,
           "seconds": result.seconds, "obs": result.obs_payload}
    if result.ok:
        env["kind"] = "result"
        env["payload"] = pickle.dumps(result.value,
                                      protocol=pickle.HIGHEST_PROTOCOL)
    else:
        env["kind"] = "error"
        env["error"] = result.error
        try:
            env["exception"] = pickle.dumps(
                result.exception, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            env["exception"] = None
    return env


def result_from_envelope(env):
    """Rebuild the :class:`LeafResult` a ``result``/``error`` frame holds."""
    from repro.eval.sched.base import LeafResult

    result = LeafResult(name=env["name"], worker=env["worker"],
                        seconds=env["seconds"],
                        obs_payload=env.get("obs"))
    if env["kind"] == "result":
        result.value = pickle.loads(env["payload"])
    else:
        result.error = env.get("error") or "worker error"
        blob = env.get("exception")
        if blob is not None:
            try:
                result.exception = pickle.loads(blob)
            except Exception:
                result.exception = None
    return result


def shutdown_envelope():
    return {"schema": SCHEMA, "kind": "shutdown"}
