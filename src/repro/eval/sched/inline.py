"""The ``inline`` backend: zero-overhead serial execution.

No processes, no queues — :meth:`submit` runs the leaf on the spot in
the scheduler's own process and parks the result for
:meth:`next_result`.  This is what the scheduler auto-selects whenever
``effective_workers == 1`` (including the oversubscription downgrade),
so "parallel" runs on a small box can never again pay fork-pool
overhead for nothing: the inline path *is* the serial path.

The leaf still runs under a :func:`repro.obs.span` (via the shared
worker entry) so traces look identical across backends; obs state needs
no merge because it already lives in this process.
"""

import time

from repro import obs
from repro.eval.sched.base import Backend, LeafResult, call_leaf


class InlineBackend(Backend):
    name = "inline"
    mode = "inline"

    def __init__(self, workers=1):
        self._done = []

    def submit(self, task):
        t0 = time.perf_counter()
        with obs.span(f"leaf:{task.name}", cat="orchestrator"):
            value = call_leaf(task.fn, task.params)
        self._done.append(LeafResult(
            name=task.name, value=value,
            seconds=time.perf_counter() - t0, worker=0))

    def next_result(self):
        return self._done.pop(0)

    @property
    def outstanding(self):
        return len(self._done)
