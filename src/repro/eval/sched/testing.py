"""Deterministic scheduler-exercise leaves (tests and CI smoke jobs).

Real experiment leaves are too heavy to probe scheduler *behaviour*
(steals, crash recovery, backend parity) — these are the minimal,
importable-by-spec stand-ins the scheduler tests and the CI
``sched-smoke`` job drive through the graph instead.
"""

import hashlib
import os
import time


def seeded_leaf(seed=0, size=4):
    """A cheap, fully deterministic leaf: ``size`` digest-derived ints."""
    out = []
    for i in range(size):
        digest = hashlib.sha256(f"{seed}:{i}".encode()).hexdigest()
        out.append(int(digest[:8], 16))
    return out


def sleepy_leaf(seconds=0.0, seed=0, size=1):
    """A :func:`seeded_leaf` that holds its worker for ``seconds`` —
    the deliberately slow leaf of the steal-under-skew tests."""
    time.sleep(seconds)
    return seeded_leaf(seed=seed, size=size)


def poison_leaf(seed=0):
    """Kill the executing worker on *every* attempt.

    The respawn-cap probe: a leaf like this must surface as a job
    failure after ``MAX_TASK_CRASHES`` recoveries instead of burning
    worker forks forever.
    """
    os._exit(1)


def crashy_leaf(sentinel, seed=0):
    """Kill the executing worker the first time, succeed on retry.

    ``sentinel`` is a filesystem path: absent means "first attempt" —
    the leaf creates it and hard-exits the worker process (no Python
    teardown, exactly like an OOM kill).  Present means "retry" — the
    leaf returns normally.  This makes worker-crash recovery a
    deterministic, single-run test.
    """
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as fh:
            fh.write(str(os.getpid()))
        os._exit(1)
    return seeded_leaf(seed=seed, size=2)
