"""The ``remote`` backend: orchestrator leaves on other machines.

The coordinator side of the multi-host scheduler.  ``--backend remote
--hosts a:9700,b:9700`` connects to worker daemons
(:mod:`repro.eval.sched.daemon`), authenticates each socket with the
mutual HMAC handshake of :mod:`repro.eval.sched.wire`, and then drives
the same :class:`~repro.eval.sched.base.Backend` contract the local
backends implement — ``submit`` / ``next_result`` / ``close`` — so the
scheduler core, the report CLI and the benchmarks need no new code
paths to span machines.

Scheduling
    Mirrors the ``workers`` backend one level up: one backlog deque per
    *host* (capacity = the worker count its ``welcome`` frame
    announced), submits landing on the least-loaded host, and an idle
    host **stealing from the tail of the longest other backlog** before
    going hungry.  Each host runs the stolen leaves on its own local
    stealing pool, so the cluster is a two-level stealing hierarchy.

Cache sync
    Before a leaf is dispatched its sha256 cache digest (the
    ``LeafTask.fingerprint`` the orchestrator computes anyway) is
    **offered** to every connected host; a host holding the object in
    its content-addressed store answers with a hit and the coordinator
    **pulls** the pickled result by digest instead of re-executing the
    leaf — warm entries move between machines over the same socket.
    Dispatch waits until every live host has answered the offer, so a
    fully warm cluster replays a report with zero leaf executions.
    Daemons store every result they execute under its digest, and
    ``REPRO_SCHED_REPLICATE=1`` additionally pushes each finished
    object to the hosts that reported a miss.

Failure model
    Heartbeat pings flow on an interval; a host that stays silent past
    the timeout — or whose socket errors — is declared lost: its
    in-flight leaves are re-queued at the head of the least-loaded
    survivor (capped at :data:`MAX_TASK_REQUEUES` so a poison leaf
    fails the job instead of hopping hosts forever), its backlog and
    unanswered cache offers migrate, and ``sched.remote.requeues``
    ticks.  Losing the *last* host raises — there is nowhere left to
    run.

Everything is observable under ``sched.remote.*``: host count, jobs,
steals, requeues, cache offers/hits/pulls/pushes and per-direction byte
counts, plus the per-leaf ``repro.obs/1`` payloads streamed back with
each result (so ``--live`` and the telemetry endpoint show the whole
cluster).
"""

import os
import pickle
import select
import socket
import time
from collections import deque

from repro import obs
from repro.errors import SimulationError
from repro.eval.sched import wire
from repro.eval.sched.base import Backend, LeafResult

#: Give up on a leaf after it has been re-queued off this many lost
#: hosts (mirrors ``MAX_TASK_CRASHES`` one level down).
MAX_TASK_REQUEUES = 2


def _env_float(name, default):
    try:
        return float(os.environ.get(name, "") or default)
    except ValueError:
        return default


def parse_hosts(spec):
    """``"a:9700,b:9701"`` (or an iterable of such) -> ``[(host, port)]``."""
    if spec is None:
        spec = os.environ.get("REPRO_SCHED_HOSTS", "")
    if isinstance(spec, str):
        parts = [p.strip() for p in spec.split(",") if p.strip()]
    else:
        parts = [str(p).strip() for p in spec if str(p).strip()]
    hosts = []
    for part in parts:
        host, sep, port = part.rpartition(":")
        if not sep or not port.isdigit():
            raise SimulationError(
                f"bad --hosts entry {part!r}: expected HOST:PORT")
        hosts.append((host or "127.0.0.1", int(port)))
    if not hosts:
        raise SimulationError(
            "the remote backend needs --hosts HOST:PORT[,HOST:PORT...] "
            "(or REPRO_SCHED_HOSTS)")
    return hosts


class _Host:
    """One connected worker daemon and its scheduling state."""

    __slots__ = ("index", "addr", "label", "stream", "capacity",
                 "queue", "inflight", "alive", "last_recv", "last_ping",
                 "ping_seq", "stats")

    def __init__(self, index, addr):
        self.index = index
        self.addr = addr
        self.label = f"{addr[0]}:{addr[1]}"
        self.stream = None
        self.capacity = 1
        self.queue = deque()          # task names not yet dispatched
        self.inflight = {}            # task name -> _TaskState
        self.alive = False
        self.last_recv = 0.0
        self.last_ping = 0.0
        self.ping_seq = 0
        self.stats = {}               # last pong payload

    @property
    def load(self):
        return (len(self.queue) + len(self.inflight)) / max(1, self.capacity)

    @property
    def free(self):
        return self.capacity - len(self.inflight)


class _TaskState:
    """Lifecycle of one submitted leaf across offers/pulls/dispatch."""

    __slots__ = ("task", "phase", "submitted", "offers_waiting",
                 "hit_hosts", "miss_hosts", "pull_host", "requeues")

    def __init__(self, task):
        self.task = task
        self.phase = "new"       # offering | ready | inflight | pulling | done
        self.submitted = time.perf_counter()
        self.offers_waiting = set()     # host indices yet to answer
        self.hit_hosts = []             # host indices that hold the digest
        self.miss_hosts = []            # host indices that reported a miss
        self.pull_host = None
        self.requeues = 0


class RemoteBackend(Backend):
    """Multiplex several worker daemons behind the Backend protocol."""

    name = "remote"
    mode = "remote"

    def __init__(self, hosts, token=None):
        self._hosts = [_Host(i, addr) for i, addr in enumerate(hosts)]
        self._token = wire.default_token() if token is None else token
        self._tasks = {}          # name -> _TaskState
        self._by_digest = {}      # fingerprint -> task name
        self._results = deque()
        self._outstanding = 0
        self._started = False
        self._heartbeat = _env_float("REPRO_SCHED_HEARTBEAT", 2.0)
        self._timeout = _env_float("REPRO_SCHED_TIMEOUT", 15.0)
        self._connect_timeout = _env_float("REPRO_SCHED_CONNECT_TIMEOUT", 5.0)
        self._cache_sync = os.environ.get("REPRO_SCHED_CACHE_SYNC", "1") != "0"
        self._replicate = os.environ.get("REPRO_SCHED_REPLICATE", "") == "1"

    # ------------------------------------------------------------------
    # connections
    # ------------------------------------------------------------------

    def _connect(self, host):
        try:
            sock = socket.create_connection(host.addr,
                                            timeout=self._connect_timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            stream = wire.FrameStream(sock)
            welcome = wire.client_handshake(stream, self._token)
        except (OSError, EOFError, wire.WireError) as exc:
            obs.registry().record(
                "sched.remote.connect_failed",
                {"host": host.label, "error": str(exc)})
            return False
        sock.settimeout(None)
        host.stream = stream
        host.capacity = max(1, int(welcome.get("workers", 1)))
        if welcome.get("host"):
            host.label = f"{welcome['host']}({host.label})"
        host.alive = True
        host.last_recv = time.monotonic()
        return True

    def _ensure_started(self):
        if self._started:
            return
        reg = obs.registry()
        connected = sum(1 for host in self._hosts if self._connect(host))
        if not connected:
            raise SimulationError(
                "remote backend could not reach any worker daemon: "
                + ", ".join(h.label for h in self._hosts))
        reg.gauge("sched.remote.hosts", connected)
        reg.record("sched.remote.hosts",
                   {"connected": [h.label for h in self._hosts if h.alive],
                    "capacity": sum(h.capacity for h in self._hosts
                                    if h.alive)})
        self._started = True

    def _alive(self):
        return [host for host in self._hosts if host.alive]

    # ------------------------------------------------------------------
    # Backend protocol
    # ------------------------------------------------------------------

    def submit(self, task):
        self._ensure_started()
        state = _TaskState(task)
        self._tasks[task.name] = state
        self._outstanding += 1
        alive = self._alive()
        if self._cache_sync and task.fingerprint and alive:
            self._by_digest[task.fingerprint] = task.name
            state.phase = "offering"
            state.offers_waiting = {host.index for host in alive}
            reg = obs.registry()
            for host in alive:
                reg.inc("sched.remote.cache.offers")
                if not self._send(host, wire.cache_offer_envelope(
                        task.name, [task.fingerprint])):
                    state.offers_waiting.discard(host.index)
        else:
            self._make_ready(state)
        self._dispatch()
        self._tick(0.0)

    def next_result(self, timeout=None):
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._results:
            if not self._outstanding:
                if timeout is not None:
                    return None
                raise RuntimeError(
                    "remote backend has no results and no jobs in flight")
            wait = self._heartbeat / 4
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                wait = min(wait, remaining)
            self._tick(wait)
        self._outstanding -= 1
        return self._results.popleft()

    @property
    def outstanding(self):
        return self._outstanding

    def close(self):
        for host in self._alive():
            try:
                host.stream.send(wire.shutdown_envelope())
            except (OSError, wire.WireError):
                pass
        self._flush_byte_gauges()
        for host in self._hosts:
            if host.stream is not None:
                host.stream.close()
                host.stream = None
            host.alive = False
            host.queue.clear()
            host.inflight.clear()
        self._started = False

    # ------------------------------------------------------------------
    # the event loop (single-threaded: runs inside submit/next_result)
    # ------------------------------------------------------------------

    def _tick(self, timeout):
        """One pass of socket I/O, heartbeats and dispatch."""
        alive = self._alive()
        if alive:
            readable, __, __ = select.select(
                [host.stream for host in alive], [], [], timeout)
            for stream in readable:
                host = next(h for h in alive if h.stream is stream)
                if not host.alive:
                    continue
                try:
                    env = stream.recv()
                except EOFError:
                    self._lose_host(host, "connection closed")
                    continue
                except OSError as exc:
                    self._lose_host(host, f"socket error: {exc}")
                    continue
                except wire.WireError as exc:
                    if exc.fatal:
                        self._lose_host(host, f"wire error: {exc}")
                        continue
                    obs.registry().inc("sched.remote.wire_errors")
                    continue
                host.last_recv = time.monotonic()
                self._on_frame(host, env)
        self._heartbeat_pass()
        self._dispatch()
        self._flush_byte_gauges()

    def _heartbeat_pass(self):
        now = time.monotonic()
        for host in self._alive():
            if now - host.last_recv > self._timeout:
                self._lose_host(host, "heartbeat timeout")
            elif now - host.last_ping >= self._heartbeat:
                host.ping_seq += 1
                host.last_ping = now
                self._send(host, wire.ping_envelope(host.ping_seq))

    def _flush_byte_gauges(self):
        reg = obs.registry()
        reg.gauge("sched.remote.bytes.sent",
                  sum(h.stream.bytes_sent for h in self._hosts
                      if h.stream is not None))
        reg.gauge("sched.remote.bytes.recv",
                  sum(h.stream.bytes_recv for h in self._hosts
                      if h.stream is not None))

    def _send(self, host, envelope):
        """Send one frame; a failed host is lost in place.  True on ok."""
        try:
            host.stream.send(envelope)
            return True
        except (OSError, wire.WireError) as exc:
            self._lose_host(host, f"send failed: {exc}")
            return False

    # ------------------------------------------------------------------
    # frame handling
    # ------------------------------------------------------------------

    def _on_frame(self, host, env):
        kind = env.get("kind")
        if kind in ("result", "error"):
            self._on_result(host, env)
        elif kind == "cache_hits":
            self._on_cache_hits(host, env)
        elif kind == "cache_object":
            self._on_cache_object(host, env)
        elif kind == "cache_miss":
            self._on_cache_miss(host, env)
        elif kind == "pong":
            host.stats = env.get("stats") or {}
        elif kind == "shutdown":
            self._lose_host(host, "daemon shut down")
        # anything else from an authenticated daemon is ignorable noise

    def _on_result(self, host, env):
        try:
            result = wire.result_from_envelope(env)
        except (KeyError, pickle.UnpicklingError) as exc:
            obs.registry().inc("sched.remote.wire_errors")
            obs.registry().record(
                "sched.remote.wire_errors",
                {"host": host.label, "error": repr(exc)})
            return
        if result.name == "?":
            # The daemon rejected a frame of ours; it never maps to a
            # leaf here because jobs are tracked by inflight name.
            obs.registry().inc("sched.remote.wire_errors")
            return
        state = host.inflight.pop(result.name, None)
        if state is None or state.phase == "done":
            return                       # late duplicate after a requeue
        result.worker = f"{host.label}/{result.worker}"
        self._settle(state, result)
        if self._replicate and result.ok and state.task.fingerprint \
                and state.miss_hosts:
            push = wire.cache_push_envelope(state.task.fingerprint,
                                            result.value)
            for index in state.miss_hosts:
                other = self._hosts[index]
                if other.alive and other is not host:
                    obs.registry().inc("sched.remote.cache.pushed")
                    self._send(other, push)

    def _on_cache_hits(self, host, env):
        state = self._tasks.get(env.get("offer"))
        if state is None:
            return
        state.offers_waiting.discard(host.index)
        if env.get("digests"):
            state.hit_hosts.append(host.index)
        else:
            state.miss_hosts.append(host.index)
        if state.phase != "offering":
            return
        if state.hit_hosts:
            self._start_pull(state)
        elif not state.offers_waiting:
            # Every live host answered and nobody holds it: execute.
            self._make_ready(state)

    def _start_pull(self, state):
        while state.hit_hosts:
            index = state.hit_hosts.pop(0)
            host = self._hosts[index]
            if not host.alive:
                continue
            state.phase = "pulling"
            state.pull_host = index
            if self._send(host, wire.cache_pull_envelope(
                    state.task.fingerprint)):
                obs.registry().inc("sched.remote.cache.hits")
                return
        # No live hit host left: fall back to execution (or keep
        # waiting for the remaining offer answers).
        state.pull_host = None
        if state.offers_waiting:
            state.phase = "offering"
        else:
            self._make_ready(state)

    def _on_cache_object(self, host, env):
        name = self._by_digest.get(env.get("digest"))
        state = self._tasks.get(name) if name else None
        if state is None or state.phase != "pulling" \
                or state.pull_host != host.index:
            return
        try:
            value = pickle.loads(env["payload"])
        except Exception:
            obs.registry().inc("sched.remote.wire_errors")
            self._start_pull(state)
            return
        obs.registry().inc("sched.remote.cache.pulled")
        self._settle(state, LeafResult(
            name=state.task.name, value=value,
            worker=f"{host.label}/cache"))

    def _on_cache_miss(self, host, env):
        name = self._by_digest.get(env.get("digest"))
        state = self._tasks.get(name) if name else None
        if state is None or state.phase != "pulling" \
                or state.pull_host != host.index:
            return
        # The entry vanished between offer and pull (eviction, GC).
        state.miss_hosts.append(host.index)
        self._start_pull(state)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def _make_ready(self, state, front=False):
        alive = self._alive()
        if not alive:
            raise SimulationError(
                "remote backend lost every worker daemon with "
                f"{self._outstanding} leaves outstanding")
        state.phase = "ready"
        host = min(alive, key=lambda h: (h.load, h.index))
        if front:
            host.queue.appendleft(state.task.name)
        else:
            host.queue.append(state.task.name)

    def _steal_for(self, thief):
        victim = max((h for h in self._alive() if h.queue),
                     key=lambda h: (len(h.queue), -h.index), default=None)
        if victim is None or victim is thief:
            return None
        name = victim.queue.pop()            # the steal end
        reg = obs.registry()
        reg.inc("sched.remote.steals")
        reg.record("sched.remote.steals",
                   {"job": name, "victim": victim.label,
                    "thief": thief.label,
                    "victim_backlog": len(victim.queue)})
        return name

    def _dispatch(self):
        reg = obs.registry()
        for host in self._alive():
            while host.alive and host.free > 0:
                name = host.queue.popleft() if host.queue \
                    else self._steal_for(host)
                if name is None:
                    break
                state = self._tasks[name]
                state.phase = "inflight"
                host.inflight[name] = state
                if not self._send(host, wire.job_envelope(state.task)):
                    break                    # host lost; leaf re-queued
                reg.inc("sched.remote.jobs")

    def _settle(self, state, result):
        state.phase = "done"
        state.submitted, submitted = None, state.submitted
        if submitted is not None:
            result.seconds = time.perf_counter() - submitted
        self._results.append(result)

    # ------------------------------------------------------------------
    # lost-host recovery
    # ------------------------------------------------------------------

    def _lose_host(self, host, reason):
        if not host.alive:
            return
        host.alive = False
        if host.stream is not None:
            host.stream.close()
        reg = obs.registry()
        reg.inc("sched.remote.hosts.lost")
        reg.record("sched.remote.hosts.lost",
                   {"host": host.label, "reason": reason,
                    "inflight": sorted(host.inflight),
                    "backlog": len(host.queue)})
        reg.gauge("sched.remote.hosts", len(self._alive()))
        inflight = list(host.inflight.values())
        host.inflight.clear()
        backlog = list(host.queue)
        host.queue.clear()
        # In-flight leaves: the expensive loss — count each requeue and
        # give up on leaves that keep sinking hosts.
        for state in inflight:
            state.requeues += 1
            if state.requeues > MAX_TASK_REQUEUES:
                self._settle(state, LeafResult(
                    name=state.task.name, worker=host.label,
                    error=f"leaf {state.task.name!r} was in flight on "
                          f"{state.requeues} lost hosts in a row "
                          f"(last: {host.label}, {reason})"))
                continue
            reg.inc("sched.remote.requeues")
            self._make_ready(state, front=True)
        # Backlog and unanswered offers migrate without a requeue count.
        for name in backlog:
            self._make_ready(self._tasks[name])
        for state in self._tasks.values():
            if state.phase == "offering":
                state.offers_waiting.discard(host.index)
                if state.hit_hosts:
                    self._start_pull(state)
                elif not state.offers_waiting:
                    self._make_ready(state)
            elif state.phase == "pulling" and state.pull_host == host.index:
                self._start_pull(state)
        self._dispatch()
