"""Pluggable execution backends for the experiment scheduler.

The scheduler core in :mod:`repro.eval.orchestrator` owns the job
graph; *how* cache-missing leaves actually execute is a backend choice:

========  ==========================================================
backend   what it is
========  ==========================================================
inline    zero-overhead serial execution in the scheduler's process —
          auto-selected whenever ``effective_workers == 1`` (including
          the oversubscription downgrade)
fork      the classic fork-context ``ProcessPoolExecutor``
workers   long-lived worker processes speaking the ``repro.sched/1``
          wire protocol, scheduled by deque-based work stealing with
          crash recovery and live result streaming
remote    the same wire protocol over authenticated TCP to worker
          daemons on other machines (``--hosts a:9700,b:9700``), with
          cross-host stealing, digest-based cache sync and lost-host
          recovery
========  ==========================================================

:func:`make_backend` maps a name + worker count to an instance; the
auto-selection policy itself (downgrades, oversubscription accounting)
lives in the scheduler core, next to its obs counters.
"""

from repro.eval.sched.base import (
    Backend,
    LeafResult,
    LeafTask,
    call_leaf,
    execute_task,
    raise_leaf_failure,
    resolve_fn,
)
from repro.eval.sched.fork import ForkBackend
from repro.eval.sched.inline import InlineBackend
from repro.eval.sched.remote import RemoteBackend
from repro.eval.sched.stealing import WorkersBackend

#: Every selectable backend, by registry key.
BACKENDS = {
    "inline": InlineBackend,
    "fork": ForkBackend,
    "workers": WorkersBackend,
    "remote": RemoteBackend,
}

#: What the CLI offers (``auto`` resolves in the scheduler core).
BACKEND_CHOICES = ("auto",) + tuple(BACKENDS)


def make_backend(name, workers, hosts=None):
    """Instantiate backend ``name`` for ``workers`` processes.

    The ``remote`` backend takes ``hosts`` (a ``HOST:PORT,...`` spec or
    iterable; falls back to ``REPRO_SCHED_HOSTS``) instead of a local
    worker count — its capacity is whatever the daemons announce.
    """
    try:
        cls = BACKENDS[name]
    except KeyError:
        from repro.errors import SimulationError

        raise SimulationError(
            f"unknown scheduler backend {name!r}; choose from "
            f"{', '.join(BACKEND_CHOICES)}") from None
    if name == "remote":
        from repro.eval.sched.remote import parse_hosts

        return cls(parse_hosts(hosts))
    return cls(workers)


__all__ = [
    "BACKENDS", "BACKEND_CHOICES", "Backend", "ForkBackend",
    "InlineBackend", "LeafResult", "LeafTask", "RemoteBackend",
    "WorkersBackend", "call_leaf", "execute_task", "make_backend",
    "raise_leaf_failure", "resolve_fn",
]
