"""Execution-backend protocol of the experiment scheduler.

The scheduler core (:mod:`repro.eval.orchestrator`) owns the job graph
— dependency tracking, cache probes, parent-side merges — and delegates
only one thing to a backend: *run these leaf tasks and stream their
results back as each one finishes*.  That contract is three calls:

* :meth:`Backend.submit` — hand over one :class:`LeafTask`;
* :meth:`Backend.next_result` — block until **some** submitted task is
  done and return its :class:`LeafResult` (completion order is the
  backend's business; the scheduler's merges are keyed by name, so any
  order yields identical graph results);
* :meth:`Backend.close` — release workers/pools (backends are context
  managers; ``close`` is idempotent).

Backends start lazily: a graph whose leaves are all served from the
result cache never forks a single process.

:func:`execute_task` is the one worker-side entry every backend uses —
it scopes the task's own metrics and trace spans with the exactly-once
:func:`repro.obs.task_begin`/:func:`repro.obs.task_collect` protocol so
the parent can merge them the moment the result arrives (live
streaming, not at pool join).
"""

import importlib
import time
import traceback
from dataclasses import dataclass, field
from typing import Optional

from repro import obs


@dataclass(frozen=True)
class LeafTask:
    """One leaf job as the backends see it.

    ``fn`` is a ``"module.path:function"`` string (the multi-host-safe
    spelling) or a picklable callable; ``params`` are sorted ``(key,
    value)`` pairs.  ``fingerprint`` is the job's cache digest — it
    rides along in the wire envelope so a remote executor can consult
    its own content-addressed store.
    """

    name: str
    fn: object
    params: tuple = ()
    weight: float = 1.0
    fingerprint: str = ""
    #: Coordinator-side trace context (``{"trace", "span", "flow"}``) —
    #: lets the worker's ``leaf:`` span resolve to the coordinator's
    #: graph span and close its ``sched:`` flow arrow.  Excluded from
    #: equality/hashing; ``None`` when tracing is off.
    trace_ctx: Optional[dict] = field(default=None, compare=False,
                                      repr=False)


@dataclass
class LeafResult:
    """One finished (or failed) leaf, streamed back to the scheduler."""

    name: str
    value: object = None
    seconds: float = 0.0                 # worker-side execution time
    worker: Optional[int] = None
    obs_payload: Optional[dict] = None   # task_collect() payload
    error: Optional[str] = None          # formatted traceback on failure
    exception: Optional[BaseException] = field(default=None, repr=False)

    @property
    def ok(self):
        return self.error is None


def resolve_fn(fn):
    """A callable from a ``"module.path:function"`` spec (or itself)."""
    if callable(fn):
        return fn
    module_name, __, func_name = fn.partition(":")
    return getattr(importlib.import_module(module_name), func_name)


def call_leaf(fn, params):
    """Resolve and call a leaf function with its keyword params."""
    return resolve_fn(fn)(**dict(params))


def execute_task(task):
    """Worker-side entry: run one task under a fresh obs scope.

    Returns a :class:`LeafResult` — never raises.  A failing leaf ships
    its traceback back instead of killing the worker loop (the original
    exception rides along where transport allows, so the parent can
    re-raise it verbatim).
    """
    obs.task_begin()
    ctx = getattr(task, "trace_ctx", None)
    obs.adopt_context(ctx)
    t0 = time.perf_counter()
    try:
        with obs.span(f"leaf:{task.name}", cat="orchestrator"):
            if ctx and ctx.get("flow"):
                # Close the coordinator's submit arrow inside this
                # slice so the stitched trace shows submit -> execute.
                obs.flow_finish(f"sched:{task.name}", ctx["flow"],
                                cat="orchestrator")
            value = call_leaf(task.fn, task.params)
    except BaseException as exc:                     # noqa: BLE001
        return LeafResult(name=task.name,
                          seconds=time.perf_counter() - t0,
                          obs_payload=obs.task_collect(),
                          error=traceback.format_exc(), exception=exc)
    finally:
        obs.adopt_context(None)
    return LeafResult(name=task.name, value=value,
                      seconds=time.perf_counter() - t0,
                      obs_payload=obs.task_collect())


class Backend:
    """Abstract execution backend (see module docstring for contract)."""

    #: Registry key and the ``JobOutcome.mode`` label of its results.
    name = "?"
    mode = "worker"

    def submit(self, task):
        raise NotImplementedError

    def next_result(self):
        raise NotImplementedError

    @property
    def outstanding(self):
        """Number of submitted tasks whose results were not yet taken."""
        raise NotImplementedError

    def close(self):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


def raise_leaf_failure(result):
    """Re-raise a failed leaf in the parent, preserving what we can."""
    from repro.errors import SimulationError

    if result.exception is not None:
        raise result.exception
    raise SimulationError(
        f"leaf job {result.name!r} failed in worker "
        f"{result.worker}:\n{result.error}")
