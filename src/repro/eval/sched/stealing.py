"""The ``workers`` backend: deque-based work stealing over long-lived
worker processes.

Topology
    N worker processes, forked lazily on first submit, each holding one
    end of a private :func:`multiprocessing.Pipe` and running
    :func:`_worker_main`: receive a ``repro.sched/1`` job frame,
    execute it, stream the result frame back immediately, repeat.
    Workers live for the whole graph — module caches, compiled kernels
    and event simulators stay warm across every leaf they run.

Scheduling
    The scheduler side keeps a deque of not-yet-dispatched tasks per
    worker.  ``submit`` appends to the least-loaded deque (weight-aware
    — the graph hands leaves over heaviest-first); each worker has at
    most one job in flight.  When a worker goes idle and its own deque
    is empty, it **steals from the tail of the longest other deque** —
    the classic steal end, leaving the victim's head (its next, likely
    cache-warm task) untouched.  Under skew (one slow leaf pinning a
    worker) the idle workers drain the victim's backlog instead of
    waiting at a pool barrier; every steal is counted and recorded in
    the metrics registry.

Fault tolerance
    A worker that disappears mid-leaf (EOF on its pipe) is detected by
    :func:`multiprocessing.connection.wait`; its in-flight task is
    re-queued at the head of the shortest deque, a replacement worker
    is forked into the slot, and ``orchestrator.worker.crashes`` ticks.
    A task that kills two workers in a row is reported as a failure
    rather than retried forever.

Results stream back the moment each leaf finishes (value pickled in the
frame, ``repro.obs/1`` metrics/trace payload alongside), so the parent
merges spans live instead of at pool join — and the same envelopes
would work unchanged over a socket to another host.
"""

import multiprocessing
import multiprocessing.connection
import os
import time
from collections import deque

from repro import obs
from repro.eval.sched import wire
from repro.eval.sched.base import Backend, LeafResult, execute_task

#: Give up on a task after it has taken down this many workers.
MAX_TASK_CRASHES = 2

#: Seconds to wait for a worker to exit after a shutdown frame.
_JOIN_TIMEOUT = 5.0


def _worker_main(conn, worker_id):
    """Long-lived worker loop: job frame in, result frame out.

    A malformed frame used to kill this loop silently — the scheduler
    saw only an EOF and burned a crash-respawn on a healthy worker.
    Now a :class:`wire.WireError` is answered with a structured
    ``error`` frame (named ``"?"`` since no task could be decoded) and
    the loop keeps serving; only *fatal* wire errors (the pipe's
    message framing makes these unreachable in practice) end the loop.
    """
    while True:
        try:
            env = wire.recv_frame(conn)
        except (EOFError, OSError):          # parent went away
            break
        except wire.WireError as exc:
            if exc.fatal:                    # pragma: no cover
                break
            try:
                wire.send_frame(conn, wire.error_envelope(
                    "?", f"malformed frame: {exc}", worker_id))
                continue
            except (BrokenPipeError, OSError):   # pragma: no cover
                break
        if env.get("kind") != "job":
            if env.get("kind") == "shutdown":
                break
            try:
                wire.send_frame(conn, wire.error_envelope(
                    "?", f"unexpected frame kind {env.get('kind')!r}",
                    worker_id))
                continue
            except (BrokenPipeError, OSError):   # pragma: no cover
                break
        task = wire.task_from_envelope(env)
        result = execute_task(task)
        try:
            wire.send_frame(conn, wire.result_envelope(result, worker_id))
        except (BrokenPipeError, OSError):   # pragma: no cover
            break
    conn.close()


class _Slot:
    """One worker process slot: connection, backlog deque, in-flight."""

    __slots__ = ("index", "proc", "conn", "queue", "inflight")

    def __init__(self, index):
        self.index = index
        self.proc = None
        self.conn = None
        self.queue = deque()
        self.inflight = None

    @property
    def load(self):
        return len(self.queue) + (1 if self.inflight is not None else 0)


class WorkersBackend(Backend):
    name = "workers"

    def __init__(self, workers):
        self.workers = max(1, int(workers))
        self._slots = [_Slot(i) for i in range(self.workers)]
        self._results = deque()
        self._submitted = {}      # task name -> submit perf_counter
        self._crashes = {}        # task name -> crash count
        self._outstanding = 0
        self._started = False

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------

    def _spawn(self, slot):
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:                   # pragma: no cover - non-POSIX
            ctx = multiprocessing.get_context()
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(target=_worker_main,
                           args=(child_conn, slot.index),
                           name=f"repro-sched-{slot.index}", daemon=True)
        proc.start()
        child_conn.close()
        slot.proc, slot.conn = proc, parent_conn
        obs.registry().inc("orchestrator.workers.spawned")

    def _ensure_started(self):
        if not self._started:
            for slot in self._slots:
                self._spawn(slot)
            self._started = True

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def submit(self, task):
        self._ensure_started()
        slot = min(self._slots, key=lambda s: (s.load, s.index))
        slot.queue.append(task)
        self._submitted[task.name] = time.perf_counter()
        self._outstanding += 1
        self._pump()

    def _steal_for(self, thief):
        """Pop a task from the tail of the longest other deque."""
        victim = max((s for s in self._slots if s.queue),
                     key=lambda s: (len(s.queue), -s.index), default=None)
        if victim is None or victim is thief:
            return None
        task = victim.queue.pop()            # the steal end
        reg = obs.registry()
        reg.inc("orchestrator.steals")
        reg.inc(f"orchestrator.worker.{thief.index}.steals")
        reg.record("orchestrator.steals",
                   {"job": task.name, "victim": victim.index,
                    "thief": thief.index,
                    "victim_backlog": len(victim.queue)})
        return task

    def _pump(self):
        """Dispatch one job to every idle worker (own queue, then steal)."""
        reg = obs.registry()
        for slot in self._slots:
            if slot.inflight is not None or slot.conn is None:
                continue
            task = slot.queue.popleft() if slot.queue \
                else self._steal_for(slot)
            if task is None:
                continue
            slot.inflight = task
            try:
                wire.send_frame(slot.conn, wire.job_envelope(task))
            except (BrokenPipeError, OSError):
                # The worker died while idle; recover exactly like a
                # mid-leaf crash (requeue + respawn) and keep pumping.
                self._crash(slot)
                return
            reg.inc(f"orchestrator.worker.{slot.index}.jobs")
            reg.observe_value("orchestrator.queue.depth",
                              sum(len(s.queue) for s in self._slots))

    # ------------------------------------------------------------------
    # completion / crash recovery
    # ------------------------------------------------------------------

    def _crash(self, slot):
        task = slot.inflight
        slot.inflight = None
        reg = obs.registry()
        reg.inc("orchestrator.worker.crashes")
        reg.record("orchestrator.worker.crashes",
                   {"worker": slot.index,
                    "job": task.name if task else None})
        try:
            slot.conn.close()
        except OSError:
            pass
        if slot.proc is not None:
            slot.proc.join(timeout=1.0)
            if slot.proc.is_alive():         # pragma: no cover
                slot.proc.terminate()
        slot.proc = slot.conn = None
        self._spawn(slot)
        if task is not None:
            crashes = self._crashes.get(task.name, 0) + 1
            self._crashes[task.name] = crashes
            if crashes > MAX_TASK_CRASHES:
                self._results.append(LeafResult(
                    name=task.name, worker=slot.index,
                    error=f"leaf {task.name!r} crashed "
                          f"{crashes} workers in a row"))
            else:
                # Retry promptly: head of the shortest deque.
                target = min(self._slots,
                             key=lambda s: (s.load, s.index))
                target.queue.appendleft(task)
        self._pump()

    def next_result(self, timeout=None):
        """The next finished leaf; ``None`` when ``timeout`` elapses.

        The default (no timeout) blocks until a result is available —
        the orchestrator's mode.  A timeout makes the call a poll, which
        is what lets a worker daemon's pump thread multiplex this pool
        with its coordinator socket.
        """
        while not self._results:
            conns = {slot.conn: slot for slot in self._slots
                     if slot.conn is not None
                     and slot.inflight is not None}
            if not conns:
                if timeout is not None:
                    return None
                raise RuntimeError(
                    "workers backend has no results and no jobs in "
                    "flight")
            ready = multiprocessing.connection.wait(list(conns), timeout)
            if not ready:
                return None
            for conn in ready:
                slot = conns[conn]
                try:
                    env = wire.recv_frame(conn)
                except (EOFError, OSError):
                    self._crash(slot)
                    continue
                except wire.WireError:       # pragma: no cover
                    # Undecodable bytes from a worker: its stream can't
                    # be trusted any more; recycle it like a crash.
                    self._crash(slot)
                    continue
                result = wire.result_from_envelope(env)
                if result.name == "?":
                    # The worker rejected a frame it could not decode.
                    # With a job in flight, fail that job (the frame it
                    # rejected *was* the job); otherwise just log it.
                    obs.registry().inc("orchestrator.worker.wire_errors")
                    if slot.inflight is None:
                        continue
                    result.name = slot.inflight.name
                slot.inflight = None
                submitted = self._submitted.pop(result.name, None)
                if submitted is not None:
                    result.seconds = time.perf_counter() - submitted
                self._results.append(result)
            self._pump()
        self._outstanding -= 1
        return self._results.popleft()

    @property
    def outstanding(self):
        return self._outstanding

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------

    def close(self):
        for slot in self._slots:
            if slot.conn is None:
                continue
            try:
                wire.send_frame(slot.conn, wire.shutdown_envelope())
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + _JOIN_TIMEOUT
        for slot in self._slots:
            if slot.proc is None:
                continue
            slot.proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if slot.proc.is_alive():
                slot.proc.terminate()
                slot.proc.join(timeout=1.0)
            try:
                slot.conn.close()
            except OSError:                  # pragma: no cover
                pass
            slot.proc = slot.conn = None
            slot.queue.clear()
            slot.inflight = None
        self._started = False
